#!/usr/bin/env bash
# Full pre-merge gate: formatting, repo-native lint, build, tests.
# Everything here runs offline (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> turbopool-lint (no findings beyond crates/lint/lint_baseline.json)"
# The JSON report is kept as a CI artifact; new findings fail the gate.
cargo run -q -p turbopool-lint -- --format json > LINT_REPORT.json
cat LINT_REPORT.json

echo "==> turbopool-lint (seeded fixtures must fail)"
if cargo run -q -p turbopool-lint -- crates/lint/fixtures >/dev/null 2>&1; then
    echo "ERROR: linter exited 0 on the seeded-violation fixtures" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault matrix (invariant auditor compiled out: --no-default-features)"
cargo test -q --no-default-features --test fault_injection --test crash_torture

echo "==> crash-schedule sweep (strided, all five designs)"
cargo test -q --release --test crash_schedule quick_sweep_all_designs

echo "==> parallel-driver determinism incl. brownout replay (strict invariants on)"
cargo test -q --release --features strict-invariants --test driver_determinism

echo "==> shard determinism grid (designs x shards {1,4,16} x threads {1,2,4,8})"
cargo test -q --release --features strict-invariants --test shard_determinism

echo "==> driver scaling bench (quick, emits BENCH_driver_scaling.json)"
TURBO_QUICK=1 cargo bench -q -p turbopool-bench --bench driver_scaling

echo "==> brownout bench (quick, asserts CW/DW/LC >= 2x noSSD while degraded)"
TURBO_QUICK=1 cargo bench -q -p turbopool-bench --bench brownout

echo "==> recovery bench (quick, emits BENCH_recovery.json)"
TURBO_QUICK=1 cargo bench -q -p turbopool-bench --bench recovery

echo "==> policy arena bench (quick, emits BENCH_policy_arena.json)"
TURBO_QUICK=1 cargo bench -q -p turbopool-bench --bench policy_arena

echo "All checks passed."
