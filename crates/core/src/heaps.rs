//! The SSD heap array: two binary min-heaps sharing one array (Figure 4).
//!
//! > "This SSD heap array is divided into clean and dirty heaps. The clean
//! > heap stores the root (the oldest page that will be chosen for
//! > replacement) at the first element of the array, and grows to the
//! > right. The dirty heap stores the root (the oldest page that will be
//! > first 'cleaned' by the LC thread) at the last element of the array,
//! > and grows to the left."
//!
//! Keys are LRU-2 distances (`(penultimate, last)` access stamps): the
//! minimum of the clean heap is the replacement victim; the minimum of the
//! dirty heap is the next page the lazy cleaner flushes. Each entry carries
//! the index of its SSD buffer-table record, and the heap maintains a
//! record → position index so records can be repositioned (on re-access) or
//! removed (on invalidation) in `O(log n)`.

/// Heap ordering key: the LRU-2 distance of a page.
pub type Key = (u64, u64);

/// Which of the two heaps an entry lives in.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Side {
    Clean,
    Dirty,
}

#[derive(Copy, Clone, Debug)]
struct Entry {
    key: Key,
    rec: usize,
}

/// Two min-heaps packed into one fixed array, indexed by record id.
#[derive(Debug)]
pub struct DualHeap {
    cap: usize,
    slots: Vec<Option<Entry>>,
    clean_len: usize,
    dirty_len: usize,
    /// `pos[rec] = (side, heap-local index)`.
    pos: Vec<Option<(Side, usize)>>,
}

impl DualHeap {
    /// A heap array for `cap` records with ids `0..cap`.
    pub fn new(cap: usize) -> Self {
        DualHeap {
            cap,
            slots: vec![None; cap],
            clean_len: 0,
            dirty_len: 0,
            pos: vec![None; cap],
        }
    }

    /// Number of entries on `side`.
    pub fn len(&self, side: Side) -> usize {
        match side {
            Side::Clean => self.clean_len,
            Side::Dirty => self.dirty_len,
        }
    }

    /// True when both heaps are empty.
    pub fn is_empty(&self) -> bool {
        self.clean_len == 0 && self.dirty_len == 0
    }

    /// Which heap holds `rec`, if any.
    pub fn side_of(&self, rec: usize) -> Option<Side> {
        self.pos[rec].map(|(s, _)| s)
    }

    #[inline]
    fn len_mut(&mut self, side: Side) -> &mut usize {
        match side {
            Side::Clean => &mut self.clean_len,
            Side::Dirty => &mut self.dirty_len,
        }
    }

    /// Array slot of heap-local index `i` on `side`.
    #[inline]
    fn slot(&self, side: Side, i: usize) -> usize {
        match side {
            Side::Clean => i,
            Side::Dirty => self.cap - 1 - i,
        }
    }

    fn entry(&self, side: Side, i: usize) -> Entry {
        // lint: allow(panic) — heap slot bookkeeping invariant; a miss here is a logic bug, fail fast.
        self.slots[self.slot(side, i)].expect("occupied heap slot")
    }

    fn set_entry(&mut self, side: Side, i: usize, e: Entry) {
        let s = self.slot(side, i);
        self.slots[s] = Some(e);
        self.pos[e.rec] = Some((side, i));
    }

    fn clear_entry(&mut self, side: Side, i: usize) {
        let s = self.slot(side, i);
        if let Some(e) = self.slots[s].take() {
            self.pos[e.rec] = None;
        }
    }

    fn sift_up(&mut self, side: Side, mut i: usize) {
        let e = self.entry(side, i);
        while i > 0 {
            let parent = (i - 1) / 2;
            let pe = self.entry(side, parent);
            if pe.key <= e.key {
                break;
            }
            self.set_entry(side, i, pe);
            i = parent;
        }
        self.set_entry(side, i, e);
    }

    fn sift_down(&mut self, side: Side, mut i: usize) {
        let len = self.len(side);
        let e = self.entry(side, i);
        loop {
            let l = 2 * i + 1;
            if l >= len {
                break;
            }
            let r = l + 1;
            let child = if r < len && self.entry(side, r).key < self.entry(side, l).key {
                r
            } else {
                l
            };
            let ce = self.entry(side, child);
            if e.key <= ce.key {
                break;
            }
            self.set_entry(side, i, ce);
            i = child;
        }
        self.set_entry(side, i, e);
    }

    /// Insert record `rec` with `key` into `side`. Panics if the record is
    /// already in a heap or the array is full (both heaps together hold at
    /// most `cap` entries — one per SSD frame).
    pub fn insert(&mut self, side: Side, key: Key, rec: usize) {
        assert!(self.pos[rec].is_none(), "record {rec} already in a heap");
        assert!(
            self.clean_len + self.dirty_len < self.cap,
            "heap array full"
        );
        let i = self.len(side);
        *self.len_mut(side) += 1;
        self.set_entry(side, i, Entry { key, rec });
        self.sift_up(side, i);
    }

    /// Remove record `rec` from whichever heap holds it.
    pub fn remove(&mut self, rec: usize) -> Option<Side> {
        let (side, i) = self.pos[rec]?;
        let last = self.len(side) - 1;
        if i == last {
            self.clear_entry(side, i);
            *self.len_mut(side) -= 1;
        } else {
            let moved = self.entry(side, last);
            self.clear_entry(side, last);
            self.clear_entry(side, i);
            *self.len_mut(side) -= 1;
            self.set_entry(side, i, moved);
            self.sift_down(side, i);
            self.sift_up(side, i);
        }
        Some(side)
    }

    /// Change the key of `rec` in place (re-access updates its LRU-2
    /// distance).
    pub fn update(&mut self, rec: usize, key: Key) {
        // lint: allow(panic) — pos[] and slots[] move in lockstep; an absent record is heap corruption.
        let (side, i) = self.pos[rec].expect("update of absent record");
        let s = self.slot(side, i);
        // lint: allow(panic) — same slot was just resolved via pos[]; it is occupied.
        self.slots[s].as_mut().unwrap().key = key;
        self.sift_down(side, i);
        self.sift_up(side, i);
    }

    /// Move `rec` between heaps, keeping its key (a dirty page was cleaned,
    /// or a clean page re-admitted dirty).
    pub fn change_side(&mut self, rec: usize, to: Side) {
        // lint: allow(panic) — pos[] and slots[] move in lockstep; an absent record is heap corruption.
        let (side, i) = self.pos[rec].expect("change_side of absent record");
        if side == to {
            return;
        }
        let key = self.entry(side, i).key;
        self.remove(rec);
        self.insert(to, key, rec);
    }

    /// The minimum entry of `side` without removing it.
    pub fn peek_min(&self, side: Side) -> Option<(Key, usize)> {
        if self.len(side) == 0 {
            None
        } else {
            let e = self.entry(side, 0);
            Some((e.key, e.rec))
        }
    }

    /// Remove and return the minimum entry of `side`.
    pub fn pop_min(&mut self, side: Side) -> Option<(Key, usize)> {
        let (key, rec) = self.peek_min(side)?;
        self.remove(rec);
        Some((key, rec))
    }

    /// Internal-consistency check used by property tests: heap order holds
    /// on both sides, positions round-trip, lengths match occupancy.
    #[cfg(any(test, feature = "validate"))]
    pub fn validate(&self) {
        let mut occupied = 0;
        for side in [Side::Clean, Side::Dirty] {
            let len = self.len(side);
            occupied += len;
            for i in 0..len {
                let e = self.entry(side, i);
                assert_eq!(self.pos[e.rec], Some((side, i)), "pos index broken");
                if i > 0 {
                    let parent = self.entry(side, (i - 1) / 2);
                    assert!(parent.key <= e.key, "heap order violated");
                }
            }
        }
        let filled = self.slots.iter().filter(|s| s.is_some()).count();
        assert_eq!(filled, occupied, "slot occupancy mismatch");
        assert!(self.clean_len + self.dirty_len <= self.cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::rng::{Rng, SeedableRng, SmallRng};

    #[test]
    fn min_pops_in_key_order() {
        let mut h = DualHeap::new(8);
        h.insert(Side::Clean, (5, 0), 0);
        h.insert(Side::Clean, (1, 0), 1);
        h.insert(Side::Clean, (3, 0), 2);
        assert_eq!(h.pop_min(Side::Clean), Some(((1, 0), 1)));
        assert_eq!(h.pop_min(Side::Clean), Some(((3, 0), 2)));
        assert_eq!(h.pop_min(Side::Clean), Some(((5, 0), 0)));
        assert_eq!(h.pop_min(Side::Clean), None);
    }

    #[test]
    fn clean_and_dirty_share_the_array() {
        let mut h = DualHeap::new(4);
        h.insert(Side::Clean, (1, 0), 0);
        h.insert(Side::Clean, (2, 0), 1);
        h.insert(Side::Dirty, (3, 0), 2);
        h.insert(Side::Dirty, (4, 0), 3);
        h.validate();
        assert_eq!(h.len(Side::Clean), 2);
        assert_eq!(h.len(Side::Dirty), 2);
        assert_eq!(h.peek_min(Side::Clean), Some(((1, 0), 0)));
        assert_eq!(h.peek_min(Side::Dirty), Some(((3, 0), 2)));
    }

    #[test]
    #[should_panic(expected = "already in a heap")]
    fn double_insert_panics() {
        let mut h = DualHeap::new(2);
        h.insert(Side::Clean, (1, 0), 0);
        // A record occupies exactly one heap slot at a time.
        h.insert(Side::Dirty, (2, 0), 0);
    }

    #[test]
    fn update_repositions() {
        let mut h = DualHeap::new(4);
        h.insert(Side::Clean, (1, 0), 0);
        h.insert(Side::Clean, (2, 0), 1);
        h.insert(Side::Clean, (3, 0), 2);
        // Record 0 is re-accessed: now the youngest.
        h.update(0, (9, 9));
        h.validate();
        assert_eq!(h.pop_min(Side::Clean), Some(((2, 0), 1)));
        assert_eq!(h.pop_min(Side::Clean), Some(((3, 0), 2)));
        assert_eq!(h.pop_min(Side::Clean), Some(((9, 9), 0)));
    }

    #[test]
    fn change_side_moves_between_heaps() {
        let mut h = DualHeap::new(4);
        h.insert(Side::Dirty, (1, 0), 0);
        h.insert(Side::Dirty, (2, 0), 1);
        // Record 0 was cleaned: it becomes a replacement candidate.
        h.change_side(0, Side::Clean);
        h.validate();
        assert_eq!(h.side_of(0), Some(Side::Clean));
        assert_eq!(h.peek_min(Side::Dirty), Some(((2, 0), 1)));
        assert_eq!(h.peek_min(Side::Clean), Some(((1, 0), 0)));
    }

    #[test]
    fn remove_middle_preserves_order() {
        let mut h = DualHeap::new(8);
        for (rec, k) in [(0, 4), (1, 2), (2, 6), (3, 1), (4, 5)] {
            h.insert(Side::Clean, (k, 0), rec);
        }
        assert_eq!(h.remove(2), Some(Side::Clean));
        assert_eq!(h.remove(2), None, "double remove is a no-op");
        h.validate();
        let mut popped = Vec::new();
        while let Some((k, _)) = h.pop_min(Side::Clean) {
            popped.push(k.0);
        }
        assert_eq!(popped, vec![1, 2, 4, 5]);
    }

    /// Model check: random insert/remove/update/pop against a sorted
    /// reference model, validating structure at every step. 64 seeded
    /// cases of up to 200 operations each.
    #[test]
    fn behaves_like_model() {
        use std::collections::BTreeSet;
        for case in 0u64..64 {
            let mut rng = SmallRng::seed_from_u64(0xD0A1_4EA9 ^ case);
            let n_ops = rng.gen_range(1usize..200);
            let cap = 16;
            let mut h = DualHeap::new(cap);
            // model[side] = set of (key, rec)
            let mut model: [BTreeSet<(Key, usize)>; 2] = [BTreeSet::new(), BTreeSet::new()];
            let side_ix = |s: Side| match s {
                Side::Clean => 0,
                Side::Dirty => 1,
            };

            for _ in 0..n_ops {
                let op = rng.gen_range(0u8..5);
                let rec = rng.gen_range(0usize..16);
                let k = rng.gen_range(0u64..50);
                let key = (k, k.wrapping_mul(7) % 13);
                let in_heap = h.side_of(rec);
                match op {
                    0 | 1 => {
                        // insert into clean/dirty
                        let side = if op == 0 { Side::Clean } else { Side::Dirty };
                        if in_heap.is_none() && model[0].len() + model[1].len() < cap {
                            h.insert(side, key, rec);
                            model[side_ix(side)].insert((key, rec));
                        }
                    }
                    2 => {
                        // remove
                        let removed = h.remove(rec);
                        if let Some(side) = removed {
                            let found = model[side_ix(side)]
                                .iter()
                                .find(|(_, r)| *r == rec)
                                .copied();
                            let found = found.expect("model misses removed record");
                            model[side_ix(side)].remove(&found);
                        } else {
                            assert!(in_heap.is_none());
                        }
                    }
                    3 => {
                        // update key
                        if let Some(side) = in_heap {
                            let old = model[side_ix(side)]
                                .iter()
                                .find(|(_, r)| *r == rec)
                                .copied()
                                .expect("model misses updated record");
                            model[side_ix(side)].remove(&old);
                            model[side_ix(side)].insert((key, rec));
                            h.update(rec, key);
                        }
                    }
                    _ => {
                        // pop min from a side chosen by parity of rec
                        let side = if rec % 2 == 0 {
                            Side::Clean
                        } else {
                            Side::Dirty
                        };
                        let got = h.pop_min(side);
                        let want = model[side_ix(side)].iter().next().copied();
                        match (got, want) {
                            (Some((gk, grec)), Some((wk, _))) => {
                                assert_eq!(gk, wk, "pop returned non-minimum");
                                // Remove the exact popped element from model.
                                let popped = model[side_ix(side)]
                                    .iter()
                                    .find(|(kk, rr)| *kk == gk && *rr == grec)
                                    .copied()
                                    .expect("popped element absent from model");
                                model[side_ix(side)].remove(&popped);
                            }
                            (None, None) => {}
                            _ => panic!("pop/model emptiness disagreement"),
                        }
                    }
                }
                h.validate();
                assert_eq!(h.len(Side::Clean), model[0].len());
                assert_eq!(h.len(Side::Dirty), model[1].len());
            }
        }
    }
}
