//! The SSD buffer-pool extension — the paper's primary contribution.
//!
//! An SSD manager sits between the main-memory buffer manager and the disk
//! manager (Figure 1 of *"Turbocharging DBMS Buffer Pool Using SSDs"*,
//! SIGMOD 2011) and caches pages evicted from the memory pool in a
//! page-sized-frame file on the SSD. Three designs differ in how they treat
//! *dirty* evicted pages:
//!
//! * **Clean-write (CW)** — dirty pages are never cached; the SSD only ever
//!   holds copies identical to disk.
//! * **Dual-write (DW)** — dirty pages are written to the SSD *and* the
//!   disk (write-through).
//! * **Lazy-cleaning (LC)** — dirty pages are written only to the SSD; a
//!   background cleaner copies them to disk later (write-back), and the
//!   sharp-checkpoint path must flush SSD-dirty pages.
//!
//! The crate also implements **TAC** (Temperature-Aware Caching, Canim et
//! al., VLDB 2010) as the comparison baseline, with its per-extent
//! temperature admission/replacement, write-on-read page flow and logical
//! invalidation.
//!
//! All §3 machinery is here too: the SSD buffer table / hash table / free
//! list / dual-ended clean+dirty heap array (Figure 4), LRU-2 replacement,
//! the random-only admission policy, aggressive filling (τ), SSD throttle
//! control (μ), multi-page I/O trimming, SSD partitioning (N), and group
//! cleaning (α) with the λ dirty-fraction threshold.

#![forbid(unsafe_code)]

pub mod audit;
pub mod cleaner;
pub mod coherence;
pub mod config;
pub mod heaps;
pub mod manager;
pub mod metrics;
pub mod pagebuf;
pub mod partition;
pub mod tac;

pub use audit::{AuditOp, FrameState, InvariantAuditor};
pub use cleaner::LazyCleaner;
pub use coherence::{classify, CoherenceCase, CoherenceViolation};
pub use config::{MultiPageMode, SsdConfig, SsdDesign};
pub use manager::{ImportReport, SsdManager};
pub use metrics::SsdMetrics;
pub use pagebuf::PageBufPool;
pub use tac::TacCache;
