//! SSD-manager configuration (the paper's Table 2 parameters, plus the
//! robustness extensions' retry / fail-slow / congestion knobs).

use turbopool_bufpool::{AdmissionKind, ShardCount};
use turbopool_iosim::RetryPolicy;

/// Which dirty-page design the SSD manager runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum SsdDesign {
    /// Never cache dirty pages (§2.3.1).
    CleanWrite,
    /// Write dirty evictions to SSD *and* disk — write-through (§2.3.2).
    DualWrite,
    /// Write dirty evictions to SSD only; clean lazily — write-back
    /// (§2.3.3).
    LazyCleaning,
    /// Temperature-Aware Caching baseline (Canim et al.; §2.5).
    Tac,
}

impl SsdDesign {
    /// Short label used by the benchmark harnesses ("DW", "LC", ...).
    pub fn label(self) -> &'static str {
        match self {
            SsdDesign::CleanWrite => "CW",
            SsdDesign::DualWrite => "DW",
            SsdDesign::LazyCleaning => "LC",
            SsdDesign::Tac => "TAC",
        }
    }
}

/// How multi-page read requests interact with SSD-resident pages (§3.3.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MultiPageMode {
    /// Trim leading/trailing SSD-resident pages, keep the middle as one
    /// disk I/O (the paper's final design).
    Trim,
    /// Split the request at every SSD-resident page (the paper's initial
    /// design, kept for the ablation — it was slower).
    Split,
    /// Ignore the SSD for multi-page reads entirely.
    DiskOnly,
}

/// All tunables of the SSD manager. Defaults are the paper's Table 2.
#[derive(Clone, Debug)]
pub struct SsdConfig {
    /// The design under test.
    pub design: SsdDesign,
    /// `S`: number of page-sized frames in the SSD buffer pool
    /// (18,350,080 = 140 GB in the paper).
    pub frames: u64,
    /// `τ`: aggressive-filling threshold as a fraction of `S` — until the
    /// SSD is this full, *every* evicted page is cached (§3.3.1).
    pub tau: f64,
    /// `μ`: throttle-control threshold — no optional SSD I/O is issued while
    /// the SSD queue is deeper than this (§3.3.2).
    pub mu: usize,
    /// `N`: number of SSD partitions (§3.3.4).
    pub partitions: usize,
    /// `α`: maximum dirty pages gathered into one group-cleaning write
    /// (§3.3.5).
    pub alpha: u64,
    /// `λ`: dirty fraction of SSD space above which the lazy cleaner runs
    /// (§2.3.3); 1% for TPC-E/H, 50% for TPC-C in the paper.
    pub lambda: f64,
    /// After a cleaning burst, dirty count is brought to `λ·S − slack·S`
    /// ("about 0.01% of the SSD space below the threshold").
    pub lambda_slack: f64,
    /// TAC extent size in pages (32 in the paper).
    pub tac_extent_pages: u64,
    /// Multi-page read handling.
    pub multipage: MultiPageMode,
    /// Warm restart (extension of the paper's §6 future work): persist the
    /// SSD buffer table in each checkpoint record and re-import still-valid
    /// entries after a crash, skipping the multi-hour SSD ramp-up.
    pub warm_restart: bool,
    /// Fault-tolerance extension: number of SSD I/O errors (transient,
    /// checksum, or device-dead) tolerated before the manager quarantines
    /// the SSD and degrades to the noSSD path. A `DeviceDead` error always
    /// quarantines immediately regardless of the remaining budget.
    /// Default 64: wide enough to ride out a transient-error storm, small
    /// enough that a persistently erroring device is retired quickly.
    pub ssd_error_budget: u64,
    /// Retry/backoff policy for the manager's synchronous I/O (attempt
    /// cap and exponential-backoff base/ceiling). Defaults to the
    /// crate-wide capped policy; see
    /// [`RetryPolicy`](turbopool_iosim::RetryPolicy).
    pub retry: RetryPolicy,
    /// Gray-failure extension: when the fail-slow detector flags the SSD
    /// degraded, serve SSD hits from the disk copy where one is valid
    /// (always for CW/DW, clean frames only for LC/TAC — a sole-copy
    /// dirty frame must still be read from the SSD) and stop admitting
    /// new pages until the device recovers. Default on.
    pub hedged_reads: bool,
    /// While hedging, every n-th hedge-eligible decision still goes to
    /// the SSD as a canary probe — a fully-hedged device would otherwise
    /// produce no more latency samples and the detector could never
    /// observe recovery. `0` disables probing (degraded mode then only
    /// clears via in-flight completions). Default 16.
    pub hedge_probe_interval: u64,
    /// Congestion-aware cleaning: the lazy cleaner skips a round when the
    /// disk group's queue depth exceeds this, so cleaning back-pressure
    /// never competes with foreground misses. Default 32 outstanding
    /// requests (4 per member of the paper's 8-disk group).
    pub cleaner_disk_queue_max: usize,
    /// Congestion-aware cleaning: with the disk queue at or below this
    /// depth the cleaner drains opportunistically even below the λ
    /// high-water mark. Default 1 (disk essentially idle).
    pub cleaner_idle_depth: usize,
    /// Hard ceiling on dirty SSD pages as a fraction of `S`: above it the
    /// cleaner ignores disk congestion, because unchecked dirty growth
    /// would strand the recovery path. Default 0.75.
    pub cleaner_dirty_ceiling: f64,
    /// Which admission policy qualifies pages for the SSD.
    /// [`AdmissionKind::DesignDefault`] is the paper's per-design rule
    /// (random-class-only for CW/DW/LC, extent temperature for TAC) and
    /// is regression-gated; the alternatives feed the policy-arena bench.
    pub admission: AdmissionKind,
    /// Lock stripes for the TAC buffer table (ISSUE 9). Routed by extent
    /// so temperature comparisons stay within one shard. `Auto` resolves
    /// against a hint of 1 here (= the legacy single latch); the engine
    /// resolves its `tac_shards`/`shard_hint` knobs into `Fixed(n)`
    /// before constructing the cache. Ignored by `SsdManager`, which has
    /// its own `partitions` striping (§3.3.4).
    pub tac_shards: ShardCount,
}

impl SsdConfig {
    /// Table 2 defaults with a caller-chosen design and frame count.
    pub fn new(design: SsdDesign, frames: u64) -> Self {
        SsdConfig {
            design,
            frames,
            tau: 0.95,
            mu: 100,
            partitions: 16,
            alpha: 32,
            lambda: 0.50,
            lambda_slack: 0.0001,
            tac_extent_pages: 32,
            multipage: MultiPageMode::Trim,
            warm_restart: false,
            ssd_error_budget: 64,
            retry: RetryPolicy::default(),
            hedged_reads: true,
            hedge_probe_interval: 16,
            cleaner_disk_queue_max: 32,
            cleaner_idle_depth: 1,
            cleaner_dirty_ceiling: 0.75,
            admission: AdmissionKind::DesignDefault,
            tac_shards: ShardCount::Auto,
        }
    }

    /// Absolute number of frames below which aggressive filling stops.
    pub fn fill_target(&self) -> u64 {
        (self.frames as f64 * self.tau) as u64
    }

    /// Absolute dirty-page count that triggers the lazy cleaner.
    pub fn dirty_high_water(&self) -> u64 {
        (self.frames as f64 * self.lambda) as u64
    }

    /// Absolute dirty-page count a cleaning burst drains down to.
    pub fn dirty_low_water(&self) -> u64 {
        let low = self.frames as f64 * (self.lambda - self.lambda_slack);
        low.max(0.0) as u64
    }

    /// Absolute dirty-page ceiling above which the cleaner ignores disk
    /// congestion (never below the λ high-water mark, so raising λ keeps
    /// the ceiling meaningful).
    pub fn dirty_ceiling(&self) -> u64 {
        let ceil = (self.frames as f64 * self.cleaner_dirty_ceiling) as u64;
        ceil.max(self.dirty_high_water())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SsdConfig::new(SsdDesign::LazyCleaning, 18_350_080);
        assert_eq!(c.tau, 0.95);
        assert_eq!(c.mu, 100);
        assert_eq!(c.partitions, 16);
        assert_eq!(c.alpha, 32);
        assert_eq!(c.fill_target(), 17_432_576);
        assert_eq!(c.dirty_high_water(), 9_175_040);
        assert!(c.dirty_low_water() < c.dirty_high_water());
        assert_eq!(c.retry, RetryPolicy::default());
        assert!(c.hedged_reads);
        assert_eq!(c.hedge_probe_interval, 16);
        assert_eq!(c.cleaner_disk_queue_max, 32);
        assert_eq!(c.cleaner_idle_depth, 1);
        assert!(c.dirty_ceiling() > c.dirty_high_water());
    }

    #[test]
    fn dirty_ceiling_never_below_high_water() {
        let mut c = SsdConfig::new(SsdDesign::LazyCleaning, 1000);
        c.lambda = 0.90;
        c.cleaner_dirty_ceiling = 0.75;
        assert_eq!(c.dirty_ceiling(), c.dirty_high_water());
    }

    #[test]
    fn labels() {
        assert_eq!(SsdDesign::CleanWrite.label(), "CW");
        assert_eq!(SsdDesign::DualWrite.label(), "DW");
        assert_eq!(SsdDesign::LazyCleaning.label(), "LC");
        assert_eq!(SsdDesign::Tac.label(), "TAC");
    }

    #[test]
    fn watermarks_never_negative() {
        let mut c = SsdConfig::new(SsdDesign::LazyCleaning, 100);
        c.lambda = 0.0;
        assert_eq!(c.dirty_low_water(), 0);
        assert_eq!(c.dirty_high_water(), 0);
    }
}
