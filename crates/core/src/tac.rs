//! Temperature-Aware Caching (TAC) — the comparison baseline (§2.5).
//!
//! TAC (Canim et al., "SSD Bufferpool Extensions for Database Systems",
//! VLDB 2010) differs from the CW/DW/LC designs in its page flow:
//!
//! 1. On a (memory-pool) miss the SSD is probed; hit → read from SSD.
//! 2. After a page is read from *disk*, it is immediately written to the
//!    SSD if admitted — admission compares the page's extent *temperature*
//!    against the coldest extent resident in the SSD.
//! 3. When a buffer-pool page is updated, the SSD copy is *logically*
//!    invalidated: marked invalid but the frame is not reclaimed.
//! 4. When a dirty page is evicted it is written to disk (write-through);
//!    if an invalid version sits in the SSD it is also rewritten there.
//!
//! Temperature is tracked per extent of 32 consecutive pages: every
//! memory-pool miss adds the time that would be saved by reading the page
//! from SSD instead of disk.
//!
//! Two behaviours the paper highlights are modeled explicitly:
//!
//! * **Write-on-read races** — the on-read SSD write is asynchronous; if a
//!   transaction dirties the page before that write completes, the write is
//!   cancelled and the page never reaches the SSD (and, having no invalid
//!   version there, is not written on eviction either). This is the latch
//!   contention effect of §2.5/§4.2.
//! * **Logical-invalidation waste** — invalid frames keep occupying SSD
//!   space ([`TacCache::invalid_frames`] reproduces the 7.4–10.4 GB waste
//!   numbers of §2.5).
//!
//! Since ISSUE 9 the buffer table is *lock-striped* (mirroring the
//! partition layout `SsdManager` has had since §3.3.4): N shards, routed
//! by **extent** hash so the temperature heap, extent table, and
//! coldest-extent comparisons all stay within one shard. Each shard owns
//! a contiguous range of global SSD frames, cross-shard totals fold in
//! shard order, and `shards = 1` reproduces the single-latch cache
//! bit-for-bit.

use std::collections::HashMap;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use turbopool_iosim::sync::{Mutex, MutexGuard};

use turbopool_bufpool::{shard_of, AdmissionKind, AdmissionPolicy, AdmitVerdict, PageIo};
use turbopool_iosim::{
    fault, Clk, IoError, IoErrorKind, IoManager, Locality, PageBuf, PageId, Time,
};

use crate::audit::{AuditOp, InvariantAuditor};
use crate::config::SsdConfig;
use crate::metrics::SsdMetrics;

#[derive(Debug, Clone, Copy)]
struct TacRec {
    pid: PageId,
    /// Logically valid (invalid frames waste space until rewritten).
    valid: bool,
    /// The asynchronous SSD write that installed this copy completes at
    /// this instant; a dirtying before then cancels the write.
    valid_at: Time,
}

/// One lock stripe of the TAC buffer table. Frame indices inside a shard
/// are *local* (`0 .. records.len()`); the global SSD frame number is
/// `base + local`.
struct TacShard {
    /// First global SSD frame owned by this shard (contiguous split).
    base: u64,
    /// `records[local]` — this shard's slice of the SSD buffer table.
    records: Vec<Option<TacRec>>,
    map: HashMap<PageId, usize>,
    free: Vec<usize>,
    /// Extent number → accumulated saved-time temperature (ns). Extents
    /// route whole to one shard, so comparisons never cross stripes.
    temps: HashMap<u64, u64>,
    /// Lazy min-heap of (temperature snapshot, local frame) over *valid*
    /// frames.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
    /// Occupied frames holding logically invalid pages — maintained
    /// incrementally so `invalid_frames` never scans the table.
    invalid: u64,
    /// This shard's share of the aggressive-filling target τ·S.
    fill_target: usize,
}

/// The TAC SSD cache, implementing the same [`PageIo`] seam as
/// [`crate::manager::SsdManager`].
pub struct TacCache {
    cfg: SsdConfig,
    io: Arc<IoManager>,
    shards: Vec<Mutex<TacShard>>,
    nshards: usize,
    /// True once the SSD has been quarantined; TAC then runs write-through
    /// to disk only (its natural degradation — nothing is ever stranded).
    quarantined: AtomicBool,
    /// SSD I/O errors observed, charged against `cfg.ssd_error_budget`.
    ssd_errors: AtomicU64,
    /// Degraded-mode decision counter driving canary probes (see
    /// [`TacCache::hedge_or_probe`]).
    probe_tick: AtomicU64,
    /// Non-default admission policies (`AdmitAll`, `GhostHit`) replace
    /// TAC's extent-temperature comparison; `DesignDefault` keeps the
    /// inline temperature rule (it needs the extent table) and never
    /// consults this object.
    admission: Box<dyn AdmissionPolicy>,
    pub metrics: SsdMetrics,
    /// Shadow state machine validating every buffer-table transition.
    auditor: InvariantAuditor,
}

impl TacCache {
    pub fn new(cfg: SsdConfig, io: Arc<IoManager>) -> Self {
        assert!(cfg.frames <= io.ssd_frames(), "SSD file too small");
        let frames = cfg.frames as usize;
        let admission = cfg.admission.build(frames);
        // `Auto` resolves against a hint of 1 (legacy single latch); the
        // engine pre-resolves its shard knobs into `Fixed(n)`.
        let nshards = cfg.tac_shards.resolve(1, frames.max(1));
        let fill_total = cfg.fill_target();
        let mut shards = Vec::with_capacity(nshards);
        let mut base = 0u64;
        for i in 0..nshards {
            let count = frames / nshards + usize::from(i < frames % nshards);
            shards.push(Mutex::new(TacShard {
                base,
                records: vec![None; count],
                map: HashMap::with_capacity(count),
                free: (0..count).rev().collect(),
                temps: HashMap::new(),
                heap: std::collections::BinaryHeap::new(),
                invalid: 0,
                fill_target: if frames == 0 {
                    0
                } else {
                    (fill_total * count as u64 / frames as u64) as usize
                },
            }));
            base += count as u64;
        }
        debug_assert_eq!(base, cfg.frames);
        TacCache {
            admission,
            cfg,
            io,
            shards,
            nshards,
            quarantined: AtomicBool::new(false),
            ssd_errors: AtomicU64::new(0),
            probe_tick: AtomicU64::new(0),
            metrics: SsdMetrics::default(),
            auditor: InvariantAuditor::new(crate::SsdDesign::Tac),
        }
    }

    /// Resolved shard count (for benches/tests).
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// Which shard owns `pid` — extents route whole so temperature
    /// comparisons stay within one stripe. A pure function of the page id.
    #[inline]
    fn shard_for(&self, pid: PageId) -> usize {
        shard_of(self.extent(pid), self.nshards)
    }

    /// Acquire shard `i`'s latch, counting the acquisition and whether it
    /// was contended (latch held by another OS thread at that instant).
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, TacShard> {
        SsdMetrics::bump(&self.metrics.shard_acquisitions);
        if let Some(g) = self.shards[i].try_lock() {
            return g;
        }
        SsdMetrics::bump(&self.metrics.shard_contended);
        self.shards[i].lock()
    }

    /// True once the SSD is quarantined and TAC runs disk-only.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Record one SSD I/O error; quarantine on device death or once the
    /// error budget is exhausted. Must not be called while a shard latch
    /// is held (quarantine re-locks the shards to sweep the table).
    fn note_ssd_error(&self, e: &IoError) {
        SsdMetrics::bump(&self.metrics.ssd_io_errors);
        if e.kind == IoErrorKind::ChecksumMismatch {
            SsdMetrics::bump(&self.metrics.checksum_misses);
        }
        let seen = self.ssd_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if e.kind == IoErrorKind::DeviceDead || seen > self.cfg.ssd_error_budget {
            self.quarantine();
        }
    }

    /// Drop the whole cache and refuse all future SSD traffic. TAC is
    /// write-through, so no data is lost — only hits. Shards are swept in
    /// shard order so the audit stream stays deterministic.
    fn quarantine(&self) {
        if self.quarantined.swap(true, Ordering::SeqCst) {
            return;
        }
        SsdMetrics::bump(&self.metrics.ssd_quarantined);
        let mut live: Vec<PageId> = Vec::new();
        for i in 0..self.nshards {
            let mut sh = self.lock_shard(i);
            live.extend(sh.records.iter().flatten().map(|r| r.pid));
            for rec in sh.records.iter_mut() {
                *rec = None;
            }
            sh.map.clear();
            sh.free.clear();
            sh.heap.clear();
            sh.temps.clear();
            sh.invalid = 0;
        }
        for pid in live {
            self.audit(pid, AuditOp::Quarantine);
            SsdMetrics::bump(&self.metrics.lost_frames);
        }
    }

    /// Drop `pid`'s SSD copy after a failed frame read. Write-through: the
    /// copy was never the only current version, so nothing is lost.
    fn drop_corrupt(&self, pid: PageId) {
        let mut sh = self.lock_shard(self.shard_for(pid));
        if let Some(local) = sh.map.remove(&pid) {
            // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
            let rec = sh.records[local].take().unwrap();
            if !rec.valid {
                sh.invalid -= 1;
            }
            sh.free.push(local);
            drop(sh);
            self.audit(pid, AuditOp::CorruptInvalidate);
            SsdMetrics::bump(&self.metrics.lost_frames);
        }
    }

    /// SSD frame read with transient-error retries on `clk`. `frame` is a
    /// *global* SSD frame number.
    fn ssd_read(&self, clk: &mut Clk, frame: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let (retries, out) =
            fault::retry_sync_with(&self.cfg.retry, clk, |c| self.io.read_ssd(c, frame, buf));
        SsdMetrics::add(&self.metrics.ssd_retries, u64::from(retries));
        out
    }

    /// Synchronous disk read with the standard capped-backoff retry policy.
    fn disk_read(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError> {
        let (retries, out) = fault::retry_sync_with(&self.cfg.retry, clk, |c| {
            self.io.read_disk(c, pid, buf, class)
        });
        SsdMetrics::add(&self.metrics.disk_retries, u64::from(retries));
        out
    }

    /// Asynchronous disk write that must not drop data (see
    /// `SsdManager::disk_write` for the policy).
    fn disk_write(&self, now: Time, pid: PageId, data: &[u8]) {
        if let Err(e) = fault::retry_write_forever(|| {
            self.io.write_disk_async(now, pid, data, Locality::Random)
        }) {
            debug_assert!(!e.is_transient());
        }
    }

    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Invariant violations caught so far (see [`InvariantAuditor`]).
    pub fn audit_violations(&self) -> u64 {
        self.auditor.violations()
    }

    /// Report a buffer-table transition to the auditor. Violations are
    /// counted in the metrics and abort debug builds immediately.
    fn audit(&self, pid: PageId, op: AuditOp) {
        if let Err(e) = self.auditor.observe(pid, op) {
            SsdMetrics::bump(&self.metrics.audit_violations);
            if cfg!(debug_assertions) {
                // lint: allow(panic) — the auditor's whole point: fail the
                // test run at the first illegal state-machine transition.
                panic!("SSD buffer-table invariant violated: {e} (pid {pid})");
            }
        }
    }

    /// Occupied frames (valid + invalid), folded in shard order.
    pub fn occupancy(&self) -> u64 {
        (0..self.nshards)
            .map(|i| self.lock_shard(i).map.len() as u64)
            .sum()
    }

    /// Frames wasted on logically invalid pages (§2.5) — O(shards), from
    /// the incrementally maintained per-shard counters.
    pub fn invalid_frames(&self) -> u64 {
        (0..self.nshards).map(|i| self.lock_shard(i).invalid).sum()
    }

    /// SSD frame holding a *valid* copy of `pid`, if any (introspection).
    pub fn frame_of_valid(&self, pid: PageId) -> Option<u64> {
        let sh = self.lock_shard(self.shard_for(pid));
        sh.map.get(&pid).and_then(|&l| {
            // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
            let rec = sh.records[l].unwrap();
            rec.valid.then_some(sh.base + l as u64)
        })
    }

    /// True if `pid` has a valid SSD copy.
    pub fn contains_valid(&self, pid: PageId) -> bool {
        let sh = self.lock_shard(self.shard_for(pid));
        sh.map
            .get(&pid)
            // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
            .map(|&l| sh.records[l].unwrap().valid)
            .unwrap_or(false)
    }

    fn extent(&self, pid: PageId) -> u64 {
        pid.0 / self.cfg.tac_extent_pages
    }

    /// Time saved by serving `class`-type read from SSD instead of disk.
    fn saved_ns(&self, class: Locality) -> u64 {
        let setup = self.io.setup();
        let disk = match class {
            Locality::Random => setup.disk_profile.rand_read_ns,
            Locality::Sequential => setup.disk_profile.seq_read_ns,
        };
        disk.saturating_sub(setup.ssd_profile.rand_read_ns)
    }

    fn throttled(&self, now: Time) -> bool {
        self.io.ssd_overloaded(now, self.cfg.mu)
    }

    /// Gray-failure hedging: TAC is write-through, so every SSD copy has
    /// a current disk twin and *all* SSD traffic (reads, admissions, and
    /// refreshes) can divert to disk while the device is flagged
    /// fail-slow — there is no sole-copy exception to honor.
    fn ssd_degraded(&self) -> bool {
        self.cfg.hedged_reads && self.io.ssd_slow()
    }

    /// Should this hedge-eligible decision divert away from the SSD?
    /// Every `cfg.hedge_probe_interval`-th degraded decision is let
    /// through as a canary probe so the fail-slow detector keeps
    /// receiving samples and can observe recovery; while the detector
    /// reports `clearing`, every decision probes to confirm (mirrors
    /// `SsdManager::hedge_or_probe`).
    fn hedge_or_probe(&self) -> bool {
        if !self.ssd_degraded() {
            return false;
        }
        if self.io.ssd_clearing() {
            return false;
        }
        let n = self.cfg.hedge_probe_interval;
        if n == 0 {
            return true;
        }
        let t = self.probe_tick.fetch_add(1, Ordering::Relaxed);
        t % n != n - 1
    }

    /// Record a memory-pool miss of `pid`: heat its extent.
    fn heat(&self, sh: &mut TacShard, pid: PageId, class: Locality) {
        let e = self.extent(pid);
        let saved = self.saved_ns(class);
        *sh.temps.entry(e).or_insert(0) += saved;
    }

    /// Find the coldest valid SSD frame in this shard: pop the lazy heap,
    /// reinserting entries whose temperature grew since they were pushed
    /// (temperatures only increase, so this terminates).
    fn pop_coldest_valid(&self, sh: &mut TacShard) -> Option<(u64, usize)> {
        while let Some(std::cmp::Reverse((snap, frame))) = sh.heap.pop() {
            let Some(rec) = sh.records[frame] else {
                continue;
            };
            if !rec.valid {
                continue;
            }
            let cur = *sh.temps.get(&self.extent(rec.pid)).unwrap_or(&0);
            if cur != snap {
                sh.heap.push(std::cmp::Reverse((cur, frame)));
                continue;
            }
            return Some((snap, frame));
        }
        None
    }

    /// Admit `pid` (already read from disk) into the SSD at `now`,
    /// following TAC's admission/replacement rule.
    /// Free a frame for a qualified admission: take a free frame if one
    /// exists, else replace the coldest valid resident page. Used by the
    /// non-default admission kinds, which decide *whether* to admit
    /// without consulting temperature but still evict coldest-first.
    fn place_replacing_coldest(&self, sh: &mut TacShard) -> Option<usize> {
        if let Some(f) = sh.free.pop() {
            return Some(f);
        }
        let (_cold, cold_frame) = self.pop_coldest_valid(sh)?;
        // lint: allow(panic) — cold_frame came off the temperature heap, which only holds mapped frames.
        let old = sh.records[cold_frame].take().unwrap();
        sh.map.remove(&old.pid);
        self.audit(old.pid, AuditOp::Replace);
        SsdMetrics::bump(&self.metrics.replacements);
        self.admission.note_evicted(old.pid);
        Some(cold_frame)
    }

    fn admit_on_read(&self, now: Time, pid: PageId, data: &[u8], class: Locality) {
        if self.is_quarantined() {
            return;
        }
        if self.throttled(now) {
            SsdMetrics::bump(&self.metrics.throttled_admissions);
            return;
        }
        if self.hedge_or_probe() {
            SsdMetrics::bump(&self.metrics.hedged_admissions);
            return;
        }
        let shard = self.shard_for(pid);
        let mut sh = self.lock_shard(shard);
        if sh.map.contains_key(&pid) {
            return;
        }
        let filling = sh.map.len() < sh.fill_target;
        let frame = match self.cfg.admission {
            AdmissionKind::DesignDefault => {
                if filling {
                    // Aggressive filling: admit everything while below τ.
                    sh.free.pop()
                } else {
                    // Qualified admission: the page's extent must be hotter
                    // than the coldest extent resident in the SSD (shard —
                    // extents route whole, so the comparison set is exactly
                    // the extents this page competes with).
                    let my_temp = *sh.temps.get(&self.extent(pid)).unwrap_or(&0);
                    match self.pop_coldest_valid(&mut sh) {
                        Some((cold, cold_frame)) if my_temp > cold => {
                            if let Some(f) = sh.free.pop() {
                                // A free frame exists; keep the cold page.
                                sh.heap.push(std::cmp::Reverse((cold, cold_frame)));
                                Some(f)
                            } else {
                                // lint: allow(panic) — cold_frame came off the temperature heap, which only holds mapped frames.
                                let old = sh.records[cold_frame].take().unwrap();
                                sh.map.remove(&old.pid);
                                self.audit(old.pid, AuditOp::Replace);
                                SsdMetrics::bump(&self.metrics.replacements);
                                Some(cold_frame)
                            }
                        }
                        Some((cold, cold_frame)) => {
                            // Not hot enough; put the candidate back.
                            sh.heap.push(std::cmp::Reverse((cold, cold_frame)));
                            SsdMetrics::bump(&self.metrics.policy_rejections);
                            None
                        }
                        // No valid page to compare against: admit if space
                        // exists.
                        None => sh.free.pop(),
                    }
                }
            }
            AdmissionKind::AdmitAll | AdmissionKind::GhostHit => {
                let verdict = self.admission.admit(pid, class, filling);
                match verdict {
                    AdmitVerdict::Admit => self.place_replacing_coldest(&mut sh),
                    AdmitVerdict::AdmitGhost => {
                        SsdMetrics::bump(&self.metrics.admission_ghost_hits);
                        self.place_replacing_coldest(&mut sh)
                    }
                    AdmitVerdict::Reject => {
                        SsdMetrics::bump(&self.metrics.policy_rejections);
                        None
                    }
                }
            }
        };
        let Some(frame) = frame else { return };
        let global = sh.base + frame as u64;
        // Reserve the frame and submit the write *outside* the latch: the
        // frame is in neither the free list nor the map, so no other path
        // can claim it while the latch is released. Install only on a
        // successful submission — a gate failure (dead or transient) must
        // not leave a record pointing at unwritten bytes.
        drop(sh);
        let done = match self.io.write_ssd_async(now, global, data, pid) {
            Ok(t) => t,
            Err(e) => {
                self.lock_shard(shard).free.push(frame);
                self.note_ssd_error(&e);
                return;
            }
        };
        let mut sh = self.lock_shard(shard);
        if sh.map.contains_key(&pid) {
            // Lost a race: another admission installed `pid` while the
            // latch was released. The submitted write is a harmless booking
            // against a frame that goes straight back to the free list.
            sh.free.push(frame);
            return;
        }
        sh.records[frame] = Some(TacRec {
            pid,
            valid: true,
            valid_at: done,
        });
        sh.map.insert(pid, frame);
        let temp = *sh.temps.get(&self.extent(pid)).unwrap_or(&0);
        sh.heap.push(std::cmp::Reverse((temp, frame)));
        self.audit(pid, AuditOp::Admit { dirty: false });
        SsdMetrics::bump(&self.metrics.admissions);
        if filling {
            SsdMetrics::bump(&self.metrics.fill_admissions);
        }
    }

    /// Extent temperature accessor for unit tests.
    #[cfg(test)]
    fn extent_temp(&self, extent: u64) -> u64 {
        let sh = self.lock_shard(shard_of(extent, self.nshards));
        *sh.temps.get(&extent).unwrap_or(&0)
    }
}

impl PageIo for TacCache {
    fn read_page(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError> {
        if self.is_quarantined() {
            SsdMetrics::bump(&self.metrics.quarantined_reads);
            SsdMetrics::bump(&self.metrics.ssd_misses);
            return self.disk_read(clk, pid, class, buf);
        }
        let hit: Option<u64> = {
            let mut sh = self.lock_shard(self.shard_for(pid));
            // Every memory-pool miss heats the extent, wherever it is
            // served from.
            self.heat(&mut sh, pid, class);
            match sh.map.get(&pid) {
                Some(&local) => {
                    // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
                    let rec = sh.records[local].unwrap();
                    // The copy must be valid AND its installing write
                    // complete; a usable hit still diverts to disk under
                    // throttle (§3.3.2) or a fail-slow flag (hedging).
                    if rec.valid && clk.now >= rec.valid_at {
                        if self.throttled(clk.now) {
                            SsdMetrics::bump(&self.metrics.throttled_reads);
                            None
                        } else if self.hedge_or_probe() {
                            SsdMetrics::bump(&self.metrics.hedged_reads);
                            None
                        } else {
                            Some(sh.base + local as u64)
                        }
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(frame) = hit {
            match self.ssd_read(clk, frame, buf) {
                Ok(()) => {
                    SsdMetrics::bump(&self.metrics.ssd_hits);
                    return Ok(());
                }
                Err(e) => {
                    // Write-through: the disk copy is current, so a bad
                    // frame just costs the hit — drop it and fall through.
                    self.note_ssd_error(&e);
                    self.drop_corrupt(pid);
                }
            }
        }
        SsdMetrics::bump(&self.metrics.ssd_misses);
        self.disk_read(clk, pid, class, buf)?;
        // TAC writes the page to the SSD immediately after the disk read
        // (§2.5 page flow, step ii).
        self.admit_on_read(clk.now, pid, buf, class);
        Ok(())
    }

    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<Vec<PageBuf>, IoError> {
        // Multi-page reads use the same leading/trailing trim as the other
        // designs (§3.3 optimizations were applied to TAC too). Run pages
        // are sequential, hence cold — TAC does not admit them on read.
        assert!(n > 0);
        if self.is_quarantined() {
            SsdMetrics::bump(&self.metrics.quarantined_reads);
        }
        let ps = self.io.page_size();
        let mut out: Vec<PageBuf> = (0..n).map(|_| PageBuf::zeroed(ps)).collect();
        let now0 = clk.now;
        let mut done = now0;
        let hedging = self.hedge_or_probe();
        let throttled = self.throttled(now0) || hedging;
        // Per-page status probe: each page's shard is locked in run order
        // (one at a time — never two shard latches together).
        let status: Vec<Option<u64>> = (0..n)
            .map(|i| {
                let pid = first.offset(i);
                let sh = self.lock_shard(self.shard_for(pid));
                sh.map.get(&pid).and_then(|&l| {
                    // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
                    let rec = sh.records[l].unwrap();
                    let usable = rec.valid && now0 >= rec.valid_at;
                    if usable && hedging {
                        SsdMetrics::bump(&self.metrics.hedged_reads);
                    }
                    (usable && !throttled).then_some(sh.base + l as u64)
                })
            })
            .collect();
        let mut lead = 0usize;
        while lead < n as usize && status[lead].is_some() {
            lead += 1;
        }
        let mut trail = 0usize;
        while trail < n as usize - lead && status[n as usize - 1 - trail].is_some() {
            trail += 1;
        }
        let mid = lead..(n as usize - trail);
        if !mid.is_empty() {
            let mut tmp = Clk::at(now0);
            let (retries, res) = fault::retry_sync_with(&self.cfg.retry, &mut tmp, |c| {
                self.io.read_disk_run(
                    c,
                    first.offset(mid.start as u64),
                    mid.len() as u64,
                    Locality::Sequential,
                )
            });
            SsdMetrics::add(&self.metrics.disk_retries, u64::from(retries));
            let pages = res?;
            done = done.max(tmp.now);
            for (k, page) in pages.into_iter().enumerate() {
                let pid = first.offset((mid.start + k) as u64);
                // TAC's write-on-read applies to every page it reads;
                // during aggressive filling even sequential pages are
                // admitted ("before the SSD is full, all pages are
                // admitted"). After filling, cold extents are rejected by
                // the temperature rule inside.
                self.admit_on_read(tmp.now, pid, page.as_slice(), Locality::Sequential);
                out[mid.start + k] = page;
            }
        }
        for i in (0..lead).chain(n as usize - trail..n as usize) {
            // lint: allow(panic) — lead/trail indices were counted as Some in the pass above.
            let frame = status[i].unwrap();
            let pid = first.offset(i as u64);
            let mut tmp = Clk::at(now0);
            match self.ssd_read(&mut tmp, frame, out[i].as_mut_slice()) {
                Ok(()) => {
                    done = done.max(tmp.now);
                    SsdMetrics::bump(&self.metrics.ssd_hits);
                }
                Err(e) => {
                    // Same fallback as read_page: drop the bad frame and
                    // fetch the current disk copy instead.
                    self.note_ssd_error(&e);
                    self.drop_corrupt(pid);
                    let mut tmp = Clk::at(now0);
                    let (retries, res) = fault::retry_sync_with(&self.cfg.retry, &mut tmp, |c| {
                        self.io
                            .read_disk(c, pid, out[i].as_mut_slice(), Locality::Sequential)
                    });
                    SsdMetrics::add(&self.metrics.disk_retries, u64::from(retries));
                    res?;
                    done = done.max(tmp.now);
                }
            }
        }
        clk.wait_until(done);
        Ok(out)
    }

    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, _class: Locality) {
        if !dirty {
            // Clean pages were already written on read; nothing happens.
            return;
        }
        // Write-through to disk, as in a traditional DBMS. This write must
        // not drop data, so it rides the retry-forever policy.
        self.disk_write(now, pid, data);
        if self.is_quarantined() {
            return;
        }
        // The disk copy just advanced, so ANY existing SSD version of this
        // page is now stale and must be refreshed (flow iv) or dropped.
        // The invalid case is the paper's flow; a *valid* record can also
        // be stale here: a run-read admitted the disk version while this
        // newer copy sat dirty in the memory pool (scan read-ahead does
        // exactly that), and keeping it would serve lost updates.
        let mut pending: Option<IoError> = None;
        {
            let mut sh = self.lock_shard(self.shard_for(pid));
            if let Some(&frame) = sh.map.get(&pid) {
                // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
                let rec = sh.records[frame].unwrap();
                let hedging = !self.throttled(now) && self.hedge_or_probe();
                if hedging {
                    // No refresh traffic to a browned-out SSD.
                    SsdMetrics::bump(&self.metrics.hedged_admissions);
                }
                if !self.throttled(now) && !hedging {
                    let global = sh.base + frame as u64;
                    // lint: allow(lock-across-io) — the refresh-or-invalidate
                    // decision must be atomic with the record's state, and
                    // write_ssd_async is an O(1) non-blocking booking; no
                    // other latch is ever taken under the shard latch.
                    match self.io.write_ssd_async(now, global, data, pid) {
                        Ok(done) => {
                            sh.records[frame] = Some(TacRec {
                                pid,
                                valid: true,
                                valid_at: done,
                            });
                            if !rec.valid {
                                sh.invalid -= 1;
                            }
                            let temp = *sh.temps.get(&self.extent(pid)).unwrap_or(&0);
                            sh.heap.push(std::cmp::Reverse((temp, frame)));
                            self.audit(pid, AuditOp::Refresh);
                            if !rec.valid {
                                SsdMetrics::bump(&self.metrics.admissions);
                            }
                        }
                        Err(e) => {
                            // Refresh failed: the SSD version (if valid) is
                            // now stale and must never be read again.
                            if rec.valid {
                                sh.records[frame] = Some(TacRec {
                                    valid: false,
                                    ..rec
                                });
                                sh.invalid += 1;
                                self.audit(pid, AuditOp::LogicalInvalidate);
                                SsdMetrics::bump(&self.metrics.invalidations);
                            }
                            pending = Some(e);
                        }
                    }
                } else if rec.valid {
                    // Cannot rewrite under throttle or brownout: invalidate
                    // so the stale version can never be read.
                    sh.records[frame] = Some(TacRec {
                        valid: false,
                        ..rec
                    });
                    sh.invalid += 1;
                    self.audit(pid, AuditOp::LogicalInvalidate);
                    SsdMetrics::bump(&self.metrics.invalidations);
                }
            }
        }
        if let Some(e) = pending {
            self.note_ssd_error(&e);
        }
    }

    fn note_dirtied(&self, now: Time, pid: PageId) {
        let mut sh = self.lock_shard(self.shard_for(pid));
        if let Some(&frame) = sh.map.get(&pid) {
            // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
            let rec = sh.records[frame].unwrap();
            if rec.valid {
                if now < rec.valid_at {
                    // The on-read SSD write had not completed: it is
                    // cancelled outright; the page never reaches the SSD
                    // (the §4.2 race that hurts TAC on update-heavy loads).
                    sh.records[frame] = None;
                    sh.map.remove(&pid);
                    sh.free.push(frame);
                    self.audit(pid, AuditOp::Cancel);
                    SsdMetrics::bump(&self.metrics.tac_cancelled_writes);
                } else {
                    // Logical invalidation: the frame stays occupied.
                    sh.records[frame] = Some(TacRec {
                        valid: false,
                        ..rec
                    });
                    sh.invalid += 1;
                    self.audit(pid, AuditOp::LogicalInvalidate);
                    SsdMetrics::bump(&self.metrics.invalidations);
                }
            }
        }
    }

    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], _class: Locality) -> Time {
        let done = match fault::retry_write_forever(|| {
            self.io.write_disk_async(now, pid, data, Locality::Random)
        }) {
            Ok(t) => t,
            Err(_) => now,
        };
        if self.is_quarantined() {
            return done;
        }
        // Same stale-version refresh/invalidate as the eviction flow: the
        // disk copy advances here, so no older SSD version may stay valid.
        let mut pending: Option<IoError> = None;
        {
            let mut sh = self.lock_shard(self.shard_for(pid));
            if let Some(&frame) = sh.map.get(&pid) {
                // lint: allow(panic) — map/records consistency: a mapped frame always holds a record.
                let rec = sh.records[frame].unwrap();
                let hedging = !self.throttled(now) && self.hedge_or_probe();
                if hedging {
                    // No refresh traffic to a browned-out SSD.
                    SsdMetrics::bump(&self.metrics.hedged_admissions);
                }
                if !self.throttled(now) && !hedging {
                    let global = sh.base + frame as u64;
                    // lint: allow(lock-across-io) — the refresh-or-invalidate
                    // decision must be atomic with the record's state, and
                    // write_ssd_async is an O(1) non-blocking booking; no
                    // other latch is ever taken under the shard latch.
                    match self.io.write_ssd_async(now, global, data, pid) {
                        Ok(wdone) => {
                            sh.records[frame] = Some(TacRec {
                                pid,
                                valid: true,
                                valid_at: wdone,
                            });
                            if !rec.valid {
                                sh.invalid -= 1;
                            }
                            let temp = *sh.temps.get(&self.extent(pid)).unwrap_or(&0);
                            sh.heap.push(std::cmp::Reverse((temp, frame)));
                            self.audit(pid, AuditOp::Refresh);
                        }
                        Err(e) => {
                            if rec.valid {
                                sh.records[frame] = Some(TacRec {
                                    valid: false,
                                    ..rec
                                });
                                sh.invalid += 1;
                                self.audit(pid, AuditOp::LogicalInvalidate);
                                SsdMetrics::bump(&self.metrics.invalidations);
                            }
                            pending = Some(e);
                        }
                    }
                } else if rec.valid {
                    // Cannot rewrite under throttle or brownout: invalidate
                    // so the stale version can never be read.
                    sh.records[frame] = Some(TacRec {
                        valid: false,
                        ..rec
                    });
                    sh.invalid += 1;
                    self.audit(pid, AuditOp::LogicalInvalidate);
                    SsdMetrics::bump(&self.metrics.invalidations);
                }
            }
        }
        if let Some(e) = pending {
            self.note_ssd_error(&e);
        }
        done
    }

    fn has_copy(&self, pid: PageId) -> bool {
        self.lock_shard(self.shard_for(pid)).map.contains_key(&pid)
    }

    fn checkpoint_flush(&self, _clk: &mut Clk) {
        // Write-through: the SSD never holds the only current copy.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_bufpool::ShardCount;
    use turbopool_iosim::DeviceSetup;

    const PS: usize = 32;

    fn mk(frames: u64) -> (Arc<IoManager>, TacCache) {
        mk_sharded(frames, ShardCount::Fixed(1))
    }

    fn mk_sharded(frames: u64, shards: ShardCount) -> (Arc<IoManager>, TacCache) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 4096, frames)));
        let mut cfg = SsdConfig::new(crate::SsdDesign::Tac, frames);
        cfg.tac_extent_pages = 4;
        cfg.tau = 1.0; // fill every frame before qualified admission starts
        cfg.tac_shards = shards;
        (Arc::clone(&io), TacCache::new(cfg, io))
    }

    fn read(t: &TacCache, clk: &mut Clk, pid: u64) -> u8 {
        let mut buf = vec![0u8; PS];
        t.read_page(clk, PageId(pid), Locality::Random, &mut buf)
            .unwrap();
        buf[0]
    }

    #[test]
    fn write_on_read_then_hit() {
        let (io, t) = mk(8);
        io.write_disk_async(0, PageId(3), &[7u8; PS], Locality::Random)
            .unwrap();
        let mut clk = Clk::new();
        read(&t, &mut clk, 3);
        assert!(t.contains_valid(PageId(3)), "admitted immediately on read");
        // Let the in-flight SSD write complete before re-reading.
        clk.elapse(turbopool_iosim::SECOND);
        let disk_reads = io.disk_stats().read_ops;
        assert_eq!(read(&t, &mut clk, 3), 7);
        assert_eq!(io.disk_stats().read_ops, disk_reads, "second read hit SSD");
        assert_eq!(t.metrics.snapshot().ssd_hits, 1);
    }

    #[test]
    fn dirtying_before_write_completes_cancels_admission() {
        let (_io, t) = mk(8);
        let mut clk = Clk::new();
        read(&t, &mut clk, 3);
        // The SSD write takes ~80 us; dirty the page "immediately".
        t.note_dirtied(clk.now, PageId(3));
        assert!(!t.contains_valid(PageId(3)));
        assert_eq!(t.occupancy(), 0, "cancelled write frees the frame");
        assert_eq!(t.metrics.snapshot().tac_cancelled_writes, 1);
        // Dirty eviction now finds NO invalid version: page skips the SSD.
        t.evict_page(clk.now + 1, PageId(3), &[9u8; PS], true, Locality::Random);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn late_dirtying_invalidates_logically_and_wastes_space() {
        let (_io, t) = mk(8);
        let mut clk = Clk::new();
        read(&t, &mut clk, 3);
        clk.elapse(turbopool_iosim::SECOND); // write long complete
        t.note_dirtied(clk.now, PageId(3));
        assert!(!t.contains_valid(PageId(3)));
        assert_eq!(t.occupancy(), 1, "frame still occupied");
        assert_eq!(t.invalid_frames(), 1);
        // Dirty eviction refreshes the invalid version.
        t.evict_page(clk.now, PageId(3), &[9u8; PS], true, Locality::Random);
        assert!(t.contains_valid(PageId(3)));
        assert_eq!(t.invalid_frames(), 0);
    }

    #[test]
    fn temperature_guides_replacement() {
        let (_io, t) = mk(2);
        let mut clk = Clk::new();
        // Extent 0 (pids 0..4) becomes hot: many misses.
        read(&t, &mut clk, 0);
        read(&t, &mut clk, 1); // fills both frames (extent 0)
                               // pid 8 (extent 2) read repeatedly heats extent 2 hugely.
        clk.elapse(turbopool_iosim::SECOND);
        for _ in 0..10 {
            read(&t, &mut clk, 8);
            t.note_dirtied(clk.now, PageId(8)); // keep it out of the SSD...
            clk.elapse(turbopool_iosim::SECOND);
        }
        // By now extent 2 is far hotter than extent 0; a fresh read of pid
        // 9 (extent 2) replaces a cold extent-0 page.
        read(&t, &mut clk, 9);
        assert!(t.contains_valid(PageId(9)));
        assert_eq!(t.metrics.snapshot().replacements, 1);
    }

    #[test]
    fn sequential_extents_stay_cold() {
        let (_io, t) = mk(4);
        // Sequential reads save (almost) nothing, so they add no heat.
        {
            let mut clk = Clk::new();
            let mut buf = vec![0u8; PS];
            t.read_page(&mut clk, PageId(100), Locality::Sequential, &mut buf)
                .unwrap();
        }
        // Disk seq read (38 us) is FASTER than SSD random read (82 us):
        // saved time clamps to zero.
        assert_eq!(t.extent_temp(100 / 4), 0);
        let mut clk = Clk::new();
        let mut buf = vec![0u8; PS];
        t.read_page(&mut clk, PageId(200), Locality::Random, &mut buf)
            .unwrap();
        let temp = t.extent_temp(200 / 4);
        assert!(temp > 800_000, "random miss heats extent: {temp}");
    }

    #[test]
    fn run_trim_uses_valid_ssd_pages() {
        let (io, t) = mk(8);
        let mut clk = Clk::new();
        // Put pages 0 and 1 into the SSD via reads, long ago.
        read(&t, &mut clk, 0);
        read(&t, &mut clk, 1);
        clk.elapse(turbopool_iosim::SECOND);
        io.reset_stats();
        let pages = t.read_run(&mut clk, PageId(0), 6).unwrap();
        assert_eq!(pages.len(), 6);
        assert_eq!(io.ssd_stats().read_ops, 2, "leading pages trimmed to SSD");
        assert_eq!(io.disk_stats().read_pages, 4);
    }

    #[test]
    fn sharded_tac_round_trips_across_extents() {
        let (io, t) = mk_sharded(16, ShardCount::Fixed(4));
        assert_eq!(t.shard_count(), 4);
        for p in 0..16u64 {
            io.write_disk_async(0, PageId(p), &[p as u8 + 1; PS], Locality::Random)
                .unwrap();
        }
        let mut clk = Clk::new();
        // Extents are 4 pages wide; 16 pages span 4 extents spread over
        // the shards.
        for p in 0..16u64 {
            assert_eq!(read(&t, &mut clk, p), p as u8 + 1);
        }
        clk.elapse(turbopool_iosim::SECOND);
        let before_hits = t.metrics.snapshot().ssd_hits;
        for p in 0..16u64 {
            assert_eq!(read(&t, &mut clk, p), p as u8 + 1, "page {p}");
        }
        assert!(
            t.metrics.snapshot().ssd_hits > before_hits,
            "re-reads served from the sharded SSD table"
        );
        let s = t.metrics.snapshot();
        assert!(s.shard_acquisitions > 0);
        assert_eq!(s.shard_contended, 0, "single-threaded: never contended");
        // Invalidation bookkeeping stays consistent across shards.
        t.note_dirtied(clk.now, PageId(5));
        assert_eq!(t.invalid_frames(), 1);
        t.evict_page(clk.now, PageId(5), &[0xAA; PS], true, Locality::Random);
        assert_eq!(t.invalid_frames(), 0);
    }

    #[test]
    fn sharded_quarantine_sweeps_every_stripe() {
        let (io, t) = mk_sharded(16, ShardCount::Fixed(4));
        let mut clk = Clk::new();
        for p in 0..8u64 {
            read(&t, &mut clk, p);
        }
        assert_eq!(t.occupancy(), 8);
        clk.elapse(turbopool_iosim::SECOND);
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(99)));
        io.set_ssd_fault(Some(Arc::clone(&plan)));
        plan.kill(clk.now);
        let _ = read(&t, &mut clk, 0);
        assert!(t.is_quarantined());
        assert_eq!(t.occupancy(), 0, "all stripes swept");
        assert_eq!(t.invalid_frames(), 0);
        assert_eq!(t.metrics.snapshot().lost_frames, 8);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use turbopool_iosim::fault::{FaultConfig, FaultPlan};

    #[test]
    fn tac_death_quarantines_without_data_loss() {
        let (io, t) = mk(8);
        io.write_disk_async(0, PageId(3), &[7u8; PS], Locality::Random)
            .unwrap();
        let mut clk = Clk::new();
        read(&t, &mut clk, 3);
        clk.elapse(turbopool_iosim::SECOND);
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(11)));
        io.set_ssd_fault(Some(Arc::clone(&plan)));
        plan.kill(clk.now);
        // Write-through: the disk copy is current, so the dead SSD only
        // costs the hit.
        assert_eq!(read(&t, &mut clk, 3), 7);
        assert!(t.is_quarantined());
        assert_eq!(t.occupancy(), 0);
        let s = t.metrics.snapshot();
        assert_eq!(s.ssd_quarantined, 1);
        assert_eq!(s.lost_frames, 1);
        assert_eq!(s.stranded_dirty, 0, "TAC never strands: write-through");
        // Dirty evictions still reach the disk after quarantine.
        t.evict_page(clk.now, PageId(3), &[9u8; PS], true, Locality::Random);
        clk.elapse(turbopool_iosim::SECOND);
        assert_eq!(read(&t, &mut clk, 3), 9);
        assert!(t.metrics.snapshot().quarantined_reads >= 1);
    }

    #[test]
    fn tac_torn_ssd_write_is_caught_by_checksum() {
        let (io, t) = mk(8);
        io.write_disk_async(0, PageId(5), &[3u8; PS], Locality::Random)
            .unwrap();
        // Every SSD write tears from here on (prefix-only persistence).
        let mut cfg = FaultConfig::quiet(12);
        cfg.torn_write_prob = 1.0;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(cfg))));
        let mut clk = Clk::new();
        // The on-read admission write is torn...
        assert_eq!(read(&t, &mut clk, 5), 3);
        assert!(t.contains_valid(PageId(5)));
        clk.elapse(turbopool_iosim::SECOND);
        // ...so the next read fails verification and falls back to disk.
        assert_eq!(read(&t, &mut clk, 5), 3);
        let s = t.metrics.snapshot();
        assert_eq!(s.checksum_misses, 1);
        assert!(!t.is_quarantined());
    }
}
