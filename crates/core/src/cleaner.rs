//! The lazy-cleaning background thread (§2.3.3, §3.3.5).
//!
//! The cleaner wakes when the number of dirty SSD pages exceeds the λ
//! high-water mark and flushes group-cleaning batches until the count drops
//! slightly below it (the paper drains to about 0.01% of the SSD below λ).
//! In the discrete-event driver the cleaner is a pseudo-client: each call
//! to [`LazyCleaner::step`] performs at most one batch on the cleaner's own
//! virtual clock, so its I/O competes with foreground transactions for
//! device time — which is exactly the throughput cliff of Figure 6.

use std::sync::Arc;

use turbopool_iosim::{Clk, Time, MILLISECOND};

use crate::manager::SsdManager;

/// What a cleaner step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerStep {
    /// Dirty count was at or below the high-water mark; nothing done. The
    /// caller should sleep for [`LazyCleaner::poll_interval`].
    Idle,
    /// One group-cleaning batch of this many pages was flushed.
    Cleaned(usize),
}

/// Driver-facing handle for the LC cleaner thread.
pub struct LazyCleaner {
    mgr: Arc<SsdManager>,
    /// Keep cleaning until the dirty count reaches this (λ − slack).
    low_water: u64,
    /// Wake-up threshold (λ).
    high_water: u64,
    /// Below the high-water mark we are draining toward the low-water mark.
    draining: bool,
}

impl LazyCleaner {
    pub fn new(mgr: Arc<SsdManager>) -> Self {
        let cfg = mgr.config();
        LazyCleaner {
            low_water: cfg.dirty_low_water(),
            high_water: cfg.dirty_high_water(),
            mgr,
            draining: false,
        }
    }

    /// How long the cleaner sleeps between polls when idle.
    pub fn poll_interval(&self) -> Time {
        100 * MILLISECOND
    }

    /// Run at most one cleaning batch.
    pub fn step(&mut self, clk: &mut Clk) -> CleanerStep {
        let dirty = self.mgr.dirty_count();
        if self.draining {
            if dirty <= self.low_water {
                self.draining = false;
                return CleanerStep::Idle;
            }
        } else if dirty <= self.high_water {
            return CleanerStep::Idle;
        } else {
            self.draining = true;
        }
        let n = self.mgr.clean_batch(clk);
        if n == 0 {
            self.draining = false;
            CleanerStep::Idle
        } else {
            CleanerStep::Cleaned(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SsdConfig, SsdDesign};
    use turbopool_bufpool::PageIo;
    use turbopool_iosim::{DeviceSetup, IoManager, Locality, PageId};

    const PS: usize = 32;

    fn lc(frames: u64, lambda: f64, alpha: u64) -> (Arc<SsdManager>, LazyCleaner) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 4096, frames)));
        let mut cfg = SsdConfig::new(SsdDesign::LazyCleaning, frames);
        cfg.lambda = lambda;
        cfg.alpha = alpha;
        cfg.partitions = 1;
        cfg.lambda_slack = 0.05;
        let mgr = Arc::new(SsdManager::new(cfg, io));
        let cleaner = LazyCleaner::new(Arc::clone(&mgr));
        (mgr, cleaner)
    }

    #[test]
    fn idle_below_high_water() {
        let (mgr, mut cleaner) = lc(100, 0.5, 8);
        for i in 0..50u64 {
            mgr.evict_page(0, PageId(i), &[1u8; PS], true, Locality::Random);
        }
        // Exactly at the high-water mark (50): still idle.
        let mut clk = Clk::new();
        assert_eq!(cleaner.step(&mut clk), CleanerStep::Idle);
        assert_eq!(clk.now, 0);
    }

    #[test]
    fn drains_to_low_water_once_triggered() {
        let (mgr, mut cleaner) = lc(100, 0.5, 8);
        for i in 0..60u64 {
            mgr.evict_page(0, PageId(i), &[1u8; PS], true, Locality::Random);
        }
        let mut clk = Clk::new();
        let mut cleaned = 0usize;
        loop {
            match cleaner.step(&mut clk) {
                CleanerStep::Idle => break,
                CleanerStep::Cleaned(n) => cleaned += n,
            }
        }
        // low water = (0.5 - 0.05) * 100 = 45.
        assert!(mgr.dirty_count() <= 45, "dirty={}", mgr.dirty_count());
        assert!(cleaned >= 15);
        assert!(clk.now > 0, "cleaning consumed virtual time");
        // Once drained it is idle again even though dirty > 0.
        assert_eq!(cleaner.step(&mut clk), CleanerStep::Idle);
    }

    #[test]
    fn batches_bounded_by_alpha() {
        let (mgr, mut cleaner) = lc(100, 0.1, 4);
        for i in 0..40u64 {
            mgr.evict_page(0, PageId(i), &[1u8; PS], true, Locality::Random);
        }
        let mut clk = Clk::new();
        match cleaner.step(&mut clk) {
            CleanerStep::Cleaned(n) => assert!(n <= 4),
            CleanerStep::Idle => panic!("should clean"),
        }
    }
}
