//! The lazy-cleaning background thread (§2.3.3, §3.3.5).
//!
//! The cleaner wakes when the number of dirty SSD pages exceeds the λ
//! high-water mark and flushes group-cleaning batches until the count drops
//! slightly below it (the paper drains to about 0.01% of the SSD below λ).
//! In the discrete-event driver the cleaner is a pseudo-client: each call
//! to [`LazyCleaner::step`] performs at most one batch on the cleaner's own
//! virtual clock, so its I/O competes with foreground transactions for
//! device time — which is exactly the throughput cliff of Figure 6.
//!
//! Congestion awareness (gray-failure extension): cleaning writes land on
//! the same spindles that serve foreground misses, so the cleaner adapts
//! to the disk group's queue depth. Above the high-water mark it *yields*
//! a round ([`CleanerStep::Backoff`]) while the disk queue exceeds
//! `cleaner_disk_queue_max` — unless dirty pages have piled past the hard
//! [`dirty_ceiling`](crate::config::SsdConfig::dirty_ceiling), where
//! bounding dirty growth outranks foreground latency. Below the mark it
//! *drains opportunistically* while the disk is idle
//! (`cleaner_idle_depth`), buying headroom for the next burst.

use std::sync::Arc;

use turbopool_iosim::{Clk, Time, MILLISECOND};

use crate::manager::SsdManager;
use crate::metrics::SsdMetrics;

/// What a cleaner step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerStep {
    /// Dirty count was at or below the high-water mark; nothing done. The
    /// caller should sleep for [`LazyCleaner::poll_interval`].
    Idle,
    /// Dirty count calls for cleaning but the disk group is congested and
    /// the hard ceiling has not been reached: the round was yielded to
    /// foreground I/O. The caller should sleep like `Idle`.
    Backoff,
    /// One group-cleaning batch of this many pages was flushed.
    Cleaned(usize),
}

/// Driver-facing handle for the LC cleaner thread.
pub struct LazyCleaner {
    mgr: Arc<SsdManager>,
    /// Keep cleaning until the dirty count reaches this (λ − slack).
    low_water: u64,
    /// Wake-up threshold (λ).
    high_water: u64,
    /// Hard dirty ceiling: above it congestion no longer defers cleaning.
    ceiling: u64,
    /// Disk queue depth above which a cleaning round is yielded.
    queue_max: usize,
    /// Disk queue depth at or below which the cleaner drains
    /// opportunistically even below the high-water mark.
    idle_depth: usize,
    /// Below the high-water mark we are draining toward the low-water mark.
    draining: bool,
}

impl LazyCleaner {
    pub fn new(mgr: Arc<SsdManager>) -> Self {
        let cfg = mgr.config();
        LazyCleaner {
            low_water: cfg.dirty_low_water(),
            high_water: cfg.dirty_high_water(),
            ceiling: cfg.dirty_ceiling(),
            queue_max: cfg.cleaner_disk_queue_max,
            idle_depth: cfg.cleaner_idle_depth,
            mgr,
            draining: false,
        }
    }

    /// How long the cleaner sleeps between polls when idle.
    pub fn poll_interval(&self) -> Time {
        100 * MILLISECOND
    }

    /// Run at most one cleaning batch.
    pub fn step(&mut self, clk: &mut Clk) -> CleanerStep {
        let dirty = self.mgr.dirty_count();
        if self.draining {
            if dirty <= self.low_water {
                self.draining = false;
                return CleanerStep::Idle;
            }
        } else if dirty <= self.high_water {
            // Opportunistic draining: the λ trigger hasn't fired, but the
            // disk group is idle and there are dirty pages above the
            // low-water mark — clean one batch now so the next burst
            // starts with headroom instead of a cliff.
            if dirty > self.low_water && self.mgr.disk_queue_depth(clk.now) <= self.idle_depth {
                SsdMetrics::bump(&self.mgr.metrics.cleaner_boosts);
                let n = self.mgr.clean_batch(clk);
                return if n == 0 {
                    CleanerStep::Idle
                } else {
                    CleanerStep::Cleaned(n)
                };
            }
            return CleanerStep::Idle;
        } else {
            self.draining = true;
        }
        // Congestion backpressure: cleaning writes would queue behind
        // foreground misses on the disk group. Yield the round unless
        // dirty pages have piled past the hard ceiling, where bounding
        // dirty accumulation outranks foreground latency.
        if dirty < self.ceiling && self.mgr.disk_queue_depth(clk.now) > self.queue_max {
            SsdMetrics::bump(&self.mgr.metrics.cleaner_backoffs);
            return CleanerStep::Backoff;
        }
        let n = self.mgr.clean_batch(clk);
        if n == 0 {
            self.draining = false;
            CleanerStep::Idle
        } else {
            CleanerStep::Cleaned(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SsdConfig, SsdDesign};
    use turbopool_bufpool::PageIo;
    use turbopool_iosim::{DeviceSetup, IoManager, Locality, PageId, MILLISECOND};

    const PS: usize = 32;

    fn lc(frames: u64, lambda: f64, alpha: u64) -> (Arc<IoManager>, Arc<SsdManager>, LazyCleaner) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 4096, frames)));
        let mut cfg = SsdConfig::new(SsdDesign::LazyCleaning, frames);
        cfg.lambda = lambda;
        cfg.alpha = alpha;
        cfg.partitions = 1;
        cfg.lambda_slack = 0.05;
        let mgr = Arc::new(SsdManager::new(cfg, Arc::clone(&io)));
        let cleaner = LazyCleaner::new(Arc::clone(&mgr));
        (io, mgr, cleaner)
    }

    /// Evict `n` dirty pages spaced out in virtual time so the SSD queue
    /// stays shallow and the fail-slow detector sees a healthy device.
    fn dirty_pages(mgr: &SsdManager, n: u64) -> Time {
        for i in 0..n {
            mgr.evict_page(
                i * MILLISECOND,
                PageId(i),
                &[1u8; PS],
                true,
                Locality::Random,
            );
        }
        n * MILLISECOND
    }

    #[test]
    fn idle_at_low_water() {
        let (_io, mgr, mut cleaner) = lc(100, 0.5, 8);
        let t = dirty_pages(&mgr, 45);
        // At the low-water mark (45): nothing to gain, truly idle.
        let mut clk = Clk::at(t);
        assert_eq!(cleaner.step(&mut clk), CleanerStep::Idle);
        assert_eq!(clk.now, t);
    }

    #[test]
    fn idle_disk_drains_opportunistically() {
        let (_io, mgr, mut cleaner) = lc(100, 0.5, 8);
        let t = dirty_pages(&mgr, 50);
        // At the high-water mark (50) the λ trigger has not fired, but
        // the disk group is idle: the cleaner banks a batch now.
        let mut clk = Clk::at(t);
        match cleaner.step(&mut clk) {
            CleanerStep::Cleaned(n) => assert!(n > 0),
            s => panic!("expected opportunistic clean, got {s:?}"),
        }
        assert!(mgr.metrics.snapshot().cleaner_boosts >= 1);
        assert!(mgr.dirty_count() < 50);
    }

    #[test]
    fn drains_to_low_water_once_triggered() {
        let (_io, mgr, mut cleaner) = lc(100, 0.5, 8);
        let t = dirty_pages(&mgr, 60);
        let mut clk = Clk::at(t);
        let mut cleaned = 0usize;
        loop {
            match cleaner.step(&mut clk) {
                CleanerStep::Idle => break,
                CleanerStep::Backoff => panic!("uncongested disk must not back off"),
                CleanerStep::Cleaned(n) => cleaned += n,
            }
        }
        // low water = (0.5 - 0.05) * 100 = 45.
        assert!(mgr.dirty_count() <= 45, "dirty={}", mgr.dirty_count());
        assert!(cleaned >= 15);
        assert!(clk.now > t, "cleaning consumed virtual time");
    }

    #[test]
    fn batches_bounded_by_alpha() {
        let (_io, mgr, mut cleaner) = lc(100, 0.1, 4);
        let t = dirty_pages(&mgr, 40);
        let mut clk = Clk::at(t);
        match cleaner.step(&mut clk) {
            CleanerStep::Cleaned(n) => assert!(n <= 4),
            s => panic!("should clean, got {s:?}"),
        }
    }

    #[test]
    fn congested_disk_defers_cleaning() {
        let (io, mgr, mut cleaner) = lc(100, 0.1, 8);
        let t = dirty_pages(&mgr, 20); // above high water (10), far below ceiling (75)
                                       // Flood the disk group past cleaner_disk_queue_max (32).
        for i in 0..40u64 {
            let _ = io.write_disk_async(t, PageId(1000 + i), &[2u8; PS], Locality::Random);
        }
        let mut clk = Clk::at(t);
        assert_eq!(cleaner.step(&mut clk), CleanerStep::Backoff);
        assert_eq!(
            cleaner.step(&mut clk),
            CleanerStep::Backoff,
            "still congested"
        );
        assert_eq!(mgr.dirty_count(), 20, "no cleaning while congested");
        assert!(mgr.metrics.snapshot().cleaner_backoffs >= 2);
    }

    #[test]
    fn dirty_ceiling_overrides_congestion() {
        let (io, mgr, mut cleaner) = lc(100, 0.1, 8);
        let t = dirty_pages(&mgr, 80); // past the 0.75 ceiling (75)
        for i in 0..40u64 {
            let _ = io.write_disk_async(t, PageId(1000 + i), &[2u8; PS], Locality::Random);
        }
        let mut clk = Clk::at(t);
        match cleaner.step(&mut clk) {
            CleanerStep::Cleaned(n) => assert!(n > 0),
            s => panic!("ceiling breach must clean through congestion, got {s:?}"),
        }
    }
}
