//! The Figure 3 coherence invariant.
//!
//! With up to three copies of a page (memory, SSD, disk) only six
//! relationships are legal; the CW and DW designs additionally never allow
//! the SSD to hold a version newer than disk (cases 4 and 6 are LC-only).
//! The classifier below takes *version numbers* (newer = greater) and is
//! used by the engine's property tests to validate every page after every
//! operation.

use crate::config::SsdDesign;

/// The legal states of Figure 3. `P'` denotes a newer version than `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceCase {
    /// Only the disk holds the page (not in the chart; trivially coherent).
    DiskOnly,
    /// Case 1: memory == disk, not on SSD.
    MemEqDisk,
    /// Case 2: memory > disk, not on SSD.
    MemNewer,
    /// Case 3: SSD == disk, not in memory.
    SsdEqDisk,
    /// Case 4: SSD > disk, not in memory (LC only).
    SsdNewer,
    /// Case 5: memory == SSD == disk.
    AllEqual,
    /// Case 6: memory == SSD > disk (LC only).
    MemSsdNewer,
}

/// A violation of the Figure 3 invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceViolation {
    /// A cached copy is older than the disk copy (stale cache).
    StaleCopy,
    /// Memory and SSD copies disagree — the SSD copy should have been
    /// invalidated when the memory copy was dirtied.
    MemSsdMismatch,
    /// The design never lets the SSD hold a newer-than-disk copy.
    SsdNewerUnderWriteThrough,
}

/// Classify the version relationship of one page's copies.
///
/// `mem`/`ssd` are the version numbers of the in-memory and SSD copies (or
/// `None` when absent); `disk` is the persistent version. Newer versions
/// compare greater.
pub fn classify(
    design: SsdDesign,
    mem: Option<u64>,
    ssd: Option<u64>,
    disk: u64,
) -> Result<CoherenceCase, CoherenceViolation> {
    if let Some(m) = mem {
        if m < disk {
            return Err(CoherenceViolation::StaleCopy);
        }
    }
    if let Some(s) = ssd {
        if s < disk {
            return Err(CoherenceViolation::StaleCopy);
        }
        if s > disk && !matches!(design, SsdDesign::LazyCleaning) {
            return Err(CoherenceViolation::SsdNewerUnderWriteThrough);
        }
    }
    let case = match (mem, ssd) {
        (None, None) => CoherenceCase::DiskOnly,
        (Some(m), None) => {
            if m == disk {
                CoherenceCase::MemEqDisk
            } else {
                CoherenceCase::MemNewer
            }
        }
        (None, Some(s)) => {
            if s == disk {
                CoherenceCase::SsdEqDisk
            } else {
                CoherenceCase::SsdNewer
            }
        }
        (Some(m), Some(s)) => {
            if m != s {
                return Err(CoherenceViolation::MemSsdMismatch);
            }
            if m == disk {
                CoherenceCase::AllEqual
            } else {
                CoherenceCase::MemSsdNewer
            }
        }
    };
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::rng::{Rng, SeedableRng, SmallRng};

    const LC: SsdDesign = SsdDesign::LazyCleaning;
    const DW: SsdDesign = SsdDesign::DualWrite;

    #[test]
    fn six_legal_cases() {
        assert_eq!(classify(LC, Some(1), None, 1), Ok(CoherenceCase::MemEqDisk));
        assert_eq!(classify(LC, Some(2), None, 1), Ok(CoherenceCase::MemNewer));
        assert_eq!(classify(LC, None, Some(1), 1), Ok(CoherenceCase::SsdEqDisk));
        assert_eq!(classify(LC, None, Some(2), 1), Ok(CoherenceCase::SsdNewer));
        assert_eq!(
            classify(LC, Some(1), Some(1), 1),
            Ok(CoherenceCase::AllEqual)
        );
        assert_eq!(
            classify(LC, Some(2), Some(2), 1),
            Ok(CoherenceCase::MemSsdNewer)
        );
        assert_eq!(classify(LC, None, None, 1), Ok(CoherenceCase::DiskOnly));
    }

    #[test]
    fn violations() {
        assert_eq!(
            classify(LC, Some(0), None, 1),
            Err(CoherenceViolation::StaleCopy)
        );
        assert_eq!(
            classify(LC, None, Some(0), 1),
            Err(CoherenceViolation::StaleCopy)
        );
        assert_eq!(
            classify(LC, Some(2), Some(3), 1),
            Err(CoherenceViolation::MemSsdMismatch)
        );
    }

    #[test]
    fn write_through_designs_forbid_newer_ssd() {
        for d in [SsdDesign::CleanWrite, SsdDesign::DualWrite, SsdDesign::Tac] {
            assert_eq!(
                classify(d, None, Some(2), 1),
                Err(CoherenceViolation::SsdNewerUnderWriteThrough)
            );
            assert_eq!(
                classify(d, Some(2), Some(2), 1),
                Err(CoherenceViolation::SsdNewerUnderWriteThrough)
            );
        }
        // Cases 1, 2, 3, 5 remain fine under DW (paper: "only cases 1, 2,
        // 3, and 5 are possible for the CW and DW designs").
        assert!(classify(DW, Some(2), None, 1).is_ok());
        assert!(classify(DW, None, Some(1), 1).is_ok());
        assert!(classify(DW, Some(1), Some(1), 1).is_ok());
    }

    /// Every classified (non-error) state is one of the chart's cases,
    /// and classification is total over version triples. Exhaustive over
    /// the version domain the old property test sampled, plus a seeded
    /// random sweep over a wider domain.
    #[test]
    fn classification_is_total_and_consistent() {
        let check = |mem: Option<u64>, ssd: Option<u64>, disk: u64| {
            match classify(LC, mem, ssd, disk) {
                Ok(case) => {
                    // Reconstruct the defining predicate of each case.
                    let holds = match case {
                        CoherenceCase::DiskOnly => mem.is_none() && ssd.is_none(),
                        CoherenceCase::MemEqDisk => mem == Some(disk),
                        CoherenceCase::MemNewer => mem > Some(disk) && ssd.is_none(),
                        CoherenceCase::SsdEqDisk => ssd == Some(disk),
                        CoherenceCase::SsdNewer => ssd > Some(disk) && mem.is_none(),
                        CoherenceCase::AllEqual => mem == Some(disk) && ssd == Some(disk),
                        CoherenceCase::MemSsdNewer => mem == ssd && mem > Some(disk),
                    };
                    assert!(holds, "case {case:?} wrong for {mem:?}/{ssd:?}/{disk}");
                }
                Err(v) => {
                    let stale = mem.map(|m| m < disk).unwrap_or(false)
                        || ssd.map(|s| s < disk).unwrap_or(false);
                    let mismatch = mem.is_some() && ssd.is_some() && mem != ssd;
                    assert!(stale || mismatch, "unexpected violation {v:?}");
                }
            }
        };
        // Exhaustive over the 5 x 5 x 4 triple domain.
        let opts = [None, Some(0u64), Some(1), Some(2), Some(3)];
        for mem in opts {
            for ssd in opts {
                for disk in 0u64..4 {
                    check(mem, ssd, disk);
                }
            }
        }
        // Seeded random sweep over a wider version domain.
        let mut rng = SmallRng::seed_from_u64(0xF16_3);
        for _ in 0..10_000 {
            let draw = |rng: &mut SmallRng| -> Option<u64> {
                rng.gen_bool(0.4).then(|| rng.gen_range(0u64..100))
            };
            let (mem, ssd) = (draw(&mut rng), draw(&mut rng));
            check(mem, ssd, rng.gen_range(0u64..100));
        }
    }
}
