//! Always-on invariant auditor for the SSD buffer-table state machine.
//!
//! Every page cached on the SSD moves through a small per-design state
//! machine (absent → clean → dirty/invalid → …). The designs differ in
//! which transitions are legal: CW never holds a dirty copy, DW and TAC
//! are write-through (the SSD copy can never be newer than disk), LC is
//! the only design where `Dirty` is a reachable state, and `Invalid` is
//! TAC's logical-invalidation state. The auditor shadows the buffer table
//! with one [`FrameState`] per cached page, validates every observed
//! transition against the design's table, and cross-checks the resulting
//! state against the Figure 3 coherence chart via [`crate::coherence`].
//!
//! The auditor is compiled in when the `strict-invariants` feature is
//! enabled (on by default, so debug and test builds always audit); with
//! the feature disabled every call is a no-op that the optimizer removes.
//! Violations are counted (see `SsdMetrics::audit_violations`) and, in
//! debug builds, abort the run with a panic so tests fail loudly at the
//! first illegal transition instead of at a downstream data divergence.

#[cfg(feature = "strict-invariants")]
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "strict-invariants")]
use turbopool_iosim::sync::Mutex;
use turbopool_iosim::PageId;

#[cfg(feature = "strict-invariants")]
use crate::coherence::classify;
use crate::config::SsdDesign;

/// Logical state of one page's SSD copy. A page with no entry is absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// The SSD copy matches the disk version.
    Clean,
    /// The SSD copy is newer than disk (LC write-back only).
    Dirty,
    /// TAC logical invalidation: the frame is occupied but its contents
    /// are stale and must never be served.
    Invalid,
    /// Terminal state: the SSD was quarantined (device death or error
    /// budget exhausted) with this page still cached. No further
    /// transition is legal; the frame is unreachable forever.
    Quarantined,
}

/// One observable transition of the buffer-table state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOp {
    /// A page entered the cache (eviction-time install, TAC write-on-read,
    /// or the DW checkpoint mirror). `dirty` is legal only under LC.
    Admit { dirty: bool },
    /// A checkpointed buffer-table entry was re-adopted at restart.
    WarmImport,
    /// A clean replacement victim left the cache.
    Replace,
    /// LC: a dirty victim was cleaned inline and removed (no clean victim
    /// existed).
    InlineClean,
    /// CW/DW/LC physical invalidation: an in-memory dirtying removed the
    /// entry and freed the frame.
    Invalidate,
    /// TAC logical invalidation: the entry stays, marked invalid.
    LogicalInvalidate,
    /// TAC: an in-flight on-read SSD write was cancelled by a dirtying;
    /// the entry vanishes as if never admitted.
    Cancel,
    /// LC: the lazy cleaner or a sharp checkpoint flushed a dirty page to
    /// disk; the entry stays, now clean.
    Clean,
    /// TAC: a write-through (eviction or checkpoint) rewrote the SSD copy
    /// with the current contents, making it valid.
    Refresh,
    /// The SSD was quarantined with this page still cached; the entry
    /// enters the terminal [`FrameState::Quarantined`] state (legal from
    /// any occupied state, under every design).
    Quarantine,
    /// The SSD copy failed checksum verification (torn write or bit-flip)
    /// or became unreadable; the entry is dropped. Dirty copies can be
    /// lost this way only under LC, which strands the page for WAL-tail
    /// salvage.
    CorruptInvalidate,
}

/// An illegal transition (or an illegal resulting state per Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditError {
    pub design: SsdDesign,
    pub op: AuditOp,
    /// State before the transition (`None` = absent).
    pub from: Option<FrameState>,
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} forbids {:?} from state {:?}",
            self.design, self.op, self.from
        )
    }
}

/// The per-design transition table. Returns the resulting state (`None` =
/// absent) or an error when `op` is illegal from `from` under `design`.
pub fn transition(
    design: SsdDesign,
    from: Option<FrameState>,
    op: AuditOp,
) -> Result<Option<FrameState>, AuditError> {
    use FrameState::*;
    use SsdDesign::*;
    let illegal = Err(AuditError { design, op, from });
    match op {
        AuditOp::Admit { dirty } => match from {
            // Dirty admission is LC's write-back; every other design
            // writes through and never caches a newer-than-disk copy.
            None if !dirty => Ok(Some(Clean)),
            None if design == LazyCleaning => Ok(Some(Dirty)),
            _ => illegal,
        },
        AuditOp::WarmImport => match from {
            None => Ok(Some(Clean)),
            _ => illegal,
        },
        AuditOp::Replace => match from {
            Some(Clean) => Ok(None),
            _ => illegal,
        },
        AuditOp::InlineClean => match (design, from) {
            (LazyCleaning, Some(Dirty)) => Ok(None),
            _ => illegal,
        },
        AuditOp::Invalidate => match (design, from) {
            (Tac, _) => illegal, // TAC invalidates logically
            (_, Some(Clean)) => Ok(None),
            (LazyCleaning, Some(Dirty)) => Ok(None),
            _ => illegal,
        },
        AuditOp::LogicalInvalidate => match (design, from) {
            (Tac, Some(Clean)) => Ok(Some(Invalid)),
            _ => illegal,
        },
        AuditOp::Cancel => match (design, from) {
            (Tac, Some(Clean)) => Ok(None),
            _ => illegal,
        },
        AuditOp::Clean => match (design, from) {
            (LazyCleaning, Some(Dirty)) => Ok(Some(Clean)),
            _ => illegal,
        },
        AuditOp::Refresh => match (design, from) {
            (Tac, Some(Clean) | Some(Invalid)) => Ok(Some(Clean)),
            _ => illegal,
        },
        AuditOp::Quarantine => match from {
            // Quarantine freezes whatever was cached; an absent page has
            // nothing to freeze and Quarantined itself is terminal.
            Some(Clean) | Some(Dirty) | Some(Invalid) => Ok(Some(Quarantined)),
            None | Some(Quarantined) => illegal,
        },
        AuditOp::CorruptInvalidate => match (design, from) {
            (_, Some(Clean)) => Ok(None),
            (Tac, Some(Invalid)) => Ok(None),
            (LazyCleaning, Some(Dirty)) => Ok(None),
            _ => illegal,
        },
    }
}

/// Shadow state machine over the SSD buffer table.
///
/// Owned by [`crate::SsdManager`] / [`crate::TacCache`]; they report every
/// table mutation through [`InvariantAuditor::observe`].
#[derive(Debug)]
pub struct InvariantAuditor {
    #[cfg_attr(not(feature = "strict-invariants"), allow(dead_code))]
    design: SsdDesign,
    violations: AtomicU64,
    #[cfg(feature = "strict-invariants")]
    states: Mutex<HashMap<PageId, FrameState>>,
}

impl InvariantAuditor {
    pub fn new(design: SsdDesign) -> Self {
        InvariantAuditor {
            design,
            violations: AtomicU64::new(0),
            #[cfg(feature = "strict-invariants")]
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Violations recorded so far (always 0 when auditing is compiled out).
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Validate one transition and advance the shadow state. Returns the
    /// error (after counting it) so the owner can also panic or record it
    /// into its metrics; with `strict-invariants` off this is a no-op.
    #[cfg(feature = "strict-invariants")]
    pub fn observe(&self, pid: PageId, op: AuditOp) -> Result<(), AuditError> {
        let mut states = self.states.lock();
        let from = states.get(&pid).copied();
        let to = transition(self.design, from, op).and_then(|to| {
            // Cross-check the resulting state against the Figure 3 chart:
            // symbolically, disk is at version 1, a clean copy matches it,
            // a dirty copy is newer, and an invalid copy is unreachable
            // (classified as absent).
            let ssd = match to {
                Some(FrameState::Clean) => Some(1),
                Some(FrameState::Dirty) => Some(2),
                // Invalid and Quarantined frames are never served, so for
                // coherence purposes the SSD holds nothing.
                Some(FrameState::Invalid) | Some(FrameState::Quarantined) | None => None,
            };
            match classify(self.design, None, ssd, 1) {
                Ok(_) => Ok(to),
                Err(_) => Err(AuditError {
                    design: self.design,
                    op,
                    from,
                }),
            }
        });
        match to {
            Ok(Some(s)) => {
                states.insert(pid, s);
                Ok(())
            }
            Ok(None) => {
                states.remove(&pid);
                Ok(())
            }
            Err(e) => {
                self.violations.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline(always)]
    pub fn observe(&self, _pid: PageId, _op: AuditOp) -> Result<(), AuditError> {
        Ok(())
    }

    /// Shadow state of `pid` (test/introspection; `None` with the feature
    /// off or when absent).
    pub fn state_of(&self, pid: PageId) -> Option<FrameState> {
        #[cfg(feature = "strict-invariants")]
        {
            self.states.lock().get(&pid).copied()
        }
        #[cfg(not(feature = "strict-invariants"))]
        {
            let _ = pid;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FrameState::*;
    use SsdDesign::*;

    #[test]
    fn lc_lifecycle_is_legal() {
        let a = InvariantAuditor::new(LazyCleaning);
        let p = PageId(7);
        assert!(a.observe(p, AuditOp::Admit { dirty: true }).is_ok());
        assert_eq!(a.state_of(p), Some(Dirty));
        assert!(a.observe(p, AuditOp::Clean).is_ok());
        assert_eq!(a.state_of(p), Some(Clean));
        assert!(a.observe(p, AuditOp::Replace).is_ok());
        assert_eq!(a.state_of(p), None);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn dirty_admission_outside_lc_is_a_violation() {
        for d in [CleanWrite, DualWrite, Tac] {
            let a = InvariantAuditor::new(d);
            assert!(a
                .observe(PageId(1), AuditOp::Admit { dirty: true })
                .is_err());
            assert_eq!(a.violations(), 1, "{d:?}");
        }
    }

    #[test]
    fn tac_logical_invalidation_and_refresh() {
        let a = InvariantAuditor::new(Tac);
        let p = PageId(3);
        a.observe(p, AuditOp::Admit { dirty: false }).unwrap();
        a.observe(p, AuditOp::LogicalInvalidate).unwrap();
        assert_eq!(a.state_of(p), Some(Invalid));
        a.observe(p, AuditOp::Refresh).unwrap();
        assert_eq!(a.state_of(p), Some(Clean));
        a.observe(p, AuditOp::Cancel).unwrap();
        assert_eq!(a.state_of(p), None);
        assert_eq!(a.violations(), 0);
    }

    #[test]
    fn double_admission_is_a_violation() {
        let a = InvariantAuditor::new(DualWrite);
        a.observe(PageId(1), AuditOp::Admit { dirty: false })
            .unwrap();
        assert!(a
            .observe(PageId(1), AuditOp::Admit { dirty: false })
            .is_err());
    }

    #[test]
    fn replacing_a_dirty_page_is_a_violation() {
        let a = InvariantAuditor::new(LazyCleaning);
        a.observe(PageId(1), AuditOp::Admit { dirty: true })
            .unwrap();
        assert!(a.observe(PageId(1), AuditOp::Replace).is_err());
        // InlineClean is the legal way out of Dirty straight to Absent.
        let b = InvariantAuditor::new(LazyCleaning);
        b.observe(PageId(1), AuditOp::Admit { dirty: true })
            .unwrap();
        assert!(b.observe(PageId(1), AuditOp::InlineClean).is_ok());
    }

    #[test]
    fn physical_vs_logical_invalidation_split() {
        // CW/DW/LC invalidate physically; TAC only logically.
        let a = InvariantAuditor::new(Tac);
        a.observe(PageId(1), AuditOp::Admit { dirty: false })
            .unwrap();
        assert!(a.observe(PageId(1), AuditOp::Invalidate).is_err());
        let b = InvariantAuditor::new(DualWrite);
        b.observe(PageId(1), AuditOp::Admit { dirty: false })
            .unwrap();
        assert!(b.observe(PageId(1), AuditOp::LogicalInvalidate).is_err());
        assert!(b.observe(PageId(1), AuditOp::Invalidate).is_ok());
    }

    #[test]
    fn transition_table_is_total() {
        // Every (design, state, op) combination yields a defined verdict —
        // the table never panics, and legal next-states pass Figure 3.
        let ops = [
            AuditOp::Admit { dirty: false },
            AuditOp::Admit { dirty: true },
            AuditOp::WarmImport,
            AuditOp::Replace,
            AuditOp::InlineClean,
            AuditOp::Invalidate,
            AuditOp::LogicalInvalidate,
            AuditOp::Cancel,
            AuditOp::Clean,
            AuditOp::Refresh,
            AuditOp::Quarantine,
            AuditOp::CorruptInvalidate,
        ];
        for d in [CleanWrite, DualWrite, LazyCleaning, Tac] {
            for from in [
                None,
                Some(Clean),
                Some(Dirty),
                Some(Invalid),
                Some(Quarantined),
            ] {
                for op in ops {
                    if let Ok(Some(Dirty)) = transition(d, from, op) {
                        assert_eq!(d, LazyCleaning, "Dirty reachable only under LC");
                    }
                    // Quarantined is terminal: no op may leave it.
                    if from == Some(Quarantined) {
                        assert!(
                            transition(d, from, op).is_err(),
                            "{d:?}/{op:?} escaped Quarantined"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quarantine_is_terminal_from_every_occupied_state() {
        for d in [CleanWrite, DualWrite, LazyCleaning, Tac] {
            let a = InvariantAuditor::new(d);
            let p = PageId(9);
            a.observe(p, AuditOp::Admit { dirty: false }).unwrap();
            a.observe(p, AuditOp::Quarantine).unwrap();
            assert_eq!(a.state_of(p), Some(Quarantined), "{d:?}");
            // Nothing — not even a fresh admission — revives the entry.
            assert!(a.observe(p, AuditOp::Admit { dirty: false }).is_err());
            assert!(a.observe(p, AuditOp::Quarantine).is_err());
            assert!(a.observe(p, AuditOp::Invalidate).is_err());
        }
        // LC quarantines dirty frames too (the stranded-page case).
        let a = InvariantAuditor::new(LazyCleaning);
        a.observe(PageId(1), AuditOp::Admit { dirty: true })
            .unwrap();
        a.observe(PageId(1), AuditOp::Quarantine).unwrap();
        assert_eq!(a.state_of(PageId(1)), Some(Quarantined));
        // Quarantining an absent page is a violation.
        let b = InvariantAuditor::new(CleanWrite);
        assert!(b.observe(PageId(2), AuditOp::Quarantine).is_err());
    }

    #[test]
    fn corrupt_invalidation_drops_the_entry() {
        // Clean corruption is survivable under every design.
        for d in [CleanWrite, DualWrite, LazyCleaning, Tac] {
            let a = InvariantAuditor::new(d);
            a.observe(PageId(4), AuditOp::Admit { dirty: false })
                .unwrap();
            assert!(a.observe(PageId(4), AuditOp::CorruptInvalidate).is_ok());
            assert_eq!(a.state_of(PageId(4)), None, "{d:?}");
            assert_eq!(a.violations(), 0, "{d:?}");
        }
        // A dirty (sole-copy) loss is expressible only under LC.
        let a = InvariantAuditor::new(LazyCleaning);
        a.observe(PageId(5), AuditOp::Admit { dirty: true })
            .unwrap();
        assert!(a.observe(PageId(5), AuditOp::CorruptInvalidate).is_ok());
        assert_eq!(a.state_of(PageId(5)), None);
    }
}
