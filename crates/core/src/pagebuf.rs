//! Reusable page-buffer pool for the SSD manager's gather/flush paths.
//!
//! `SsdManager::clean_batch` reads up to α pages from the SSD into
//! page-sized staging buffers before writing them to disk as one run.
//! Allocating those `Vec<u8>`s fresh per batch puts an allocator
//! round-trip on the cleaner's hot path (measured in `benches/micro.rs`,
//! `page_buf_*`); this pool recycles them instead.
//!
//! The spare list is its own innermost lock class (`spare` in
//! `lock_order.toml`): `take`/`put` acquire it only inside this module
//! and never while any other workspace lock is held.

use turbopool_iosim::sync::Mutex;

/// A bounded free list of page-sized byte buffers.
pub struct PageBufPool {
    page_size: usize,
    /// Recycled buffers, each exactly `page_size` bytes.
    spare: Mutex<Vec<Vec<u8>>>,
    /// Maximum buffers kept; beyond this, `put` lets them drop.
    cap: usize,
}

impl PageBufPool {
    /// A pool handing out `page_size`-byte buffers, retaining at most
    /// `cap` spares.
    pub fn new(page_size: usize, cap: usize) -> Self {
        assert!(page_size > 0);
        PageBufPool {
            page_size,
            spare: Mutex::new(Vec::new()),
            cap,
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Get a `page_size`-byte buffer. Contents are unspecified — callers
    /// must fully overwrite it (every user reads a whole page into it).
    pub fn take(&self) -> Vec<u8> {
        let recycled = {
            let mut s = self.spare.lock();
            s.pop()
        };
        recycled.unwrap_or_else(|| vec![0u8; self.page_size])
    }

    /// Return a buffer to the pool. Wrong-sized buffers (callers that
    /// truncated or grew it) and overflow beyond `cap` are dropped.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.len() != self.page_size {
            return;
        }
        let mut s = self.spare.lock();
        if s.len() < self.cap {
            s.push(buf);
        }
    }

    /// Spare buffers currently retained (tests and metrics).
    pub fn spares(&self) -> usize {
        self.spare.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_allocations() {
        let pool = PageBufPool::new(512, 4);
        let a = pool.take();
        assert_eq!(a.len(), 512);
        pool.put(a);
        assert_eq!(pool.spares(), 1);
        let b = pool.take();
        assert_eq!(b.len(), 512);
        assert_eq!(pool.spares(), 0);
        pool.put(b);
        assert_eq!(pool.spares(), 1);
    }

    #[test]
    fn cap_bounds_retention() {
        let pool = PageBufPool::new(64, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.spares(), 2);
    }

    #[test]
    fn wrong_size_buffers_are_dropped() {
        let pool = PageBufPool::new(64, 2);
        pool.put(vec![0u8; 63]);
        pool.put(Vec::new());
        assert_eq!(pool.spares(), 0);
    }
}
