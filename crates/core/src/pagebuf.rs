//! Historical home of [`PageBufPool`]; the implementation moved down to
//! `turbopool_iosim::pagebuf` so the DRAM buffer pool (which `core`
//! depends on, not the reverse) can share it. This module re-exports it
//! to keep `turbopool_core::PageBufPool` paths working.

pub use turbopool_iosim::pagebuf::{PageBufPool, PageLease};
