//! SSD-manager counters used by the evaluation harnesses.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters; snapshot with [`SsdMetricsSnapshot`].
#[derive(Debug, Default)]
pub struct SsdMetrics {
    /// Page lookups served from the SSD.
    pub ssd_hits: AtomicU64,
    /// Page lookups that fell through to disk.
    pub ssd_misses: AtomicU64,
    /// SSD hits skipped because the SSD queue exceeded μ (read went to
    /// disk instead).
    pub throttled_reads: AtomicU64,
    /// SSD admissions skipped because the SSD queue exceeded μ.
    pub throttled_admissions: AtomicU64,
    /// Pages admitted to the SSD (any path).
    pub admissions: AtomicU64,
    /// Pages admitted while the aggressive-filling phase was active.
    pub fill_admissions: AtomicU64,
    /// Evictions rejected by the admission policy (sequential class).
    pub policy_rejections: AtomicU64,
    /// Admissions granted by a ghost hit (the `GhostHit` admission
    /// policy re-admitting a recently rejected or replaced page; always
    /// 0 under `DesignDefault`).
    pub admission_ghost_hits: AtomicU64,
    /// SSD frames reclaimed by replacement.
    pub replacements: AtomicU64,
    /// Invalidations triggered by in-memory dirtying.
    pub invalidations: AtomicU64,
    /// Pages cleaned (SSD -> disk) by the lazy cleaner.
    pub cleaned_pages: AtomicU64,
    /// Group-cleaning write requests issued.
    pub cleaner_writes: AtomicU64,
    /// Dirty SSD victims cleaned inline because no clean victim existed.
    pub inline_cleans: AtomicU64,
    /// Dirty SSD pages flushed by sharp checkpoints.
    pub checkpoint_cleaned: AtomicU64,
    /// TAC: on-read SSD writes cancelled because the page was dirtied
    /// before the write completed (§4.2 discussion).
    pub tac_cancelled_writes: AtomicU64,
    /// SSD hits that returned a *dirty* (newer-than-disk) page.
    pub dirty_hits: AtomicU64,
    /// Pages re-adopted from the SSD at restart (warm-restart extension).
    pub warm_imports: AtomicU64,
    /// Warm-restart candidates rejected as stale: the frame's in-page
    /// header no longer names the checkpointed page, or redo advanced the
    /// page's disk image past the cached copy.
    pub warm_rejected_stale: AtomicU64,
    /// Warm-restart candidates rejected because the frame's stored bytes
    /// failed checksum verification when probed at import time.
    pub warm_rejected_checksum: AtomicU64,
    /// Buffer-table state-machine violations caught by the invariant
    /// auditor (always 0 unless the state machine itself is broken).
    pub audit_violations: AtomicU64,
    /// SSD I/O operations that returned an error (transient, checksum, or
    /// device-dead). Feeds the quarantine error budget.
    pub ssd_io_errors: AtomicU64,
    /// SSD frame reads whose contents failed checksum verification
    /// (torn writes and silent bit-flips surface here).
    pub checksum_misses: AtomicU64,
    /// Disk I/O retry attempts consumed by the capped-backoff policy.
    pub disk_retries: AtomicU64,
    /// 1 once the SSD has been quarantined (device death or error budget
    /// exhausted) and the manager degraded to the noSSD path.
    pub ssd_quarantined: AtomicU64,
    /// Reads served from disk that arrived after quarantine — the hits the
    /// dead SSD can no longer serve.
    pub quarantined_reads: AtomicU64,
    /// Cached frames dropped when the table was cleared at quarantine.
    pub lost_frames: AtomicU64,
    /// Dirty (sole-copy) frames whose SSD copy became unreadable; each is
    /// queued for WAL-tail salvage by the engine.
    pub stranded_dirty: AtomicU64,
    /// Pages restored onto disk by WAL-tail salvage after stranding.
    pub salvaged_pages: AtomicU64,
    /// SSD hits redirected to disk because the fail-slow detector flagged
    /// the SSD degraded (gray-failure hedging; dirty sole-copy frames are
    /// exempt and still read from the SSD).
    pub hedged_reads: AtomicU64,
    /// SSD admissions skipped because the fail-slow detector flagged the
    /// SSD degraded — no optional traffic is sent to a browned-out device.
    pub hedged_admissions: AtomicU64,
    /// SSD I/O retry attempts consumed by the capped-backoff policy.
    pub ssd_retries: AtomicU64,
    /// Lazy-cleaner rounds skipped because the disk group was congested
    /// (queue depth above `cleaner_disk_queue_max`) and the dirty count
    /// was still below the hard ceiling.
    pub cleaner_backoffs: AtomicU64,
    /// Lazy-cleaner rounds run opportunistically below the high-water
    /// mark because the disk group was idle.
    pub cleaner_boosts: AtomicU64,
    /// Buffer-table shard/partition latch acquisitions (ISSUE 9). A pure
    /// function of the operation sequence in deterministic driver runs,
    /// so it participates safely in replay equality checks.
    pub shard_acquisitions: AtomicU64,
    /// Shard/partition latch acquisitions that found the latch held by
    /// another OS thread. Always 0 in deterministic driver runs (domains
    /// are share-nothing); nonzero only under real-thread contention.
    pub shard_contended: AtomicU64,
}

/// Plain-value snapshot of [`SsdMetrics`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SsdMetricsSnapshot {
    pub ssd_hits: u64,
    pub ssd_misses: u64,
    pub throttled_reads: u64,
    pub throttled_admissions: u64,
    pub admissions: u64,
    pub fill_admissions: u64,
    pub policy_rejections: u64,
    pub admission_ghost_hits: u64,
    pub replacements: u64,
    pub invalidations: u64,
    pub cleaned_pages: u64,
    pub cleaner_writes: u64,
    pub inline_cleans: u64,
    pub checkpoint_cleaned: u64,
    pub tac_cancelled_writes: u64,
    pub dirty_hits: u64,
    pub warm_imports: u64,
    pub warm_rejected_stale: u64,
    pub warm_rejected_checksum: u64,
    pub audit_violations: u64,
    pub ssd_io_errors: u64,
    pub checksum_misses: u64,
    pub disk_retries: u64,
    pub ssd_quarantined: u64,
    pub quarantined_reads: u64,
    pub lost_frames: u64,
    pub stranded_dirty: u64,
    pub salvaged_pages: u64,
    pub hedged_reads: u64,
    pub hedged_admissions: u64,
    pub ssd_retries: u64,
    pub cleaner_backoffs: u64,
    pub cleaner_boosts: u64,
    pub shard_acquisitions: u64,
    pub shard_contended: u64,
}

impl SsdMetrics {
    pub fn snapshot(&self) -> SsdMetricsSnapshot {
        SsdMetricsSnapshot {
            ssd_hits: self.ssd_hits.load(Ordering::Relaxed),
            ssd_misses: self.ssd_misses.load(Ordering::Relaxed),
            throttled_reads: self.throttled_reads.load(Ordering::Relaxed),
            throttled_admissions: self.throttled_admissions.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            fill_admissions: self.fill_admissions.load(Ordering::Relaxed),
            policy_rejections: self.policy_rejections.load(Ordering::Relaxed),
            admission_ghost_hits: self.admission_ghost_hits.load(Ordering::Relaxed),
            replacements: self.replacements.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            cleaned_pages: self.cleaned_pages.load(Ordering::Relaxed),
            cleaner_writes: self.cleaner_writes.load(Ordering::Relaxed),
            inline_cleans: self.inline_cleans.load(Ordering::Relaxed),
            checkpoint_cleaned: self.checkpoint_cleaned.load(Ordering::Relaxed),
            tac_cancelled_writes: self.tac_cancelled_writes.load(Ordering::Relaxed),
            dirty_hits: self.dirty_hits.load(Ordering::Relaxed),
            warm_imports: self.warm_imports.load(Ordering::Relaxed),
            warm_rejected_stale: self.warm_rejected_stale.load(Ordering::Relaxed),
            warm_rejected_checksum: self.warm_rejected_checksum.load(Ordering::Relaxed),
            audit_violations: self.audit_violations.load(Ordering::Relaxed),
            ssd_io_errors: self.ssd_io_errors.load(Ordering::Relaxed),
            checksum_misses: self.checksum_misses.load(Ordering::Relaxed),
            disk_retries: self.disk_retries.load(Ordering::Relaxed),
            ssd_quarantined: self.ssd_quarantined.load(Ordering::Relaxed),
            quarantined_reads: self.quarantined_reads.load(Ordering::Relaxed),
            lost_frames: self.lost_frames.load(Ordering::Relaxed),
            stranded_dirty: self.stranded_dirty.load(Ordering::Relaxed),
            salvaged_pages: self.salvaged_pages.load(Ordering::Relaxed),
            hedged_reads: self.hedged_reads.load(Ordering::Relaxed),
            hedged_admissions: self.hedged_admissions.load(Ordering::Relaxed),
            ssd_retries: self.ssd_retries.load(Ordering::Relaxed),
            cleaner_backoffs: self.cleaner_backoffs.load(Ordering::Relaxed),
            cleaner_boosts: self.cleaner_boosts.load(Ordering::Relaxed),
            shard_acquisitions: self.shard_acquisitions.load(Ordering::Relaxed),
            shard_contended: self.shard_contended.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl SsdMetricsSnapshot {
    /// SSD hit rate over all lookups that reached the SSD manager.
    pub fn hit_rate(&self) -> f64 {
        let total = self.ssd_hits + self.ssd_misses;
        if total == 0 {
            0.0
        } else {
            self.ssd_hits as f64 / total as f64
        }
    }

    /// Fraction of SSD hits that were to dirty pages — 83% for the 2K
    /// TPC-C run in the paper (§4.2).
    pub fn dirty_hit_fraction(&self) -> f64 {
        if self.ssd_hits == 0 {
            0.0
        } else {
            self.dirty_hits as f64 / self.ssd_hits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_counters() {
        let m = SsdMetrics::default();
        SsdMetrics::bump(&m.ssd_hits);
        SsdMetrics::add(&m.cleaned_pages, 5);
        let s = m.snapshot();
        assert_eq!(s.ssd_hits, 1);
        assert_eq!(s.cleaned_pages, 5);
        assert_eq!(s.ssd_misses, 0);
    }

    #[test]
    fn rates() {
        let m = SsdMetrics::default();
        SsdMetrics::add(&m.ssd_hits, 89);
        SsdMetrics::add(&m.ssd_misses, 11);
        SsdMetrics::add(&m.dirty_hits, 70);
        let s = m.snapshot();
        assert!((s.hit_rate() - 0.89).abs() < 1e-12);
        assert!((s.dirty_hit_fraction() - 70.0 / 89.0).abs() < 1e-12);
        assert_eq!(SsdMetricsSnapshot::default().hit_rate(), 0.0);
    }
}
