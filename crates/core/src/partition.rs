//! One SSD partition: buffer table, hash table, free list, heap array.
//!
//! To increase concurrency the SSD buffer pool is partitioned (§3.3.4);
//! each partition owns a contiguous slice of SSD frames with its own buffer
//! table, free list and heap array. (The paper shares one hash table across
//! partitions; we route each page id to a fixed partition with a
//! multiplicative hash, which preserves the single-home invariant with a
//! per-partition table — see DESIGN.md.)

use std::collections::HashMap;

use turbopool_iosim::PageId;

use crate::heaps::{DualHeap, Key, Side};

/// One SSD buffer-table record (Figure 4): the cached page's id, its dirty
/// bit and its last two access stamps. The record's index within the
/// partition identifies its SSD frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    pub pid: PageId,
    pub dirty: bool,
    /// Most recent access stamp.
    pub last: u64,
    /// Penultimate access stamp (0 = none).
    pub prev: u64,
}

impl Record {
    /// LRU-2 replacement key: oldest penultimate access evicts first.
    pub fn kdist(&self) -> Key {
        (self.prev, self.last)
    }
}

/// Partition-local state. The manager wraps each partition in a latch.
#[derive(Debug)]
pub struct Partition {
    /// First global SSD frame number owned by this partition.
    base_frame: u64,
    records: Vec<Option<Record>>,
    map: HashMap<PageId, usize>,
    free: Vec<usize>,
    heap: DualHeap,
    dirty: usize,
}

impl Partition {
    pub fn new(base_frame: u64, frames: usize) -> Self {
        Partition {
            base_frame,
            records: vec![None; frames],
            map: HashMap::with_capacity(frames),
            free: (0..frames).rev().collect(),
            heap: DualHeap::new(frames),
            dirty: 0,
        }
    }

    /// Frames in this partition.
    pub fn capacity(&self) -> usize {
        self.records.len()
    }

    /// Cached pages in this partition.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unoccupied frames.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Dirty pages in this partition.
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// Global SSD frame number of record `idx`.
    pub fn frame_no(&self, idx: usize) -> u64 {
        self.base_frame + idx as u64
    }

    /// Record index holding `pid`, if cached.
    pub fn lookup(&self, pid: PageId) -> Option<usize> {
        self.map.get(&pid).copied()
    }

    /// The record at `idx` (must be occupied).
    pub fn record(&self, idx: usize) -> &Record {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        self.records[idx].as_ref().expect("occupied record")
    }

    /// Record an SSD access to `idx` at `stamp`, repositioning it in its
    /// heap.
    pub fn touch(&mut self, idx: usize, stamp: u64) {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        let r = self.records[idx].as_mut().expect("occupied record");
        r.prev = r.last;
        r.last = stamp;
        let key = r.kdist();
        self.heap.update(idx, key);
    }

    /// Cache `pid` in a free frame; returns the record index, or `None`
    /// when the partition is full (caller must evict first).
    pub fn insert(&mut self, pid: PageId, dirty: bool, stamp: u64) -> Option<usize> {
        debug_assert!(!self.map.contains_key(&pid), "page {pid} already cached");
        let idx = self.free.pop()?;
        let rec = Record {
            pid,
            dirty,
            last: stamp,
            prev: 0,
        };
        self.records[idx] = Some(rec);
        self.map.insert(pid, idx);
        self.heap.insert(
            if dirty { Side::Dirty } else { Side::Clean },
            rec.kdist(),
            idx,
        );
        if dirty {
            self.dirty += 1;
        }
        Some(idx)
    }

    /// Cache `pid` in a *specific* frame (warm-restart import). Returns
    /// false if that frame is not free. Only clean pages are importable.
    pub fn insert_at(&mut self, idx: usize, pid: PageId, stamp: u64) -> bool {
        if self.records[idx].is_some() || self.map.contains_key(&pid) {
            return false;
        }
        let Some(pos) = self.free.iter().position(|&f| f == idx) else {
            return false;
        };
        self.free.swap_remove(pos);
        let rec = Record {
            pid,
            dirty: false,
            last: stamp,
            prev: 0,
        };
        self.records[idx] = Some(rec);
        self.map.insert(pid, idx);
        self.heap.insert(Side::Clean, rec.kdist(), idx);
        true
    }

    /// Remove record `idx`, freeing its frame; returns the record.
    pub fn remove(&mut self, idx: usize) -> Record {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        let rec = self.records[idx].take().expect("occupied record");
        self.map.remove(&rec.pid);
        self.heap.remove(idx);
        self.free.push(idx);
        if rec.dirty {
            self.dirty -= 1;
        }
        rec
    }

    /// Remove record `idx` from the table and heaps *without* freeing its
    /// frame: the frame stays reserved (invisible to `insert`) while the
    /// caller finishes deferred I/O against its bytes outside the latch,
    /// then hands it back with [`Self::release`].
    pub fn detach(&mut self, idx: usize) -> Record {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        let rec = self.records[idx].take().expect("occupied record");
        self.map.remove(&rec.pid);
        self.heap.remove(idx);
        if rec.dirty {
            self.dirty -= 1;
        }
        rec
    }

    /// Return a frame detached by [`Self::detach`] to the free list.
    pub fn release(&mut self, idx: usize) {
        debug_assert!(self.records[idx].is_none(), "release of occupied frame");
        self.free.push(idx);
    }

    /// The LRU-2 replacement victim among *clean* pages.
    pub fn peek_clean_victim(&self) -> Option<(Key, usize)> {
        self.heap.peek_min(Side::Clean)
    }

    /// The oldest *dirty* page — the next one the lazy cleaner flushes.
    pub fn peek_dirty_oldest(&self) -> Option<(Key, usize)> {
        self.heap.peek_min(Side::Dirty)
    }

    /// Mark a dirty record clean (the cleaner flushed it); it moves to the
    /// clean heap and becomes a replacement candidate.
    pub fn set_clean(&mut self, idx: usize) {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        let r = self.records[idx].as_mut().expect("occupied record");
        if r.dirty {
            r.dirty = false;
            self.dirty -= 1;
            self.heap.change_side(idx, Side::Clean);
        }
    }

    /// Mark a clean record dirty (a dirty eviction overwrote a clean copy).
    pub fn set_dirty(&mut self, idx: usize) {
        // lint: allow(panic) — documented contract: idx comes from lookup/insert and is occupied.
        let r = self.records[idx].as_mut().expect("occupied record");
        if !r.dirty {
            r.dirty = true;
            self.dirty += 1;
            self.heap.change_side(idx, Side::Dirty);
        }
    }

    /// Iterate over occupied records as `(idx, &Record)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Record)> {
        self.records
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|rec| (i, rec)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let mut p = Partition::new(100, 4);
        let idx = p.insert(PageId(7), false, 1).unwrap();
        assert_eq!(p.frame_no(idx), 100 + idx as u64);
        assert_eq!(p.lookup(PageId(7)), Some(idx));
        assert_eq!(p.len(), 1);
        let rec = p.remove(idx);
        assert_eq!(rec.pid, PageId(7));
        assert_eq!(p.lookup(PageId(7)), None);
        assert_eq!(p.free_frames(), 4);
    }

    #[test]
    fn full_partition_rejects_insert() {
        let mut p = Partition::new(0, 2);
        assert!(p.insert(PageId(1), false, 1).is_some());
        assert!(p.insert(PageId(2), false, 2).is_some());
        assert!(p.insert(PageId(3), false, 3).is_none());
    }

    #[test]
    fn clean_victim_is_lru2_minimum() {
        let mut p = Partition::new(0, 4);
        let a = p.insert(PageId(1), false, 1).unwrap();
        let b = p.insert(PageId(2), false, 2).unwrap();
        // Page 1 re-accessed twice: hot.
        p.touch(a, 3);
        p.touch(a, 4);
        let (_, victim) = p.peek_clean_victim().unwrap();
        assert_eq!(victim, b, "once-touched page is the victim");
    }

    #[test]
    fn dirty_pages_live_in_the_dirty_heap() {
        let mut p = Partition::new(0, 4);
        let d = p.insert(PageId(1), true, 1).unwrap();
        let _c = p.insert(PageId(2), false, 2).unwrap();
        assert_eq!(p.dirty_count(), 1);
        assert_eq!(p.peek_dirty_oldest().unwrap().1, d);
        // Cleaning moves it to the clean side.
        p.set_clean(d);
        assert_eq!(p.dirty_count(), 0);
        assert!(p.peek_dirty_oldest().is_none());
        assert_eq!(p.peek_clean_victim().unwrap().1, d);
    }

    #[test]
    fn set_dirty_round_trip() {
        let mut p = Partition::new(0, 2);
        let idx = p.insert(PageId(1), false, 1).unwrap();
        p.set_dirty(idx);
        assert!(p.record(idx).dirty);
        assert_eq!(p.dirty_count(), 1);
        p.set_dirty(idx); // idempotent
        assert_eq!(p.dirty_count(), 1);
        p.set_clean(idx);
        p.set_clean(idx);
        assert_eq!(p.dirty_count(), 0);
    }

    #[test]
    fn detach_reserves_frame_until_release() {
        let mut p = Partition::new(0, 2);
        let a = p.insert(PageId(1), true, 1).unwrap();
        let _b = p.insert(PageId(2), false, 2).unwrap();
        let rec = p.detach(a);
        assert_eq!(rec.pid, PageId(1));
        assert_eq!(p.dirty_count(), 0);
        assert_eq!(p.lookup(PageId(1)), None);
        // Frame still reserved: the partition looks full to insert.
        assert_eq!(p.free_frames(), 0);
        assert!(p.insert(PageId(3), false, 3).is_none());
        p.release(a);
        assert_eq!(p.insert(PageId(3), false, 3), Some(a));
    }

    #[test]
    fn insert_at_claims_specific_frame() {
        let mut p = Partition::new(100, 4);
        assert!(p.insert_at(2, PageId(9), 1));
        assert_eq!(p.lookup(PageId(9)), Some(2));
        assert_eq!(p.frame_no(2), 102);
        assert!(!p.insert_at(2, PageId(10), 2), "occupied frame");
        assert!(!p.insert_at(3, PageId(9), 2), "page already cached");
        assert_eq!(p.free_frames(), 3);
    }

    #[test]
    fn iter_sees_occupied_only() {
        let mut p = Partition::new(0, 4);
        let a = p.insert(PageId(1), false, 1).unwrap();
        p.insert(PageId(2), true, 2).unwrap();
        p.remove(a);
        let pids: Vec<u64> = p.iter().map(|(_, r)| r.pid.0).collect();
        assert_eq!(pids, vec![2]);
    }
}
