//! The SSD manager for the paper's three designs (CW, DW, LC).
//!
//! Implements [`PageIo`], interposing the SSD between the buffer manager
//! and the disk manager. Pages enter the SSD when they are evicted from the
//! memory pool (never on read — that is TAC's flow, see `tac.rs`), guarded
//! by the admission policy (randomly-read pages only, except during the
//! aggressive-filling phase) and the throttle control. Replacement is LRU-2
//! over the clean heap; dirty pages (LC only) are protected from
//! replacement until the lazy cleaner or a checkpoint flushes them.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_bufpool::{AdmissionPolicy, AdmitVerdict, PageIo};
use turbopool_iosim::sync::{Mutex, MutexGuard};
use turbopool_iosim::{
    fault, Clk, IoError, IoErrorKind, IoManager, Locality, PageBuf, PageId, Time,
};

use crate::audit::{AuditOp, InvariantAuditor};
use crate::config::{MultiPageMode, SsdConfig, SsdDesign};
use crate::metrics::SsdMetrics;
use crate::pagebuf::PageBufPool;
use crate::partition::Partition;

/// What [`SsdManager::plan_reclaim`] decided under the partition latch.
enum Reclaimed {
    /// A clean victim was replaced; its frame is already free.
    Direct,
    /// The oldest dirty page was detached; its frame stays reserved until
    /// the caller inline-cleans it (SSD read + disk write) *outside* the
    /// latch and releases the frame.
    DirtyDeferred {
        idx: usize,
        victim: PageId,
        frame: u64,
    },
    /// Nothing reclaimable in this partition.
    Failed,
}

/// Outcome of a hardened warm import ([`SsdManager::import_table_checked`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ImportReport {
    /// Checkpointed table entries presented for re-adoption.
    pub attempted: usize,
    /// Entries re-adopted after probing clean.
    pub imported: usize,
    /// Entries rejected by the staleness filter (frame reused before the
    /// crash, page redone during recovery, or partition routing changed).
    pub rejected_stale: usize,
    /// Entries rejected because the frame's stored bytes failed their
    /// checksum when probed.
    pub rejected_checksum: usize,
    /// True when the import was aborted by a dead or persistently erroring
    /// SSD; the device is quarantined and the restart proceeds cold.
    pub aborted_dead: bool,
}

/// SSD buffer-pool manager implementing clean-write, dual-write and
/// lazy-cleaning. (TAC lives in [`crate::tac::TacCache`].)
pub struct SsdManager {
    cfg: SsdConfig,
    io: Arc<IoManager>,
    parts: Vec<Mutex<Partition>>,
    /// LRU-2 access stamp source.
    stamp: AtomicU64,
    /// Cached pages across all partitions.
    occupancy: AtomicU64,
    /// Dirty cached pages across all partitions (LC only).
    dirty_total: AtomicU64,
    /// While `now` is before this instant, dirty evictions are not cached
    /// (LC pauses dirty admission during a sharp checkpoint, §3.2).
    pause_dirty_until: AtomicU64,
    /// True once the SSD has been quarantined (device death or error
    /// budget exhausted); every path then degrades to direct-to-disk.
    quarantined: AtomicBool,
    /// SSD I/O errors observed, charged against `cfg.ssd_error_budget`.
    ssd_errors: AtomicU64,
    /// Degraded-mode decision counter driving canary probes: every
    /// `cfg.hedge_probe_interval`-th hedge-eligible decision still goes
    /// to the SSD so the fail-slow detector keeps receiving samples and
    /// can observe recovery.
    probe_tick: AtomicU64,
    /// Dirty pages whose sole (SSD) copy was lost to corruption or
    /// quarantine, awaiting WAL-tail salvage by the engine.
    stranded: Mutex<Vec<PageId>>,
    /// Admission policy qualifying pages for the SSD. The default
    /// (`AdmissionKind::DesignDefault`) is the paper's random-class rule;
    /// orthogonal gates (quarantine, throttle, hedging) run before it.
    admission: Box<dyn AdmissionPolicy>,
    /// Counters for the evaluation harnesses.
    pub metrics: SsdMetrics,
    /// Shadow state machine validating every buffer-table transition.
    auditor: InvariantAuditor,
    /// Recycled page-sized staging buffers for the gather/flush path
    /// (`clean_batch`) — avoids a fresh allocation per gathered page.
    buf_pool: PageBufPool,
}

impl SsdManager {
    /// Build a manager over the SSD frames of `io`. `cfg.frames` must not
    /// exceed the frame count of the simulated SSD file.
    pub fn new(cfg: SsdConfig, io: Arc<IoManager>) -> Self {
        assert_ne!(
            cfg.design,
            SsdDesign::Tac,
            "use TacCache for the TAC design"
        );
        assert!(cfg.frames <= io.ssd_frames(), "SSD file too small");
        assert!(cfg.partitions >= 1);
        let n = cfg.partitions as u64;
        let per = cfg.frames / n;
        let extra = cfg.frames % n;
        let mut parts = Vec::with_capacity(cfg.partitions);
        let mut base = 0u64;
        for i in 0..n {
            let frames = per + u64::from(i < extra);
            parts.push(Mutex::new(Partition::new(base, frames as usize)));
            base += frames;
        }
        let auditor = InvariantAuditor::new(cfg.design);
        // Retain at most one batch's worth of staging buffers (α pages).
        let buf_pool = PageBufPool::new(io.page_size(), cfg.alpha as usize);
        let admission = cfg.admission.build(cfg.frames as usize);
        SsdManager {
            admission,
            cfg,
            io,
            parts,
            stamp: AtomicU64::new(0),
            occupancy: AtomicU64::new(0),
            dirty_total: AtomicU64::new(0),
            pause_dirty_until: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            ssd_errors: AtomicU64::new(0),
            probe_tick: AtomicU64::new(0),
            stranded: Mutex::new(Vec::new()),
            metrics: SsdMetrics::default(),
            auditor,
            buf_pool,
        }
    }

    /// True once the SSD is quarantined and the manager runs degraded
    /// (every subsequent request takes the direct-to-disk path).
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Drain the list of dirty pages whose sole (SSD) copy was lost. The
    /// engine must replay the committed WAL tail onto disk before trusting
    /// the disk image of these pages again.
    pub fn take_stranded(&self) -> Vec<PageId> {
        std::mem::take(&mut *self.stranded.lock())
    }

    /// True while `pid` is queued for WAL salvage: its disk image is stale
    /// (or nonexistent), so serving it from disk would silently return the
    /// wrong bytes. Reads of such pages must error instead, which routes
    /// the caller through [`SsdManager::take_stranded`] + salvage first.
    fn is_stranded(&self, pid: PageId) -> bool {
        self.stranded.lock().contains(&pid)
    }

    /// The error returned for reads of stranded-pending pages.
    fn stranded_err(&self, at: Time) -> IoError {
        IoError::new(fault::FaultDevice::Ssd, IoErrorKind::DeviceDead, at)
    }

    /// Record one SSD I/O error; quarantine on device death or once the
    /// error budget is exhausted. Must not be called while a partition
    /// latch is held (quarantine sweeps every partition).
    fn note_ssd_error(&self, e: &IoError) {
        SsdMetrics::bump(&self.metrics.ssd_io_errors);
        if e.kind == IoErrorKind::ChecksumMismatch {
            SsdMetrics::bump(&self.metrics.checksum_misses);
        }
        let seen = self.ssd_errors.fetch_add(1, Ordering::Relaxed) + 1;
        if e.kind == IoErrorKind::DeviceDead || seen > self.cfg.ssd_error_budget {
            self.quarantine();
        }
    }

    /// Degrade to the noSSD path: drop the whole buffer table (each live
    /// entry takes the terminal `Quarantine` transition), queue dirty
    /// pages for WAL salvage, and refuse all future SSD traffic.
    fn quarantine(&self) {
        if self.quarantined.swap(true, Ordering::SeqCst) {
            return;
        }
        SsdMetrics::bump(&self.metrics.ssd_quarantined);
        for i in 0..self.parts.len() {
            let mut part = self.part_at(i);
            let idxs: Vec<usize> = part.iter().map(|(idx, _)| idx).collect();
            let mut recs = Vec::with_capacity(idxs.len());
            for idx in idxs {
                recs.push(part.remove(idx));
            }
            drop(part);
            for rec in recs {
                self.audit(rec.pid, AuditOp::Quarantine);
                self.occupancy.fetch_sub(1, Ordering::Relaxed);
                SsdMetrics::bump(&self.metrics.lost_frames);
                if rec.dirty {
                    self.dirty_total.fetch_sub(1, Ordering::Relaxed);
                    SsdMetrics::bump(&self.metrics.stranded_dirty);
                    self.stranded.lock().push(rec.pid);
                }
            }
        }
    }

    /// The SSD copy of `pid` is unusable: drop the table entry. A dirty
    /// copy was the only current version of the page, so it is additionally
    /// stranded for WAL salvage. No-op if quarantine already swept it.
    fn drop_corrupt(&self, pid: PageId) {
        let mut part = self.part(pid);
        let Some(idx) = part.lookup(pid) else {
            return;
        };
        let rec = part.remove(idx);
        drop(part);
        self.audit(pid, AuditOp::CorruptInvalidate);
        self.occupancy.fetch_sub(1, Ordering::Relaxed);
        SsdMetrics::bump(&self.metrics.lost_frames);
        if rec.dirty {
            self.dirty_total.fetch_sub(1, Ordering::Relaxed);
            SsdMetrics::bump(&self.metrics.stranded_dirty);
            self.stranded.lock().push(pid);
        }
    }

    /// SSD frame read with transient-error retries on `clk`. The final
    /// error (checksum mismatch, device death, or retries exhausted) is
    /// returned for the caller to classify.
    fn ssd_read(&self, clk: &mut Clk, frame: u64, buf: &mut [u8]) -> Result<(), IoError> {
        let (retries, out) =
            fault::retry_sync_with(&self.cfg.retry, clk, |c| self.io.read_ssd(c, frame, buf));
        SsdMetrics::add(&self.metrics.ssd_retries, u64::from(retries));
        out
    }

    /// Synchronous disk read with the standard capped-backoff retry policy;
    /// retry attempts are accounted in the metrics.
    fn disk_read(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError> {
        let (retries, out) = fault::retry_sync_with(&self.cfg.retry, clk, |c| {
            self.io.read_disk(c, pid, buf, class)
        });
        SsdMetrics::add(&self.metrics.disk_retries, u64::from(retries));
        out
    }

    /// Multi-page disk read with the standard retry policy.
    fn disk_read_run(
        &self,
        clk: &mut Clk,
        first: PageId,
        n: u64,
        loc: Locality,
    ) -> Result<Vec<PageBuf>, IoError> {
        let (retries, out) = fault::retry_sync_with(&self.cfg.retry, clk, |c| {
            self.io.read_disk_run(c, first, n, loc)
        });
        SsdMetrics::add(&self.metrics.disk_retries, u64::from(retries));
        out
    }

    /// Asynchronous disk write that must not drop data: transient errors
    /// retry without bound; only a dead disk — unrecoverable by any policy
    /// — falls through, and then there is nowhere left to persist to. The
    /// IoManager records the lost write so later readers surface the
    /// device error instead of treating the page as never-written.
    fn disk_write(&self, now: Time, pid: PageId, data: &[u8]) {
        if let Err(e) = fault::retry_write_forever(|| {
            self.io.write_disk_async(now, pid, data, Locality::Random)
        }) {
            debug_assert!(!e.is_transient());
        }
    }

    /// Invariant violations caught so far (see [`InvariantAuditor`]).
    pub fn audit_violations(&self) -> u64 {
        self.auditor.violations()
    }

    /// Report a buffer-table transition to the auditor. Violations are
    /// counted in the metrics and abort debug builds immediately.
    fn audit(&self, pid: PageId, op: AuditOp) {
        if let Err(e) = self.auditor.observe(pid, op) {
            SsdMetrics::bump(&self.metrics.audit_violations);
            if cfg!(debug_assertions) {
                // lint: allow(panic) — the auditor's whole point: fail the
                // test run at the first illegal state-machine transition.
                panic!("SSD buffer-table invariant violated: {e} (pid {pid})");
            }
        }
    }

    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Pages currently cached.
    pub fn occupancy(&self) -> u64 {
        self.occupancy.load(Ordering::Relaxed)
    }

    /// Dirty pages currently cached (nonzero only under LC).
    pub fn dirty_count(&self) -> u64 {
        self.dirty_total.load(Ordering::Relaxed)
    }

    /// True if `pid` is cached.
    pub fn contains(&self, pid: PageId) -> bool {
        let part = self.part(pid);
        part.lookup(pid).is_some()
    }

    /// SSD frame number holding `pid`, if cached (introspection for tests
    /// and tools; the frame indexes the simulated SSD file).
    pub fn frame_of(&self, pid: PageId) -> Option<u64> {
        let part = self.part(pid);
        part.lookup(pid).map(|idx| part.frame_no(idx))
    }

    /// True if `pid` is cached dirty (its SSD copy is newer than disk).
    pub fn is_dirty(&self, pid: PageId) -> bool {
        let part = self.part(pid);
        part.lookup(pid)
            .map(|idx| part.record(idx).dirty)
            .unwrap_or(false)
    }

    #[inline]
    fn part_index(&self, pid: PageId) -> usize {
        // Multiplicative (Fibonacci) hash routes each page to one fixed
        // partition, preserving the shared-hash-table single-home property.
        let h = pid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.parts.len()
    }

    fn part(&self, pid: PageId) -> MutexGuard<'_, Partition> {
        self.part_at(self.part_index(pid))
    }

    /// Acquire partition `idx`'s latch, counting the acquisition and
    /// whether it was contended (latch held by another OS thread at that
    /// instant). Both counters are pure functions of the op sequence in
    /// deterministic driver runs (contended is then always 0).
    fn part_at(&self, idx: usize) -> MutexGuard<'_, Partition> {
        SsdMetrics::bump(&self.metrics.shard_acquisitions);
        if let Some(g) = self.parts[idx].try_lock() {
            return g;
        }
        SsdMetrics::bump(&self.metrics.shard_contended);
        self.parts[idx].lock()
    }

    fn next_stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Is the SSD queue deeper than the throttle threshold μ?
    fn throttled(&self, now: Time) -> bool {
        self.io.ssd_overloaded(now, self.cfg.mu)
    }

    /// Gray-failure hedging: is the SSD flagged fail-slow (and hedging
    /// enabled)? While true, reads with a valid disk copy and all new
    /// admissions are diverted to disk; only sole-copy dirty frames still
    /// touch the SSD.
    fn ssd_degraded(&self) -> bool {
        self.cfg.hedged_reads && self.io.ssd_slow()
    }

    /// Should this hedge-eligible decision divert away from the SSD?
    /// Healthy SSD: never. Degraded SSD: yes, except that every
    /// `cfg.hedge_probe_interval`-th decision is let through as a canary
    /// probe — without probes a fully-hedged SSD would get no more
    /// samples and the detector could never observe recovery. Once a
    /// probe comes back fast the detector reports `clearing` and every
    /// decision probes, so the clear streak completes (or is refuted) in
    /// `clear_after` requests instead of `clear_after × interval`. The
    /// tick advances in deterministic submission order, so replay is
    /// exact.
    fn hedge_or_probe(&self) -> bool {
        if !self.ssd_degraded() {
            return false;
        }
        if self.io.ssd_clearing() {
            return false;
        }
        let n = self.cfg.hedge_probe_interval;
        if n == 0 {
            return true;
        }
        let t = self.probe_tick.fetch_add(1, Ordering::Relaxed);
        t % n != n - 1
    }

    /// Outstanding requests on the disk group (congestion signal for the
    /// lazy cleaner).
    pub fn disk_queue_depth(&self, now: Time) -> usize {
        self.io.disk_queue_depth(now)
    }

    /// Aggressive filling (§3.3.1): until the SSD is τ-full, everything is
    /// admitted.
    fn filling(&self) -> bool {
        self.occupancy() < self.cfg.fill_target()
    }

    /// Cache `data` for `pid`, evicting an SSD victim if necessary.
    /// The caller has verified admission; this only handles placement.
    fn install(&self, now: Time, pid: PageId, data: &[u8], dirty: bool) {
        if self.is_quarantined() {
            if dirty {
                self.disk_write(now, pid, data);
            }
            return;
        }
        let mut pending: Option<IoError> = None;
        let mut reclaim_stranded: Option<PageId> = None;
        let mut part = self.part(pid);
        if part.free_frames() == 0 {
            match self.plan_reclaim(&mut part) {
                Reclaimed::Direct => {}
                Reclaimed::DirtyDeferred { idx, victim, frame } => {
                    // The victim's frame stays reserved (invisible to
                    // `insert`) until released, so its bytes cannot be
                    // overwritten before the inline clean reads them —
                    // which lets the SSD read and disk write run outside
                    // the partition latch.
                    drop(part);
                    self.inline_clean_detached(
                        now,
                        victim,
                        frame,
                        &mut pending,
                        &mut reclaim_stranded,
                    );
                    part = self.part(pid);
                    part.release(idx);
                }
                Reclaimed::Failed => {
                    // Nothing reclaimable in this partition (it is empty —
                    // impossible here since free_frames() == 0 — or every
                    // heap is drained): skip the admission, but a dirty
                    // page must still land somewhere durable.
                    drop(part);
                    self.settle_reclaim(pending, reclaim_stranded);
                    if dirty {
                        self.disk_write(now, pid, data);
                    }
                    return;
                }
            }
        }
        let stamp = self.next_stamp();
        // lint: allow(panic) — guarded by the free-frame check above; the partition cannot be full here.
        let idx = part.insert(pid, dirty, stamp).expect("frame available");
        let frame = part.frame_no(idx);
        drop(part);
        // Write first, admit on success: a failed SSD write must not leave
        // a table entry pointing at never-written frame bytes. (Torn and
        // bit-flipped writes still return Ok — that is silent corruption,
        // caught by the frame checksum on a later read.)
        match self.io.write_ssd_async(now, frame, data, pid) {
            Ok(_done) => {
                self.audit(pid, AuditOp::Admit { dirty });
                self.occupancy.fetch_add(1, Ordering::Relaxed);
                if dirty {
                    self.dirty_total.fetch_add(1, Ordering::Relaxed);
                }
                SsdMetrics::bump(&self.metrics.admissions);
                if self.filling() {
                    SsdMetrics::bump(&self.metrics.fill_admissions);
                }
            }
            Err(e) => {
                // Back the insert out before the error accounting: if the
                // budget trips, the quarantine sweep must not find (and
                // audit) an entry that was never admitted.
                let mut part = self.part(pid);
                if let Some(idx) = part.lookup(pid) {
                    part.remove(idx);
                }
                drop(part);
                self.note_ssd_error(&e);
                if dirty {
                    self.disk_write(now, pid, data);
                }
            }
        }
        // Deferred reclaim accounting runs last: if it trips the budget,
        // the quarantine sweep finds only properly-admitted entries.
        self.settle_reclaim(pending, reclaim_stranded);
    }

    /// Flush bookkeeping deferred by the reclaim path (which starts under
    /// the partition latch and therefore cannot touch the error budget or
    /// the stranded queue itself).
    fn settle_reclaim(&self, pending: Option<IoError>, stranded: Option<PageId>) {
        if let Some(pid) = stranded {
            self.stranded.lock().push(pid);
            SsdMetrics::bump(&self.metrics.stranded_dirty);
            SsdMetrics::bump(&self.metrics.lost_frames);
        }
        if let Some(e) = pending {
            self.note_ssd_error(&e);
        }
    }

    /// Free one frame in `part` by LRU-2 replacement from the clean heap;
    /// falls back to *detaching* the oldest dirty page when every page is
    /// dirty (LC under extreme λ). Pure bookkeeping — it runs entirely
    /// under the partition latch and performs no I/O; a `DirtyDeferred`
    /// result obliges the caller to inline-clean the detached victim
    /// (outside the latch) and then release its frame.
    fn plan_reclaim(&self, part: &mut Partition) -> Reclaimed {
        if let Some((_, victim)) = part.peek_clean_victim() {
            let rec = part.remove(victim);
            self.audit(rec.pid, AuditOp::Replace);
            self.occupancy.fetch_sub(1, Ordering::Relaxed);
            SsdMetrics::bump(&self.metrics.replacements);
            // Ghost-qualifying policies give replaced pages a fast path
            // back in (no-op for the default). Lock order: `parts` is
            // held; the policy's internal `ghost` lock is a leaf.
            self.admission.note_evicted(rec.pid);
            return Reclaimed::Direct;
        }
        // All pages dirty: detach the oldest for inline cleaning.
        if let Some((_, oldest)) = part.peek_dirty_oldest() {
            let rec = part.detach(oldest);
            self.occupancy.fetch_sub(1, Ordering::Relaxed);
            self.dirty_total.fetch_sub(1, Ordering::Relaxed);
            SsdMetrics::bump(&self.metrics.replacements);
            self.admission.note_evicted(rec.pid);
            return Reclaimed::DirtyDeferred {
                idx: oldest,
                victim: rec.pid,
                frame: part.frame_no(oldest),
            };
        }
        Reclaimed::Failed
    }

    /// Inline-clean a victim detached by [`Self::plan_reclaim`]: read its
    /// sole copy off the SSD and write it to disk (both charged
    /// asynchronously since eviction is async). Must be called *without*
    /// the partition latch; the detached frame still holds the bytes.
    fn inline_clean_detached(
        &self,
        now: Time,
        victim: PageId,
        frame: u64,
        pending: &mut Option<IoError>,
        stranded_out: &mut Option<PageId>,
    ) {
        let mut buf = self.buf_pool.lease();
        let mut tmp = Clk::at(now);
        match self.ssd_read(&mut tmp, frame, &mut buf) {
            Ok(()) => {
                self.disk_write(tmp.now, victim, &buf);
                self.audit(victim, AuditOp::InlineClean);
                SsdMetrics::bump(&self.metrics.inline_cleans);
            }
            Err(e) => {
                // The dirty victim's sole copy is unreadable: the frame is
                // still freed, but the page is stranded for WAL salvage
                // instead of cleaned to disk.
                self.audit(victim, AuditOp::CorruptInvalidate);
                *pending = Some(e);
                *stranded_out = Some(victim);
            }
        }
    }

    /// Export the SSD buffer table for embedding in a checkpoint record
    /// (the warm-restart extension). Must be called right after a sharp
    /// checkpoint, when every cached page is clean — dirty entries are
    /// skipped defensively.
    pub fn export_table(&self) -> Vec<(PageId, u64)> {
        let mut out = Vec::with_capacity(self.occupancy() as usize);
        for i in 0..self.parts.len() {
            let part = self.part_at(i);
            out.extend(
                part.iter()
                    .filter(|(_, r)| !r.dirty)
                    .map(|(idx, r)| (r.pid, part.frame_no(idx))),
            );
        }
        out
    }

    /// Re-adopt checkpointed SSD buffer-table entries after a restart.
    ///
    /// `valid(pid, frame)` is the caller's staleness filter: it must
    /// return true only when the frame's in-page header still names `pid`
    /// (the frame was not reused before the crash) and `pid`'s disk image
    /// did not advance during redo. Returns the number of imported pages.
    pub fn import_table(
        &self,
        entries: &[(PageId, u64)],
        valid: impl Fn(PageId, u64) -> bool,
    ) -> usize {
        let mut imported = 0usize;
        for &(pid, frame) in entries {
            if !valid(pid, frame) {
                continue;
            }
            // The frame must belong to the partition that pid routes to
            // (it does unless the partition count changed across restart).
            let part_idx = self.part_index(pid);
            let mut part = self.part_at(part_idx);
            let base = part.frame_no(0);
            let cap = part.capacity() as u64;
            if frame < base || frame >= base + cap {
                continue;
            }
            let stamp = self.next_stamp();
            if part.insert_at((frame - base) as usize, pid, stamp) {
                drop(part);
                self.audit(pid, AuditOp::WarmImport);
                imported += 1;
                self.occupancy.fetch_add(1, Ordering::Relaxed);
                SsdMetrics::bump(&self.metrics.warm_imports);
            }
        }
        imported
    }

    /// Hardened re-adoption: like [`SsdManager::import_table`], but every
    /// candidate frame is *probed* — read back through the fault model with
    /// the standard retry policy and checksum verification — before the
    /// table entry is trusted.
    ///
    /// Damage found during the probe degrades gracefully instead of being
    /// re-adopted: a checksum mismatch rejects that one frame (torn write
    /// or bit flip from the previous incarnation), while a device-level
    /// failure (death, retries exhausted) quarantines the SSD and aborts
    /// the whole import — the restart proceeds cold rather than fighting a
    /// failing device during recovery.
    pub fn import_table_checked(
        &self,
        clk: &mut Clk,
        entries: &[(PageId, u64)],
        valid: impl Fn(PageId, u64) -> bool,
    ) -> ImportReport {
        let mut rep = ImportReport {
            attempted: entries.len(),
            ..ImportReport::default()
        };
        let mut buf = self.buf_pool.lease();
        for &(pid, frame) in entries {
            if self.is_quarantined() {
                rep.aborted_dead = true;
                break;
            }
            if !valid(pid, frame) {
                rep.rejected_stale += 1;
                SsdMetrics::bump(&self.metrics.warm_rejected_stale);
                continue;
            }
            match self.ssd_read(clk, frame, &mut buf) {
                Ok(()) => {}
                Err(e) if e.kind == IoErrorKind::ChecksumMismatch => {
                    // The frame's bytes are damaged (torn write or bit flip
                    // that straddled the crash). Reject just this entry;
                    // the page's disk image is still current.
                    self.note_ssd_error(&e);
                    rep.rejected_checksum += 1;
                    SsdMetrics::bump(&self.metrics.warm_rejected_checksum);
                    continue;
                }
                Err(e) => {
                    // Dead or persistently erroring device: quarantine and
                    // abort the import. Nothing was re-adopted from the
                    // unprobed remainder, so the restart is simply cold.
                    self.note_ssd_error(&e);
                    self.quarantine();
                    rep.aborted_dead = true;
                    break;
                }
            }
            let part_idx = self.part_index(pid);
            let mut part = self.part_at(part_idx);
            let base = part.frame_no(0);
            let cap = part.capacity() as u64;
            if frame < base || frame >= base + cap {
                drop(part);
                rep.rejected_stale += 1;
                SsdMetrics::bump(&self.metrics.warm_rejected_stale);
                continue;
            }
            let stamp = self.next_stamp();
            if part.insert_at((frame - base) as usize, pid, stamp) {
                drop(part);
                self.audit(pid, AuditOp::WarmImport);
                rep.imported += 1;
                self.occupancy.fetch_add(1, Ordering::Relaxed);
                SsdMetrics::bump(&self.metrics.warm_imports);
            }
        }
        rep
    }

    /// One lazy-cleaning batch (§3.3.5): take the oldest dirty page, gather
    /// up to α dirty pages at consecutive disk addresses around it, read
    /// them from the SSD and write them to disk as one I/O. Returns the
    /// number of pages cleaned (0 = no dirty pages).
    ///
    /// Called by [`crate::cleaner::LazyCleaner`] while the dirty count is
    /// above the λ high-water mark, and usable directly by tests.
    pub fn clean_batch(&self, clk: &mut Clk) -> usize {
        if self.is_quarantined() {
            return 0;
        }
        // Globally oldest dirty page.
        let mut anchor: Option<(u64, u64, PageId)> = None;
        for i in 0..self.parts.len() {
            let part = self.part_at(i);
            if let Some((key, idx)) = part.peek_dirty_oldest() {
                let pid = part.record(idx).pid;
                if anchor.map(|(k0, k1, _)| key < (k0, k1)).unwrap_or(true) {
                    anchor = Some((key.0, key.1, pid));
                }
            }
        }
        let Some((_, _, anchor_pid)) = anchor else {
            return 0;
        };

        // Gather a maximal consecutive-pid run of dirty pages around the
        // anchor, capped at α.
        let is_dirty_cached = |pid: PageId| -> bool {
            if pid.0 >= self.io.db_pages() {
                return false;
            }
            let part = self.part(pid);
            part.lookup(pid)
                .map(|idx| part.record(idx).dirty)
                .unwrap_or(false)
        };
        let mut lo = anchor_pid;
        let mut hi = anchor_pid; // inclusive
        let mut count = 1u64;
        while count < self.cfg.alpha
            && hi.0 + 1 < self.io.db_pages()
            && is_dirty_cached(hi.offset(1))
        {
            hi = hi.offset(1);
            count += 1;
        }
        while count < self.cfg.alpha && lo.0 > 0 && is_dirty_cached(PageId(lo.0 - 1)) {
            lo = PageId(lo.0 - 1);
            count += 1;
        }

        // Read each page from the SSD into memory (no direct SSD→disk path
        // exists, §2.4), write the gathered pages to disk, and only then
        // mark them clean — a page whose read or write fails must stay
        // dirty (or be stranded) rather than silently lose its contents.
        let mut pids: Vec<PageId> = Vec::with_capacity(count as usize);
        let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(count as usize);
        for i in 0..count {
            let pid = lo.offset(i);
            let frame = {
                let part = self.part(pid);
                let Some(idx) = part.lookup(pid) else {
                    // A quarantine sweep (triggered by an earlier read in
                    // this very batch) may have emptied the table.
                    continue;
                };
                part.frame_no(idx)
            };
            let mut buf = self.buf_pool.take();
            match self.ssd_read(clk, frame, &mut buf) {
                Ok(()) => {
                    pids.push(pid);
                    bufs.push(buf);
                }
                Err(e) => {
                    self.buf_pool.put(buf);
                    self.note_ssd_error(&e);
                    self.drop_corrupt(pid);
                }
            }
        }
        let (cleaned, writes) = self.flush_gathered(clk, &pids, &bufs);
        for buf in bufs {
            self.buf_pool.put(buf);
        }
        SsdMetrics::add(&self.metrics.cleaned_pages, cleaned as u64);
        SsdMetrics::add(&self.metrics.cleaner_writes, writes as u64);
        cleaned
    }

    /// Write the gathered `(pid, buf)` pages to disk in consecutive-pid
    /// runs, waiting out each write, and mark every written page clean.
    /// Returns `(pages cleaned, run writes issued)`. Pages are left dirty
    /// when the disk is dead (nothing can persist them).
    fn flush_gathered(&self, clk: &mut Clk, pids: &[PageId], bufs: &[Vec<u8>]) -> (usize, usize) {
        let mut cleaned = 0usize;
        let mut writes = 0usize;
        let mut i = 0usize;
        while i < pids.len() {
            let mut j = i + 1;
            while j < pids.len() && pids[j].0 == pids[j - 1].0 + 1 {
                j += 1;
            }
            let slices: Vec<&[u8]> = bufs[i..j].iter().map(|b| b.as_slice()).collect();
            match fault::retry_write_forever(|| {
                self.io.write_disk_run_async(clk.now, pids[i], &slices)
            }) {
                Ok(done) => {
                    clk.wait_until(done);
                    writes += 1;
                    for pid in &pids[i..j] {
                        let mut was_dirty = false;
                        let mut part = self.part(*pid);
                        if let Some(idx) = part.lookup(*pid) {
                            if part.record(idx).dirty {
                                part.set_clean(idx);
                                was_dirty = true;
                            }
                        }
                        drop(part);
                        if was_dirty {
                            self.audit(*pid, AuditOp::Clean);
                            self.dirty_total.fetch_sub(1, Ordering::Relaxed);
                            cleaned += 1;
                        }
                    }
                }
                Err(_) => {
                    // Dead disk: the pages stay dirty on the SSD and there
                    // is no completion to wait on.
                }
            }
            i = j;
        }
        (cleaned, writes)
    }

    /// Plan entry for one page of a multi-page request.
    fn run_status(&self, pid: PageId) -> Option<(u64, bool)> {
        let part = self.part(pid);
        part.lookup(pid)
            .map(|idx| (part.frame_no(idx), part.record(idx).dirty))
    }

    /// Read one page from its SSD frame onto a temporary clock starting at
    /// `start`; returns the completion time. On SSD failure the entry is
    /// dropped: a clean copy falls back to a single-page disk read, a
    /// dirty (sole-copy) loss propagates so the engine can WAL-salvage.
    fn patch_from_ssd(
        &self,
        start: Time,
        pid: PageId,
        frame: u64,
        dirty: bool,
        buf: &mut [u8],
    ) -> Result<Time, IoError> {
        let mut tmp = Clk::at(start);
        match self.ssd_read(&mut tmp, frame, buf) {
            Ok(()) => {
                let mut part = self.part(pid);
                if let Some(idx) = part.lookup(pid) {
                    let stamp = self.next_stamp();
                    part.touch(idx, stamp);
                }
                SsdMetrics::bump(&self.metrics.ssd_hits);
                Ok(tmp.now)
            }
            Err(e) => {
                self.note_ssd_error(&e);
                self.drop_corrupt(pid);
                if dirty {
                    return Err(e);
                }
                let mut tmp = Clk::at(start);
                self.disk_read(&mut tmp, pid, Locality::Random, buf)?;
                Ok(tmp.now)
            }
        }
    }
}

impl PageIo for SsdManager {
    fn read_page(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError> {
        if self.is_quarantined() {
            if self.is_stranded(pid) {
                // The disk image is stale until the WAL tail is replayed;
                // serving it would silently lose committed writes.
                return Err(self.stranded_err(clk.now));
            }
            SsdMetrics::bump(&self.metrics.quarantined_reads);
            SsdMetrics::bump(&self.metrics.ssd_misses);
            return self.disk_read(clk, pid, class, buf);
        }
        let hit: Option<(u64, bool)> = {
            let mut part = self.part(pid);
            match part.lookup(pid) {
                Some(idx) => {
                    let dirty = part.record(idx).dirty;
                    // Throttle control (§3.3.2) and gray-failure hedging:
                    // skip the SSD when its queue exceeds μ or the
                    // fail-slow detector flags it — unless its copy is
                    // newer than disk, which must be read from the SSD
                    // for correctness no matter how slow it is.
                    if dirty {
                        let stamp = self.next_stamp();
                        part.touch(idx, stamp);
                        Some((part.frame_no(idx), true))
                    } else if self.throttled(clk.now) {
                        SsdMetrics::bump(&self.metrics.throttled_reads);
                        None
                    } else if self.hedge_or_probe() {
                        SsdMetrics::bump(&self.metrics.hedged_reads);
                        None
                    } else {
                        let stamp = self.next_stamp();
                        part.touch(idx, stamp);
                        Some((part.frame_no(idx), false))
                    }
                }
                None => None,
            }
        };
        if let Some((frame, dirty)) = hit {
            match self.ssd_read(clk, frame, buf) {
                Ok(()) => {
                    SsdMetrics::bump(&self.metrics.ssd_hits);
                    if dirty {
                        SsdMetrics::bump(&self.metrics.dirty_hits);
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.note_ssd_error(&e);
                    self.drop_corrupt(pid);
                    if dirty {
                        // The sole current copy is gone; the engine must
                        // replay the WAL tail before re-reading from disk.
                        return Err(e);
                    }
                    // A clean copy is replaceable: fall through to disk.
                }
            }
        }
        if self.is_stranded(pid) {
            // Stranded by an earlier failure (without quarantine): the disk
            // image is stale until the WAL tail is replayed.
            return Err(self.stranded_err(clk.now));
        }
        SsdMetrics::bump(&self.metrics.ssd_misses);
        self.disk_read(clk, pid, class, buf)
    }

    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<Vec<PageBuf>, IoError> {
        assert!(n > 0);
        for i in 0..n {
            if self.is_stranded(first.offset(i)) {
                // At least one page of the run awaits WAL salvage; fail
                // the whole request so the engine salvages and retries.
                return Err(self.stranded_err(clk.now));
            }
        }
        if self.is_quarantined() {
            // The table is empty, so every page below reads from disk; the
            // counter records the degradation for the harnesses.
            SsdMetrics::bump(&self.metrics.quarantined_reads);
        }
        let ps = self.io.page_size();
        let mut out: Vec<PageBuf> = (0..n).map(|_| PageBuf::zeroed(ps)).collect();
        let status: Vec<Option<(u64, bool)>> =
            (0..n).map(|i| self.run_status(first.offset(i))).collect();
        let now0 = clk.now;
        let mut done = now0;

        // Gray-failure hedging: while the SSD is flagged fail-slow its
        // clean-resident pages read from disk like misses (dirty pages
        // must still patch from the SSD — theirs is the only copy).
        let hedging = self.hedge_or_probe();
        if hedging && self.cfg.multipage != MultiPageMode::DiskOnly {
            let diverted = status
                .iter()
                .filter(|s| matches!(s, Some((_, false))))
                .count() as u64;
            SsdMetrics::add(&self.metrics.hedged_reads, diverted);
        }

        match self.cfg.multipage {
            MultiPageMode::Trim => {
                // Trimming (§3.3.3): peel SSD-resident pages off both ends,
                // read the middle as one disk I/O; dirty SSD pages inside
                // the middle are patched from the SSD afterwards.
                let throttled = self.throttled(now0) || hedging;
                let from_ssd = |s: &Option<(u64, bool)>| match s {
                    Some((_, true)) => true,
                    Some((_, false)) => !throttled,
                    None => false,
                };
                let mut lead = 0usize;
                while lead < n as usize && from_ssd(&status[lead]) {
                    lead += 1;
                }
                let mut trail = 0usize;
                while trail < n as usize - lead && from_ssd(&status[n as usize - 1 - trail]) {
                    trail += 1;
                }
                let mid = lead..(n as usize - trail);
                if !mid.is_empty() {
                    let mut tmp = Clk::at(now0);
                    let pages = self.disk_read_run(
                        &mut tmp,
                        first.offset(mid.start as u64),
                        mid.len() as u64,
                        Locality::Sequential,
                    )?;
                    done = done.max(tmp.now);
                    for (k, page) in pages.into_iter().enumerate() {
                        out[mid.start + k] = page;
                    }
                }
                for i in 0..n as usize {
                    let pid = first.offset(i as u64);
                    let in_ends = i < lead || i >= n as usize - trail;
                    match status[i] {
                        Some((frame, dirty)) if in_ends || dirty => {
                            // Trimmed end page, or a newer-than-disk middle
                            // page that must come from the SSD.
                            let t = self.patch_from_ssd(
                                now0,
                                pid,
                                frame,
                                dirty,
                                out[i].as_mut_slice(),
                            )?;
                            done = done.max(t);
                        }
                        _ => {}
                    }
                }
            }
            MultiPageMode::Split => {
                // The paper's discarded first cut: split the request at
                // every SSD-resident page; each disk fragment pays its own
                // positioning cost.
                let throttled = self.throttled(now0) || hedging;
                let mut i = 0usize;
                while i < n as usize {
                    match status[i] {
                        Some((frame, dirty)) if dirty || !throttled => {
                            let pid = first.offset(i as u64);
                            let t = self.patch_from_ssd(
                                now0,
                                pid,
                                frame,
                                dirty,
                                out[i].as_mut_slice(),
                            )?;
                            done = done.max(t);
                            i += 1;
                        }
                        _ => {
                            let seg_start = i;
                            while i < n as usize
                                && !matches!(status[i], Some((_, d)) if d || !throttled)
                            {
                                i += 1;
                            }
                            let mut tmp = Clk::at(now0);
                            let pages = self.disk_read_run(
                                &mut tmp,
                                first.offset(seg_start as u64),
                                (i - seg_start) as u64,
                                Locality::Random,
                            )?;
                            done = done.max(tmp.now);
                            for (k, page) in pages.into_iter().enumerate() {
                                out[seg_start + k] = page;
                            }
                        }
                    }
                }
            }
            MultiPageMode::DiskOnly => {
                let mut tmp = Clk::at(now0);
                let pages = self.disk_read_run(&mut tmp, first, n, Locality::Sequential)?;
                done = done.max(tmp.now);
                for (k, page) in pages.into_iter().enumerate() {
                    out[k] = page;
                }
                // Correctness: dirty SSD copies are newer than what the
                // disk returned.
                for i in 0..n as usize {
                    if let Some((frame, true)) = status[i] {
                        let pid = first.offset(i as u64);
                        let t =
                            self.patch_from_ssd(now0, pid, frame, true, out[i].as_mut_slice())?;
                        done = done.max(t);
                    }
                }
            }
        }
        clk.wait_until(done);
        Ok(out)
    }

    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, class: Locality) {
        if self.is_quarantined() {
            // Degraded noSSD path: dirty evictions go straight to disk.
            if dirty {
                self.disk_write(now, pid, data);
            }
            return;
        }
        {
            let part = self.part(pid);
            if let Some(idx) = part.lookup(pid) {
                // A valid SSD copy exists, so the evicted memory copy is
                // identical (a dirtied copy would have been invalidated).
                debug_assert!(!dirty, "dirty eviction with live SSD copy");
                debug_assert_eq!(part.record(idx).pid, pid);
                return;
            }
        }

        // For `DesignDefault` this is the paper's rule verbatim: admit
        // while filling, else random-class only.
        match self.admission.admit(pid, class, self.filling()) {
            AdmitVerdict::Admit => {}
            AdmitVerdict::AdmitGhost => {
                SsdMetrics::bump(&self.metrics.admission_ghost_hits);
            }
            AdmitVerdict::Reject => {
                SsdMetrics::bump(&self.metrics.policy_rejections);
                if dirty {
                    self.disk_write(now, pid, data);
                }
                return;
            }
        }
        let queue_full = self.throttled(now);
        if queue_full {
            SsdMetrics::bump(&self.metrics.throttled_admissions);
        }
        // Gray-failure hedging: a browned-out SSD receives no optional
        // traffic — admissions divert to disk exactly like throttling.
        // For LC this is also the sole-copy guard: a dirty eviction that
        // would have become an SSD-only copy goes to disk instead, so no
        // *new* sole copies land on a degraded device.
        let hedging = !queue_full && self.hedge_or_probe();
        if hedging {
            SsdMetrics::bump(&self.metrics.hedged_admissions);
        }
        let throttled = queue_full || hedging;

        match self.cfg.design {
            SsdDesign::CleanWrite => {
                if dirty {
                    // CW never caches dirty pages (§2.3.1).
                    self.disk_write(now, pid, data);
                } else if !throttled {
                    self.install(now, pid, data, false);
                }
            }
            SsdDesign::DualWrite => {
                // Write-through: dirty pages go to both places (§2.3.2).
                if dirty {
                    self.disk_write(now, pid, data);
                }
                if !throttled {
                    self.install(now, pid, data, false);
                }
            }
            SsdDesign::LazyCleaning => {
                let paused = now < self.pause_dirty_until.load(Ordering::Relaxed);
                if dirty && (throttled || paused) {
                    self.disk_write(now, pid, data);
                } else if !throttled {
                    // Write-back: the SSD receives the only current copy of
                    // a dirty page (§2.3.3). WAL ordering is the engine's
                    // contract: the log was flushed at commit, before the
                    // page could be evicted.
                    self.install(now, pid, data, dirty);
                }
            }
            // lint: allow(panic) — DbConfig routes Tac to TacCache; an SsdManager is never built for it.
            SsdDesign::Tac => unreachable!("TAC uses TacCache"),
        }
    }

    fn note_dirtied(&self, _now: Time, pid: PageId) {
        // Physical invalidation (§4.2): the frame returns to the free list
        // immediately, unlike TAC's logical invalidation.
        let mut part = self.part(pid);
        if let Some(idx) = part.lookup(pid) {
            let rec = part.remove(idx);
            drop(part);
            self.audit(pid, AuditOp::Invalidate);
            self.occupancy.fetch_sub(1, Ordering::Relaxed);
            if rec.dirty {
                self.dirty_total.fetch_sub(1, Ordering::Relaxed);
            }
            SsdMetrics::bump(&self.metrics.invalidations);
        }
    }

    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], class: Locality) -> Time {
        let done = match fault::retry_write_forever(|| {
            self.io.write_disk_async(now, pid, data, Locality::Random)
        }) {
            Ok(t) => t,
            // A dead disk completes nothing; there is nothing to wait on.
            Err(_) => now,
        };
        // DW extension (§3.2): during a checkpoint, admission-qualified
        // dirty pages are written to the SSD as well, filling it faster.
        // `filling = false` on purpose: the pre-trait rule was plain
        // `class == Random` with no aggressive-filling term here, and the
        // default policy must reproduce it exactly.
        if self.cfg.design == SsdDesign::DualWrite
            && {
                let v = self.admission.admit(pid, class, false);
                if v == AdmitVerdict::AdmitGhost {
                    SsdMetrics::bump(&self.metrics.admission_ghost_hits);
                }
                v.admitted()
            }
            && !self.is_quarantined()
            && !self.throttled(now)
        {
            if self.hedge_or_probe() {
                // No optional traffic to a browned-out SSD; the disk
                // write above already persisted the page.
                SsdMetrics::bump(&self.metrics.hedged_admissions);
            } else {
                let cached = {
                    let part = self.part(pid);
                    part.lookup(pid).is_some()
                };
                if !cached {
                    self.install(now, pid, data, false);
                }
            }
        }
        done
    }

    fn checkpoint_flush(&self, clk: &mut Clk) {
        if self.cfg.design != SsdDesign::LazyCleaning || self.is_quarantined() {
            return;
        }
        // Sharp checkpoint: every dirty SSD page goes to disk (§3.2).
        let mut dirty_pids: Vec<PageId> = Vec::new();
        for i in 0..self.parts.len() {
            let part = self.part_at(i);
            dirty_pids.extend(part.iter().filter(|(_, r)| r.dirty).map(|(_, r)| r.pid));
        }
        dirty_pids.sort_unstable();

        // Flush in consecutive-pid group-cleaning batches of up to α pages.
        // As in `clean_batch`, pages are marked clean only after their disk
        // write succeeds; an unreadable SSD copy strands the page instead.
        let mut total = 0usize;
        let mut i = 0usize;
        while i < dirty_pids.len() {
            let mut j = i + 1;
            while j < dirty_pids.len()
                && dirty_pids[j].0 == dirty_pids[j - 1].0 + 1
                && (j - i) < self.cfg.alpha as usize
            {
                j += 1;
            }
            let mut pids: Vec<PageId> = Vec::with_capacity(j - i);
            let mut bufs: Vec<Vec<u8>> = Vec::with_capacity(j - i);
            for pid in &dirty_pids[i..j] {
                let frame = {
                    let part = self.part(*pid);
                    let Some(idx) = part.lookup(*pid) else {
                        // Swept by a quarantine triggered earlier in this
                        // same flush.
                        continue;
                    };
                    part.frame_no(idx)
                };
                let mut buf = self.buf_pool.take();
                match self.ssd_read(clk, frame, &mut buf) {
                    Ok(()) => {
                        pids.push(*pid);
                        bufs.push(buf);
                    }
                    Err(e) => {
                        self.buf_pool.put(buf);
                        self.note_ssd_error(&e);
                        self.drop_corrupt(*pid);
                    }
                }
            }
            let (cleaned, _writes) = self.flush_gathered(clk, &pids, &bufs);
            for buf in bufs {
                self.buf_pool.put(buf);
            }
            total += cleaned;
            i = j;
        }
        SsdMetrics::add(&self.metrics.checkpoint_cleaned, total as u64);
    }

    fn has_copy(&self, pid: PageId) -> bool {
        self.contains(pid)
    }

    fn checkpoint_window(&self, _start: Time, end: Time) {
        if self.cfg.design == SsdDesign::LazyCleaning {
            self.pause_dirty_until.store(end, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::DeviceSetup;

    const PS: usize = 32;

    fn mk(design: SsdDesign, frames: u64) -> (Arc<IoManager>, Arc<SsdManager>) {
        // Single partition: page→partition routing is a hash, so tests that
        // count frames per partition would be distribution-dependent with
        // more than one.
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 1024, frames)));
        let mut cfg = SsdConfig::new(design, frames);
        cfg.partitions = 1;
        let mgr = Arc::new(SsdManager::new(cfg, Arc::clone(&io)));
        (io, mgr)
    }

    fn page(tag: u8) -> Vec<u8> {
        vec![tag; PS]
    }

    #[test]
    fn random_clean_evictions_are_cached_and_hit() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        m.evict_page(0, PageId(5), &page(0xA5), false, Locality::Random);
        assert!(m.contains(PageId(5)));
        assert_eq!(m.occupancy(), 1);
        let mut clk = Clk::new();
        let mut buf = page(0);
        m.read_page(&mut clk, PageId(5), Locality::Random, &mut buf)
            .unwrap();
        assert_eq!(buf[0], 0xA5);
        assert_eq!(m.metrics.snapshot().ssd_hits, 1);
        // The hit was served by the SSD device, not the disks.
        assert_eq!(io.disk_stats().read_ops, 0);
    }

    #[test]
    fn sequential_evictions_rejected_after_fill_phase() {
        let (_io, m) = mk(SsdDesign::DualWrite, 16);
        // Finish the filling phase first (τ = 95% of 16 = 15 frames).
        for i in 0..15u64 {
            m.evict_page(0, PageId(100 + i), &page(1), false, Locality::Sequential);
        }
        assert_eq!(m.occupancy(), 15, "aggressive filling admits everything");
        // Fill target reached: sequential pages now bounce.
        m.evict_page(0, PageId(500), &page(2), false, Locality::Sequential);
        assert!(!m.contains(PageId(500)));
        assert_eq!(m.metrics.snapshot().policy_rejections, 1);
        // Random pages still enter.
        m.evict_page(0, PageId(501), &page(3), false, Locality::Random);
        assert!(m.contains(PageId(501)));
    }

    #[test]
    fn cw_never_caches_dirty() {
        let (io, m) = mk(SsdDesign::CleanWrite, 16);
        m.evict_page(0, PageId(1), &page(9), true, Locality::Random);
        assert!(!m.contains(PageId(1)));
        assert_eq!(io.disk_stats().write_ops, 1, "dirty page went to disk");
        assert_eq!(io.ssd_stats().write_ops, 0);
    }

    #[test]
    fn dw_writes_dirty_to_both() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        m.evict_page(0, PageId(1), &page(9), true, Locality::Random);
        assert!(m.contains(PageId(1)));
        assert!(!m.is_dirty(PageId(1)), "DW's SSD copy matches disk");
        assert_eq!(io.disk_stats().write_ops, 1);
        assert_eq!(io.ssd_stats().write_ops, 1);
    }

    #[test]
    fn lc_keeps_dirty_only_on_ssd() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 16);
        m.evict_page(0, PageId(1), &page(9), true, Locality::Random);
        assert!(m.is_dirty(PageId(1)));
        assert_eq!(m.dirty_count(), 1);
        assert_eq!(io.disk_stats().write_ops, 0, "no disk write until cleaned");
        assert_eq!(io.ssd_stats().write_ops, 1);
    }

    #[test]
    fn dirtying_invalidates_physically() {
        let (_io, m) = mk(SsdDesign::DualWrite, 16);
        m.evict_page(0, PageId(1), &page(1), false, Locality::Random);
        assert_eq!(m.occupancy(), 1);
        m.note_dirtied(0, PageId(1));
        assert!(!m.contains(PageId(1)));
        assert_eq!(m.occupancy(), 0, "frame returned to the free list");
        assert_eq!(m.metrics.snapshot().invalidations, 1);
    }

    #[test]
    fn replacement_evicts_lru2_clean_victim() {
        let (_io, m) = mk(SsdDesign::DualWrite, 16);
        for i in 0..16u64 {
            m.evict_page(0, PageId(i), &page(i as u8), false, Locality::Random);
        }
        assert_eq!(m.occupancy(), 16);
        // Re-reference pages 1..16 from the SSD so page 0 is the LRU-2
        // victim, then overflow.
        let mut clk = Clk::new();
        let mut buf = page(0);
        for i in 1..16u64 {
            m.read_page(&mut clk, PageId(i), Locality::Random, &mut buf)
                .unwrap();
        }
        m.evict_page(clk.now, PageId(100), &page(0xFF), false, Locality::Random);
        assert_eq!(m.occupancy(), 16, "replacement kept occupancy constant");
        assert!(m.contains(PageId(100)));
        assert!(!m.contains(PageId(0)), "coldest page was replaced");
        assert_eq!(m.metrics.snapshot().replacements, 1);
    }

    #[test]
    fn lc_dirty_pages_survive_replacement_pressure() {
        let (_io, m) = mk(SsdDesign::LazyCleaning, 16);
        for i in 0..4u64 {
            m.evict_page(0, PageId(i), &page(1), true, Locality::Random);
        }
        // Flood with clean pages to force replacement; only clean pages may
        // be replaced while clean victims exist.
        for i in 100..140u64 {
            m.evict_page(0, PageId(i), &page(2), false, Locality::Random);
        }
        for i in 0..4u64 {
            assert!(m.is_dirty(PageId(i)), "dirty page {i} must not be dropped");
        }
        assert_eq!(m.metrics.snapshot().inline_cleans, 0);
    }

    #[test]
    fn partitioned_manager_keeps_lookups_correct() {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 1024, 64)));
        let mut cfg = SsdConfig::new(SsdDesign::DualWrite, 64);
        cfg.partitions = 16;
        let m = SsdManager::new(cfg, Arc::clone(&io));
        for i in 0..100u64 {
            // Spread evictions out so the throttle (legitimately) stays
            // disengaged.
            m.evict_page(
                i * turbopool_iosim::MILLISECOND,
                PageId(i),
                &page(i as u8),
                false,
                Locality::Random,
            );
        }
        assert!(m.occupancy() <= 64);
        let mut clk = Clk::new();
        let mut buf = page(0);
        let mut hits = 0;
        for i in 0..100u64 {
            if m.contains(PageId(i)) {
                m.read_page(&mut clk, PageId(i), Locality::Random, &mut buf)
                    .unwrap();
                assert_eq!(buf[0], i as u8, "cached copy must match");
                hits += 1;
            }
        }
        assert!(hits >= 32, "most frames should be occupied, got {hits}");
    }

    #[test]
    fn clean_batch_flushes_consecutive_run() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 64);
        for i in 10..20u64 {
            m.evict_page(0, PageId(i), &page(i as u8), true, Locality::Random);
        }
        assert_eq!(m.dirty_count(), 10);
        let mut clk = Clk::new();
        let cleaned = m.clean_batch(&mut clk);
        assert_eq!(cleaned, 10, "one batch gathers the consecutive run");
        assert_eq!(m.dirty_count(), 0);
        assert!(clk.now > 0);
        // Pages are now on disk with their contents.
        let mut buf = page(0);
        io.disk_store().read(PageId(15), &mut buf);
        assert_eq!(buf[0], 15);
        // Still cached (clean) in the SSD.
        assert!(m.contains(PageId(15)));
        assert!(!m.is_dirty(PageId(15)));
        assert_eq!(m.metrics.snapshot().cleaner_writes, 1);
    }

    #[test]
    fn clean_batch_respects_alpha() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 64);
        {
            // α = 4 for this test.
            let mut cfg = SsdConfig::new(SsdDesign::LazyCleaning, 64);
            cfg.alpha = 4;
            cfg.partitions = 1;
            let m = SsdManager::new(cfg, io);
            for i in 0..10u64 {
                m.evict_page(0, PageId(i), &page(1), true, Locality::Random);
            }
            let mut clk = Clk::new();
            assert_eq!(m.clean_batch(&mut clk), 4);
            assert_eq!(m.dirty_count(), 6);
        }
        drop(m);
    }

    #[test]
    fn checkpoint_flush_cleans_everything_dirty() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 64);
        for i in [3u64, 4, 5, 40, 41, 900] {
            m.evict_page(0, PageId(i), &page(7), true, Locality::Random);
        }
        assert_eq!(m.dirty_count(), 6);
        let mut clk = Clk::new();
        m.checkpoint_flush(&mut clk);
        assert_eq!(m.dirty_count(), 0);
        assert_eq!(m.metrics.snapshot().checkpoint_cleaned, 6);
        let mut buf = page(0);
        io.disk_store().read(PageId(900), &mut buf);
        assert_eq!(buf[0], 7);
    }

    #[test]
    fn checkpoint_window_pauses_lc_dirty_admission() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 16);
        m.checkpoint_window(0, 1_000_000);
        m.evict_page(500_000, PageId(1), &page(9), true, Locality::Random);
        assert!(
            !m.contains(PageId(1)),
            "dirty page bypassed SSD during pause"
        );
        assert_eq!(io.disk_stats().write_ops, 1);
        // After the window it caches again.
        m.evict_page(2_000_000, PageId(2), &page(9), true, Locality::Random);
        assert!(m.is_dirty(PageId(2)));
    }

    #[test]
    fn dw_checkpoint_write_mirrors_random_pages() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        m.checkpoint_write(0, PageId(1), &page(5), Locality::Random);
        assert!(m.contains(PageId(1)));
        m.checkpoint_write(0, PageId(2), &page(5), Locality::Sequential);
        assert!(!m.contains(PageId(2)));
        assert_eq!(io.disk_stats().write_ops, 2, "both went to disk");
    }

    #[test]
    fn trim_reads_middle_as_one_disk_io() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        // Pages 0 and 5 in SSD; 1..=4 on disk only.
        for pid in [0u64, 5] {
            m.evict_page(
                0,
                PageId(pid),
                &page(pid as u8 + 1),
                false,
                Locality::Random,
            );
        }
        for pid in 1..=4u64 {
            io.write_disk_async(0, PageId(pid), &page(pid as u8 + 1), Locality::Random)
                .unwrap();
        }
        io.reset_stats();
        let mut clk = Clk::new();
        let pages = m.read_run(&mut clk, PageId(0), 6).unwrap();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.as_slice()[0], i as u8 + 1, "page {i} content");
        }
        // Middle = pages 1..=4 on 4 distinct disks -> 4 member requests of
        // one striped run; 2 SSD reads for the trimmed ends.
        assert_eq!(io.ssd_stats().read_ops, 2);
        assert_eq!(io.disk_stats().read_pages, 4);
    }

    #[test]
    fn dirty_middle_page_is_patched_from_ssd() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 16);
        // Disk has old versions of pages 0..4; page 2 has a NEWER dirty
        // copy in the SSD.
        for pid in 0..5u64 {
            io.write_disk_async(0, PageId(pid), &page(0x0A), Locality::Random)
                .unwrap();
        }
        m.evict_page(0, PageId(2), &page(0xBB), true, Locality::Random);
        let mut clk = Clk::new();
        let pages = m.read_run(&mut clk, PageId(0), 5).unwrap();
        assert_eq!(pages[2].as_slice()[0], 0xBB, "must see the newer version");
        assert_eq!(pages[1].as_slice()[0], 0x0A);
    }

    #[test]
    fn split_mode_costs_more_disk_positionings_than_trim() {
        let run_time = |mode: MultiPageMode| -> Time {
            let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 1024, 64)));
            let mut cfg = SsdConfig::new(SsdDesign::DualWrite, 64);
            cfg.multipage = mode;
            cfg.partitions = 1;
            let m = SsdManager::new(cfg, Arc::clone(&io));
            // SSD-resident pages scattered inside the run: 3rd and 5th of 8
            // (the paper's example in §3.3.3).
            m.evict_page(0, PageId(2), &page(1), false, Locality::Random);
            m.evict_page(0, PageId(4), &page(1), false, Locality::Random);
            let mut clk = Clk::new();
            m.read_run(&mut clk, PageId(0), 8).unwrap();
            clk.now
        };
        let trim = run_time(MultiPageMode::Trim);
        let split = run_time(MultiPageMode::Split);
        assert!(
            split > trim,
            "splitting should be slower: split={split} trim={trim}"
        );
    }

    #[test]
    fn inline_clean_when_partition_all_dirty() {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 1024, 4)));
        let mut cfg = SsdConfig::new(SsdDesign::LazyCleaning, 4);
        cfg.partitions = 1;
        let m = SsdManager::new(cfg, Arc::clone(&io));
        for i in 0..4u64 {
            m.evict_page(0, PageId(i * 16 + 1), &page(1), true, Locality::Random);
        }
        assert_eq!(m.dirty_count(), 4);
        // A fifth dirty eviction forces an inline clean.
        m.evict_page(0, PageId(999), &page(2), true, Locality::Random);
        assert_eq!(m.metrics.snapshot().inline_cleans, 1);
        assert_eq!(m.occupancy(), 4);
        assert!(m.is_dirty(PageId(999)));
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use turbopool_iosim::fault::{FaultConfig, FaultPlan};

    #[test]
    fn ssd_death_quarantines_and_degrades_to_disk() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        // Seed the disk and the SSD with the same page.
        io.write_disk_async(0, PageId(5), &page(0xA5), Locality::Random)
            .unwrap();
        m.evict_page(0, PageId(5), &page(0xA5), false, Locality::Random);
        assert!(m.contains(PageId(5)));
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(1)));
        io.set_ssd_fault(Some(Arc::clone(&plan)));
        plan.kill(1);
        // The read sees the dead device, quarantines, and falls to disk —
        // and still returns the correct bytes.
        let mut clk = Clk::at(turbopool_iosim::SECOND);
        let mut buf = page(0);
        m.read_page(&mut clk, PageId(5), Locality::Random, &mut buf)
            .unwrap();
        assert_eq!(buf[0], 0xA5);
        assert!(m.is_quarantined());
        assert_eq!(m.occupancy(), 0, "table dropped at quarantine");
        let s = m.metrics.snapshot();
        assert_eq!(s.ssd_quarantined, 1);
        assert!(s.ssd_io_errors >= 1);
        assert_eq!(s.lost_frames, 1);
        assert_eq!(s.stranded_dirty, 0, "DW strands nothing: write-through");
        // Post-quarantine traffic bypasses the SSD entirely.
        let ssd_writes = io.ssd_stats().write_ops;
        m.evict_page(clk.now, PageId(7), &page(7), true, Locality::Random);
        let mut buf = page(0);
        m.read_page(&mut clk, PageId(7), Locality::Random, &mut buf)
            .unwrap();
        assert_eq!(buf[0], 7);
        assert_eq!(io.ssd_stats().write_ops, ssd_writes);
        assert!(m.metrics.snapshot().quarantined_reads >= 1);
    }

    #[test]
    fn lc_death_strands_dirty_pages_for_salvage() {
        let (io, m) = mk(SsdDesign::LazyCleaning, 16);
        // A dirty eviction under LC puts the SOLE current copy on the SSD.
        m.evict_page(0, PageId(3), &page(0x33), true, Locality::Random);
        assert!(m.is_dirty(PageId(3)));
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(2)));
        io.set_ssd_fault(Some(Arc::clone(&plan)));
        plan.kill(1);
        // The dirty hit cannot fall back to disk: the caller must salvage.
        let mut clk = Clk::at(turbopool_iosim::SECOND);
        let mut buf = page(0);
        let err = m
            .read_page(&mut clk, PageId(3), Locality::Random, &mut buf)
            .unwrap_err();
        assert_eq!(err.kind, IoErrorKind::DeviceDead);
        assert!(m.is_quarantined());
        assert_eq!(m.take_stranded(), vec![PageId(3)]);
        assert!(m.take_stranded().is_empty(), "drained exactly once");
        let s = m.metrics.snapshot();
        assert_eq!(s.stranded_dirty, 1);
        assert_eq!(s.lost_frames, 1);
        assert_eq!(m.dirty_count(), 0);
    }

    #[test]
    fn bitflip_corruption_is_caught_and_falls_back_to_disk() {
        let (io, m) = mk(SsdDesign::DualWrite, 16);
        io.write_disk_async(0, PageId(9), &page(0x42), Locality::Random)
            .unwrap();
        // Every SSD write silently flips one bit from here on.
        let mut cfg = FaultConfig::quiet(3);
        cfg.bitflip_prob = 1.0;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(cfg))));
        m.evict_page(0, PageId(9), &page(0x42), false, Locality::Random);
        assert!(m.contains(PageId(9)));
        let mut clk = Clk::at(turbopool_iosim::SECOND);
        let mut buf = page(0);
        m.read_page(&mut clk, PageId(9), Locality::Random, &mut buf)
            .unwrap();
        // The checksum caught the corruption; the disk copy was served.
        assert_eq!(buf, page(0x42));
        let s = m.metrics.snapshot();
        assert_eq!(s.checksum_misses, 1);
        assert!(!m.contains(PageId(9)), "corrupt frame invalidated");
        assert!(!m.is_quarantined(), "single error stays within budget");
    }

    #[test]
    fn error_budget_exhaustion_quarantines() {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 1024, 16)));
        let mut cfg = SsdConfig::new(SsdDesign::DualWrite, 16);
        cfg.partitions = 1;
        cfg.ssd_error_budget = 2;
        let m = SsdManager::new(cfg, Arc::clone(&io));
        for i in 0..3u64 {
            m.evict_page(0, PageId(i), &page(i as u8), false, Locality::Random);
        }
        // All SSD reads now fail (even after retries).
        let mut fcfg = FaultConfig::quiet(4);
        fcfg.read_error_prob = 1.0;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(fcfg))));
        let mut clk = Clk::new();
        let mut buf = page(0);
        for i in 0..3u64 {
            m.read_page(&mut clk, PageId(i), Locality::Random, &mut buf)
                .unwrap();
        }
        // Third error exceeded the budget of 2.
        assert!(m.is_quarantined());
        assert_eq!(m.metrics.snapshot().ssd_io_errors, 3);
    }

    #[test]
    fn transient_disk_errors_retry_with_backoff() {
        let (io, m) = mk(SsdDesign::CleanWrite, 16);
        io.write_disk_async(0, PageId(1), &page(0x11), Locality::Random)
            .unwrap();
        let mut fcfg = FaultConfig::quiet(7);
        fcfg.read_error_prob = 0.25;
        io.set_disk_fault(Some(Arc::new(FaultPlan::new(fcfg))));
        let mut clk = Clk::new();
        let mut buf = page(0);
        // With p=0.25 and 5 retries a read fails ~1-in-4000; seed 7 is
        // deterministic, so this either passes forever or never.
        for _ in 0..16 {
            m.read_page(&mut clk, PageId(1), Locality::Random, &mut buf)
                .unwrap();
            assert_eq!(buf[0], 0x11);
        }
        assert!(
            m.metrics.snapshot().disk_retries > 0,
            "some attempts must have been retried"
        );
    }
}
