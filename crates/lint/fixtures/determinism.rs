// Fixture: L9 determinism — iterating a hash container leaks the
// hasher's per-process randomness into replay-deterministic state.
// `bad_publish` reproduces the PR 3 bug shape: commit publication
// iterating a `HashMap`.

use std::collections::{BTreeMap, HashMap, HashSet};

struct Commits {
    published: HashMap<u64, u64>,
    seen: HashSet<u64>,
    ordered: BTreeMap<u64, u64>,
}

impl Commits {
    fn bad_publish(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (pid, lsn) in &self.published {
            // should fire: publication order follows HashMap iteration
            out.push((*pid, *lsn));
        }
        out
    }

    fn bad_keys(&self) -> Vec<u64> {
        self.seen.iter().copied().collect() // should fire: unsorted collect
    }

    fn good_sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.published.keys().copied().collect();
        v.sort_unstable(); // fine: sorted before observable use
        v
    }

    fn good_sum(&self) -> u64 {
        self.published.values().sum() // fine: order-insensitive sink
    }

    fn good_ordered(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for (pid, _) in &self.ordered {
            // fine: BTreeMap iterates in key order
            out.push(*pid);
        }
        out
    }

    fn allowed_drain(&mut self) -> Vec<u64> {
        // lint: allow(determinism) — teardown path; order never escapes.
        self.seen.drain().collect()
    }
}
