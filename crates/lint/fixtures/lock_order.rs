// Fixture: L3 lock-order violations against the declared order
// ["catalog", "inner", "parts", "data", "states"].

struct S {
    inner: std::sync::Mutex<u8>,
    data: Vec<std::sync::RwLock<u8>>,
}

impl S {
    fn bad_inversion(&self) {
        let d = self.data[0].write();
        let i = self.inner.lock(); // should fire: data held while taking inner
        drop(i);
        drop(d);
    }

    fn good_nesting(&self) {
        let i = self.inner.lock();
        let d = self.data[0].read(); // fine: inner before data
        drop(d);
        drop(i);
    }

    fn good_after_drop(&self) {
        let d = self.data[0].write();
        drop(d);
        let _i = self.inner.lock(); // fine: guard released first
    }
}
