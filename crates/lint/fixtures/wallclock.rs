// Fixture: L1 wallclock violations. Not compiled — scanned by the
// lint self-tests and by `cargo run -p turbopool-lint -- crates/lint/fixtures`.

fn bad_instant() -> std::time::Instant {
    std::time::Instant::now() // should fire: wallclock
}

fn bad_system_time() -> std::time::SystemTime {
    std::time::SystemTime::now() // should fire: wallclock
}

fn bad_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // should fire
}

fn suppressed() {
    // lint: allow(wallclock) — fixture demonstrating suppression
    let _ = std::time::Instant::now();
}
