//! Seeded violations for L6 `io-error`: a `Result<_, IoError>` from the
//! storage stack must not be unwrapped or discarded in non-test code.
//! Scanned by the lint self-tests only; never compiled.

fn bad_unwrap(&self, clk: &mut Clk, pid: PageId, buf: &mut [u8]) {
    // Violation: unwrapping an I/O result aborts instead of degrading.
    self.io.read_disk(clk, pid, buf, Locality::Random).unwrap();
}

fn bad_expect(&self, clk: &mut Clk, frame: u64, buf: &mut [u8]) {
    // Violation: expect() is the same abort with a nicer epitaph.
    self.io.read_ssd(clk, frame, buf).expect("ssd read");
}

fn bad_discard(&self, now: Time, pid: PageId, data: &[u8]) {
    // Violation: dropping the Result loses a possible write failure —
    // for LC that is committed data silently evaporating.
    let _ = self.io.write_disk_async(now, pid, data, Locality::Random);
}

fn bad_multiline_discard(&self, now: Time, frame: u64, data: &[u8], pid: PageId) {
    // Violation: statement-granular, so the spill across lines still fires.
    let _ = self
        .io
        .write_ssd_async(now, frame, data, pid);
}

fn good_propagates(&self, clk: &mut Clk, pid: PageId, buf: &mut [u8]) -> Result<(), IoError> {
    // Fine: the error reaches the caller.
    self.io.read_disk(clk, pid, buf, Locality::Random)?;
    Ok(())
}

fn good_matched(&self, now: Time, frame: u64, data: &[u8], pid: PageId) {
    // Fine: both arms are handled.
    match self.io.write_ssd_async(now, frame, data, pid) {
        Ok(t) => self.note_done(t),
        Err(e) => self.note_ssd_error(&e),
    }
}

fn good_justified(&self, now: Time, pid: PageId, data: &[u8]) {
    // Fine: suppressed with a reason.
    // lint: allow(io-error) — best-effort prefetch hint; failure is benign.
    let _ = self.io.write_disk_async(now, pid, data, Locality::Random);
}

fn good_named_binding(&self, now: Time, pid: PageId, data: &[u8]) {
    // Fine: `let _res` names (and can use) the result; only `_` discards.
    let _res = self.io.write_disk_async(now, pid, data, Locality::Random);
    self.consume(_res);
}

#[cfg(test)]
mod tests {
    // Fine: tests may unwrap I/O results freely.
    fn test_path(&self) {
        self.io.read_disk(clk, pid, buf, Locality::Random).unwrap();
        let _ = self.io.write_disk_async(now, pid, data, Locality::Random);
    }
}
