// Fixture: L5 unsafe-audit violations.

fn bad_undocumented() -> u8 {
    let x: u8 = 7;
    let p = &x as *const u8;
    unsafe { *p } // should fire: undocumented
}

fn good_documented() -> u8 {
    let x: u8 = 7;
    let p = &x as *const u8;
    // # Safety: p points at a live local for the whole expression.
    unsafe { *p }
}
