// Fixture: unused-suppression — a `lint: allow(<rule>)` marker that no
// finding consumes is stale armor: it silently disables the rule for
// whatever lands on that line next. `used_marker` suppresses a real
// wallclock finding; `stale_marker` allows `panic` above a line that
// cannot panic.

fn used_marker() -> std::time::Instant {
    // lint: allow(wallclock) — fixture exercises a consumed marker.
    std::time::Instant::now()
}

fn stale_marker(x: u64) -> u64 {
    // lint: allow(panic) — nothing here panics; marker is stale.
    x + 1 // should fire: UnusedAllow on the marker above
}
