// Fixture: L8 magic-threshold violations. Latency/queue-depth values
// compared against inline numeric literals instead of named config
// constants. Fixture paths are in scope for every rule.

pub struct Cfg {
    pub depth_limit: usize,
    pub slow_ns: u64,
}

fn bad_depth(queue_depth: usize) -> bool {
    queue_depth > 64 // should fire: magic-threshold
}

fn bad_latency(latency_ns: u64) -> bool {
    latency_ns >= 4_000_000 // should fire: magic-threshold
}

fn bad_reversed(ewma: u64) -> bool {
    2_000_000u64 < ewma // should fire: magic-threshold
}

fn bad_backoff(backoff_ns: u64) -> bool {
    backoff_ns <= 500 // should fire: magic-threshold
}

fn good_named(cfg: &Cfg, queue_depth: usize, latency_ns: u64) -> bool {
    // Thresholds from named config fields never fire.
    queue_depth > cfg.depth_limit || latency_ns > cfg.slow_ns
}

fn good_small(queue_depth: usize) -> bool {
    // Comparisons against 0 and 1 are structural, not tuning decisions.
    queue_depth > 0 && queue_depth > 1
}

fn good_unrelated(frames: u64) -> bool {
    // No latency/depth token on either side: out of scope.
    frames > 1024
}

fn suppressed(latency_ns: u64) -> bool {
    // lint: allow(magic-threshold) — fixture demonstrating suppression
    latency_ns > 9000
}

fn good_shift(depth: usize) -> usize {
    depth << 2 // shift, not a comparison
}

#[cfg(test)]
mod tests {
    #[test]
    fn literals_in_tests_are_fine() {
        assert!(super::bad_depth(65) && 70 > 64);
    }
}
