// Fixture: L4 design-match violations.

enum SsdDesign {
    CleanWrite,
    DualWrite,
    LazyCleaning,
    Tac,
}

fn bad_wildcard(design: SsdDesign) -> u8 {
    match design {
        SsdDesign::CleanWrite => 1,
        _ => 0, // should fire: wildcard arm hides new designs
    }
}

fn good_exhaustive(design: SsdDesign) -> u8 {
    match design {
        SsdDesign::CleanWrite => 1,
        SsdDesign::DualWrite => 2,
        SsdDesign::LazyCleaning => 3,
        SsdDesign::Tac => 4,
    }
}

fn good_tuple_table(design: SsdDesign, x: u8) -> u8 {
    // Tuple scrutinees are transition tables: exempt by design.
    match (design, x) {
        (SsdDesign::Tac, 0) => 1,
        _ => 0,
    }
}
