// Fixture: L11 dead-metric — a counter field no bench emitter or test
// ever reads is observability rot: it costs an atomic bump on the hot
// path and tells nobody anything. `used_reads` is read by the test
// below; `dead_writes` is only ever constructed.

pub struct FooStats {
    pub used_reads: u64,  // fine: read by the test below
    pub dead_writes: u64, // should fire: never observed anywhere
}

fn snap() -> FooStats {
    FooStats {
        used_reads: 1,
        dead_writes: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::snap;

    #[test]
    fn reads_only_one_field() {
        let s = snap();
        assert_eq!(s.used_reads, 1);
    }
}
