//! Seeded L7 violations: OS-thread creation outside the driver's worker
//! pool. Scanned by the self-test, never compiled.

fn bad_spawn() {
    std::thread::spawn(|| {});
}

fn bad_scope() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}

fn bad_builder() {
    let _ = std::thread::Builder::new().spawn(|| {});
}

fn allowed_spawn() {
    // A justified exception must be suppressible.
    // lint: allow(thread-spawn) fixture demonstrates the marker
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    // Test code is exempt, like L2/L6.
    fn test_spawn_is_fine() {
        std::thread::spawn(|| {});
    }
}
