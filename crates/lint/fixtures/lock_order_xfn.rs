// Fixture: interprocedural L3 lock-order — inversions hidden one call
// away. The declared order (lock_order.toml) puts `catalog` before
// `inner` before `parts` before `data`; acquiring an earlier class
// while holding a later one deadlocks against a thread doing the
// opposite. `grab_inner` acquires `inner` inside a callee; `part` is a
// guard-returning helper, so its caller holds a `parts`-class latch.

struct S {
    catalog: std::sync::Mutex<u8>,
    inner: std::sync::Mutex<u8>,
    parts: Vec<std::sync::Mutex<u8>>,
    data: Vec<std::sync::RwLock<u8>>,
}

impl S {
    fn grab_inner(&self) {
        let i = self.inner.lock();
        let _ = i;
    }

    fn part(&self) -> std::sync::MutexGuard<'_, u8> {
        self.parts[0].lock()
    }

    fn bad_call_under_data(&self) {
        let d = self.data[0].write();
        self.grab_inner(); // should fire: callee takes `inner` under `data`
        let _ = d;
    }

    fn bad_after_helper(&self) {
        let p = self.part();
        let i = self.inner.lock(); // should fire: `inner` after `parts` guard
        let _ = (p, i);
    }

    fn good_order(&self) {
        let c = self.catalog.lock();
        self.grab_inner(); // fine: catalog precedes inner
        let _ = c;
    }

    fn good_helper_then_data(&self) {
        let p = self.part();
        let d = self.data[0].read(); // fine: parts precedes data
        let _ = (p, d);
    }
}
