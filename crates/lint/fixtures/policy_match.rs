// Fixture: L12 policy-match violations.

enum ReplacementKind {
    Lru2,
    Clock,
    Sieve,
    LruK { k: usize },
    Ghost,
}

enum AdmissionKind {
    DesignDefault,
    AdmitAll,
    GhostHit,
}

fn bad_wildcard(replacement: ReplacementKind) -> u8 {
    match replacement {
        ReplacementKind::Lru2 => 1,
        _ => 0, // should fire: wildcard arm hides new policies
    }
}

fn bad_missing(admission: AdmissionKind) -> u8 {
    // should fire: GhostHit not named
    match admission {
        AdmissionKind::DesignDefault => 1,
        AdmissionKind::AdmitAll => 2,
    }
}

fn good_exhaustive(replacement: ReplacementKind) -> usize {
    match replacement {
        ReplacementKind::Lru2 => 1,
        ReplacementKind::Clock => 2,
        ReplacementKind::Sieve => 3,
        ReplacementKind::LruK { k } => k,
        ReplacementKind::Ghost => 5,
    }
}

fn good_tuple_table(admission: AdmissionKind, x: u8) -> u8 {
    // Tuple scrutinees are transition tables: exempt by design.
    match (admission, x) {
        (AdmissionKind::GhostHit, 0) => 1,
        _ => 0,
    }
}
