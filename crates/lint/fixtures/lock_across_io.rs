// Fixture: L10 lock-across-io — a latch guard stays live across a call
// that transitively reaches the I/O layer (`write_disk_sync` is two
// hops away: bad -> sweep -> flush_now -> write_disk_sync). Holding a
// latch while I/O is in flight serializes every other thread behind a
// device-speed operation.

struct Io;

impl Io {
    fn write_disk_sync(&self, _pid: u64) {}
}

struct Pool {
    inner: std::sync::Mutex<u8>,
    io: Io,
}

impl Pool {
    fn flush_now(&self) {
        self.io.write_disk_sync(7);
    }

    fn sweep(&self) {
        self.flush_now();
    }

    fn bad(&self) {
        let g = self.inner.lock();
        self.sweep(); // should fire: `g` is live across an io-reaching call
        let _ = g;
    }

    fn good_scoped(&self) {
        {
            let g = self.inner.lock();
            let _ = g;
        }
        self.sweep(); // fine: guard dropped at scope exit
    }

    fn good_dropped(&self) {
        let g = self.inner.lock();
        drop(g);
        self.sweep(); // fine: guard explicitly dropped first
    }

    fn allowed(&self) {
        let g = self.inner.lock();
        // lint: allow(lock-across-io) — booking is O(1) and non-blocking.
        self.sweep();
        let _ = g;
    }
}
