// Fixture: L2 panic violations. Fixture paths are in scope for every
// rule regardless of crate.

fn bad_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() // should fire: panic
}

fn bad_expect(x: Option<u8>) -> u8 {
    x.expect("present") // should fire: panic
}

fn bad_panic() {
    panic!("boom"); // should fire: panic
}

fn bad_unreachable() {
    unreachable!(); // should fire: panic
}

fn suppressed(x: Option<u8>) -> u8 {
    // lint: allow(panic) — fixture demonstrating suppression
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u8).unwrap();
    }
}
