//! Integration self-test: the repository tree must scan clean, and every
//! seeded-violation fixture must fire its rule. Running `cargo test` is
//! therefore also running the linter.

use std::path::{Path, PathBuf};

use turbopool_lint::{load_lock_order, run, scan_file, workspace_root, Config, Rule};

fn ws() -> PathBuf {
    workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

fn cfg(root: PathBuf) -> Config {
    let order = load_lock_order(&ws().join("crates/lint/lock_order.toml"));
    assert!(
        !order.is_empty(),
        "lock_order.toml missing or empty — L3 would be silently disabled"
    );
    Config::new(root, order)
}

#[test]
fn repository_tree_scans_clean() {
    let findings = run(&cfg(ws()));
    assert!(
        findings.is_empty(),
        "repo tree has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn fixture(name: &str) -> Vec<turbopool_lint::Finding> {
    let root = ws();
    let rel = PathBuf::from("crates/lint/fixtures").join(name);
    let src = std::fs::read_to_string(root.join(&rel)).expect("fixture readable");
    scan_file(&cfg(root), &rel, &src)
}

#[test]
fn wallclock_fixture_fires() {
    let f = fixture("wallclock.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::Wallclock).count();
    // Instant::now, SystemTime (x2 via SystemTime return type + call), sleep.
    assert!(hits >= 3, "expected >=3 wallclock findings, got {f:#?}");
    // The suppressed call must not be reported.
    assert!(
        !f.iter().any(|f| f.line >= 16 && f.line <= 19),
        "suppression marker ignored: {f:#?}"
    );
}

#[test]
fn panic_fixture_fires() {
    let f = fixture("panic.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::Panic).count();
    assert_eq!(hits, 4, "unwrap/expect/panic!/unreachable!: {f:#?}");
}

#[test]
fn io_error_fixture_fires() {
    let f = fixture("io_error.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::IoError).count();
    // unwrap, expect, discard, multi-line discard; the good_* functions
    // and the test module must stay silent.
    assert_eq!(hits, 4, "expected exactly the four seeded findings: {f:#?}");
    let discards = f
        .iter()
        .filter(|f| f.rule == Rule::IoError && f.message.contains("let _ ="))
        .count();
    assert_eq!(discards, 2, "two of the four are discards: {f:#?}");
}

#[test]
fn lock_order_fixture_fires() {
    let f = fixture("lock_order.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    assert_eq!(hits.len(), 1, "exactly the inversion should fire: {f:#?}");
    assert!(hits[0].message.contains("inner"));
    assert!(hits[0].message.contains("data"));
}

#[test]
fn design_match_fixture_fires() {
    let f = fixture("design_match.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::DesignMatch).count();
    assert_eq!(hits, 1, "only the wildcard match should fire: {f:#?}");
}

#[test]
fn policy_match_fixture_fires() {
    let f = fixture("policy_match.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::PolicyMatch).collect();
    // bad_wildcard + bad_missing; the exhaustive and tuple-table
    // functions must stay silent.
    assert_eq!(
        hits.len(),
        2,
        "expected exactly the two seeded findings: {f:#?}"
    );
    assert!(
        hits.iter().any(|h| h.message.contains("GhostHit")),
        "the missing-variant finding must name the absent policy: {f:#?}"
    );
}

#[test]
fn unsafe_fixture_fires() {
    let f = fixture("unsafe_audit.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::Unsafe).count();
    assert_eq!(hits, 1, "only the undocumented block should fire: {f:#?}");
}

#[test]
fn thread_spawn_fixture_fires() {
    let f = fixture("thread_spawn.rs");
    let hits = f.iter().filter(|f| f.rule == Rule::ThreadSpawn).count();
    // spawn, scope, Builder; the marker-suppressed call and the test
    // module must stay silent.
    assert_eq!(
        hits, 3,
        "expected exactly the three seeded findings: {f:#?}"
    );
}

#[test]
fn magic_threshold_fixture_fires() {
    let f = fixture("magic_threshold.rs");
    let hits: Vec<_> = f
        .iter()
        .filter(|f| f.rule == Rule::MagicThreshold)
        .collect();
    // bad_depth, bad_latency, bad_reversed, bad_backoff; the named-const,
    // small-literal, unrelated, suppressed, shift, and test-module cases
    // must all stay silent.
    assert_eq!(
        hits.len(),
        4,
        "expected exactly the four seeded findings: {f:#?}"
    );
    assert!(
        hits.iter().all(|h| h.line >= 10 && h.line <= 24),
        "findings outside the seeded bad_* block: {f:#?}"
    );
}

#[test]
fn determinism_fixture_fires() {
    let f = fixture("determinism.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::Determinism).collect();
    // bad_publish (the PR 3 bug shape: commit publication iterating a
    // HashMap) and bad_keys; the sorted, order-insensitive-sink, BTree,
    // and marker-suppressed cases must all stay silent.
    assert_eq!(
        hits.len(),
        2,
        "expected exactly the two seeded findings: {f:#?}"
    );
    assert!(
        hits.iter()
            .any(|h| h.line == 17 && h.message.contains("published")),
        "the PR 3 shape (for over &self.published) must fire: {f:#?}"
    );
    assert!(
        hits.iter().any(|h| h.message.contains("seen")),
        "the unsorted collect over the HashSet must fire: {f:#?}"
    );
}

#[test]
fn lock_across_io_fixture_fires() {
    let f = fixture("lock_across_io.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::LockAcrossIo).collect();
    // Only bad(): the guard is live across `sweep`, which reaches
    // `write_disk_sync` two hops away. The scoped, dropped, and
    // marker-suppressed variants must stay silent.
    assert_eq!(hits.len(), 1, "expected exactly the seeded finding: {f:#?}");
    assert!(
        hits[0].message.contains("sweep") && hits[0].message.contains("`g`"),
        "finding must name the io-reaching call and the live guard: {f:#?}"
    );
}

#[test]
fn lock_order_xfn_fixture_fires() {
    let f = fixture("lock_order_xfn.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::LockOrder).collect();
    // bad_call_under_data (inversion hidden inside a callee) and
    // bad_after_helper (inversion against a guard-returning helper);
    // the correctly-ordered variants must stay silent.
    assert_eq!(
        hits.len(),
        2,
        "expected exactly the two seeded findings: {f:#?}"
    );
    assert!(
        hits.iter().any(|h| h.message.contains("grab_inner")),
        "the cross-function inversion must name the callee: {f:#?}"
    );
    assert!(
        hits.iter().any(|h| h.message.contains("parts")),
        "the helper-guard inversion must name the held class: {f:#?}"
    );
}

#[test]
fn dead_metric_fixture_fires() {
    let f = fixture("dead_metric.rs");
    let hits: Vec<_> = f.iter().filter(|f| f.rule == Rule::DeadMetric).collect();
    // Only dead_writes: used_reads is read by the fixture's own test.
    assert_eq!(
        hits.len(),
        1,
        "expected exactly the unobserved counter: {f:#?}"
    );
    assert!(
        hits[0].message.contains("dead_writes"),
        "finding must name the dead field: {f:#?}"
    );
}

#[test]
fn unused_allow_fixture_fires() {
    let f = fixture("unused_allow.rs");
    let unused: Vec<_> = f.iter().filter(|f| f.rule == Rule::UnusedAllow).collect();
    // The stale panic marker fires; the consumed wallclock marker does
    // not — and it must actually suppress the wallclock finding.
    assert_eq!(unused.len(), 1, "expected exactly the stale marker: {f:#?}");
    assert!(
        unused[0].message.contains("panic"),
        "finding must name the stale rule: {f:#?}"
    );
    assert!(
        !f.iter().any(|f| f.rule == Rule::Wallclock),
        "the consumed marker must still suppress its finding: {f:#?}"
    );
}

#[test]
fn allowlists_name_existing_files() {
    let stale = turbopool_lint::stale_allowlist_entries(&ws());
    assert!(
        stale.is_empty(),
        "allowlist entries name files that no longer exist (each would \
         silently allowlist nothing): {stale:?}"
    );
}

#[test]
fn thread_spawn_allows_the_worker_pool() {
    // The real worker pool uses thread::scope; scanning it through its
    // repo-relative path must stay clean (allowlist direction).
    let root = ws();
    let rel = PathBuf::from("crates/workload/src/pool.rs");
    let src = std::fs::read_to_string(root.join(&rel)).expect("pool.rs readable");
    assert!(
        src.contains("thread::scope"),
        "pool.rs no longer spawns threads — update this test and the L7 allowlist"
    );
    let f = scan_file(&cfg(root), &rel, &src);
    assert!(
        !f.iter().any(|f| f.rule == Rule::ThreadSpawn),
        "worker pool must be allowlisted for L7: {f:#?}"
    );
}

#[test]
fn fixtures_dir_is_skipped_when_scanning_repo() {
    // `repository_tree_scans_clean` passing already implies this (the
    // fixtures seed violations), but assert it directly for clarity.
    let findings = run(&cfg(ws()));
    assert!(findings
        .iter()
        .all(|f| !f.file.to_string_lossy().contains("fixtures")));
}
