//! `turbopool-lint` — repo-native static analysis for the workspace.
//!
//! A deliberately small line/token scanner (no `syn`, no external crates;
//! this environment cannot reach a registry) enforcing rules that `rustc`
//! and `clippy` cannot express because they are *about this repository*:
//!
//! * **L1 `wallclock`** — no `Instant::now` / `SystemTime` /
//!   `thread::sleep` anywhere outside the harness allowlist: all
//!   simulation code must run on the virtual clock (`turbopool_iosim::Clk`),
//!   or experiments stop being deterministic and replayable.
//! * **L2 `panic`** — no `unwrap()` / `expect(..)` / `panic!` family in
//!   non-test code of `crates/core` and `crates/bufpool`: the buffer-pool
//!   hot paths must degrade, not abort. Justify exceptions with a
//!   `// lint: allow(panic)` comment.
//! * **L3 `lock-order`** — nested `Mutex`/`RwLock` acquisitions must
//!   follow the order declared in `crates/lint/lock_order.toml`, keeping
//!   the future multi-threaded pool deadlock-free. Intra-function only:
//!   guards are tracked through `let` bindings, `drop(..)` calls and
//!   block scope.
//! * **L4 `design-match`** — a `match` over a plain `SsdDesign` scrutinee
//!   must name all four designs and use no `_` arm, so adding a design is
//!   a compile-surface event. (Tuple scrutinees like `(design, state)`
//!   are exempt: those are transition tables, exhaustive per-row.)
//! * **L5 `unsafe`** — the workspace is `unsafe`-free today; any `unsafe`
//!   token must carry a `# Safety` comment explaining the contract.
//! * **L6 `io-error`** — a call to a known `Result<_, IoError>`-returning
//!   I/O method in non-test code of `crates/core` and `crates/bufpool`
//!   must not be `.unwrap()`ed/`.expect()`ed or discarded with `let _ =`:
//!   storage errors feed the graceful-degradation machinery (retry,
//!   quarantine, WAL salvage) and silently dropping one loses data.
//!   Justify exceptions with a `// lint: allow(io-error)` comment.
//! * **L12 `policy-match`** — the same exhaustiveness contract as L4 for
//!   the buffer-policy enums: a `match` over a plain `replacement`
//!   (`ReplacementKind`) or `admission` (`AdmissionKind`) scrutinee must
//!   name every variant and use no `_` arm, so a newly added policy
//!   cannot be silently funneled into some default behavior.
//!
//! On top of the per-line rules, a token-stream call graph ([`graph`])
//! powers the interprocedural rules:
//!
//! * **L9 `determinism`** — iterating a `HashMap`/`HashSet` in a
//!   sim-state crate (`core`, `bufpool`, `iosim`, `wal`, `workload`) is
//!   a finding unless the results are order-insensitive or sorted before
//!   observable use: hash iteration order leaks host randomness into the
//!   deterministic replay (the PR 3 bug class).
//! * **L10 `lock-across-io`** — a `Mutex`/`RwLock` guard held across a
//!   call that transitively reaches an `IoManager` submit/read/write
//!   path. Free under the virtual clock today, a convoy once the pool is
//!   lock-striped over real I/O.
//! * **L3, cross-function** — lock acquisition order is also checked
//!   across one level of intra-crate calls, including guard-returning
//!   helpers like `SsdManager::part`.
//! * **L11 `dead-metric`** — every `pub` field of a `*Stats` /
//!   `*Metrics` / `*Snapshot` struct in a sim-state crate must be read
//!   by a bench JSON emitter, an integration test, an example, or a
//!   `#[cfg(test)]` region; unobserved counters are observability rot.
//! * **`unused-allow`** — a `lint: allow(<rule>)` marker that suppresses
//!   no finding is itself a finding, so the allow surface only shrinks.
//!
//! Comments and string literals are scrubbed before token matching, so a
//! rule name appearing in a doc comment or a message string never trips
//! the rule. Findings on a line are suppressed by a `lint: allow(<rule>)`
//! marker on the same line or in the comment block directly above it.

#![forbid(unsafe_code)]

mod graph;

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use graph::Graph;

/// The rules, named as they appear in `lint: allow(..)` markers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    Wallclock,
    Panic,
    LockOrder,
    DesignMatch,
    PolicyMatch,
    Unsafe,
    IoError,
    ThreadSpawn,
    MagicThreshold,
    Determinism,
    LockAcrossIo,
    DeadMetric,
    UnusedAllow,
}

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::Wallclock => "wallclock",
            Rule::Panic => "panic",
            Rule::LockOrder => "lock-order",
            Rule::DesignMatch => "design-match",
            Rule::PolicyMatch => "policy-match",
            Rule::Unsafe => "unsafe",
            Rule::IoError => "io-error",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::MagicThreshold => "magic-threshold",
            Rule::Determinism => "determinism",
            Rule::LockAcrossIo => "lock-across-io",
            Rule::DeadMetric => "dead-metric",
            Rule::UnusedAllow => "unused-allow",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub file: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Harness-side files where wall-clock use is legitimate: they measure
/// *real* OS-thread contention, which the virtual clock cannot observe.
/// Each file carries a justification comment at the call site.
const WALLCLOCK_ALLOWLIST: &[&str] = &[
    "crates/bench/benches/ablation.rs",
    "examples/oltp_shootout.rs",
];

/// The only non-test sites allowed to spawn OS threads (rule L7): the
/// parallel driver's worker pool, and the ablation bench that measures
/// real latch contention. Everywhere else, threads could observe or
/// introduce scheduling nondeterminism that the virtual-time design
/// forbids.
const THREAD_ALLOWLIST: &[&str] = &[
    "crates/workload/src/pool.rs",
    "crates/bench/benches/ablation.rs",
];

/// Linter configuration.
pub struct Config {
    /// Directory to scan (normally the workspace root).
    pub root: PathBuf,
    /// Declared lock classes, outermost first (see `lock_order.toml`).
    pub lock_order: Vec<String>,
}

impl Config {
    pub fn new(root: PathBuf, lock_order: Vec<String>) -> Self {
        Config { root, lock_order }
    }
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` is found.
pub fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parse the `order = ["a", "b", ...]` line of a lock-order file. A
/// missing file yields an empty order (L3 disabled) rather than an error,
/// so the tool degrades gracefully outside the repository.
pub fn load_lock_order(path: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let scrubbed: String = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let Some(start) = scrubbed.find("order") else {
        return Vec::new();
    };
    let Some(open) = scrubbed[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = scrubbed[start + open..].find(']') else {
        return Vec::new();
    };
    let body = &scrubbed[start + open + 1..start + open + close];
    let mut order: Vec<String> = Vec::new();
    for name in body
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
    {
        // Duplicate class names would make the order ambiguous; keep the
        // first occurrence (its position defines the class).
        if !order.contains(&name) {
            order.push(name);
        }
    }
    order
}

/// Allowlist entries naming files that no longer exist under `root`:
/// each would silently allowlist nothing. The self-test asserts this is
/// empty so allowlists cannot go stale.
pub fn stale_allowlist_entries(root: &Path) -> Vec<String> {
    WALLCLOCK_ALLOWLIST
        .iter()
        .chain(THREAD_ALLOWLIST.iter())
        .filter(|rel| !root.join(rel).is_file())
        .map(|rel| rel.to_string())
        .collect()
}

/// Run every rule over all `.rs` files under `cfg.root`, skipping
/// `target/`, `.git/` and `fixtures/` subtrees (fixtures are scanned by
/// the self-tests, or by pointing the binary straight at them).
pub fn run(cfg: &Config) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, &cfg.root, &mut files);
    files.sort();
    let mut prepared: Vec<(PathBuf, Prepared)> = Vec::new();
    for rel in files {
        let Ok(source) = fs::read_to_string(cfg.root.join(&rel)) else {
            continue;
        };
        prepared.push((rel, prepare(&source)));
    }
    let g = Graph::build(&prepared, &cfg.lock_order);
    // L11 findings, grouped by the declaring file so its allow markers
    // and unused-allow accounting see them.
    let mut dead: HashMap<PathBuf, Vec<Finding>> = HashMap::new();
    for m in g.dead_metrics() {
        dead.entry(m.file.clone())
            .or_default()
            .push(dead_metric_finding(m));
    }
    let mut findings = Vec::new();
    for (rel, p) in &prepared {
        let mut out = scan_with(cfg, &g, rel, p);
        if let Some(extra) = dead.remove(rel) {
            out.extend(extra);
        }
        let (mut kept, used) = apply_markers(p, out);
        rule_unused_allow(p, rel, &used, &mut kept);
        kept.sort_by_key(|f| f.line);
        findings.extend(kept);
    }
    findings
}

fn dead_metric_finding(m: &graph::MetricField) -> Finding {
    Finding {
        rule: Rule::DeadMetric,
        file: m.file.clone(),
        line: m.line + 1,
        message: format!(
            "counter `{}.{}` is never read by a bench JSON emitter, test, or example — \
             wire it into a report or remove it (observability rot)",
            m.strukt, m.field
        ),
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Never descend into build output or VCS state; skip fixture
            // subtrees unless they ARE the scan root.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// A source file prepared for token matching.
struct Prepared {
    /// Lines with comments and string/char literals blanked out.
    code: Vec<String>,
    /// Comment text per line (everything after `//`, and block-comment
    /// bodies), used for `lint: allow` markers and `# Safety` checks.
    comments: Vec<String>,
    /// True for lines whose comment text is the whole line.
    comment_only: Vec<bool>,
    /// Lines inside `#[cfg(test)]` modules or `#[test]` functions.
    in_test: Vec<bool>,
}

/// Scrub comments and literals, keeping byte positions line-aligned.
fn prepare(source: &str) -> Prepared {
    let lines: Vec<&str> = source.lines().collect();
    let mut code: Vec<String> = Vec::with_capacity(lines.len());
    let mut comments: Vec<String> = vec![String::new(); lines.len()];

    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize), // nesting depth of /* */
        Str,
        RawStr(usize), // number of # in the delimiter
    }
    let mut st = St::Code;
    for (ln, line) in lines.iter().enumerate() {
        let b = line.as_bytes();
        let mut out = String::with_capacity(b.len());
        let mut i = 0usize;
        while i < b.len() {
            match st {
                St::Code => {
                    let c = b[i];
                    if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        comments[ln].push_str(&line[i + 2..]);
                        while out.len() < b.len() {
                            out.push(' ');
                        }
                        i = b.len();
                    } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(1);
                        out.push_str("  ");
                        i += 2;
                    } else if c == b'"' {
                        st = St::Str;
                        out.push(' ');
                        i += 1;
                    } else if c == b'r'
                        && (i == 0 || !is_ident_byte(b[i - 1]))
                        && i + 1 < b.len()
                        && (b[i + 1] == b'"' || b[i + 1] == b'#')
                    {
                        // Raw string r"..." / r#"..."#.
                        let mut hashes = 0usize;
                        let mut j = i + 1;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            st = St::RawStr(hashes);
                            for _ in i..=j {
                                out.push(' ');
                            }
                            i = j + 1;
                        } else {
                            out.push(c as char);
                            i += 1;
                        }
                    } else if c == b'\'' {
                        // Char literal vs lifetime: a literal closes with a
                        // quote within a few bytes ('a', '\n', '\u{..}').
                        let rest = &b[i + 1..];
                        let close = if rest.first() == Some(&b'\\') {
                            rest.iter().skip(1).position(|&x| x == b'\'').map(|p| p + 1)
                        } else if rest.len() >= 2 && rest[1] == b'\'' {
                            Some(1)
                        } else {
                            None
                        };
                        if let Some(off) = close {
                            for _ in 0..off + 2 {
                                out.push(' ');
                            }
                            i += off + 2;
                        } else {
                            out.push(' '); // lifetime tick
                            i += 1;
                        }
                    } else {
                        out.push(c as char);
                        i += 1;
                    }
                }
                St::Block(depth) => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block(depth + 1);
                        out.push_str("  ");
                        i += 2;
                    } else {
                        comments[ln].push(b[i] as char);
                        out.push(' ');
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        out.push_str("  ");
                        i += 2.min(b.len() - i);
                    } else if b[i] == b'"' {
                        st = St::Code;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"' {
                        let tail = &b[i + 1..];
                        if tail.len() >= hashes && tail[..hashes].iter().all(|&x| x == b'#') {
                            st = St::Code;
                            for _ in 0..hashes + 1 {
                                out.push(' ');
                            }
                            i += hashes + 1;
                            continue;
                        }
                    }
                    out.push(' ');
                    i += 1;
                }
            }
        }
        code.push(out);
    }

    let comment_only: Vec<bool> = lines
        .iter()
        .enumerate()
        .map(|(ln, l)| !l.trim().is_empty() && code[ln].trim().is_empty())
        .collect();

    // Mark #[cfg(test)] / #[test] regions by brace depth: the attribute
    // arms a flag that attaches to the next opened block.
    let mut in_test = vec![false; lines.len()];
    let mut depth = 0usize;
    let mut pending = false;
    let mut stack: Vec<bool> = Vec::new(); // is_test per open block
    for (ln, l) in code.iter().enumerate() {
        if l.contains("#[cfg(test)]") || l.contains("#[test]") {
            pending = true;
        }
        let inherited = stack.iter().any(|&t| t);
        in_test[ln] = inherited || pending;
        for ch in l.chars() {
            match ch {
                '{' => {
                    stack.push(pending);
                    pending = false;
                    depth += 1;
                }
                '}' => {
                    stack.pop();
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        let _ = depth;
    }

    Prepared {
        code,
        comments,
        comment_only,
        in_test,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// If finding `rule` on line `ln` (0-based) is suppressed by a
/// `lint: allow(<rule>)` marker on the same line or the comment block
/// directly above, return the (0-based) line holding the marker. A
/// marker must *start* the comment text — prose that merely mentions
/// `lint: allow(..)` mid-sentence is not a marker.
fn marker_line(p: &Prepared, ln: usize, rule: Rule) -> Option<usize> {
    let marker = format!("lint: allow({})", rule.name());
    if p.comments.get(ln)?.trim_start().starts_with(&marker) {
        return Some(ln);
    }
    let mut i = ln;
    while i > 0 && p.comment_only[i - 1] {
        i -= 1;
        if p.comments[i].trim_start().starts_with(&marker) {
            return Some(i);
        }
    }
    None
}

/// Scan one file in isolation. `rel` is the path relative to the
/// workspace root; it drives per-rule scoping. Fixture files (any path
/// containing a `fixtures` component) are treated as in scope for every
/// rule. The call graph is built from this file alone, so L10's
/// transitive reach and the cross-function L3 check see intra-file
/// chains only — enough for fixtures and spot checks; `run` builds the
/// workspace-wide graph.
pub fn scan_file(cfg: &Config, rel: &Path, source: &str) -> Vec<Finding> {
    let files = vec![(rel.to_path_buf(), prepare(source))];
    let g = Graph::build(&files, &cfg.lock_order);
    let (rel, p) = &files[0];
    let mut out = scan_with(cfg, &g, rel, p);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    // L11 needs the workspace-wide observation scope to be meaningful on
    // product files; in single-file mode it runs for fixtures only.
    if is_fixture_path(cfg, &rel_str) {
        for m in g.dead_metrics() {
            out.push(dead_metric_finding(m));
        }
    }
    let (mut kept, used) = apply_markers(p, out);
    rule_unused_allow(p, rel, &used, &mut kept);
    kept.sort_by_key(|f| f.line);
    kept
}

/// Fixture files are in scope for every rule, whether reached via their
/// repo-relative path or by scanning the fixtures dir directly.
fn is_fixture_path(cfg: &Config, rel_str: &str) -> bool {
    rel_str.contains("fixtures") || cfg.root.to_string_lossy().contains("fixtures")
}

/// Run every rule over one prepared file, pushing findings
/// unconditionally; `lint: allow` suppression happens afterwards in
/// [`apply_markers`] so unused markers can be detected.
fn scan_with(cfg: &Config, g: &Graph, rel: &Path, p: &Prepared) -> Vec<Finding> {
    let mut out = Vec::new();
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let is_fixture = is_fixture_path(cfg, &rel_str);

    rule_wallclock(p, rel, &rel_str, &mut out);
    if is_fixture
        || rel_str.starts_with("crates/core/src")
        || rel_str.starts_with("crates/bufpool/src")
    {
        rule_panic(p, rel, &mut out);
        rule_magic_threshold(p, rel, &mut out);
    }
    // L6 additionally covers the recovery stack: the WAL and engine crates
    // carry `Result<_, IoError>` from redo/salvage/import paths, where a
    // swallowed error silently downgrades crash-safety.
    if is_fixture
        || rel_str.starts_with("crates/core/src")
        || rel_str.starts_with("crates/bufpool/src")
        || rel_str.starts_with("crates/wal/src")
        || rel_str.starts_with("crates/engine/src")
    {
        rule_io_error(p, rel, &mut out);
    }
    rule_lock_order(cfg, p, rel, &mut out);
    rule_design_match(p, rel, &mut out);
    rule_policy_match(p, rel, &mut out);
    rule_unsafe(p, rel, &mut out);
    rule_thread_spawn(p, rel, &rel_str, &mut out);
    rule_determinism(g, p, rel, &rel_str, is_fixture, &mut out);
    rule_graph_walk(cfg, g, p, rel, &rel_str, is_fixture, &mut out);
    out
}

/// Apply `lint: allow` markers: drop suppressed findings, returning the
/// survivors plus the set of (0-based) comment lines whose marker
/// suppressed something.
fn apply_markers(p: &Prepared, findings: Vec<Finding>) -> (Vec<Finding>, HashSet<usize>) {
    let mut used: HashSet<usize> = HashSet::new();
    let kept = findings
        .into_iter()
        .filter(|f| match marker_line(p, f.line - 1, f.rule) {
            Some(ml) => {
                used.insert(ml);
                false
            }
            None => true,
        })
        .collect();
    (kept, used)
}

/// A `lint: allow(<rule>)` marker that suppresses no finding is itself a
/// finding: the allow surface may only shrink. Doc comments (`///`,
/// `//!`) and prose mentioning markers mid-sentence are exempt (a
/// marker must start the comment text, matching [`marker_line`]), as
/// are markers inside test code.
fn rule_unused_allow(p: &Prepared, rel: &Path, used: &HashSet<usize>, out: &mut Vec<Finding>) {
    for (ln, text) in p.comments.iter().enumerate() {
        // `///` and `//!` leave a leading '/' or '!' in the captured text.
        if text.starts_with('/') || text.starts_with('!') || p.in_test[ln] {
            continue;
        }
        let t = text.trim_start();
        let Some(rest) = t.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let name = &rest[..close];
        // The unused-allow rule cannot justify itself away.
        if name == Rule::UnusedAllow.name() {
            continue;
        }
        if !used.contains(&ln) {
            out.push(Finding {
                rule: Rule::UnusedAllow,
                file: rel.to_path_buf(),
                line: ln + 1,
                message: format!(
                    "`lint: allow({name})` suppresses no finding — remove the marker \
                     (the allow surface may only shrink)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- L1 ----

fn rule_wallclock(p: &Prepared, rel: &Path, rel_str: &str, out: &mut Vec<Finding>) {
    if WALLCLOCK_ALLOWLIST.iter().any(|a| rel_str.ends_with(a)) {
        return;
    }
    for (ln, code) in p.code.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime", "thread::sleep"] {
            if code.contains(pat) {
                out.push(Finding {
                    rule: Rule::Wallclock,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "wall-clock API `{pat}` — simulation code must use the virtual clock \
                         (turbopool_iosim::Clk)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L7 ----

/// Thread creation is confined to the driver's worker pool (and the
/// allowlisted contention bench): parallelism anywhere else could leak
/// scheduling nondeterminism into the virtual-time simulation. Test
/// modules are exempt, like L2/L6.
fn rule_thread_spawn(p: &Prepared, rel: &Path, rel_str: &str, out: &mut Vec<Finding>) {
    if THREAD_ALLOWLIST.iter().any(|a| rel_str.ends_with(a)) {
        return;
    }
    for (ln, code) in p.code.iter().enumerate() {
        if p.in_test[ln] {
            continue;
        }
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            if code.contains(pat) {
                out.push(Finding {
                    rule: Rule::ThreadSpawn,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "`{pat}` outside the driver worker pool — OS threads are confined to \
                         crates/workload/src/pool.rs so parallelism cannot leak nondeterminism"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L2 ----

fn rule_panic(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    const PATS: &[&str] = &[
        ".unwrap()",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    for (ln, code) in p.code.iter().enumerate() {
        if p.in_test[ln] {
            continue;
        }
        for pat in PATS {
            if let Some(pos) = code.find(pat) {
                // debug_assert!/assert! are fine; also skip macro *names*
                // appearing inside longer identifiers.
                if pat.starts_with(char::is_alphabetic)
                    && pos > 0
                    && is_ident_byte(code.as_bytes()[pos - 1])
                {
                    continue;
                }
                out.push(Finding {
                    rule: Rule::Panic,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "`{}` in buffer-pool hot path — return an error or justify with \
                         `// lint: allow(panic)`",
                        pat.trim_end_matches('(')
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L8 ----

/// Identifier fragments that mark an operand as a latency or queue-depth
/// quantity for L8. A comparison between such a quantity and an inline
/// numeric literal encodes a tuning decision that belongs in a named
/// config constant (`SsdConfig`, `FailSlowConfig`, `RetryPolicy`, ...).
const THRESHOLD_TOKENS: &[&str] = &["_ns", "latency", "depth", "ewma", "backoff"];

/// Parse `tok` as a plain integer literal (decimal digits, `_`
/// separators, optional integer type suffix). Returns its value.
fn int_literal(tok: &str) -> Option<u128> {
    const SUFFIXES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    let t = tok.trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_');
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return None;
    }
    let digits_len = t
        .bytes()
        .take_while(|b| b.is_ascii_digit() || *b == b'_')
        .count();
    let rest = &t[digits_len..];
    if !rest.is_empty() && !SUFFIXES.contains(&rest) {
        return None;
    }
    t[..digits_len].replace('_', "").parse().ok()
}

fn has_threshold_token(operand: &str) -> bool {
    let l = operand.to_ascii_lowercase();
    THRESHOLD_TOKENS.iter().any(|t| l.contains(t))
}

/// L8: latency/queue-depth comparisons in the SSD-manager hot path must
/// test against *named* constants, not inline numeric literals — inline
/// thresholds drift apart across call sites and silently disagree with
/// the documented config defaults. Flags `<`/`>`/`<=`/`>=` where one
/// operand is an integer literal greater than 1 and the other mentions a
/// latency or depth quantity. Test modules are exempt, like L2/L6.
fn rule_magic_threshold(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    for (ln, code) in p.code.iter().enumerate() {
        if p.in_test[ln] {
            continue;
        }
        let bytes = code.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            if b != b'<' && b != b'>' {
                i += 1;
                continue;
            }
            let prev = if i > 0 { bytes[i - 1] } else { 0 };
            let next = if i + 1 < bytes.len() { bytes[i + 1] } else { 0 };
            // Skip shifts (`<<`/`>>`), arrows (`->`/`=>`), and turbofish-ish
            // double signs; `<=`/`>=` are comparisons and stay in scope.
            if prev == b || next == b || prev == b'-' || prev == b'=' {
                i += 1;
                continue;
            }
            let op_end = if next == b'=' { i + 2 } else { i + 1 };
            let lhs = code[..i]
                .trim_end()
                .rsplit(|c: char| c.is_whitespace() || "(,{".contains(c))
                .next()
                .unwrap_or("");
            let rhs = code[op_end..]
                .trim_start()
                .split(|c: char| c.is_whitespace() || "),{;".contains(c))
                .next()
                .unwrap_or("");
            let hit = match (int_literal(lhs), int_literal(rhs)) {
                (Some(v), None) if v > 1 => has_threshold_token(rhs),
                (None, Some(v)) if v > 1 => has_threshold_token(lhs),
                _ => false,
            };
            if hit {
                out.push(Finding {
                    rule: Rule::MagicThreshold,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "latency/queue-depth compared against inline literal \
                         (`{lhs} .. {rhs}`) — name the threshold in config \
                         (SsdConfig/FailSlowConfig/RetryPolicy) or justify with \
                         `// lint: allow(magic-threshold)`"
                    ),
                });
            }
            i = op_end;
        }
    }
}

// ---------------------------------------------------------------- L6 ----

/// Methods known to return `Result<_, IoError>` across the storage stack.
/// Matched as `.name(` so that `fn name(` declarations never fire.
const IO_RESULT_METHODS: &[&str] = &[
    "read_page",
    "read_run",
    "read_disk",
    "read_disk_run",
    "read_ssd",
    "write_disk_async",
    "write_disk_sync",
    "write_disk_run_async",
    "write_ssd_async",
    "write_ssd_sync",
    "prefetch_run",
    "ssd_read",
    "disk_read",
    "disk_read_run",
    "scan_heap",
    "get_with_salvage",
];

/// L6: a `Result<_, IoError>` must reach the degradation machinery — flag
/// statements that `.unwrap()`/`.expect(..)` such a result or throw it away
/// with `let _ =`. Statement-granular so multi-line call chains are seen.
fn rule_io_error(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    let mut stmt = String::new();
    let mut stmt_line: Option<usize> = None;
    let check = |stmt: &str, first_ln: Option<usize>, out: &mut Vec<Finding>| {
        let Some(ln) = first_ln else { return };
        if p.in_test[ln] {
            return;
        }
        let called = IO_RESULT_METHODS
            .iter()
            .find(|m| match_method_call(stmt, m));
        let Some(method) = called else { return };
        let t = stmt.trim_start();
        let discards = t.strip_prefix("let _").is_some_and(|rest| {
            // `let _ =` exactly; `let _x =` names (and uses) the binding.
            rest.trim_start().starts_with('=')
        });
        let unwraps = stmt.contains(".unwrap()") || stmt.contains(".expect(");
        if discards || unwraps {
            let how = if discards {
                "discarded with `let _ =`"
            } else {
                "unwrapped"
            };
            out.push(Finding {
                rule: Rule::IoError,
                file: rel.to_path_buf(),
                line: ln + 1,
                message: format!(
                    "`Result<_, IoError>` from `{method}` {how} — storage errors must \
                     propagate to the retry/quarantine/salvage machinery, or be justified \
                     with `// lint: allow(io-error)`"
                ),
            });
        }
    };
    for (ln, code) in p.code.iter().enumerate() {
        for ch in code.chars() {
            match ch {
                ';' | '{' | '}' => {
                    check(&stmt, stmt_line, out);
                    stmt.clear();
                    stmt_line = None;
                }
                c => {
                    if stmt_line.is_none() && !c.is_whitespace() {
                        stmt_line = Some(ln);
                    }
                    stmt.push(c);
                }
            }
        }
        stmt.push(' ');
    }
    check(&stmt, stmt_line, out);
}

/// True if `stmt` contains a *call* `.name(` of the given method.
fn match_method_call(stmt: &str, name: &str) -> bool {
    let pat = format!(".{name}(");
    let mut search = 0usize;
    while let Some(pos) = stmt[search..].find(&pat) {
        let at = search + pos;
        search = at + pat.len();
        // Reject matches inside longer identifiers: `.disk_read(` must not
        // match within `.my_disk_read(` (the leading '.' already anchors
        // the start, so only a false suffix match is possible — none, given
        // the '.', but keep the check for clarity).
        let after = at + 1 + name.len();
        if stmt.as_bytes().get(after) == Some(&b'(') {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------- L3 ----

/// One live lock guard inside a function body.
struct Guard {
    class: usize,
    depth: usize,
    binding: Option<String>,
    line: usize,
}

fn rule_lock_order(cfg: &Config, p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    if cfg.lock_order.is_empty() {
        return;
    }
    let class_of = |ident: &str| cfg.lock_order.iter().position(|c| c == ident);

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut stmt = String::new(); // current statement text across lines
    for (ln, code) in p.code.iter().enumerate() {
        let b = code.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            let c = b[i];
            match c as char {
                '{' => {
                    depth += 1;
                    stmt.clear();
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    stmt.clear();
                }
                ';' => {
                    // drop(name) releases a named guard early.
                    if let Some(dropped) = parse_drop(&stmt) {
                        guards.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
                    }
                    stmt.clear();
                }
                ch => stmt.push(ch),
            }
            // Acquisition site? `.lock()`, `.read()`, `.write()` with
            // empty parens.
            for (pat, _kind) in [(".lock()", 0), (".read()", 1), (".write()", 2)] {
                if b[i..].starts_with(pat.as_bytes()) {
                    if let Some(ident) = receiver_ident(&code[..i + 1]) {
                        if let Some(class) = class_of(&ident) {
                            for g in &guards {
                                if g.class > class {
                                    out.push(Finding {
                                        rule: Rule::LockOrder,
                                        file: rel.to_path_buf(),
                                        line: ln + 1,
                                        message: format!(
                                            "acquires `{}` while holding `{}` (line {}) — \
                                             declared order is {:?}",
                                            cfg.lock_order[class],
                                            cfg.lock_order[g.class],
                                            g.line,
                                            cfg.lock_order
                                        ),
                                    });
                                }
                            }
                            // Track let-bound guards; chained temporaries
                            // die within the statement and are not pushed.
                            if let Some(binding) = parse_let_binding(&stmt) {
                                guards.push(Guard {
                                    class,
                                    depth,
                                    binding: Some(binding),
                                    line: ln + 1,
                                });
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        stmt.push(' ');
    }
}

/// Last identifier of the receiver chain ending just before the final
/// `.`: `self.parts[idx].lock()` -> `parts`; `self.inner.lock()` ->
/// `inner`. `text` ends at the `.` of the call.
fn receiver_ident(text: &str) -> Option<String> {
    let b = text.as_bytes();
    let mut i = b.len().checked_sub(1)?; // the '.'
    if b[i] != b'.' {
        return None;
    }
    // Skip backwards over (..) and [..] groups.
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match b[i] {
            b')' | b']' => {
                let (open, close) = if b[i] == b')' {
                    (b'(', b')')
                } else {
                    (b'[', b']')
                };
                let mut level = 1usize;
                while level > 0 {
                    if i == 0 {
                        return None;
                    }
                    i -= 1;
                    if b[i] == close {
                        level += 1;
                    } else if b[i] == open {
                        level -= 1;
                    }
                }
            }
            x if is_ident_byte(x) => break,
            _ => return None,
        }
    }
    let end = i + 1;
    let mut start = end;
    while start > 0 && is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    let ident = &text[start..end];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident.to_string())
    }
}

/// `let [mut] NAME ... = ...` -> NAME, if the statement is a let.
fn parse_let_binding(stmt: &str) -> Option<String> {
    let t = stmt.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(rest.trim_start());
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// `drop(NAME)` -> NAME, if the statement is a drop call.
fn parse_drop(stmt: &str) -> Option<String> {
    let t = stmt.trim();
    let rest = t.strip_prefix("drop(")?;
    let name: String = rest
        .chars()
        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
        .collect();
    rest[name.len()..].starts_with(')').then_some(name)
}

// ---------------------------------------------------------------- L4 ----

const DESIGNS: &[&str] = &["CleanWrite", "DualWrite", "LazyCleaning", "Tac"];

fn rule_design_match(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    rule_enum_match(
        p,
        rel,
        out,
        Rule::DesignMatch,
        &["design"],
        DESIGNS,
        "SsdDesign",
    );
}

// ---------------------------------------------------------------- L12 ---

const REPLACEMENTS: &[&str] = &["Lru2", "Clock", "Sieve", "LruK", "Ghost"];
const ADMISSIONS: &[&str] = &["DesignDefault", "AdmitAll", "GhostHit"];

fn rule_policy_match(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    rule_enum_match(
        p,
        rel,
        out,
        Rule::PolicyMatch,
        &["replacement"],
        REPLACEMENTS,
        "ReplacementKind",
    );
    rule_enum_match(
        p,
        rel,
        out,
        Rule::PolicyMatch,
        &["admission"],
        ADMISSIONS,
        "AdmissionKind",
    );
}

/// Shared engine for L4/L12: a `match` whose plain scrutinee is (or ends
/// in) one of `suffixes` must name every entry of `variants` and carry no
/// `_` arm. Tuple scrutinees are exempt: those are transition tables,
/// exhaustive per-row.
fn rule_enum_match(
    p: &Prepared,
    rel: &Path,
    out: &mut Vec<Finding>,
    rule: Rule,
    suffixes: &[&str],
    variants: &[&str],
    enum_name: &str,
) {
    // Flatten to one string with line markers for cross-line matches.
    let joined: Vec<(usize, &str)> = p
        .code
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.as_str()))
        .collect();
    for (ln, code) in &joined {
        let mut search = 0usize;
        while let Some(pos) = code[search..].find("match ") {
            let at = search + pos;
            search = at + 6;
            if at > 0 && is_ident_byte(code.as_bytes()[at - 1]) {
                continue; // part of a longer identifier
            }
            // Scrutinee: text from after `match` to the opening `{`
            // (same line or the next few).
            let mut scrutinee = String::new();
            let mut body_start: Option<(usize, usize)> = None; // (line, col)
            'outer: for (l2, c2) in joined.iter().skip_while(|(i, _)| i < ln) {
                let text = if l2 == ln { &c2[at + 6..] } else { c2 };
                if let Some(b) = text.find('{') {
                    scrutinee.push_str(&text[..b]);
                    let col = if l2 == ln { at + 6 + b } else { b };
                    body_start = Some((*l2, col));
                    break 'outer;
                }
                scrutinee.push_str(text);
                scrutinee.push(' ');
            }
            let Some((bl, bc)) = body_start else { continue };
            let s = scrutinee.trim();
            // Plain scrutinee only: tuples are transition tables.
            let hit = !s.starts_with('(')
                && suffixes.iter().any(|suf| {
                    s == *suf || s.ends_with(&format!(".{suf}")) || s.ends_with(&format!(" {suf}"))
                });
            if !hit {
                continue;
            }
            // Walk the match body to its closing brace.
            let mut body = String::new();
            let mut depth = 1usize;
            let mut l = bl;
            let mut c = bc + 1;
            let mut wildcard_arm = false;
            'body: while l < joined.len() {
                let line = joined[l].1;
                let bytes = line.as_bytes();
                while c < bytes.len() {
                    match bytes[c] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break 'body;
                            }
                        }
                        b'_' if depth == 1 => {
                            // `_ =>` or `_ if .. =>` at arm level.
                            let before_ok = c == 0 || !is_ident_byte(bytes[c - 1]);
                            let after = line[c + 1..].trim_start();
                            if before_ok && (after.starts_with("=>") || after.starts_with("if ")) {
                                wildcard_arm = true;
                            }
                        }
                        _ => {}
                    }
                    body.push(bytes[c] as char);
                    c += 1;
                }
                body.push('\n');
                l += 1;
                c = 0;
            }
            let missing: Vec<&str> = variants
                .iter()
                .filter(|d| !body.contains(*d))
                .copied()
                .collect();
            if wildcard_arm || !missing.is_empty() {
                let what = if wildcard_arm {
                    "has a `_` arm".to_string()
                } else {
                    format!("does not name {missing:?}")
                };
                out.push(Finding {
                    rule,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "`match` over {enum_name} {what} — every variant must be handled \
                         explicitly so adding one is a compile-surface event"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L5 ----

fn rule_unsafe(p: &Prepared, rel: &Path, out: &mut Vec<Finding>) {
    for (ln, code) in p.code.iter().enumerate() {
        let mut search = 0usize;
        while let Some(pos) = code[search..].find("unsafe") {
            let at = search + pos;
            search = at + 6;
            let before_ok = at == 0 || !is_ident_byte(code.as_bytes()[at - 1]);
            let after_ok = at + 6 >= code.len() || !is_ident_byte(code.as_bytes()[at + 6]);
            if !(before_ok && after_ok) {
                continue;
            }
            // `forbid(unsafe_code)` style attributes mention the lint
            // name, not the keyword; the ident check above filtered
            // `unsafe_code` already. A `lint: allow(unsafe)` marker also
            // works, via the central suppression pass.
            let mut justified = false;
            let mut i = ln;
            while !justified && i > 0 && p.comment_only[i - 1] {
                i -= 1;
                justified = p.comments[i].contains("# Safety") || p.comments[i].contains("SAFETY:");
            }
            justified = justified
                || p.comments[ln].contains("# Safety")
                || p.comments[ln].contains("SAFETY:");
            if !justified {
                out.push(Finding {
                    rule: Rule::Unsafe,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: "`unsafe` without a `# Safety` comment — the workspace is \
                              unsafe-free; document the contract or remove it"
                        .to_string(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------- L9 ----

/// Hash-container iteration entry points (adaptor form).
const HASH_ITER_PATS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
];

/// Consumers whose result cannot observe iteration order.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    ".sum()",
    ".sum::",
    ".count()",
    ".max()",
    ".min()",
    ".all(",
    ".any(",
    ".len()",
    ".is_empty()",
];

/// L9: iterating a `HashMap`/`HashSet` in a sim-state crate leaks the
/// hasher's per-process randomness into replay-deterministic state (the
/// PR 3 bug class: commit publication iterated a `HashMap`). Exempt when
/// the statement ends in an order-insensitive sink, collects into a
/// BTree container, or `let`-binds a collection that is sorted within
/// the next few lines.
fn rule_determinism(
    g: &Graph,
    p: &Prepared,
    rel: &Path,
    rel_str: &str,
    is_fixture: bool,
    out: &mut Vec<Finding>,
) {
    let in_scope = is_fixture
        || graph::SIM_CRATES
            .iter()
            .any(|c| rel_str.starts_with(&format!("crates/{c}/src")));
    if !in_scope {
        return;
    }
    let empty = HashSet::new();
    let hashes = g
        .hash_idents
        .get(&graph::crate_of(rel_str))
        .unwrap_or(&empty);
    if hashes.is_empty() {
        return;
    }

    let check = |stmt: &str, first_ln: Option<usize>, out: &mut Vec<Finding>| {
        let Some(ln) = first_ln else { return };
        if p.in_test[ln] {
            return;
        }
        let mut hit: Option<String> = None;
        'pats: for pat in HASH_ITER_PATS {
            let mut search = 0usize;
            while let Some(pos) = stmt[search..].find(pat) {
                let at = search + pos;
                search = at + pat.len();
                if let Some(ident) = receiver_ident(&stmt[..at + 1]) {
                    if hashes.contains(&ident) {
                        hit = Some(ident);
                        break 'pats;
                    }
                }
            }
        }
        if hit.is_none() {
            // `for x in container` / `for x in &container` without an
            // adaptor (IntoIterator-driven iteration).
            if let Some(expr) = for_in_expr(stmt) {
                if !expr.contains('(') {
                    if let Some(id) = last_ident(expr) {
                        if hashes.contains(&id) {
                            hit = Some(id);
                        }
                    }
                }
            }
        }
        let Some(ident) = hit else { return };
        if ORDER_INSENSITIVE_SINKS.iter().any(|s| stmt.contains(s)) {
            return;
        }
        // Collecting straight into an ordered container is fine.
        if stmt.contains("BTree") {
            return;
        }
        // `let v = x.keys().collect(); ... v.sort..` shortly after.
        // `v.select_nth..` qualifies too: selecting the k-th order
        // statistic is order-insensitive (same element whatever the
        // iteration order that filled `v`).
        if let Some(binding) = parse_let_binding(stmt.trim_start()) {
            let sort_pat = format!("{binding}.sort");
            let nth_pat = format!("{binding}.select_nth");
            let horizon = (ln + 1)..(ln + 16).min(p.code.len());
            if horizon
                .clone()
                .any(|l| p.code[l].contains(&sort_pat) || p.code[l].contains(&nth_pat))
            {
                return;
            }
        }
        out.push(Finding {
            rule: Rule::Determinism,
            file: rel.to_path_buf(),
            line: ln + 1,
            message: format!(
                "iteration over hash container `{ident}` — order is nondeterministic across \
                 processes; use a BTree container, sort before observable use, or justify \
                 with `// lint: allow(determinism)`"
            ),
        });
    };

    let mut stmt = String::new();
    let mut stmt_line: Option<usize> = None;
    for (ln, code) in p.code.iter().enumerate() {
        for ch in code.chars() {
            match ch {
                ';' | '{' | '}' => {
                    check(&stmt, stmt_line, out);
                    stmt.clear();
                    stmt_line = None;
                }
                c => {
                    if stmt_line.is_none() && !c.is_whitespace() {
                        stmt_line = Some(ln);
                    }
                    stmt.push(c);
                }
            }
        }
        stmt.push(' ');
    }
    check(&stmt, stmt_line, out);
}

/// The expression of a `for .. in EXPR` statement, if any.
fn for_in_expr(stmt: &str) -> Option<&str> {
    let mut search = 0usize;
    while let Some(pos) = stmt[search..].find("for ") {
        let at = search + pos;
        search = at + 4;
        if at > 0 && is_ident_byte(stmt.as_bytes()[at - 1]) {
            continue;
        }
        let rest = &stmt[at + 4..];
        if let Some(ipos) = rest.find(" in ") {
            return Some(rest[ipos + 4..].trim());
        }
    }
    None
}

/// Trailing identifier of an expression (`&self.map` -> `map`).
fn last_ident(expr: &str) -> Option<String> {
    let b = expr.trim_end().as_bytes();
    let end = b.len();
    let mut start = end;
    while start > 0 && is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    if start == end || b[start].is_ascii_digit() {
        None
    } else {
        Some(expr.trim_end()[start..].to_string())
    }
}

// ------------------------------------------- L10 + cross-function L3 ----

/// A live lock guard tracked through the graph walker.
struct WalkGuard {
    binding: String,
    /// Lock classes this guard holds (empty when the receiver is not a
    /// declared class — still relevant for L10).
    classes: Vec<usize>,
    depth: usize,
    line: usize,
    /// Acquired via a guard-returning helper (`self.part(pid)`), in
    /// which case the intra-function L3 pass cannot see it.
    from_fn: bool,
}

/// L10 `lock-across-io` plus the cross-function half of L3: walk each
/// file tracking `let`-bound guards (direct acquisitions and
/// guard-returning helpers), then flag (a) calls that transitively reach
/// an `IoManager` submit/read/write while a guard is live, and (b) calls
/// into same-crate functions whose own acquisitions would invert the
/// declared lock order against a held guard.
fn rule_graph_walk(
    cfg: &Config,
    g: &Graph,
    p: &Prepared,
    rel: &Path,
    rel_str: &str,
    is_fixture: bool,
    out: &mut Vec<Finding>,
) {
    let io_scope = is_fixture
        || ["core", "bufpool", "workload"]
            .iter()
            .any(|c| rel_str.starts_with(&format!("crates/{c}/src")));
    let krate = graph::crate_of(rel_str);
    let class_of = |ident: &str| cfg.lock_order.iter().position(|c| c == ident);

    let mut depth = 0usize;
    let mut guards: Vec<WalkGuard> = Vec::new();
    let mut stmt = String::new();
    for (ln, code) in p.code.iter().enumerate() {
        if code.trim_start().starts_with('#') {
            continue; // attribute line: #[derive(..)], #[cfg(..)]
        }
        let b = code.as_bytes();
        let mut i = 0usize;
        while i < b.len() {
            match b[i] as char {
                '{' => {
                    depth += 1;
                    stmt.clear();
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    guards.retain(|g| g.depth <= depth);
                    stmt.clear();
                }
                ';' => {
                    if let Some(dropped) = parse_drop(&stmt) {
                        guards.retain(|g| g.binding != dropped);
                    }
                    stmt.clear();
                }
                ch => stmt.push(ch),
            }
            // Direct acquisition: track the guard; check inversions only
            // against helper-acquired guards (rule_lock_order owns the
            // purely intra-function case).
            for pat in [".lock()", ".read()", ".write()"] {
                if !b[i..].starts_with(pat.as_bytes()) {
                    continue;
                }
                let cls = receiver_ident(&code[..i + 1]).and_then(|id| class_of(&id));
                if let Some(a) = cls {
                    if !p.in_test[ln] {
                        lock_order_violation(
                            cfg,
                            guards.iter().filter(|g| g.from_fn),
                            a,
                            None,
                            rel,
                            ln,
                            out,
                        );
                    }
                }
                let chained = b.get(i + pat.len()) == Some(&b'.');
                if !chained {
                    if let Some(binding) = parse_let_binding(stmt.trim_start()) {
                        guards.push(WalkGuard {
                            binding,
                            classes: cls.into_iter().collect(),
                            depth,
                            line: ln + 1,
                            from_fn: false,
                        });
                    }
                }
            }
            // Call site.
            if b[i] == b'(' {
                if let Some(name) = graph::callee_before(code, i) {
                    if io_scope
                        && !p.in_test[ln]
                        && g.io_reaching.contains(name)
                        && !guards.is_empty()
                    {
                        let gd = guards.last().expect("guards checked non-empty");
                        out.push(Finding {
                            rule: Rule::LockAcrossIo,
                            file: rel.to_path_buf(),
                            line: ln + 1,
                            message: format!(
                                "`{name}` reaches IoManager I/O while latch `{}` (line {}) is \
                                 held — release the latch before I/O or justify with \
                                 `// lint: allow(lock-across-io)`",
                                gd.binding, gd.line
                            ),
                        });
                    }
                    let key = (krate.clone(), name.to_string());
                    if let Some(classes) = g.fn_classes.get(&key) {
                        if !p.in_test[ln] {
                            for &a in classes {
                                lock_order_violation(
                                    cfg,
                                    guards.iter(),
                                    a,
                                    Some(name),
                                    rel,
                                    ln,
                                    out,
                                );
                            }
                        }
                        if g.guard_fns.contains(&key) && !call_chained(code, i) {
                            if let Some(binding) = parse_let_binding(stmt.trim_start()) {
                                guards.push(WalkGuard {
                                    binding,
                                    classes: classes.clone(),
                                    depth,
                                    line: ln + 1,
                                    from_fn: true,
                                });
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        stmt.push(' ');
    }
}

/// Emit an L3 finding if acquiring class `a` (directly, or inside called
/// fn `via`) inverts the declared order against any held guard.
fn lock_order_violation<'a>(
    cfg: &Config,
    held: impl Iterator<Item = &'a WalkGuard>,
    a: usize,
    via: Option<&str>,
    rel: &Path,
    ln: usize,
    out: &mut Vec<Finding>,
) {
    for gd in held {
        for &h in &gd.classes {
            if h > a {
                let how = match via {
                    Some(f) => format!("calls `{f}`, which acquires"),
                    None => "acquires".to_string(),
                };
                out.push(Finding {
                    rule: Rule::LockOrder,
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    message: format!(
                        "{how} `{}` while holding `{}` (line {}) — declared order is {:?}",
                        cfg.lock_order[a], cfg.lock_order[h], gd.line, cfg.lock_order
                    ),
                });
                return; // one finding per site is enough
            }
        }
    }
}

/// Is the call whose `(` sits at byte `open` chained into a longer
/// expression on the same line (`self.part(pid).frame_no(i)`)? Calls
/// whose parens span lines are treated as unchained.
fn call_chained(code: &str, open: usize) -> bool {
    let b = code.as_bytes();
    let mut level = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => level += 1,
            b')' => {
                level -= 1;
                if level == 0 {
                    return b.get(i + 1) == Some(&b'.');
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::new(
            PathBuf::from("."),
            vec!["inner".into(), "data".into(), "states".into()],
        )
    }

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        scan_file(&cfg(), Path::new(rel), src)
    }

    #[test]
    fn strings_and_comments_are_scrubbed() {
        let src = r#"
            // Instant::now in a comment is fine
            fn f() { let s = "Instant::now"; }
        "#;
        assert!(scan("crates/iosim/src/x.rs", src).is_empty());
    }

    #[test]
    fn wallclock_fires_and_allows() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let f = scan("crates/iosim/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::Wallclock);
        let src = "// lint: allow(wallclock) harness-side\nfn f() { let t = std::time::Instant::now(); }\n";
        assert!(scan("crates/iosim/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_scoped_to_core_and_bufpool() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(scan("crates/core/src/x.rs", src).len(), 1);
        assert_eq!(scan("crates/bufpool/src/x.rs", src).len(), 1);
        assert!(scan("crates/iosim/src/x.rs", src).is_empty());
        // Test modules are exempt.
        let src = "#[cfg(test)]\nmod tests {\n fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert!(scan("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn thread_spawn_confined_to_worker_pool() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let f = scan("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::ThreadSpawn);
        // The driver worker pool and the contention bench are exempt.
        assert!(scan("crates/workload/src/pool.rs", src).is_empty());
        assert!(scan("crates/bench/benches/ablation.rs", src).is_empty());
        // Test modules are exempt, like L2/L6.
        let test_src = "#[cfg(test)]\nmod tests {\n fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(scan("crates/core/src/x.rs", test_src).is_empty());
        // Scoped threads and builders count too.
        let scope_src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n";
        assert_eq!(scan("crates/iosim/src/x.rs", scope_src).len(), 1);
        // The marker suppresses a justified exception.
        let allowed_src =
            "fn f() {\n // lint: allow(thread-spawn) justified\n std::thread::spawn(|| {});\n}\n";
        assert!(scan("crates/iosim/src/x.rs", allowed_src).is_empty());
    }

    #[test]
    fn io_error_rule_fires_on_unwrap_and_discard() {
        let unwrap = "fn f(&self) { self.io.read_disk(c, pid, buf, class).unwrap(); }\n";
        assert!(scan("crates/core/src/x.rs", unwrap)
            .iter()
            .any(|f| f.rule == Rule::IoError));
        let discard = "fn f(&self) { let _ = self.io.write_disk_async(n, pid, d, class); }\n";
        assert!(scan("crates/bufpool/src/x.rs", discard)
            .iter()
            .any(|f| f.rule == Rule::IoError));
        // Multi-line statements are still one statement.
        let multiline =
            "fn f(&self) {\n let _ = self\n  .io\n  .write_ssd_async(n, fr, d, pid);\n}\n";
        assert!(scan("crates/core/src/x.rs", multiline)
            .iter()
            .any(|f| f.rule == Rule::IoError));
    }

    #[test]
    fn io_error_rule_covers_recovery_stack() {
        // L6 extends to the WAL and engine crates (recovery/salvage paths)…
        let unwrap = "fn f(&self) { self.io.read_ssd(c, fr, buf).unwrap(); }\n";
        for rel in ["crates/wal/src/x.rs", "crates/engine/src/x.rs"] {
            let f = scan(rel, unwrap);
            assert!(f.iter().any(|x| x.rule == Rule::IoError), "{rel}: {f:?}");
        }
        // …but L2 (panic) stays scoped to core/bufpool: recovery code may
        // assert invariants, it just may not swallow storage errors.
        let plain = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(scan("crates/wal/src/x.rs", plain).is_empty());
        assert!(scan("crates/engine/src/x.rs", plain).is_empty());
    }

    #[test]
    fn io_error_rule_respects_scope_and_handling() {
        // Propagation with `?` is the intended pattern.
        let ok = "fn f(&self) -> Result<(), IoError> {\n self.io.read_disk(c, pid, b, cl)?;\n Ok(())\n}\n";
        assert!(scan("crates/core/src/x.rs", ok)
            .iter()
            .all(|f| f.rule != Rule::IoError));
        // A named binding is not a discard.
        let named =
            "fn f(&self) { let _r = self.io.write_disk_async(n, pid, d, cl); use_it(_r); }\n";
        assert!(scan("crates/core/src/x.rs", named)
            .iter()
            .all(|f| f.rule != Rule::IoError));
        // Out-of-scope crates and test modules are exempt.
        let unwrap = "fn f(&self) { self.io.read_disk(c, pid, buf, class).unwrap(); }\n";
        assert!(scan("crates/iosim/src/x.rs", unwrap).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn f(&self) { self.io.read_disk(c, p, b, l).unwrap(); }\n}\n";
        assert!(scan("crates/core/src/x.rs", test_mod)
            .iter()
            .all(|f| f.rule != Rule::IoError));
        // Suppression marker on the comment line above.
        let allowed =
            "fn f(&self) {\n // lint: allow(io-error) — best-effort hint\n let _ = self.io.write_disk_async(n, pid, d, cl);\n}\n";
        assert!(scan("crates/core/src/x.rs", allowed)
            .iter()
            .all(|f| f.rule != Rule::IoError));
    }

    #[test]
    fn lock_order_detects_inversion_and_respects_drop() {
        let bad = "fn f(&self) {\n let d = self.data[0].write();\n let i = self.inner.lock();\n}\n";
        let f = scan("crates/bufpool/src/x.rs", bad);
        assert!(f.iter().any(|f| f.rule == Rule::LockOrder), "{f:?}");
        let ok = "fn f(&self) {\n let d = self.data[0].write();\n drop(d);\n let i = self.inner.lock();\n}\n";
        assert!(scan("crates/bufpool/src/x.rs", ok)
            .iter()
            .all(|f| f.rule != Rule::LockOrder));
        let nested_ok =
            "fn f(&self) {\n let i = self.inner.lock();\n let d = self.data[0].write();\n}\n";
        assert!(scan("crates/bufpool/src/x.rs", nested_ok)
            .iter()
            .all(|f| f.rule != Rule::LockOrder));
    }

    #[test]
    fn block_scope_releases_guards() {
        let src =
            "fn f(&self) {\n { let d = self.data[0].read(); }\n let i = self.inner.lock();\n}\n";
        assert!(scan("crates/bufpool/src/x.rs", src)
            .iter()
            .all(|f| f.rule != Rule::LockOrder));
    }

    #[test]
    fn design_match_requires_all_variants() {
        let bad = "fn f(&self) { match self.cfg.design {\n SsdDesign::CleanWrite => 1,\n _ => 2,\n }; }\n";
        let f = scan("crates/core/src/y.rs", bad);
        assert!(f.iter().any(|f| f.rule == Rule::DesignMatch), "{f:?}");
        let good = "fn f(&self) { match self.cfg.design {\n SsdDesign::CleanWrite => 1,\n SsdDesign::DualWrite => 2,\n SsdDesign::LazyCleaning => 3,\n SsdDesign::Tac => 4,\n }; }\n";
        assert!(scan("crates/core/src/y.rs", good)
            .iter()
            .all(|f| f.rule != Rule::DesignMatch));
        // Tuple scrutinees (transition tables) are exempt.
        let tuple = "fn f() { match (design, from) {\n (Tac, _) => 1,\n _ => 2,\n }; }\n";
        assert!(scan("crates/core/src/y.rs", tuple)
            .iter()
            .all(|f| f.rule != Rule::DesignMatch));
    }

    #[test]
    fn policy_match_requires_all_variants() {
        let bad = "fn f(&self) { match self.cfg.replacement {\n ReplacementKind::Lru2 => 1,\n _ => 2,\n }; }\n";
        let f = scan("crates/bufpool/src/y.rs", bad);
        assert!(f.iter().any(|f| f.rule == Rule::PolicyMatch), "{f:?}");
        let good = "fn f(&self) { match self.cfg.replacement {\n ReplacementKind::Lru2 => 1,\n ReplacementKind::Clock => 2,\n ReplacementKind::Sieve => 3,\n ReplacementKind::LruK { k } => k,\n ReplacementKind::Ghost => 5,\n }; }\n";
        assert!(scan("crates/bufpool/src/y.rs", good)
            .iter()
            .all(|f| f.rule != Rule::PolicyMatch));
        let bad_adm = "fn f(&self) { match self.cfg.admission {\n AdmissionKind::DesignDefault => 1,\n AdmissionKind::AdmitAll => 2,\n }; }\n";
        let f = scan("crates/core/src/y.rs", bad_adm);
        assert!(
            f.iter()
                .any(|f| f.rule == Rule::PolicyMatch && f.message.contains("GhostHit")),
            "{f:?}"
        );
        // Other scrutinees that merely *contain* the word are exempt.
        let unrelated = "fn f(v: AdmitVerdict) { match verdict {\n AdmitVerdict::Admit => 1,\n _ => 2,\n }; }\n";
        assert!(scan("crates/core/src/y.rs", unrelated)
            .iter()
            .all(|f| f.rule != Rule::PolicyMatch));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { let p = unsafe { *(0 as *const u8) }; }\n";
        assert!(scan("crates/iosim/src/z.rs", bad)
            .iter()
            .any(|f| f.rule == Rule::Unsafe));
        let good = "// # Safety: null deref is fine in this test fixture.\nfn f() { let p = unsafe { *(0 as *const u8) }; }\n";
        assert!(scan("crates/iosim/src/z.rs", good)
            .iter()
            .all(|f| f.rule != Rule::Unsafe));
        // The lint *name* in attributes is not the keyword.
        let attr = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan("crates/iosim/src/z.rs", attr).is_empty());
    }

    #[test]
    fn lock_order_file_parses() {
        let dir = std::env::temp_dir().join("turbopool_lint_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lock_order.toml");
        fs::write(&path, "# comment\norder = [\"a\", \"b\"] # trailing\n").unwrap();
        assert_eq!(
            load_lock_order(&path),
            vec!["a".to_string(), "b".to_string()]
        );
        assert!(load_lock_order(&dir.join("missing.toml")).is_empty());
    }

    #[test]
    fn lock_order_dedups_and_survives_formatting() {
        let dir = std::env::temp_dir().join("turbopool_lint_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lock_order_edge.toml");
        fs::write(
            &path,
            "# lock classes, coarsest first\n\norder = [\n  \"outer\", # coarsest\n\n  \"inner\",\n  \"outer\",\n  \"leaf\", \"inner\",\n]\n",
        )
        .unwrap();
        // Duplicates keep their first occurrence (its position defines the
        // class); comments and blank lines inside the array are ignored.
        assert_eq!(load_lock_order(&path), ["outer", "inner", "leaf"]);
    }

    #[test]
    fn missing_lock_order_disables_l3_without_error() {
        let order = load_lock_order(Path::new("/no/such/dir/lock_order.toml"));
        assert!(order.is_empty(), "missing file must yield an empty order");
        // An empty order disables L3 (no classes to invert) but leaves
        // every other rule running.
        let empty = Config::new(PathBuf::from("."), order);
        let bad = "fn f(&self) {\n let d = self.data[0].write();\n let i = self.inner.lock();\n}\n";
        assert!(scan_file(&empty, Path::new("crates/bufpool/src/x.rs"), bad)
            .iter()
            .all(|f| f.rule != Rule::LockOrder));
        let unwrap_src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(
            scan_file(&empty, Path::new("crates/core/src/x.rs"), unwrap_src)
                .iter()
                .any(|f| f.rule == Rule::Panic)
        );
    }
}
