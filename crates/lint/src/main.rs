//! `turbopool-lint` binary: scan a tree (default: the workspace root)
//! and report findings.
//!
//! Usage: `cargo run -p turbopool-lint -- [OPTIONS] [ROOT]`
//!
//! * `--format text|json|github` — output style. `text` (default) prints
//!   one human-readable line per finding; `json` prints a machine-readable
//!   array (one finding object per line, so the report diffs cleanly);
//!   `github` prints `::error file=…,line=…::` workflow annotations.
//! * `--baseline FILE` — suppress findings recorded in FILE (a previous
//!   `--format json` report). When scanning the workspace root without an
//!   explicit `--baseline`, `crates/lint/lint_baseline.json` is loaded
//!   automatically if present.
//! * `--write-baseline` — rewrite the baseline file from this scan's
//!   findings and exit successfully.
//!
//! The exit code is non-zero only for findings *not* in the baseline, so
//! CI fails on new violations while grandfathered ones age out. Baseline
//! entries are keyed on (file, rule, message) — line numbers shift with
//! unrelated edits and are deliberately ignored.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use turbopool_lint::{load_lock_order, run, workspace_root, Config, Finding};

enum Format {
    Text,
    Json,
    Github,
}

struct Cli {
    format: Format,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        format: Format::Text,
        baseline: None,
        write_baseline: false,
        root: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let v = args.next().ok_or("--format needs a value")?;
                cli.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a value")?;
                cli.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => cli.write_baseline = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if cli.root.is_some() {
                    return Err("at most one ROOT argument".to_string());
                }
                cli.root = Some(PathBuf::from(other));
            }
        }
    }
    Ok(cli)
}

/// Append `s` to `out` as a JSON string literal.
fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn finding_json(f: &Finding) -> String {
    let mut s = String::from("{\"file\":");
    escape_json(&mut s, &f.file.to_string_lossy());
    s.push_str(",\"line\":");
    s.push_str(&f.line.to_string());
    s.push_str(",\"rule\":");
    escape_json(&mut s, f.rule.name());
    s.push_str(",\"message\":");
    escape_json(&mut s, &f.message);
    s.push('}');
    s
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&finding_json(f));
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Read one JSON string literal starting at the opening quote; returns
/// (decoded value, index past the closing quote).
fn read_json_string(bytes: &[u8], mut i: usize) -> Option<(String, usize)> {
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some((out, i + 1)),
            b'\\' => {
                let esc = *bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = std::str::from_utf8(bytes.get(i + 2..i + 6)?).ok()?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 6;
                        continue;
                    }
                    _ => return None,
                }
                i += 2;
            }
            _ => {
                // Advance one full UTF-8 character, not one byte.
                let s = std::str::from_utf8(&bytes[i..]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    None
}

/// Extract the value of `"key":"…"` from one baseline line.
fn extract_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    read_json_string(line.as_bytes(), at).map(|(v, _)| v)
}

/// Baseline keys from a previous `--format json` report. The reader is
/// line-based over our own emitted format (one object per line); it is
/// not a general JSON parser and does not need to be.
fn load_baseline(path: &Path) -> Vec<(String, String, String)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut keys = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let (Some(file), Some(rule), Some(message)) = (
            extract_field(line, "file"),
            extract_field(line, "rule"),
            extract_field(line, "message"),
        ) else {
            continue;
        };
        keys.push((file, rule, message));
    }
    keys
}

fn key_of(f: &Finding) -> (String, String, String) {
    (
        f.file.to_string_lossy().into_owned(),
        f.rule.name().to_string(),
        f.message.clone(),
    )
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("turbopool-lint: {e}");
            eprintln!(
                "usage: turbopool-lint [--format text|json|github] \
                 [--baseline FILE] [--write-baseline] [ROOT]"
            );
            return ExitCode::FAILURE;
        }
    };

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let ws = workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
    let root = match &cli.root {
        Some(p) if p.is_absolute() => p.clone(),
        Some(p) => cwd.join(p),
        None => ws.clone(),
    };

    // The lock order always comes from the workspace's declaration, even
    // when scanning a subtree (e.g. the fixtures directory).
    let lock_order = load_lock_order(&ws.join("crates/lint/lock_order.toml"));
    let cfg = Config::new(root.clone(), lock_order);
    let findings = run(&cfg);

    // The checked-in baseline only applies to full workspace scans; a
    // subtree scan (fixtures, a single crate) reports everything.
    let default_baseline = ws.join("crates/lint/lint_baseline.json");
    let baseline_path = cli.baseline.clone().unwrap_or_else(|| {
        if root == ws {
            default_baseline.clone()
        } else {
            PathBuf::from("/nonexistent-baseline")
        }
    });

    if cli.write_baseline {
        let target = cli.baseline.clone().unwrap_or(default_baseline);
        if let Err(e) = std::fs::write(&target, render_json(&findings)) {
            eprintln!("turbopool-lint: cannot write {}: {e}", target.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "turbopool-lint: wrote {} finding(s) to {}",
            findings.len(),
            target.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = load_baseline(&baseline_path);
    let fresh: Vec<&Finding> = findings
        .iter()
        .filter(|f| !baseline.contains(&key_of(f)))
        .collect();
    let suppressed = findings.len() - fresh.len();
    // Baseline entries that no longer match any finding deserve a nudge:
    // the debt was paid, so shrink the baseline.
    let stale = baseline
        .iter()
        .filter(|k| !findings.iter().any(|f| &key_of(f) == *k))
        .count();

    match cli.format {
        Format::Text => {
            for f in &fresh {
                println!("{f}");
            }
        }
        Format::Json => {
            let owned: Vec<Finding> = fresh.iter().map(|f| (*f).clone()).collect();
            print!("{}", render_json(&owned));
        }
        Format::Github => {
            for f in &fresh {
                println!(
                    "::error file={},line={}::[{}] {}",
                    f.file.display(),
                    f.line,
                    f.rule.name(),
                    f.message
                );
            }
        }
    }

    let summary = if fresh.is_empty() {
        format!("turbopool-lint: clean ({})", root.display())
    } else {
        format!(
            "turbopool-lint: {} new finding(s) in {}",
            fresh.len(),
            root.display()
        )
    };
    let mut notes = Vec::new();
    if suppressed > 0 {
        notes.push(format!("{suppressed} baselined"));
    }
    if stale > 0 {
        notes.push(format!(
            "{stale} stale baseline entr{} — regenerate with --write-baseline",
            if stale == 1 { "y" } else { "ies" }
        ));
    }
    let summary = if notes.is_empty() {
        summary
    } else {
        format!("{summary} ({})", notes.join("; "))
    };
    // In json mode stdout is the report; the summary goes to stderr.
    if matches!(cli.format, Format::Json) {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }

    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
