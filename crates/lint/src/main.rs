//! `turbopool-lint` binary: scan a tree (default: the workspace root)
//! and exit non-zero if any rule fires.
//!
//! Usage: `cargo run -p turbopool-lint [-- ROOT]`

use std::path::PathBuf;
use std::process::ExitCode;

use turbopool_lint::{load_lock_order, run, workspace_root, Config};

fn main() -> ExitCode {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let ws = workspace_root(&cwd).unwrap_or_else(|| cwd.clone());
    let root = match std::env::args().nth(1) {
        Some(arg) => {
            let p = PathBuf::from(&arg);
            if p.is_absolute() {
                p
            } else {
                cwd.join(p)
            }
        }
        None => ws.clone(),
    };

    // The lock order always comes from the workspace's declaration, even
    // when scanning a subtree (e.g. the fixtures directory).
    let lock_order = load_lock_order(&ws.join("crates/lint/lock_order.toml"));
    let cfg = Config::new(root.clone(), lock_order);

    let findings = run(&cfg);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("turbopool-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "turbopool-lint: {} finding(s) in {}",
            findings.len(),
            root.display()
        );
        ExitCode::FAILURE
    }
}
