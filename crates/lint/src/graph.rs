//! Workspace symbol table and call graph for the interprocedural rules:
//! the cross-function half of L3 `lock-order`, L9 `determinism`,
//! L10 `lock-across-io` and L11 `dead-metric`.
//!
//! Same hermetic constraint as the rest of the linter: token-stream over
//! the scrubbed source, no `syn`, no external crates. Functions are
//! recognised by `fn name(`, bodies by brace matching, call sites by
//! `name(` / `.name(` tokens. Names resolve per crate by identifier only
//! — impl blocks are not tracked, so same-named functions in one crate
//! merge into one node. That makes propagation an *over*-approximation
//! (a finding may cite a call that resolves elsewhere at runtime), never
//! an under-approximation; suppress genuinely-wrong merges with a
//! `// lint: allow(..)` marker at the call site.
//!
//! Ubiquitous std method names (`get`, `insert`, `lock`, `map`, ...) are
//! excluded from call edges entirely ([`STD_BLOCKLIST`]): `Pool::get`
//! reaches I/O, and without the blocklist every `map.get()` under a
//! latch would light up L10. The distinctive workspace names
//! (`evict_page`, `read_page`, `write_ssd_async`, ...) carry all real
//! propagation.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

use crate::Prepared;

/// `IoManager` submit/read/write entry points: the seeds of the
/// io-reaching fixpoint. Query methods (`ssd_overloaded`, queue depths,
/// `page_size`, stats getters) are deliberately absent — holding a latch
/// across a metadata peek is fine.
pub(crate) const IO_SEEDS: &[&str] = &[
    "read_disk",
    "read_disk_run",
    "read_ssd",
    "write_disk_async",
    "write_disk_sync",
    "write_disk_run_async",
    "write_ssd_async",
    "write_ssd_sync",
];

/// Method names so common in std that a call edge through them would be
/// noise (and, worse, would let `Pool::get` poison every `map.get()`).
const STD_BLOCKLIST: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "take",
    "replace",
    "push",
    "pop",
    "clear",
    "len",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "or_insert",
    "or_default",
    "keys",
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "retain",
    "extend",
    "append",
    "split",
    "join",
    "clone",
    "to_vec",
    "to_string",
    "as_slice",
    "as_mut_slice",
    "as_str",
    "as_bytes",
    "as_ref",
    "as_mut",
    "borrow",
    "borrow_mut",
    "lock",
    "read",
    "write",
    "try_lock",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "new",
    "with_capacity",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "for_each",
    "position",
    "find",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "rev",
    "zip",
    "chain",
    "skip",
    "skip_while",
    "take_while",
    "step_by",
    "enumerate",
    "collect",
    "copied",
    "cloned",
    "flatten",
    "last",
    "next",
    "nth",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "select_nth_unstable",
    "binary_search",
    "resize",
    "resize_with",
    "truncate",
    "reserve",
    "fill",
    "copy_from_slice",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "checked_mul",
    "wrapping_add",
    "wrapping_sub",
    "to_owned",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "drop",
    "trim",
    "trim_start",
    "trim_end",
    "starts_with",
    "ends_with",
    "parse",
    "chars",
    "bytes",
    "lines",
    "push_str",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "mut", "move", "else", "in",
    "as", "ref", "dyn", "where", "unsafe", "use", "pub", "crate", "super", "Self", "self", "impl",
    "struct", "enum", "trait", "type", "const", "static", "mod", "box", "async", "await", "Some",
    "None", "Ok", "Err",
];

/// Type-name wrappers that may sit between a field/param name and its
/// `HashMap`/`HashSet` payload without breaking the association
/// (`map: Mutex<HashMap<..>>` still declares `map` hash-typed).
fn gap_is_wrapper(gap: &str) -> bool {
    gap.chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '<' | '&' | ' ' | ':' | '\''))
}

/// One function definition found in the token stream.
pub(crate) struct FnDef {
    pub name: String,
    pub krate: String,
    pub in_test: bool,
    /// Callee names (blocklist/keywords already filtered).
    pub callees: Vec<String>,
    /// Lock classes directly acquired in the body (`lock_order` indices).
    pub classes: Vec<usize>,
    /// The declared return type names a guard (`MutexGuard`,
    /// `RwLock*Guard`, or a local `Guard` type).
    pub returns_guard: bool,
}

/// A declared stats/counter field (L11).
pub(crate) struct MetricField {
    pub file: PathBuf,
    /// 0-based declaration line.
    pub line: usize,
    pub strukt: String,
    pub field: String,
}

pub(crate) struct Graph {
    pub fns: Vec<FnDef>,
    /// Names (workspace-wide) whose call transitively reaches an
    /// `IoManager` seed; includes the seed names themselves.
    pub io_reaching: HashSet<String>,
    /// (crate, fn) -> lock classes the fn directly acquires.
    pub fn_classes: HashMap<(String, String), Vec<usize>>,
    /// (crate, fn) that return a live guard to their caller.
    pub guard_fns: HashSet<(String, String)>,
    /// crate -> identifiers declared with a `HashMap`/`HashSet` type.
    pub hash_idents: HashMap<String, HashSet<String>>,
    /// Declared stats/counter fields (L11).
    pub metric_fields: Vec<MetricField>,
    /// Identifier words appearing in observation scope: bench / tests /
    /// examples sources and `#[cfg(test)]` regions anywhere.
    pub observed: HashSet<String>,
}

/// Crate key for a repo-relative path: `crates/<k>/...` -> `<k>`,
/// anything else (top-level `tests/`, `examples/`) -> "".
pub(crate) fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

/// Is this file part of the L11 observation scope (a place where reading
/// a counter proves it is alive)?
fn is_observation_file(rel: &str) -> bool {
    rel.starts_with("crates/bench/")
        || rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Crates whose state feeds the deterministic simulation (L9/L11 scope).
pub(crate) const SIM_CRATES: &[&str] = &["core", "bufpool", "iosim", "wal", "workload"];

impl Graph {
    pub fn build(files: &[(PathBuf, Prepared)], lock_order: &[String]) -> Graph {
        let mut g = Graph {
            fns: Vec::new(),
            io_reaching: HashSet::new(),
            fn_classes: HashMap::new(),
            guard_fns: HashSet::new(),
            hash_idents: HashMap::new(),
            metric_fields: Vec::new(),
            observed: HashSet::new(),
        };
        for (rel, p) in files {
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let krate = crate_of(&rel_str);
            collect_fns(&krate, p, lock_order, &mut g.fns);
            collect_hash_idents(p, g.hash_idents.entry(krate.clone()).or_default());
            collect_metric_fields(rel, &rel_str, p, &mut g.metric_fields);
            let observe_all = is_observation_file(&rel_str);
            for (ln, code) in p.code.iter().enumerate() {
                if observe_all || p.in_test[ln] {
                    collect_words(code, &mut g.observed);
                }
            }
        }

        // Test-module helpers stay out of the interprocedural tables:
        // name-based merging would otherwise let a test fixture's lock
        // use contaminate same-named product functions.
        for f in g.fns.iter().filter(|f| !f.in_test) {
            let key = (f.krate.clone(), f.name.clone());
            g.fn_classes
                .entry(key.clone())
                .or_default()
                .extend(f.classes.iter().copied());
            if f.returns_guard && !f.classes.is_empty() {
                g.guard_fns.insert(key);
            }
        }
        for v in g.fn_classes.values_mut() {
            v.sort_unstable();
            v.dedup();
        }

        // Io-reaching fixpoint over names. Name-based and crate-blind:
        // an over-approximation, by design (see module docs).
        let mut reach: HashSet<String> = IO_SEEDS.iter().map(|s| s.to_string()).collect();
        loop {
            let mut grew = false;
            for f in g.fns.iter().filter(|f| !f.in_test) {
                if reach.contains(&f.name) {
                    continue;
                }
                if f.callees.iter().any(|c| reach.contains(c)) {
                    reach.insert(f.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        g.io_reaching = reach;
        g
    }

    /// L11: declared counter fields never read from a bench emitter,
    /// integration test, example, or `#[cfg(test)]` region. Deduplicated
    /// by field name across mirror structs (`SsdMetrics` vs
    /// `SsdMetricsSnapshot` declare the same counters).
    pub fn dead_metrics(&self) -> Vec<&MetricField> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut out = Vec::new();
        for m in &self.metric_fields {
            if self.observed.contains(&m.field) {
                continue;
            }
            if seen.insert(m.field.as_str()) {
                out.push(m);
            }
        }
        out
    }
}

fn collect_words(code: &str, out: &mut HashSet<String>) {
    let mut word = String::new();
    for c in code.chars().chain(std::iter::once(' ')) {
        if c.is_ascii_alphanumeric() || c == '_' {
            word.push(c);
        } else if !word.is_empty() {
            if !word.as_bytes()[0].is_ascii_digit() {
                out.insert(std::mem::take(&mut word));
            } else {
                word.clear();
            }
        }
    }
}

/// Extract `ident:`-declared `HashMap`/`HashSet` names plus
/// `let name = HashMap::..` bindings.
fn collect_hash_idents(p: &Prepared, out: &mut HashSet<String>) {
    for code in &p.code {
        for pat in ["HashMap<", "HashSet<"] {
            let mut search = 0usize;
            while let Some(pos) = code[search..].find(pat) {
                let at = search + pos;
                search = at + pat.len();
                // Find the nearest preceding `ident:`; the gap between the
                // colon and the container may only hold type-wrapper text.
                let before = &code[..at];
                let Some(colon) = before.rfind(':') else {
                    continue;
                };
                // Skip path separators `::` (e.g. `std::collections::`).
                if colon > 0 && before.as_bytes()[colon - 1] == b':' {
                    // Walk left past the whole path to the real decl colon.
                    let head = before[..colon - 1].trim_end_matches(|c: char| {
                        c.is_ascii_alphanumeric() || c == '_' || c == ':'
                    });
                    let Some(c2) = head.rfind(':') else { continue };
                    if c2 > 0 && head.as_bytes()[c2 - 1] == b':' {
                        continue;
                    }
                    if !gap_is_wrapper(&head[c2 + 1..]) {
                        continue;
                    }
                    push_ident_before(&head[..c2], out);
                    continue;
                }
                if !gap_is_wrapper(&before[colon + 1..]) {
                    continue;
                }
                push_ident_before(&before[..colon], out);
            }
        }
        let t = code.trim_start();
        if (code.contains("HashMap::") || code.contains("HashSet::")) && t.starts_with("let ") {
            if let Some(name) = crate::parse_let_binding(t) {
                out.insert(name);
            }
        }
    }
}

fn push_ident_before(text: &str, out: &mut HashSet<String>) {
    let b = text.trim_end().as_bytes();
    let end = b.len();
    let mut start = end;
    while start > 0 && crate::is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    if start < end && !b[start].is_ascii_digit() {
        out.insert(text.trim_end()[start..].to_string());
    }
}

/// `pub field:` declarations inside `struct *Stats / *Metrics / *Snapshot`
/// in sim-state crates (or fixtures).
fn collect_metric_fields(rel: &Path, rel_str: &str, p: &Prepared, out: &mut Vec<MetricField>) {
    let in_scope = SIM_CRATES
        .iter()
        .any(|c| rel_str.starts_with(&format!("crates/{c}/src")))
        || rel_str.contains("fixtures");
    if !in_scope {
        return;
    }
    let mut ln = 0usize;
    while ln < p.code.len() {
        let code = &p.code[ln];
        let Some(pos) = find_word(code, "struct") else {
            ln += 1;
            continue;
        };
        let name: String = code[pos + 6..]
            .trim_start()
            .chars()
            .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
            .collect();
        let counterish = ["Stats", "Metrics", "Snapshot"]
            .iter()
            .any(|s| name.ends_with(s));
        if !counterish || p.in_test[ln] {
            ln += 1;
            continue;
        }
        // Walk the struct body to its closing brace, recording pub fields.
        let mut depth = 0usize;
        let mut opened = false;
        let mut l = ln;
        'body: while l < p.code.len() {
            for c in p.code[l].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'body;
                        }
                    }
                    ';' if !opened => break 'body, // tuple/unit struct
                    _ => {}
                }
            }
            if opened && depth == 1 && l > ln {
                let t = p.code[l].trim_start();
                if let Some(rest) = t.strip_prefix("pub ") {
                    let field: String = rest
                        .chars()
                        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
                        .collect();
                    if !field.is_empty() && rest[field.len()..].trim_start().starts_with(':') {
                        out.push(MetricField {
                            file: rel.to_path_buf(),
                            line: l,
                            strukt: name.clone(),
                            field,
                        });
                    }
                }
            }
            l += 1;
        }
        ln = l.max(ln) + 1;
    }
}

/// Position of `word` in `code` as a standalone token.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut search = 0usize;
    while let Some(pos) = code[search..].find(word) {
        let at = search + pos;
        search = at + word.len();
        let before_ok = at == 0 || !crate::is_ident_byte(code.as_bytes()[at - 1]);
        let after = at + word.len();
        let after_ok = after >= code.len() || !crate::is_ident_byte(code.as_bytes()[after]);
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Find every `fn` definition in a prepared file and record its body
/// span, callees, direct lock acquisitions and guard-returning status.
fn collect_fns(krate: &str, p: &Prepared, lock_order: &[String], out: &mut Vec<FnDef>) {
    let mut ln = 0usize;
    let mut col = 0usize;
    while ln < p.code.len() {
        let code = &p.code[ln];
        let Some(pos) = find_word_from(code, col, "fn") else {
            ln += 1;
            col = 0;
            continue;
        };
        col = pos + 2;
        let name: String = code[pos + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| crate::is_ident_byte(c as u8))
            .collect();
        if name.is_empty() {
            continue;
        }
        // Walk forward from the name to the body `{` (or a `;` for a
        // bodyless trait/extern decl), collecting the signature text.
        let mut sig = String::new();
        let mut paren = 0i32;
        let mut l = ln;
        let mut c = pos + 2;
        let mut body_start: Option<(usize, usize)> = None;
        'sig: while l < p.code.len() {
            let line = &p.code[l];
            let bytes = line.as_bytes();
            while c < bytes.len() {
                let ch = bytes[c] as char;
                match ch {
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '{' if paren == 0 => {
                        body_start = Some((l, c));
                        break 'sig;
                    }
                    ';' if paren == 0 => break 'sig,
                    _ => {}
                }
                sig.push(ch);
                c += 1;
            }
            sig.push(' ');
            l += 1;
            c = 0;
        }
        let Some((bl, bc)) = body_start else {
            continue;
        };
        let returns_guard = sig.contains("->") && sig.contains("Guard");
        // Brace-match the body.
        let mut depth = 0usize;
        let mut el = bl;
        let mut ec = bc;
        'body: while el < p.code.len() {
            let bytes = p.code[el].as_bytes();
            while ec < bytes.len() {
                match bytes[ec] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break 'body;
                        }
                    }
                    _ => {}
                }
                ec += 1;
            }
            el += 1;
            ec = 0;
        }
        let body = (bl, el.min(p.code.len().saturating_sub(1)));
        let mut callees = Vec::new();
        let mut classes = Vec::new();
        for b_ln in body.0..=body.1 {
            let line = &p.code[b_ln];
            if line.trim_start().starts_with('#') {
                continue; // attributes: #[derive(..)], #[cfg(..)]
            }
            callees_in_line(line, &mut callees);
            for pat in [".lock()", ".read()", ".write()"] {
                let mut search = 0usize;
                while let Some(pp) = line[search..].find(pat) {
                    let at = search + pp;
                    search = at + pat.len();
                    if let Some(ident) = crate::receiver_ident(&line[..at + 1]) {
                        if let Some(cl) = lock_order.iter().position(|c| *c == ident) {
                            classes.push(cl);
                        }
                    }
                }
            }
        }
        callees.sort_unstable();
        callees.dedup();
        classes.sort_unstable();
        classes.dedup();
        out.push(FnDef {
            name,
            krate: krate.to_string(),
            in_test: p.in_test[ln],
            callees,
            classes,
            returns_guard,
        });
    }
}

fn find_word_from(code: &str, from: usize, word: &str) -> Option<usize> {
    if from >= code.len() {
        return None;
    }
    find_word(&code[from..], word).map(|p| p + from)
}

/// The call-site name whose `(` sits at byte `open`, if this looks like
/// a genuine call: excludes keywords, macro invocations (`name!(`),
/// `fn` declarations and the std blocklist.
pub(crate) fn callee_before(code: &str, open: usize) -> Option<&str> {
    let b = code.as_bytes();
    if b.get(open) != Some(&b'(') {
        return None;
    }
    let mut end = open;
    if end > 0 && b[end - 1] == b'!' {
        return None; // macro
    }
    while end > 0 && b[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && crate::is_ident_byte(b[start - 1]) {
        start -= 1;
    }
    if start == end || b[start].is_ascii_digit() {
        return None;
    }
    let name = &code[start..end];
    // `fn name(` is a declaration, not a call.
    if code[..start].trim_end().ends_with("fn") {
        return None;
    }
    if KEYWORDS.contains(&name) || STD_BLOCKLIST.contains(&name) {
        return None;
    }
    Some(name)
}

/// Append every call-site name found in one code line.
pub(crate) fn callees_in_line(code: &str, out: &mut Vec<String>) {
    for i in 0..code.len() {
        if let Some(name) = callee_before(code, i) {
            out.push(name.to_string());
        }
    }
}
