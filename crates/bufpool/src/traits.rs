//! The seam between the buffer manager and the storage layers below it.

use std::sync::Arc;

use turbopool_iosim::{fault, Clk, IoError, IoManager, Locality, PageBuf, PageId, Time};

/// Everything the buffer manager needs from the storage stack below it.
///
/// In the paper's architecture (Figure 1) the buffer manager talks to the
/// SSD manager, which talks to the disk manager. This trait is that
/// interface: the SSD manager (`turbopool-core`) implements it by
/// interposing the SSD cache, and [`DirectIo`] implements it by going
/// straight to disk (the `noSSD` baseline).
pub trait PageIo: Send + Sync {
    /// Read one page, from the SSD if cached there, else from disk. `class`
    /// is the buffer manager's random/sequential classification of this
    /// access (the SSD admission signal).
    ///
    /// SSD-side failures never surface here — implementations fall through
    /// to disk (or recover the page) internally. An `Err` means the disk
    /// tier itself failed after the standard capped-backoff retries, and
    /// `buf` must not be used as page data.
    fn read_page(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError>;

    /// Read the consecutive run `first .. first + n` (read-ahead / pool-fill
    /// expansion path). Implementations may trim leading/trailing pages that
    /// are SSD-resident (paper §3.3.3) but must return all `n` pages in
    /// order. `Err` has the same meaning as in [`Self::read_page`].
    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<Vec<PageBuf>, IoError>;

    /// A page was evicted from the memory pool. The implementation decides
    /// where it goes (SSD and/or disk) per its design; writes are
    /// asynchronous — device time is consumed but the caller's clock does
    /// not wait.
    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, class: Locality);

    /// The in-memory copy of `pid` was just dirtied; any SSD copy is now
    /// stale and must be invalidated (paper §2.2).
    fn note_dirtied(&self, now: Time, pid: PageId);

    /// Write one dirty page out during a sharp checkpoint of the *memory*
    /// pool. Under DW this also mirrors random-class pages to the SSD
    /// (paper §3.2). Returns the async completion time.
    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], class: Locality) -> Time;

    /// Flush any dirty pages held *below* the memory pool (only LC holds
    /// them, in the SSD). Called after the memory pool's checkpoint flush.
    fn checkpoint_flush(&self, clk: &mut Clk);

    /// True if the layer holds a cached copy of `pid` (any validity). The
    /// engine uses this to decide whether a never-materialized disk page is
    /// genuinely fresh (formattable in memory with no read I/O).
    fn has_copy(&self, _pid: PageId) -> bool {
        false
    }

    /// Inform the layer of the virtual-time window a sharp checkpoint
    /// occupied. LC stops caching newly-evicted dirty pages during this
    /// window (§3.2: "during a checkpoint, LC stops caching new dirty
    /// pages ... to simplify the implementation").
    fn checkpoint_window(&self, _start: Time, _end: Time) {}
}

/// Direct-to-disk storage layer: the paper's `noSSD` baseline.
pub struct DirectIo {
    io: Arc<IoManager>,
    retry: fault::RetryPolicy,
}

impl DirectIo {
    pub fn new(io: Arc<IoManager>) -> Self {
        Self::with_retry(io, fault::RetryPolicy::default())
    }

    /// Baseline with an explicit read-retry policy (`DbConfig::retry`).
    pub fn with_retry(io: Arc<IoManager>, retry: fault::RetryPolicy) -> Self {
        DirectIo { io, retry }
    }
}

impl PageIo for DirectIo {
    fn read_page(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
        buf: &mut [u8],
    ) -> Result<(), IoError> {
        let (_attempts, out) =
            fault::retry_sync_with(&self.retry, clk, |c| self.io.read_disk(c, pid, buf, class));
        out
    }

    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<Vec<PageBuf>, IoError> {
        let (_attempts, out) = fault::retry_sync_with(&self.retry, clk, |c| {
            self.io.read_disk_run(c, first, n, Locality::Sequential)
        });
        out
    }

    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, _class: Locality) {
        if dirty {
            if let Err(e) = fault::retry_write_forever(|| {
                self.io.write_disk_async(now, pid, data, Locality::Random)
            }) {
                // Disk death below the noSSD baseline: the page cannot be
                // persisted anywhere. Only a permanent error lands here; the
                // IoManager records the lost write so later reads of this
                // page surface the device error instead of fresh zeroes.
                debug_assert!(!e.is_transient());
            }
        }
    }

    fn note_dirtied(&self, _now: Time, _pid: PageId) {}

    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], _class: Locality) -> Time {
        match fault::retry_write_forever(|| {
            self.io.write_disk_async(now, pid, data, Locality::Random)
        }) {
            Ok(done) => done,
            // Dead disk: nothing further will complete, so nothing to wait on.
            Err(_) => now,
        }
    }

    fn checkpoint_flush(&self, _clk: &mut Clk) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::DeviceSetup;

    fn direct() -> (Arc<IoManager>, DirectIo) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(32, 64, 8)));
        (Arc::clone(&io), DirectIo::new(io))
    }

    #[test]
    fn read_page_goes_to_disk() {
        let (io, d) = direct();
        io.write_disk_async(0, PageId(3), &[7u8; 32], Locality::Random)
            .expect("no faults attached");
        let mut clk = Clk::new();
        let mut buf = [0u8; 32];
        d.read_page(&mut clk, PageId(3), Locality::Random, &mut buf)
            .expect("no faults attached");
        assert_eq!(buf[0], 7);
        assert!(clk.now > 0);
    }

    #[test]
    fn transient_disk_read_errors_are_retried_away() {
        use std::sync::Arc as StdArc;
        use turbopool_iosim::{FaultConfig, FaultPlan};
        let (io, d) = direct();
        io.write_disk_async(0, PageId(2), &[4u8; 32], Locality::Random)
            .expect("no faults attached");
        io.set_disk_fault(Some(StdArc::new(FaultPlan::new(FaultConfig::transient(
            9, 0.5,
        )))));
        let mut clk = Clk::new();
        let mut buf = [0u8; 32];
        let mut failures = 0usize;
        for _ in 0..32 {
            match d.read_page(&mut clk, PageId(2), Locality::Random, &mut buf) {
                Ok(()) => assert_eq!(buf[0], 4),
                Err(e) => {
                    assert!(e.is_transient());
                    failures += 1;
                }
            }
        }
        // p=0.5 per attempt, 6 attempts per read: a run of 32 reads clears
        // virtually always, and injected errors definitely fired.
        assert!(failures <= 2, "retry policy too weak: {failures} failures");
        assert!(io.disk_fault().expect("attached").stats().read_errors > 0);
    }

    #[test]
    fn clean_evictions_are_free() {
        let (io, d) = direct();
        d.evict_page(0, PageId(1), &[0u8; 32], false, Locality::Random);
        assert_eq!(io.disk_stats().write_ops, 0);
        d.evict_page(0, PageId(1), &[0u8; 32], true, Locality::Random);
        assert_eq!(io.disk_stats().write_ops, 1);
    }

    #[test]
    fn read_run_returns_all_pages() {
        let (_io, d) = direct();
        let mut clk = Clk::new();
        let pages = d.read_run(&mut clk, PageId(0), 5).unwrap();
        assert_eq!(pages.len(), 5);
    }
}
