//! The seam between the buffer manager and the storage layers below it.

use std::sync::Arc;

use turbopool_iosim::{Clk, IoManager, Locality, PageBuf, PageId, Time};

/// Everything the buffer manager needs from the storage stack below it.
///
/// In the paper's architecture (Figure 1) the buffer manager talks to the
/// SSD manager, which talks to the disk manager. This trait is that
/// interface: the SSD manager (`turbopool-core`) implements it by
/// interposing the SSD cache, and [`DirectIo`] implements it by going
/// straight to disk (the `noSSD` baseline).
pub trait PageIo: Send + Sync {
    /// Read one page, from the SSD if cached there, else from disk. `class`
    /// is the buffer manager's random/sequential classification of this
    /// access (the SSD admission signal).
    fn read_page(&self, clk: &mut Clk, pid: PageId, class: Locality, buf: &mut [u8]);

    /// Read the consecutive run `first .. first + n` (read-ahead / pool-fill
    /// expansion path). Implementations may trim leading/trailing pages that
    /// are SSD-resident (paper §3.3.3) but must return all `n` pages in
    /// order.
    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Vec<PageBuf>;

    /// A page was evicted from the memory pool. The implementation decides
    /// where it goes (SSD and/or disk) per its design; writes are
    /// asynchronous — device time is consumed but the caller's clock does
    /// not wait.
    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, class: Locality);

    /// The in-memory copy of `pid` was just dirtied; any SSD copy is now
    /// stale and must be invalidated (paper §2.2).
    fn note_dirtied(&self, now: Time, pid: PageId);

    /// Write one dirty page out during a sharp checkpoint of the *memory*
    /// pool. Under DW this also mirrors random-class pages to the SSD
    /// (paper §3.2). Returns the async completion time.
    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], class: Locality) -> Time;

    /// Flush any dirty pages held *below* the memory pool (only LC holds
    /// them, in the SSD). Called after the memory pool's checkpoint flush.
    fn checkpoint_flush(&self, clk: &mut Clk);

    /// True if the layer holds a cached copy of `pid` (any validity). The
    /// engine uses this to decide whether a never-materialized disk page is
    /// genuinely fresh (formattable in memory with no read I/O).
    fn has_copy(&self, _pid: PageId) -> bool {
        false
    }

    /// Inform the layer of the virtual-time window a sharp checkpoint
    /// occupied. LC stops caching newly-evicted dirty pages during this
    /// window (§3.2: "during a checkpoint, LC stops caching new dirty
    /// pages ... to simplify the implementation").
    fn checkpoint_window(&self, _start: Time, _end: Time) {}
}

/// Direct-to-disk storage layer: the paper's `noSSD` baseline.
pub struct DirectIo {
    io: Arc<IoManager>,
}

impl DirectIo {
    pub fn new(io: Arc<IoManager>) -> Self {
        DirectIo { io }
    }
}

impl PageIo for DirectIo {
    fn read_page(&self, clk: &mut Clk, pid: PageId, class: Locality, buf: &mut [u8]) {
        self.io.read_disk(clk, pid, buf, class);
    }

    fn read_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Vec<PageBuf> {
        self.io.read_disk_run(clk, first, n, Locality::Sequential)
    }

    fn evict_page(&self, now: Time, pid: PageId, data: &[u8], dirty: bool, _class: Locality) {
        if dirty {
            self.io.write_disk_async(now, pid, data, Locality::Random);
        }
    }

    fn note_dirtied(&self, _now: Time, _pid: PageId) {}

    fn checkpoint_write(&self, now: Time, pid: PageId, data: &[u8], _class: Locality) -> Time {
        self.io.write_disk_async(now, pid, data, Locality::Random)
    }

    fn checkpoint_flush(&self, _clk: &mut Clk) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::DeviceSetup;

    fn direct() -> (Arc<IoManager>, DirectIo) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(32, 64, 8)));
        (Arc::clone(&io), DirectIo::new(io))
    }

    #[test]
    fn read_page_goes_to_disk() {
        let (io, d) = direct();
        io.write_disk_async(0, PageId(3), &[7u8; 32], Locality::Random);
        let mut clk = Clk::new();
        let mut buf = [0u8; 32];
        d.read_page(&mut clk, PageId(3), Locality::Random, &mut buf);
        assert_eq!(buf[0], 7);
        assert!(clk.now > 0);
    }

    #[test]
    fn clean_evictions_are_free() {
        let (io, d) = direct();
        d.evict_page(0, PageId(1), &[0u8; 32], false, Locality::Random);
        assert_eq!(io.disk_stats().write_ops, 0);
        d.evict_page(0, PageId(1), &[0u8; 32], true, Locality::Random);
        assert_eq!(io.disk_stats().write_ops, 1);
    }

    #[test]
    fn read_run_returns_all_pages() {
        let (_io, d) = direct();
        let mut clk = Clk::new();
        let pages = d.read_run(&mut clk, PageId(0), 5);
        assert_eq!(pages.len(), 5);
    }
}
