//! LRU-2 access history (O'Neil et al., SIGMOD 1993).
//!
//! LRU-2 evicts the page whose *second-to-last* access is oldest, which
//! filters out pages touched exactly once by a scan. The paper uses LRU-2
//! both implicitly in its host DBMS's memory pool and explicitly as the SSD
//! replacement policy (§2.2), so the history tracker is shared: this module
//! keeps per-slot (last, previous) access stamps, and each pool builds its
//! own victim-selection structure on top (a lazy heap here; the paper's
//! clean/dirty heap array in `turbopool-core`).

/// Logical access stamps for a fixed set of slots.
///
/// Stamps come from a monotonically increasing access counter rather than
/// virtual time: LRU-2 only needs a total order of accesses, and a counter
/// is immune to the virtual clock's uneven progress across clients.
#[derive(Debug)]
pub struct Lru2 {
    /// `hist[slot] = (last, prev)`; 0 means "never".
    hist: Vec<(u64, u64)>,
    counter: u64,
}

/// The LRU-2 priority of a slot: its penultimate-access stamp, with the last
/// access as a tie-break. Lower sorts as "evict first".
pub type KDist = (u64, u64);

impl Lru2 {
    pub fn new(slots: usize) -> Self {
        Lru2 {
            hist: vec![(0, 0); slots],
            counter: 0,
        }
    }

    /// Record an access to `slot`; returns the slot's new priority.
    pub fn touch(&mut self, slot: usize) -> KDist {
        self.counter += 1;
        let (last, _) = self.hist[slot];
        self.hist[slot] = (self.counter, last);
        self.kdist(slot)
    }

    /// Seed `slot` with retained history `(last, prev)` from a previous
    /// residency of the same page (O'Neil's Retained Information Period):
    /// the next [`Lru2::touch`] then yields a non-empty penultimate stamp,
    /// so re-referenced pages are not mistaken for scan-once pages.
    pub fn seed(&mut self, slot: usize, last: u64, prev: u64) {
        self.hist[slot] = (last, prev);
    }

    /// Forget `slot`'s history (the slot was freed / re-used for a new page).
    pub fn reset(&mut self, slot: usize) {
        self.hist[slot] = (0, 0);
    }

    /// Current priority of `slot`: `(prev, last)`. Slots accessed once have
    /// `prev == 0` and are preferred victims, oldest single access first.
    #[inline]
    pub fn kdist(&self, slot: usize) -> KDist {
        let (last, prev) = self.hist[slot];
        (prev, last)
    }

    /// The last-access stamp of `slot` (0 if never accessed).
    #[inline]
    pub fn last(&self, slot: usize) -> u64 {
        self.hist[slot].0
    }

    /// The access counter value (total touches so far).
    pub fn accesses(&self) -> u64 {
        self.counter
    }

    /// Number of tracked slots.
    pub fn len(&self) -> usize {
        self.hist.len()
    }

    /// True when tracking zero slots.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn once_accessed_slots_sort_before_twice_accessed() {
        let mut l = Lru2::new(3);
        l.touch(0); // stamps (1, 0)
        l.touch(1); // (2, 0)
        l.touch(0); // (3, 1)
                    // Slot 1 was touched once -> prev = 0 -> smallest kdist.
        assert!(l.kdist(1) < l.kdist(0));
    }

    #[test]
    fn penultimate_access_decides_among_hot_slots() {
        let mut l = Lru2::new(2);
        l.touch(0); // 1
        l.touch(1); // 2
        l.touch(0); // 3 -> slot0 (prev=1)
        l.touch(1); // 4 -> slot1 (prev=2)
                    // Both touched twice; slot 0's penultimate (1) < slot 1's (2).
        assert!(l.kdist(0) < l.kdist(1));
        // A scan-like single re-touch of slot 0 updates prev to 3.
        l.touch(0);
        assert!(l.kdist(1) < l.kdist(0));
    }

    #[test]
    fn reset_clears_history() {
        let mut l = Lru2::new(1);
        l.touch(0);
        l.touch(0);
        l.reset(0);
        assert_eq!(l.kdist(0), (0, 0));
        assert_eq!(l.last(0), 0);
    }

    #[test]
    fn tie_break_by_last_access() {
        let mut l = Lru2::new(2);
        l.touch(0); // (1,0)
        l.touch(1); // (2,0)
                    // Same prev (0); older last access (slot 0) evicts first.
        assert!(l.kdist(0) < l.kdist(1));
    }
}
