//! The main-memory buffer pool.
//!
//! This crate provides the first level of the two-level buffer hierarchy:
//! a fixed set of page frames managed with LRU-2 replacement, pin/unpin page
//! guards, dirty tracking, scan read-ahead, and a sharp-checkpoint flush.
//!
//! The pool never talks to devices directly. All traffic below it goes
//! through the [`PageIo`] trait — the seam where the paper's SSD manager
//! (crate `turbopool-core`) interposes between the buffer manager and the
//! disk manager (Figure 1 of the paper). The [`DirectIo`] implementation
//! bypasses the SSD entirely and is the paper's `noSSD` baseline.

#![forbid(unsafe_code)]

pub mod admission;
pub mod lru2;
pub mod policy;
pub mod pool;
pub mod readahead;
pub mod shard;
pub mod traits;

pub use admission::{AdmissionKind, AdmissionPolicy, AdmitVerdict};
pub use lru2::Lru2;
pub use policy::{PolicyStats, ReplacementKind, ReplacementPolicy};
pub use pool::{BufferPool, BufferPoolConfig, PageGuard, PoolStats};
pub use readahead::{Classifier, ClassifierKind, ClassifierStats, ScanCursor};
pub use shard::{shard_of, ShardCount};
pub use traits::{DirectIo, PageIo};
