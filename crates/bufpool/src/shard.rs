//! Shard-count resolution and page-id → shard routing.
//!
//! The DRAM pool and the TAC table are both lock-striped by page id
//! (ISSUE 9): N shards, each behind its own latch, with shard assignment
//! a *pure function* of the page id so that replay stays bit-identical
//! regardless of how many OS threads drive the simulation. `shards = 1`
//! degenerates to the historical single-latch layout bit-for-bit.
//!
//! Determinism note: `ShardCount::Auto` resolves against a *configured*
//! parallelism hint (default 1), never against the host's core count —
//! otherwise the same seed would produce different shard layouts (and
//! different eviction orders) on different machines, breaking the
//! fingerprint gates in `tests/policy_default_regression.rs`.

/// How many lock stripes a sharded table should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardCount {
    /// Resolve from the configured parallelism hint (`shard_hint`, which
    /// defaults to 1 — the legacy single-latch layout).
    Auto,
    /// Exactly this many shards (rounded up to a power of two, clamped
    /// to the frame count). `Fixed(1)` is the legacy layout.
    Fixed(usize),
}

impl Default for ShardCount {
    fn default() -> Self {
        ShardCount::Auto
    }
}

impl ShardCount {
    /// Resolve to a concrete power-of-two shard count in `1..=frames`.
    ///
    /// `hint` is the configured parallelism hint consulted by `Auto`;
    /// `frames` bounds the count so every shard owns at least one frame.
    pub fn resolve(self, hint: usize, frames: usize) -> usize {
        let want = match self {
            ShardCount::Auto => hint.max(1),
            ShardCount::Fixed(n) => n.max(1),
        };
        let mut n = want.next_power_of_two();
        let cap = frames.max(1);
        while n > cap {
            n /= 2;
        }
        n
    }
}

/// Fibonacci-hash a routing key into one of `nshards` (power of two)
/// shards. With `nshards == 1` every key maps to shard 0.
#[inline]
pub fn shard_of(key: u64, nshards: usize) -> usize {
    debug_assert!(nshards.is_power_of_two());
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (nshards - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rounds_to_power_of_two_and_clamps() {
        assert_eq!(ShardCount::Fixed(1).resolve(8, 1024), 1);
        assert_eq!(ShardCount::Fixed(3).resolve(1, 1024), 4);
        assert_eq!(ShardCount::Fixed(16).resolve(1, 1024), 16);
        // Clamped so every shard owns at least one frame.
        assert_eq!(ShardCount::Fixed(16).resolve(1, 4), 4);
        assert_eq!(ShardCount::Fixed(16).resolve(1, 1), 1);
        assert_eq!(ShardCount::Fixed(0).resolve(1, 64), 1);
    }

    #[test]
    fn auto_follows_hint_not_host() {
        assert_eq!(ShardCount::Auto.resolve(1, 1024), 1, "default is legacy");
        assert_eq!(ShardCount::Auto.resolve(6, 1024), 8);
        assert_eq!(ShardCount::Auto.resolve(0, 1024), 1);
        assert_eq!(ShardCount::Auto.resolve(8, 5), 4, "clamped to frames");
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for k in 0..1000u64 {
            assert_eq!(shard_of(k, 1), 0);
        }
    }

    #[test]
    fn routing_is_spread_and_pure() {
        let n = 16;
        let mut counts = vec![0usize; n];
        for k in 0..16_000u64 {
            let s = shard_of(k, n);
            assert_eq!(s, shard_of(k, n), "pure function of the key");
            counts[s] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 500, "shard {i} starved: {c}/16000");
        }
    }
}
