//! Scan read-ahead and random/sequential access classification.
//!
//! The SSD admission policy caches only randomly-read pages, so the quality
//! of the random/sequential classifier directly controls what reaches the
//! SSD (paper §2.2). Two classifiers are provided:
//!
//! * [`ClassifierKind::ReadAhead`] — a page is *sequential* iff it was
//!   fetched by the read-ahead mechanism (the paper's choice; 82% accurate
//!   in their measurement).
//! * [`ClassifierKind::Proximity`] — a page is *sequential* iff it lies
//!   within 64 pages (512 KB) of the immediately preceding read, the rule
//!   from Narayanan et al. [29] (51% accurate in the paper's measurement,
//!   because concurrent streams interleave).
//!
//! The classifier records a confusion matrix against the access method's
//! declared ground truth so the accuracy experiment can be reproduced.

use turbopool_iosim::{Clk, Locality, PageId};

use crate::pool::BufferPool;

/// Which classification rule the pool uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClassifierKind {
    /// Sequential iff fetched via read-ahead (paper's design).
    ReadAhead,
    /// Sequential iff within [`PROXIMITY_WINDOW`] pages of the previous
    /// read, regardless of which stream issued it.
    Proximity,
}

/// The proximity rule's window: 64 pages = 512 KB of 8 KB pages.
pub const PROXIMITY_WINDOW: u64 = 64;

/// Confusion matrix of assigned vs ground-truth locality.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierStats {
    pub seq_as_seq: u64,
    pub seq_as_rand: u64,
    pub rand_as_seq: u64,
    pub rand_as_rand: u64,
}

impl ClassifierStats {
    /// Fraction of truly sequential fetches classified sequential — the
    /// number the paper quotes (82% read-ahead vs 51% proximity).
    pub fn sequential_accuracy(&self) -> f64 {
        let total = self.seq_as_seq + self.seq_as_rand;
        if total == 0 {
            0.0
        } else {
            self.seq_as_seq as f64 / total as f64
        }
    }

    /// Overall fraction of fetches classified correctly.
    pub fn accuracy(&self) -> f64 {
        let correct = self.seq_as_seq + self.rand_as_rand;
        let total = correct + self.seq_as_rand + self.rand_as_seq;
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    fn record(&mut self, truth: Locality, assigned: Locality) {
        match (truth, assigned) {
            (Locality::Sequential, Locality::Sequential) => self.seq_as_seq += 1,
            (Locality::Sequential, Locality::Random) => self.seq_as_rand += 1,
            (Locality::Random, Locality::Sequential) => self.rand_as_seq += 1,
            (Locality::Random, Locality::Random) => self.rand_as_rand += 1,
        }
    }
}

/// Classifier state owned by the buffer pool.
#[derive(Debug)]
pub struct Classifier {
    kind: ClassifierKind,
    last_read: Option<PageId>,
    stats: ClassifierStats,
}

impl Classifier {
    pub fn new(kind: ClassifierKind) -> Self {
        Classifier {
            kind,
            last_read: None,
            stats: ClassifierStats::default(),
        }
    }

    fn proximity_class(&self, pid: PageId) -> Locality {
        match self.last_read {
            Some(prev) if pid.0.abs_diff(prev.0) <= PROXIMITY_WINDOW => Locality::Sequential,
            _ => Locality::Random,
        }
    }

    /// Classify a demand miss. `truth` is the access method's declared
    /// locality, used only for the confusion matrix.
    pub fn classify_miss(&mut self, pid: PageId, truth: Locality) -> Locality {
        let assigned = match self.kind {
            // Demand fetches did not come through read-ahead: random.
            ClassifierKind::ReadAhead => Locality::Random,
            ClassifierKind::Proximity => self.proximity_class(pid),
        };
        self.stats.record(truth, assigned);
        self.last_read = Some(pid);
        assigned
    }

    /// Classify a page fetched by the read-ahead mechanism (ground truth is
    /// sequential by construction).
    pub fn classify_prefetch(&mut self, pid: PageId) -> Locality {
        let assigned = match self.kind {
            ClassifierKind::ReadAhead => Locality::Sequential,
            ClassifierKind::Proximity => self.proximity_class(pid),
        };
        self.stats.record(Locality::Sequential, assigned);
        self.last_read = Some(pid);
        assigned
    }

    /// A buffer hit: no classification happens (no I/O), but the proximity
    /// rule's "previous read" position does not move either — it only sees
    /// physical reads. Hits are recorded for completeness of the stream.
    pub fn observe_hit(&mut self, _pid: PageId) {}

    pub fn stats(&self) -> ClassifierStats {
        self.stats
    }
}

/// A forward scan cursor with read-ahead.
///
/// Walks pages `start .. end`, prefetching `window`-page runs ahead of the
/// consumption point, so scan pages arrive via multi-page sequential I/O
/// and are classified sequential — keeping them out of the SSD.
#[derive(Debug)]
pub struct ScanCursor {
    pos: PageId,
    end: PageId,
    window: u64,
    frontier: PageId,
}

impl ScanCursor {
    /// Scan pages `start .. end` (exclusive) with a `window`-page
    /// read-ahead.
    pub fn new(start: PageId, end: PageId, window: u64) -> Self {
        assert!(window >= 1);
        ScanCursor {
            pos: start,
            end,
            window,
            frontier: start,
        }
    }

    /// Pin and return the next page of the scan, or `None` at the end.
    /// `Some(Err(_))` reports a disk failure on the page at the cursor; the
    /// cursor still advances, so the caller may skip or abort as it sees
    /// fit and `next` stays well-defined either way.
    pub fn next<'a>(
        &mut self,
        clk: &mut Clk,
        pool: &'a BufferPool,
    ) -> Option<Result<crate::pool::PageGuard<'a>, turbopool_iosim::IoError>> {
        if self.pos >= self.end {
            return None;
        }
        if self.pos >= self.frontier {
            let n = self.window.min(self.end.0 - self.frontier.0);
            // A failed read-ahead is not a scan failure: the frontier still
            // advances and the pages are demand-read (and retried) below.
            if pool.prefetch_run(clk, self.frontier, n).is_err() {
                // Nothing was installed; `get` covers each page.
            }
            self.frontier = self.frontier.offset(n);
        }
        let g = pool.get(clk, self.pos, Locality::Sequential);
        self.pos = self.pos.offset(1);
        Some(g)
    }

    /// Pages remaining.
    pub fn remaining(&self) -> u64 {
        self.end.0.saturating_sub(self.pos.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{BufferPool, BufferPoolConfig};
    use crate::traits::DirectIo;
    use std::sync::Arc;
    use turbopool_iosim::{DeviceSetup, IoManager};

    fn scan_pool(kind: ClassifierKind) -> BufferPool {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(32, 256, 8)));
        let mut cfg = BufferPoolConfig::new(32, 32, 256);
        cfg.fill_expansion = 1;
        cfg.classifier = kind;
        BufferPool::new(cfg, Arc::new(DirectIo::new(io)))
    }

    #[test]
    fn scan_visits_every_page_once() {
        let pool = scan_pool(ClassifierKind::ReadAhead);
        let mut clk = Clk::new();
        let mut cursor = ScanCursor::new(PageId(0), PageId(20), 8);
        let mut seen = Vec::new();
        while let Some(g) = cursor.next(&mut clk, &pool) {
            let g = g.unwrap();
            seen.push(g.pid().0);
        }
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn readahead_classifier_is_perfect_on_pure_streams() {
        let pool = scan_pool(ClassifierKind::ReadAhead);
        let mut clk = Clk::new();
        let mut cursor = ScanCursor::new(PageId(0), PageId(16), 4);
        while cursor.next(&mut clk, &pool).is_some() {}
        // Random lookups far away.
        pool.get(&mut clk, PageId(200), Locality::Random).unwrap();
        pool.get(&mut clk, PageId(100), Locality::Random).unwrap();
        let s = pool.classifier_stats();
        assert_eq!(s.sequential_accuracy(), 1.0);
        assert_eq!(s.rand_as_seq, 0);
        assert_eq!(s.rand_as_rand, 2);
    }

    #[test]
    fn proximity_classifier_confused_by_interleaving() {
        let pool = scan_pool(ClassifierKind::Proximity);
        let mut clk = Clk::new();
        // Two interleaved "sequential" streams far apart: every read is
        // within 64 pages of the previous read of ITS OWN stream but not of
        // the interleaved predecessor.
        let mut a = ScanCursor::new(PageId(0), PageId(8), 1);
        let mut b = ScanCursor::new(PageId(200), PageId(208), 1);
        loop {
            let ga = a.next(&mut clk, &pool);
            let gb = b.next(&mut clk, &pool);
            if ga.is_none() && gb.is_none() {
                break;
            }
        }
        let s = pool.classifier_stats();
        assert!(
            s.sequential_accuracy() < 0.2,
            "interleaving defeats proximity: {s:?}"
        );
    }

    #[test]
    fn proximity_classifier_mislabels_near_random_reads() {
        let pool = scan_pool(ClassifierKind::Proximity);
        let mut clk = Clk::new();
        pool.get(&mut clk, PageId(100), Locality::Random).unwrap();
        pool.get(&mut clk, PageId(110), Locality::Random).unwrap(); // within 64 pages
        let s = pool.classifier_stats();
        assert_eq!(s.rand_as_seq, 1);
    }

    #[test]
    fn accuracy_math() {
        let s = ClassifierStats {
            seq_as_seq: 82,
            seq_as_rand: 18,
            rand_as_seq: 0,
            rand_as_rand: 0,
        };
        assert!((s.sequential_accuracy() - 0.82).abs() < 1e-12);
        assert!((s.accuracy() - 0.82).abs() < 1e-12);
    }
}
