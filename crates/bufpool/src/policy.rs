//! Pluggable DRAM replacement policies (ISSUE 8).
//!
//! The buffer pool used to hardwire LRU-2; this module extracts victim
//! selection behind the [`ReplacementPolicy`] trait so the policy becomes
//! a benchmarkable axis (the *Evolution of Buffer Management* survey maps
//! the space). Five policies ship:
//!
//! * [`Lru2Policy`] — the paper's LRU-2 with O'Neil's Retained
//!   Information Period, ported **verbatim** from the old `pool.rs`
//!   internals. It is the default and is regression-gated: same seeds
//!   must produce bit-identical counters to the pre-trait pool.
//! * [`ClockPolicy`] — second-chance CLOCK (reference bit + hand).
//! * [`SievePolicy`] — SIEVE (FIFO order, visited bit, hand moving from
//!   tail to head, hits never move nodes).
//! * [`LruKPolicy`] — LRU-K with configurable K and retained history.
//! * [`GhostPolicy`] — ARC-style adaptive policy with probationary/
//!   protected segments and two ghost lists steering the balance.
//!
//! # Determinism rules
//!
//! Policies are replay state: every decision must be a pure function of
//! the access sequence. Hash maps may be used for *lookup only*; any
//! iteration must be order-insensitive (the lint L9 rule enforces this
//! mechanically). No wall-clock, no RNG — tie-breaks use access stamps
//! or slot numbers.
//!
//! # Hot-path contract
//!
//! Hooks are called under the pool latch and must not allocate per call
//! on the steady-state path (amortized reallocation of internal vectors
//! and the lazy heaps' growth is fine; per-access allocation is not).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use turbopool_iosim::PageId;

use crate::lru2::{KDist, Lru2};

/// Which replacement policy a pool runs (the `BufferPoolConfig`
/// knob). Matches over this enum must be exhaustive with no `_` arm —
/// lint rule L12 (`policy-match`) enforces it, like L4 does for
/// `SsdDesign`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// LRU-2 with retained history (the paper's policy; the default).
    Lru2,
    /// Second-chance CLOCK.
    Clock,
    /// SIEVE (Zhang et al., NSDI 2024): FIFO + visited bit, lazily
    /// promoting via the hand instead of moving nodes on hit.
    Sieve,
    /// LRU-K (O'Neil et al., SIGMOD 1993) with configurable K.
    LruK { k: usize },
    /// Adaptive ghost-list policy (ARC-style probation/protection).
    Ghost,
}

impl Default for ReplacementKind {
    fn default() -> Self {
        ReplacementKind::Lru2
    }
}

impl ReplacementKind {
    /// Stable label for reports and bench JSON.
    pub fn label(self) -> String {
        match self {
            ReplacementKind::Lru2 => "lru2".to_string(),
            ReplacementKind::Clock => "clock".to_string(),
            ReplacementKind::Sieve => "sieve".to_string(),
            ReplacementKind::LruK { k } => format!("lru{k}"),
            ReplacementKind::Ghost => "ghost".to_string(),
        }
    }

    /// The matrix the policy-arena bench sweeps (LRU-K at K=3 so it is
    /// distinct from both LRU-2 and plain recency).
    pub fn arena() -> [ReplacementKind; 5] {
        [
            ReplacementKind::Lru2,
            ReplacementKind::Clock,
            ReplacementKind::Sieve,
            ReplacementKind::LruK { k: 3 },
            ReplacementKind::Ghost,
        ]
    }

    /// Construct the policy for `frames` pool slots.
    pub fn build(self, frames: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            ReplacementKind::Lru2 => Box::new(Lru2Policy::new(frames)),
            ReplacementKind::Clock => Box::new(ClockPolicy::new(frames)),
            ReplacementKind::Sieve => Box::new(SievePolicy::new(frames)),
            ReplacementKind::LruK { k } => Box::new(LruKPolicy::new(frames, k)),
            ReplacementKind::Ghost => Box::new(GhostPolicy::new(frames)),
        }
    }
}

/// Policy-internal counters, shared across all implementations so the
/// arena bench can compare eviction-scan cost and ghost effectiveness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PolicyStats {
    /// Reinstalled pages whose history/ghost entry was still retained
    /// (LRU-2/LRU-K retained stamps, ARC B1/B2 hits).
    pub ghost_hits: u64,
    /// Victim-scan steps: heap pops (including stale entries), clock-hand
    /// advances, sieve-hand advances, list walks past pinned frames.
    pub scan_steps: u64,
    /// Second chances granted (CLOCK reference-bit clears, SIEVE visited
    /// clears).
    pub second_chances: u64,
    /// Victims taken from the probationary segment (ARC T1; other
    /// policies leave this 0).
    pub probation_evictions: u64,
    /// Victims taken from the protected segment (ARC T2).
    pub protected_evictions: u64,
}

/// Victim selection + residency hooks for the DRAM pool.
///
/// The pool calls hooks under its latch; `slot` is the frame index. The
/// contract mirrors the pool's life cycle:
///
/// * [`on_install`](Self::on_install) — a page was installed into a
///   vacated slot; counts as the page's first access. Retained history
///   (if the policy keeps any) is adopted here.
/// * [`on_access`](Self::on_access) — a subsequent access (pool hit) or
///   an extra protection touch (read-ahead double-stamp).
/// * [`on_evict`](Self::on_evict) — the pool evicted the page in `slot`
///   (always the slot returned by the immediately preceding
///   [`select_victim`](Self::select_victim)); the policy may retain
///   per-page history for re-admission.
/// * [`on_remove`](Self::on_remove) — the page left the pool without
///   eviction semantics (failed install backed out); no history is kept.
/// * [`select_victim`](Self::select_victim) — pick an evictable slot;
///   `evictable(slot)` reports whether the frame is occupied and
///   unpinned. Returns `None` only if no evictable frame exists.
pub trait ReplacementPolicy: Send {
    /// Stable short name (diagnostics; bench JSON uses
    /// [`ReplacementKind::label`]).
    fn name(&self) -> &'static str;

    /// A page was installed into `slot` (first access included).
    fn on_install(&mut self, slot: usize, pid: PageId);

    /// The page in `slot` was accessed again.
    fn on_access(&mut self, slot: usize);

    /// The page in `slot` was evicted (history may be retained).
    fn on_evict(&mut self, slot: usize, pid: PageId);

    /// The page in `slot` was removed without eviction semantics.
    fn on_remove(&mut self, slot: usize, pid: PageId);

    /// Choose a victim among slots for which `evictable` returns true.
    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize>;

    /// Counter snapshot.
    fn stats(&self) -> PolicyStats;
}

// ------------------------------------------------------------ LRU-2 ----

/// The paper's LRU-2 with retained history — a verbatim extraction of
/// the pre-trait `pool.rs` internals (lazy min-heap over `(kdist, slot)`
/// with revalidate-on-pop, full rebuild when the heap drains, history
/// map pruned to 8× the frame count at the median `last` stamp). Every
/// semantic detail is preserved so default configurations replay
/// bit-identically; see `tests/policy_default_regression.rs`.
pub struct Lru2Policy {
    lru: Lru2,
    /// Retained LRU-2 history of evicted pages (O'Neil's Retained
    /// Information Period): re-referenced pages keep their penultimate
    /// access stamp across evictions, so a hot page that was pushed out
    /// does not re-enter looking like a scan-once page (which would make
    /// it the immediate next victim). Bounded to a multiple of the frame
    /// count.
    hist: HashMap<PageId, (u64, u64)>,
    /// Lazy min-heap of `(kdist, slot)`; entries are revalidated on pop.
    heap: BinaryHeap<Reverse<(KDist, usize)>>,
    frames: usize,
    stats: PolicyStats,
}

impl Lru2Policy {
    pub fn new(frames: usize) -> Self {
        Lru2Policy {
            lru: Lru2::new(frames),
            hist: HashMap::new(),
            heap: BinaryHeap::new(),
            frames,
            stats: PolicyStats::default(),
        }
    }

    fn touch(&mut self, slot: usize) {
        let kd = self.lru.touch(slot);
        self.heap.push(Reverse((kd, slot)));
    }

    /// Remember the evicted page's stamps, pruning the retained set to
    /// 8x the frame count by dropping the stalest half. The median is
    /// found with `select_nth_unstable` — O(n) instead of the old
    /// O(n log n) full sort, selecting the *same* element (the value at
    /// the sorted midpoint), so the retained set is unchanged.
    fn retain_history(&mut self, pid: PageId, last: u64, prev: u64) {
        self.hist.insert(pid, (last, prev));
        let cap = 8 * self.frames;
        if self.hist.len() > cap {
            let mut lasts: Vec<u64> = self.hist.values().map(|&(l, _)| l).collect();
            let mid = lasts.len() / 2;
            let (_, &mut median, _) = lasts.select_nth_unstable(mid);
            self.hist.retain(|_, &mut (l, _)| l >= median);
        }
    }
}

impl ReplacementPolicy for Lru2Policy {
    fn name(&self) -> &'static str {
        "lru2"
    }

    fn on_install(&mut self, slot: usize, pid: PageId) {
        // Restore retained history for a page being (re)installed.
        if let Some((last, prev)) = self.hist.remove(&pid) {
            self.lru.seed(slot, last, prev);
            self.stats.ghost_hits += 1;
        }
        self.touch(slot);
    }

    fn on_access(&mut self, slot: usize) {
        self.touch(slot);
    }

    fn on_evict(&mut self, slot: usize, pid: PageId) {
        let (prev, last) = self.lru.kdist(slot);
        self.retain_history(pid, last, prev);
        self.lru.reset(slot);
    }

    fn on_remove(&mut self, slot: usize, _pid: PageId) {
        self.lru.reset(slot);
        // Stale heap entries for this slot are revalidated (and skipped)
        // by `select_victim`, so they need no eager cleanup here.
    }

    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        loop {
            match self.heap.pop() {
                Some(Reverse((kd, slot))) => {
                    self.stats.scan_steps += 1;
                    if evictable(slot) && self.lru.kdist(slot) == kd {
                        return Some(slot);
                    }
                    // Stale entry (re-touched, freed, or pinned): skip.
                }
                None => {
                    // All entries were stale; rebuild from live frames.
                    let mut rebuilt = false;
                    for slot in 0..self.frames {
                        if evictable(slot) {
                            self.heap.push(Reverse((self.lru.kdist(slot), slot)));
                            rebuilt = true;
                        }
                    }
                    if !rebuilt {
                        return None;
                    }
                }
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

// ------------------------------------------------------------ CLOCK ----

/// Second-chance CLOCK: a hand sweeps the frame array; a set reference
/// bit buys one more lap, a clear one selects the victim. Pages install
/// with the bit clear, so scan-once pages fall out after a single lap.
pub struct ClockPolicy {
    refbit: Vec<bool>,
    occupied: Vec<bool>,
    hand: usize,
    stats: PolicyStats,
}

impl ClockPolicy {
    pub fn new(frames: usize) -> Self {
        ClockPolicy {
            refbit: vec![false; frames],
            occupied: vec![false; frames],
            hand: 0,
            stats: PolicyStats::default(),
        }
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_install(&mut self, slot: usize, _pid: PageId) {
        self.occupied[slot] = true;
        self.refbit[slot] = false;
    }

    fn on_access(&mut self, slot: usize) {
        self.refbit[slot] = true;
    }

    fn on_evict(&mut self, slot: usize, _pid: PageId) {
        self.occupied[slot] = false;
        self.refbit[slot] = false;
    }

    fn on_remove(&mut self, slot: usize, _pid: PageId) {
        self.occupied[slot] = false;
        self.refbit[slot] = false;
    }

    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        let n = self.refbit.len();
        // Two full laps suffice when any evictable frame exists: the
        // first clears reference bits, the second must then land.
        for _ in 0..2 * n + 1 {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            self.stats.scan_steps += 1;
            if !self.occupied[slot] || !evictable(slot) {
                // Pinned or empty frames are skipped without consuming
                // their reference bit.
                continue;
            }
            if self.refbit[slot] {
                self.refbit[slot] = false;
                self.stats.second_chances += 1;
            } else {
                return Some(slot);
            }
        }
        None
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

// ------------------------------------------------------------ SIEVE ----

/// SIEVE: insertion-ordered list (head = newest) with a visited bit; the
/// hand moves from tail (oldest) toward head, evicting the first
/// unvisited node and clearing visited bits as it passes. Hits only set
/// the bit — resident pages never move, making hits O(1) with no
/// promotion churn.
pub struct SievePolicy {
    /// Intrusive list links; `usize::MAX` is "none".
    prev: Vec<usize>, // toward head (newer)
    next: Vec<usize>, // toward tail (older)
    in_list: Vec<bool>,
    visited: Vec<bool>,
    head: usize,
    tail: usize,
    /// Current hand position (`usize::MAX` = restart from tail).
    hand: usize,
    stats: PolicyStats,
}

const NIL: usize = usize::MAX;

impl SievePolicy {
    pub fn new(frames: usize) -> Self {
        SievePolicy {
            prev: vec![NIL; frames],
            next: vec![NIL; frames],
            in_list: vec![false; frames],
            visited: vec![false; frames],
            head: NIL,
            tail: NIL,
            hand: NIL,
            stats: PolicyStats::default(),
        }
    }

    fn unlink(&mut self, slot: usize) {
        if !self.in_list[slot] {
            return;
        }
        if self.hand == slot {
            self.hand = self.prev[slot];
        }
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n] = p;
        }
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.in_list[slot] = false;
        self.visited[slot] = false;
    }

    fn push_head(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
        self.in_list[slot] = true;
        self.visited[slot] = false;
    }
}

impl ReplacementPolicy for SievePolicy {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn on_install(&mut self, slot: usize, _pid: PageId) {
        self.push_head(slot);
    }

    fn on_access(&mut self, slot: usize) {
        if self.in_list[slot] {
            self.visited[slot] = true;
        }
    }

    fn on_evict(&mut self, slot: usize, _pid: PageId) {
        self.unlink(slot);
    }

    fn on_remove(&mut self, slot: usize, _pid: PageId) {
        self.unlink(slot);
    }

    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        let n = self.visited.len();
        // As with CLOCK, two passes over the list bound the scan: one to
        // clear visited bits, one to land on an unvisited node.
        for _ in 0..2 * n + 1 {
            let slot = if self.hand == NIL {
                self.tail
            } else {
                self.hand
            };
            if slot == NIL {
                return None;
            }
            self.stats.scan_steps += 1;
            if !evictable(slot) {
                // Pinned frames are passed over without clearing their
                // visited bit.
                self.hand = self.prev[slot];
                continue;
            }
            if self.visited[slot] {
                self.visited[slot] = false;
                self.stats.second_chances += 1;
                self.hand = self.prev[slot];
            } else {
                // The caller evicts this slot next; `on_evict`'s unlink
                // retreats the hand to the surviving newer neighbour.
                return Some(slot);
            }
        }
        None
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

// ------------------------------------------------------------ LRU-K ----

/// LRU-K: evict the page whose K-th most recent access is oldest (pages
/// with fewer than K accesses sort first, oldest last-access first).
/// Like [`Lru2Policy`] it keeps retained history for evicted pages, but
/// its lazy heap *re-pushes* entries for pinned frames instead of
/// discarding them, so the victim path never needs an O(frames) rebuild
/// scan.
pub struct LruKPolicy {
    k: usize,
    /// Per-slot access stamps, most recent first, at most `k` kept.
    stamps: Vec<Vec<u64>>,
    counter: u64,
    heap: BinaryHeap<Reverse<((u64, u64), usize)>>,
    /// Retained stamp history of evicted pages, bounded like LRU-2's.
    hist: HashMap<PageId, Vec<u64>>,
    frames: usize,
    /// Entries popped while pinned, re-pushed after selection.
    stash: Vec<Reverse<((u64, u64), usize)>>,
    stats: PolicyStats,
}

impl LruKPolicy {
    pub fn new(frames: usize, k: usize) -> Self {
        let k = k.max(1);
        LruKPolicy {
            k,
            stamps: vec![Vec::new(); frames],
            counter: 0,
            heap: BinaryHeap::new(),
            hist: HashMap::new(),
            frames,
            stash: Vec::new(),
            stats: PolicyStats::default(),
        }
    }

    /// Priority of `slot`: (K-th most recent stamp or 0, last stamp).
    fn key(&self, slot: usize) -> (u64, u64) {
        let s = &self.stamps[slot];
        let kth = if s.len() >= self.k { s[self.k - 1] } else { 0 };
        (kth, s.first().copied().unwrap_or(0))
    }

    fn touch(&mut self, slot: usize) {
        self.counter += 1;
        let c = self.counter;
        let s = &mut self.stamps[slot];
        s.insert(0, c);
        s.truncate(self.k);
        let key = self.key(slot);
        self.heap.push(Reverse((key, slot)));
    }
}

impl ReplacementPolicy for LruKPolicy {
    fn name(&self) -> &'static str {
        "lruk"
    }

    fn on_install(&mut self, slot: usize, pid: PageId) {
        if let Some(h) = self.hist.remove(&pid) {
            self.stamps[slot] = h;
            self.stats.ghost_hits += 1;
        }
        self.touch(slot);
    }

    fn on_access(&mut self, slot: usize) {
        self.touch(slot);
    }

    fn on_evict(&mut self, slot: usize, pid: PageId) {
        let s = std::mem::take(&mut self.stamps[slot]);
        if !s.is_empty() {
            self.hist.insert(pid, s);
            let cap = 8 * self.frames;
            if self.hist.len() > cap {
                let mut lasts: Vec<u64> = self
                    .hist
                    .values()
                    .map(|v| v.first().copied().unwrap_or(0))
                    .collect();
                let mid = lasts.len() / 2;
                let (_, &mut median, _) = lasts.select_nth_unstable(mid);
                self.hist
                    .retain(|_, v| v.first().copied().unwrap_or(0) >= median);
            }
        }
    }

    fn on_remove(&mut self, slot: usize, _pid: PageId) {
        self.stamps[slot].clear();
    }

    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        let mut victim = None;
        while let Some(Reverse((key, slot))) = self.heap.pop() {
            self.stats.scan_steps += 1;
            if key != self.key(slot) || self.stamps[slot].is_empty() {
                continue; // stale: re-touched or freed since pushed
            }
            if evictable(slot) {
                victim = Some(slot);
                break;
            }
            // Pinned but current: keep the entry alive for later picks.
            self.stash.push(Reverse((key, slot)));
        }
        for e in self.stash.drain(..) {
            self.heap.push(e);
        }
        victim
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

// ------------------------------------------------------------ Ghost ----

/// Which resident list a frame is on (ARC terminology).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Segment {
    None,
    /// Probation: pages seen once since (re)admission.
    T1,
    /// Protected: pages re-referenced while resident.
    T2,
}

/// One intrusive LRU list over the shared link arrays.
#[derive(Clone, Copy)]
struct ListEnds {
    head: usize, // MRU
    tail: usize, // LRU
    len: usize,
}

impl ListEnds {
    fn new() -> Self {
        ListEnds {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

/// ARC-style adaptive ghost-list policy. Resident pages live on two
/// LRU lists — T1 (probation: referenced once) and T2 (protected:
/// re-referenced) — and evicted pages leave a ghost entry in B1/B2. A
/// ghost hit on re-admission proves the page deserved more retention,
/// so the adaptive target `p` (T1's share of the pool) grows on B1 hits
/// and shrinks on B2 hits, exactly ARC's learning rule. Ghost lists are
/// bounded FIFOs with sequence-stamped entries (a stale dequeued entry
/// whose stamp mismatches the map is skipped, so re-added pages keep
/// their full ghost lifetime).
pub struct GhostPolicy {
    prev: Vec<usize>, // toward MRU
    next: Vec<usize>, // toward LRU
    seg: Vec<Segment>,
    t1: ListEnds,
    t2: ListEnds,
    /// Adaptive target for T1's size.
    p: usize,
    frames: usize,
    /// Ghost membership: pid -> (list, seq). Lookup-only (never
    /// iterated), so replay determinism is preserved.
    ghost: HashMap<PageId, (bool, u64)>, // true = B1
    b1: VecDeque<(PageId, u64)>,
    b2: VecDeque<(PageId, u64)>,
    ghost_seq: u64,
    stats: PolicyStats,
}

impl GhostPolicy {
    pub fn new(frames: usize) -> Self {
        GhostPolicy {
            prev: vec![NIL; frames],
            next: vec![NIL; frames],
            seg: vec![Segment::None; frames],
            t1: ListEnds::new(),
            t2: ListEnds::new(),
            p: 0,
            frames,
            ghost: HashMap::new(),
            b1: VecDeque::new(),
            b2: VecDeque::new(),
            ghost_seq: 0,
            stats: PolicyStats::default(),
        }
    }

    fn list(&mut self, s: Segment) -> &mut ListEnds {
        match s {
            Segment::T1 => &mut self.t1,
            // `None` never reaches here: callers check `seg` first.
            Segment::None | Segment::T2 => &mut self.t2,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let s = self.seg[slot];
        if s == Segment::None {
            return;
        }
        let (p, n) = (self.prev[slot], self.next[slot]);
        let ends = self.list(s);
        if p == NIL {
            ends.head = n;
        } else {
            self.next[p] = n;
        }
        if n == NIL {
            self.list(s).tail = p;
        } else {
            self.prev[n] = p;
        }
        self.list(s).len -= 1;
        self.prev[slot] = NIL;
        self.next[slot] = NIL;
        self.seg[slot] = Segment::None;
    }

    fn push_mru(&mut self, slot: usize, s: Segment) {
        let ends = self.list(s);
        let old_head = ends.head;
        self.prev[slot] = NIL;
        self.next[slot] = old_head;
        if old_head != NIL {
            self.prev[old_head] = slot;
        }
        let ends = self.list(s);
        ends.head = slot;
        if ends.tail == NIL {
            ends.tail = slot;
        }
        ends.len += 1;
        self.seg[slot] = s;
    }

    fn ghost_insert(&mut self, pid: PageId, to_b1: bool) {
        self.ghost_seq += 1;
        let seq = self.ghost_seq;
        self.ghost.insert(pid, (to_b1, seq));
        let q = if to_b1 { &mut self.b1 } else { &mut self.b2 };
        q.push_back((pid, seq));
        // Bound each ghost list to the frame count, skipping entries
        // superseded by a later re-insertion of the same page.
        loop {
            let q = if to_b1 { &mut self.b1 } else { &mut self.b2 };
            if q.len() <= self.frames {
                break;
            }
            let Some((old, old_seq)) = q.pop_front() else {
                break;
            };
            match self.ghost.get(&old) {
                Some(&(l, s)) if l == to_b1 && s == old_seq => {
                    self.ghost.remove(&old);
                }
                _ => {} // stale queue entry; the live one is elsewhere
            }
        }
    }

    /// Walk `list` from its LRU end past pinned frames.
    fn lru_evictable(
        &mut self,
        s: Segment,
        evictable: &mut dyn FnMut(usize) -> bool,
    ) -> Option<usize> {
        let mut cur = self.list(s).tail;
        while cur != NIL {
            self.stats.scan_steps += 1;
            if evictable(cur) {
                return Some(cur);
            }
            cur = self.prev[cur];
        }
        None
    }
}

impl ReplacementPolicy for GhostPolicy {
    fn name(&self) -> &'static str {
        "ghost"
    }

    fn on_install(&mut self, slot: usize, pid: PageId) {
        match self.ghost.remove(&pid) {
            Some((true, _)) => {
                // B1 hit: recency working set is bigger than T1 — grow p.
                let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
                self.p = (self.p + delta).min(self.frames);
                self.stats.ghost_hits += 1;
                self.push_mru(slot, Segment::T2);
            }
            Some((false, _)) => {
                // B2 hit: frequency set needs the space back — shrink p.
                let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.stats.ghost_hits += 1;
                self.push_mru(slot, Segment::T2);
            }
            None => self.push_mru(slot, Segment::T1),
        }
    }

    fn on_access(&mut self, slot: usize) {
        // Any re-reference promotes to (or refreshes) protected MRU.
        self.unlink(slot);
        self.push_mru(slot, Segment::T2);
    }

    fn on_evict(&mut self, slot: usize, pid: PageId) {
        let seg = self.seg[slot];
        self.unlink(slot);
        match seg {
            Segment::T1 => {
                self.stats.probation_evictions += 1;
                self.ghost_insert(pid, true);
            }
            Segment::T2 => {
                self.stats.protected_evictions += 1;
                self.ghost_insert(pid, false);
            }
            Segment::None => {}
        }
    }

    fn on_remove(&mut self, slot: usize, _pid: PageId) {
        self.unlink(slot);
    }

    fn select_victim(&mut self, evictable: &mut dyn FnMut(usize) -> bool) -> Option<usize> {
        // ARC's REPLACE: evict from T1 while it exceeds its target share,
        // else from T2; fall back to the other list when every frame of
        // the preferred one is pinned.
        let prefer_t1 = self.t1.len > self.p.max(1).min(self.frames) || self.t2.len == 0;
        let (first, second) = if prefer_t1 {
            (Segment::T1, Segment::T2)
        } else {
            (Segment::T2, Segment::T1)
        };
        self.lru_evictable(first, evictable)
            .or_else(|| self.lru_evictable(second, evictable))
    }

    fn stats(&self) -> PolicyStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a policy like the pool does, with no pins: install pages
    /// into `frames` slots, touch on hit, evict on overflow. Returns the
    /// eviction sequence.
    struct Sim {
        policy: Box<dyn ReplacementPolicy>,
        resident: HashMap<PageId, usize>,
        slots: Vec<Option<PageId>>,
        free: Vec<usize>,
        evictions: Vec<PageId>,
    }

    impl Sim {
        fn new(kind: ReplacementKind, frames: usize) -> Self {
            Sim {
                policy: kind.build(frames),
                resident: HashMap::new(),
                slots: vec![None; frames],
                free: (0..frames).rev().collect(),
                evictions: Vec::new(),
            }
        }

        fn access(&mut self, pid: PageId) {
            if let Some(&slot) = self.resident.get(&pid) {
                self.policy.on_access(slot);
                return;
            }
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    let slots = &self.slots;
                    let victim = self
                        .policy
                        .select_victim(&mut |s| slots[s].is_some())
                        .expect("no evictable frame");
                    let old = self.slots[victim].take().expect("victim occupied");
                    self.policy.on_evict(victim, old);
                    self.resident.remove(&old);
                    self.evictions.push(old);
                    victim
                }
            };
            self.slots[slot] = Some(pid);
            self.resident.insert(pid, slot);
            self.policy.on_install(slot, pid);
        }
    }

    #[test]
    fn every_policy_evicts_scan_once_pages_before_hot_pages() {
        for kind in ReplacementKind::arena() {
            let mut sim = Sim::new(kind, 4);
            // Page 0 is hot; 1..=3 touched once; 4 forces an eviction.
            sim.access(PageId(0));
            sim.access(PageId(0));
            sim.access(PageId(0));
            for p in 1..=3 {
                sim.access(PageId(p));
            }
            sim.access(PageId(4));
            assert_eq!(sim.evictions.len(), 1, "{kind:?}");
            assert_ne!(sim.evictions[0], PageId(0), "{kind:?} evicted the hot page");
        }
    }

    #[test]
    fn every_policy_survives_full_churn_and_stays_consistent() {
        for kind in ReplacementKind::arena() {
            let mut sim = Sim::new(kind, 8);
            // Cyclic + skewed churn far beyond capacity.
            for i in 0..600u64 {
                sim.access(PageId(i % 40));
                if i % 3 == 0 {
                    sim.access(PageId(i % 5)); // hot set
                }
            }
            assert_eq!(sim.resident.len(), 8, "{kind:?}");
            assert!(sim.evictions.len() > 100, "{kind:?}");
        }
    }

    #[test]
    fn pinned_slots_are_never_selected() {
        for kind in ReplacementKind::arena() {
            let mut policy = kind.build(3);
            for (slot, pid) in [(0usize, 77u64), (1, 78), (2, 79)] {
                policy.on_install(slot, PageId(pid));
            }
            // Slot 1 is the only evictable frame.
            for _ in 0..3 {
                let v = policy.select_victim(&mut |s| s == 1).expect("frame 1 free");
                assert_eq!(v, 1, "{kind:?}");
                policy.on_evict(1, PageId(78));
                policy.on_install(1, PageId(78));
            }
        }
    }

    #[test]
    fn all_pinned_returns_none() {
        for kind in ReplacementKind::arena() {
            let mut policy = kind.build(2);
            policy.on_install(0, PageId(1));
            policy.on_install(1, PageId(2));
            assert_eq!(policy.select_victim(&mut |_| false), None, "{kind:?}");
            // And the policy still works afterwards.
            assert!(policy.select_victim(&mut |_| true).is_some(), "{kind:?}");
        }
    }

    #[test]
    fn lru2_history_survives_eviction() {
        let mut p = Lru2Policy::new(2);
        p.on_install(0, PageId(10));
        p.on_access(0);
        p.on_evict(0, PageId(10));
        assert_eq!(p.stats().ghost_hits, 0);
        p.on_install(0, PageId(10));
        assert_eq!(p.stats().ghost_hits, 1, "retained history adopted");
    }

    #[test]
    fn ghost_policy_adapts_target_on_ghost_hits() {
        let mut p = GhostPolicy::new(4);
        // Install + evict from T1 -> B1 ghost.
        p.on_install(0, PageId(5));
        p.on_evict(0, PageId(5));
        assert_eq!(p.stats().probation_evictions, 1);
        let before = p.p;
        p.on_install(0, PageId(5)); // B1 ghost hit
        assert_eq!(p.stats().ghost_hits, 1);
        assert!(p.p > before, "B1 hit grows the probation target");
        // The readmitted page is protected now; evicting it feeds B2.
        p.on_evict(0, PageId(5));
        assert_eq!(p.stats().protected_evictions, 1);
        p.on_install(0, PageId(5));
        assert_eq!(p.stats().ghost_hits, 2, "B2 ghost hit");
    }

    #[test]
    fn sieve_hand_resumes_after_eviction() {
        let mut p = SievePolicy::new(3);
        for (slot, pid) in [(0usize, 1u64), (1, 2), (2, 3)] {
            p.on_install(slot, PageId(pid));
        }
        // Oldest (slot 0) is unvisited -> first victim.
        let v = p.select_victim(&mut |_| true).expect("victim");
        assert_eq!(v, 0);
        p.on_evict(0, PageId(1));
        // Visit slot 1; next selection should skip it once and take 2.
        p.on_access(1);
        let v = p.select_victim(&mut |_| true).expect("victim");
        assert_eq!(v, 2, "visited node got its second chance");
        assert!(p.stats().second_chances >= 1);
    }

    #[test]
    fn lruk_prefers_pages_with_fewer_than_k_accesses() {
        let mut p = LruKPolicy::new(3, 3);
        p.on_install(0, PageId(1)); // 1 access
        p.on_install(1, PageId(2));
        p.on_install(2, PageId(3));
        // Page in slot 1 reaches K=3 accesses.
        p.on_access(1);
        p.on_access(1);
        let v = p.select_victim(&mut |_| true).expect("victim");
        assert_ne!(v, 1, "K-saturated page outlives once-touched pages");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ReplacementKind::Lru2.label(), "lru2");
        assert_eq!(ReplacementKind::LruK { k: 3 }.label(), "lru3");
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru2);
    }
}
