//! Pluggable SSD admission policies (ISSUE 8).
//!
//! CW/DW/LC hardwired "admit on random-class reads (everything while
//! filling)" and TAC hardwired its extent-temperature rule; this module
//! extracts the decision behind the [`AdmissionPolicy`] trait, keyed by
//! the [`AdmissionKind`] knob on `SsdConfig`.
//!
//! The policy decides only *whether a page qualifies*. Orthogonal gates
//! — quarantine, the §3.3.2 throttle, fail-slow hedging — stay in the
//! SSD managers and run *before* the policy is consulted, so a degraded
//! device receives no optional traffic regardless of policy. TAC's
//! `DesignDefault` keeps its temperature comparison inside `TacCache`
//! (it needs the extent table); non-default kinds replace exactly that
//! comparison.
//!
//! Determinism: decisions are pure functions of the call sequence. The
//! ghost qualifier keeps its state behind a private mutex (lock class
//! `ghost`, a leaf in `lock_order.toml`) and only ever *looks up* its
//! hash map — never iterates it.

use std::collections::{HashMap, VecDeque};

use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{Locality, PageId};

/// Which admission policy an SSD cache runs (the `SsdConfig` knob).
/// Matches over this enum must be exhaustive with no `_` arm (lint rule
/// L12, `policy-match`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdmissionKind {
    /// The paper's per-design rule: random-class-only for CW/DW/LC
    /// (§2.2, everything during aggressive filling), extent temperature
    /// for TAC (§4). The regression-gated default.
    DesignDefault,
    /// Admit every candidate (sequential pages included) — the "is the
    /// class filter doing anything?" ablation.
    AdmitAll,
    /// Ghost-hit qualifier: a page must prove itself by reappearing.
    /// First sight goes into a ghost list and is rejected; a candidate
    /// found in the ghost (recently rejected *or* recently evicted from
    /// the SSD) is admitted regardless of class. Aggressive filling
    /// still admits everything.
    GhostHit,
}

impl Default for AdmissionKind {
    fn default() -> Self {
        AdmissionKind::DesignDefault
    }
}

impl AdmissionKind {
    /// Stable label for reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            AdmissionKind::DesignDefault => "default",
            AdmissionKind::AdmitAll => "admit-all",
            AdmissionKind::GhostHit => "ghost-hit",
        }
    }

    /// The kinds the policy-arena bench sweeps.
    pub fn arena() -> [AdmissionKind; 3] {
        [
            AdmissionKind::DesignDefault,
            AdmissionKind::AdmitAll,
            AdmissionKind::GhostHit,
        ]
    }

    /// Build the policy object. `ghost_cap` bounds the ghost list
    /// (callers pass the SSD frame count).
    pub fn build(self, ghost_cap: usize) -> Box<dyn AdmissionPolicy> {
        match self {
            // CW/DW/LC's DesignDefault *is* the random-only rule; TAC
            // intercepts DesignDefault before consulting the object.
            AdmissionKind::DesignDefault => Box::new(RandomOnly),
            AdmissionKind::AdmitAll => Box::new(AdmitAll),
            AdmissionKind::GhostHit => Box::new(GhostHitQualifier::new(ghost_cap)),
        }
    }
}

/// Outcome of one admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitVerdict {
    /// Admit the page.
    Admit,
    /// Admit, and the decision came from a ghost hit (callers bump the
    /// `admission_ghost_hits` metric).
    AdmitGhost,
    /// Reject (callers bump `policy_rejections`).
    Reject,
}

impl AdmitVerdict {
    pub fn admitted(self) -> bool {
        match self {
            AdmitVerdict::Admit | AdmitVerdict::AdmitGhost => true,
            AdmitVerdict::Reject => false,
        }
    }
}

/// Admit-on-read / admit-on-clean decisions for the SSD tier.
///
/// Called with no manager latch held on the CW/DW/LC path and under the
/// TAC interior latch on the TAC path; implementations must not perform
/// I/O and must serialize any internal state behind their own leaf lock.
pub trait AdmissionPolicy: Send + Sync {
    /// Stable short name (reports use [`AdmissionKind::label`]).
    fn name(&self) -> &'static str;

    /// Should `pid` (classified `class` by the pool) enter the cache?
    /// `filling` is the aggressive-filling flag (§3.3.1): below τ
    /// occupancy every design admits everything.
    fn admit(&self, pid: PageId, class: Locality, filling: bool) -> AdmitVerdict;

    /// Feed: `pid` was replaced out of the SSD (ghost qualifiers give
    /// recently evicted pages a fast path back in).
    fn note_evicted(&self, pid: PageId);
}

/// The paper's CW/DW/LC rule: admit while filling, else random-class
/// reads only (§2.2 — sequential traffic is cheap on disk and would
/// pollute the SSD).
pub struct RandomOnly;

impl AdmissionPolicy for RandomOnly {
    fn name(&self) -> &'static str {
        "random-only"
    }

    fn admit(&self, _pid: PageId, class: Locality, filling: bool) -> AdmitVerdict {
        if filling || class == Locality::Random {
            AdmitVerdict::Admit
        } else {
            AdmitVerdict::Reject
        }
    }

    fn note_evicted(&self, _pid: PageId) {}
}

/// Admit everything. Isolates how much of a design's win comes from the
/// admission filter rather than the design itself.
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn name(&self) -> &'static str {
        "admit-all"
    }

    fn admit(&self, _pid: PageId, _class: Locality, _filling: bool) -> AdmitVerdict {
        AdmitVerdict::Admit
    }

    fn note_evicted(&self, _pid: PageId) {}
}

/// Sequence-stamped bounded ghost list (same structure as the DRAM
/// ghost policy's B-lists): membership map for O(1) lookup, FIFO deque
/// for aging, stale deque entries skipped by stamp.
struct GhostState {
    seen: HashMap<PageId, u64>,
    fifo: VecDeque<(PageId, u64)>,
    seq: u64,
}

impl GhostState {
    fn remember(&mut self, pid: PageId, cap: usize) {
        self.seq += 1;
        let seq = self.seq;
        self.seen.insert(pid, seq);
        self.fifo.push_back((pid, seq));
        while self.fifo.len() > cap {
            let Some((old, old_seq)) = self.fifo.pop_front() else {
                break;
            };
            if self.seen.get(&old) == Some(&old_seq) {
                self.seen.remove(&old);
            }
        }
    }
}

/// Second-sight doorkeeper: a candidate is admitted only when its page
/// id is already in the ghost list (it was rejected before, or was
/// recently evicted from the SSD), proving re-reference within the
/// ghost window. Classless on purpose: a re-referenced sequential page
/// qualifies, trading the class heuristic for observed frequency.
pub struct GhostHitQualifier {
    cap: usize,
    ghost: Mutex<GhostState>,
}

impl GhostHitQualifier {
    pub fn new(cap: usize) -> Self {
        GhostHitQualifier {
            cap: cap.max(1),
            ghost: Mutex::new(GhostState {
                seen: HashMap::new(),
                fifo: VecDeque::new(),
                seq: 0,
            }),
        }
    }
}

impl AdmissionPolicy for GhostHitQualifier {
    fn name(&self) -> &'static str {
        "ghost-hit"
    }

    fn admit(&self, pid: PageId, _class: Locality, filling: bool) -> AdmitVerdict {
        if filling {
            return AdmitVerdict::Admit;
        }
        let mut ghost = self.ghost.lock();
        if ghost.seen.remove(&pid).is_some() {
            // Deque entry goes stale and is skipped when it ages out.
            AdmitVerdict::AdmitGhost
        } else {
            let cap = self.cap;
            ghost.remember(pid, cap);
            AdmitVerdict::Reject
        }
    }

    fn note_evicted(&self, pid: PageId) {
        let cap = self.cap;
        self.ghost.lock().remember(pid, cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_only_matches_the_paper_rule() {
        let p = RandomOnly;
        assert!(p.admit(PageId(1), Locality::Random, false).admitted());
        assert!(!p.admit(PageId(1), Locality::Sequential, false).admitted());
        assert!(p.admit(PageId(1), Locality::Sequential, true).admitted());
    }

    #[test]
    fn admit_all_admits_everything() {
        let p = AdmitAll;
        assert!(p.admit(PageId(9), Locality::Sequential, false).admitted());
    }

    #[test]
    fn ghost_hit_requires_second_sight() {
        let p = GhostHitQualifier::new(8);
        // First sight: rejected and remembered.
        assert_eq!(
            p.admit(PageId(4), Locality::Random, false),
            AdmitVerdict::Reject
        );
        // Second sight: ghost hit, admitted (class-independent).
        assert_eq!(
            p.admit(PageId(4), Locality::Sequential, false),
            AdmitVerdict::AdmitGhost
        );
        // The hit consumed the ghost entry.
        assert_eq!(
            p.admit(PageId(4), Locality::Random, false),
            AdmitVerdict::Reject
        );
        // Filling bypasses the doorkeeper.
        assert_eq!(
            p.admit(PageId(5), Locality::Random, true),
            AdmitVerdict::Admit
        );
    }

    #[test]
    fn ghost_evictions_qualify_for_readmission() {
        let p = GhostHitQualifier::new(8);
        p.note_evicted(PageId(7));
        assert_eq!(
            p.admit(PageId(7), Locality::Random, false),
            AdmitVerdict::AdmitGhost
        );
    }

    #[test]
    fn ghost_list_is_bounded() {
        let p = GhostHitQualifier::new(2);
        for pid in 0..10u64 {
            let _ = p.admit(PageId(pid), Locality::Random, false);
        }
        // Oldest entries aged out; only the last two remain.
        assert_eq!(
            p.admit(PageId(0), Locality::Random, false),
            AdmitVerdict::Reject
        );
        assert_eq!(
            p.admit(PageId(9), Locality::Random, false),
            AdmitVerdict::AdmitGhost
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AdmissionKind::default(), AdmissionKind::DesignDefault);
        assert_eq!(AdmissionKind::GhostHit.label(), "ghost-hit");
        assert_eq!(AdmissionKind::arena().len(), 3);
    }
}
