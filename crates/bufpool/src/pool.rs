//! The buffer pool proper: frames, hash table, pluggable replacement, guards.
//!
//! Since ISSUE 9 the pool is *lock-striped*: the page table, frame
//! metadata, free list, and replacement policy are split into N shards,
//! each behind its own latch, with shard assignment a pure function of
//! the page id ([`shard_of`]). Data slots are partitioned contiguously
//! (shard i owns global slots `base[i] .. base[i] + len[i]`), cross-shard
//! totals are folded in shard order, and `shards = 1` reproduces the
//! historical single-latch pool bit-for-bit (gated by
//! `tests/policy_default_regression.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_iosim::sync::{Mutex, MutexGuard, RwLock};
use turbopool_iosim::{Clk, IoError, Locality, PageBuf, PageBufPool, PageId, Time};

use crate::policy::{PolicyStats, ReplacementKind, ReplacementPolicy};
use crate::readahead::{Classifier, ClassifierKind, ClassifierStats};
use crate::shard::{shard_of, ShardCount};
use crate::traits::PageIo;

/// Buffer pool sizing and behaviour knobs.
#[derive(Clone, Debug)]
pub struct BufferPoolConfig {
    /// Number of page frames (the paper dedicates 20 GB of DRAM).
    pub frames: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Total pages in the database (bounds fill expansion and read-ahead).
    pub db_pages: u64,
    /// Until the pool first fills, expand every single-page miss into a run
    /// of this many pages — the host-DBMS behaviour the paper observes in
    /// §4.3.2 ("expands every single-page read request to an 8 page request
    /// until the buffer pool is filled"). `<= 1` disables.
    pub fill_expansion: u64,
    /// How page accesses are classified random/sequential (§2.2).
    pub classifier: ClassifierKind,
    /// Which replacement policy picks eviction victims (LRU-2 is the
    /// paper's choice and the regression-gated default).
    pub replacement: ReplacementKind,
    /// Lock stripes for the page table (`Auto` resolves from
    /// [`shard_hint`](Self::shard_hint); `Fixed(1)` = the legacy single
    /// latch).
    pub shards: ShardCount,
    /// Parallelism hint consulted by [`ShardCount::Auto`]. Defaults to 1
    /// so that default-configured pools keep the legacy layout on every
    /// machine — sharding must be opted into by configuration, never
    /// inferred from host core count (see `crate::shard` determinism
    /// note).
    pub shard_hint: usize,
}

impl BufferPoolConfig {
    pub fn new(frames: usize, page_size: usize, db_pages: u64) -> Self {
        BufferPoolConfig {
            frames,
            page_size,
            db_pages,
            fill_expansion: 8,
            classifier: ClassifierKind::ReadAhead,
            replacement: ReplacementKind::Lru2,
            shards: ShardCount::Auto,
            shard_hint: 1,
        }
    }
}

/// Buffer pool counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub prefetched_pages: u64,
    pub expanded_fill_pages: u64,
    pub checkpoint_writes: u64,
    /// Shard-latch acquisitions (every `lock_shard`, all shards summed).
    /// Deterministic in driver runs — a pure function of the operation
    /// sequence — so it participates safely in replay equality checks.
    pub shard_acquisitions: u64,
    /// Shard-latch acquisitions that found the latch held by another OS
    /// thread. Always 0 in deterministic driver runs (domains are
    /// share-nothing); nonzero only under the real-thread contention
    /// benches.
    pub shard_contended: u64,
}

impl PoolStats {
    /// Fraction of `get` calls served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of shard-latch acquisitions that were contended.
    pub fn contended_share(&self) -> f64 {
        if self.shard_acquisitions == 0 {
            0.0
        } else {
            self.shard_contended as f64 / self.shard_acquisitions as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct FrameMeta {
    pid: Option<PageId>,
    dirty: bool,
    pin: u32,
    class: Locality,
}

impl FrameMeta {
    fn empty() -> Self {
        FrameMeta {
            pid: None,
            dirty: false,
            pin: 0,
            class: Locality::Random,
        }
    }
}

/// An eviction decided under a shard latch whose write-behind I/O is
/// still owed. The slot is privately owned by the holder until new data
/// is installed, so the victim's bytes survive in the frame meanwhile.
/// `slot` is the *global* data-slot index.
#[derive(Clone, Copy, Debug)]
struct PendingEvict {
    slot: usize,
    victim: PageId,
    dirty: bool,
    class: Locality,
}

/// Sentinel for the intrusive dirty-list links.
const NIL: usize = usize::MAX;

/// One lock stripe: a slice of the page table with its own free list,
/// replacement policy, counters, and intrusive dirty list. All slot
/// indices inside a shard are *local* (`0 .. meta.len()`); the owning
/// pool maps them to global data slots by adding the shard's base.
struct Shard {
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    free: Vec<usize>,
    /// Victim selection + access bookkeeping, behind the policy trait.
    /// Each shard owns its own instance (sized to the shard's frames), so
    /// victim selection never crosses a shard boundary. The default
    /// [`ReplacementKind::Lru2`] reproduces the pre-trait hardwired LRU-2
    /// bit-for-bit at `shards = 1` (see `tests/policy_default_regression`).
    policy: Box<dyn ReplacementPolicy>,
    filled_once: bool,
    stats: PoolStats,
    /// Intrusive doubly-linked list of dirty frames (local indices), so
    /// checkpoints and `dirty_count` never scan the whole frame table.
    /// Invariant: `meta[l].dirty` ⟺ `l` is linked ⟺ counted in `ndirty`.
    dprev: Vec<usize>,
    dnext: Vec<usize>,
    dhead: usize,
    dtail: usize,
    ndirty: usize,
}

impl Shard {
    fn new(frames: usize, replacement: ReplacementKind) -> Self {
        Shard {
            map: HashMap::with_capacity(frames),
            meta: vec![FrameMeta::empty(); frames],
            free: (0..frames).rev().collect(),
            policy: replacement.build(frames),
            filled_once: false,
            stats: PoolStats::default(),
            dprev: vec![NIL; frames],
            dnext: vec![NIL; frames],
            dhead: NIL,
            dtail: NIL,
            ndirty: 0,
        }
    }

    /// Append local slot `l` to the dirty list (must not be linked).
    fn link_dirty(&mut self, l: usize) {
        debug_assert!(self.dprev[l] == NIL && self.dnext[l] == NIL && self.dhead != l);
        self.dprev[l] = self.dtail;
        self.dnext[l] = NIL;
        if self.dtail == NIL {
            self.dhead = l;
        } else {
            self.dnext[self.dtail] = l;
        }
        self.dtail = l;
        self.ndirty += 1;
    }

    /// Unlink local slot `l` from the dirty list (must be linked).
    fn unlink_dirty(&mut self, l: usize) {
        let (p, n) = (self.dprev[l], self.dnext[l]);
        if p == NIL {
            self.dhead = n;
        } else {
            self.dnext[p] = n;
        }
        if n == NIL {
            self.dtail = p;
        } else {
            self.dprev[n] = p;
        }
        self.dprev[l] = NIL;
        self.dnext[l] = NIL;
        self.ndirty -= 1;
    }

    /// Obtain a free local slot, selecting and detaching the policy's
    /// victim if necessary — pure bookkeeping, no I/O, so it runs
    /// entirely under the shard latch. When a page is evicted the caller
    /// receives a [`PendingEvict`] (with the slot still *local*; the
    /// pool rebases it) and must hand the frame's bytes to the storage
    /// layer (after releasing the latch) *before* overwriting the frame,
    /// since the slot still holds the victim's data.
    fn vacate_slot(&mut self) -> (usize, Option<PendingEvict>) {
        if let Some(slot) = self.free.pop() {
            return (slot, None);
        }
        self.filled_once = true;
        // Split borrow: the policy mutates its own state while probing
        // frame metadata through the callback.
        let (policy, meta) = (&mut self.policy, &self.meta);
        let slot = policy
            .select_victim(&mut |s| meta[s].pid.is_some() && meta[s].pin == 0)
            // lint: allow(panic) — an unpinnable pool is a caller bug; the paper's pool sizes guarantee headroom.
            .expect("buffer pool exhausted: every frame is pinned");
        let m = self.meta[slot];
        // lint: allow(panic) — select_victim only returns slots the evictable callback approved.
        let victim = m.pid.expect("victim has a page");
        self.map.remove(&victim);
        self.policy.on_evict(slot, victim);
        if m.dirty {
            self.stats.evictions_dirty += 1;
            self.unlink_dirty(slot);
        } else {
            self.stats.evictions_clean += 1;
        }
        self.meta[slot] = FrameMeta::empty();
        (
            slot,
            Some(PendingEvict {
                slot,
                victim,
                dirty: m.dirty,
                class: m.class,
            }),
        )
    }
}

/// Per-shard latch counters, kept *outside* the latch so counting a
/// contended acquisition never itself takes the latch.
#[derive(Default)]
struct LockCounters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
}

/// The main-memory buffer pool.
///
/// Thread-safe for the discrete-event usage pattern of this workspace (one
/// logical client active at a time per domain, many logical clients
/// interleaved) *and* for real-thread access: shards are independent
/// latches, so threads touching different shards never serialize.
pub struct BufferPool {
    cfg: BufferPoolConfig,
    layer: Arc<dyn PageIo>,
    shards: Vec<Mutex<Shard>>,
    /// Global data-slot base of each shard (contiguous partition).
    bases: Vec<usize>,
    nshards: usize,
    /// Random/sequential classification is shared: sequential-run
    /// detection must observe the global access stream, which spans
    /// shards. Its latch nests *inside* a shard latch (`classifier` after
    /// `shards` in `lock_order.toml`) and is a leaf.
    classifier: Mutex<Classifier>,
    locks: Vec<LockCounters>,
    /// Recycled page-sized staging buffers for checkpoint copy-out and
    /// prefetch victim snapshots (zero-allocation steady state).
    bufs: PageBufPool,
    data: Vec<RwLock<PageBuf>>,
}

impl BufferPool {
    pub fn new(cfg: BufferPoolConfig, layer: Arc<dyn PageIo>) -> Self {
        assert!(cfg.frames > 0, "pool needs at least one frame");
        let nshards = cfg.shards.resolve(cfg.shard_hint, cfg.frames);
        let mut shards = Vec::with_capacity(nshards);
        let mut bases = Vec::with_capacity(nshards);
        let mut base = 0usize;
        for i in 0..nshards {
            // Contiguous split: the first `frames % nshards` shards take
            // one extra frame.
            let count = cfg.frames / nshards + usize::from(i < cfg.frames % nshards);
            bases.push(base);
            base += count;
            shards.push(Mutex::new(Shard::new(count, cfg.replacement)));
        }
        debug_assert_eq!(base, cfg.frames);
        let mut data = Vec::with_capacity(cfg.frames);
        data.resize_with(cfg.frames, || RwLock::new(PageBuf::zeroed(cfg.page_size)));
        let mut locks = Vec::with_capacity(nshards);
        locks.resize_with(nshards, LockCounters::default);
        BufferPool {
            classifier: Mutex::new(Classifier::new(cfg.classifier)),
            locks,
            bufs: PageBufPool::new(cfg.page_size, 8),
            shards,
            bases,
            nshards,
            data,
            cfg,
            layer,
        }
    }

    pub fn config(&self) -> &BufferPoolConfig {
        &self.cfg
    }

    /// Resolved shard count (for benches/tests).
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// Which shard owns `pid` — a pure function of the page id.
    #[inline]
    fn shard_idx(&self, pid: PageId) -> usize {
        shard_of(pid.0, self.nshards)
    }

    /// Acquire shard `i`'s latch, counting the acquisition and whether it
    /// was contended (latch held by another OS thread at that instant).
    fn lock_shard(&self, i: usize) -> MutexGuard<'_, Shard> {
        let c = &self.locks[i];
        c.acquisitions.fetch_add(1, Ordering::Relaxed);
        if let Some(g) = self.shards[i].try_lock() {
            return g;
        }
        c.contended.fetch_add(1, Ordering::Relaxed);
        self.shards[i].lock()
    }

    /// Pin page `pid`, reading it from below on a miss. `declared` is the
    /// access method's ground-truth locality (index lookup = random, scan =
    /// sequential); the pool's classifier decides the *assigned* class that
    /// drives SSD admission.
    ///
    /// `Err` means the disk tier failed even after the storage layer's
    /// retries; the installation is backed out and the pool is left exactly
    /// as if the `get` had never happened.
    pub fn get(
        &self,
        clk: &mut Clk,
        pid: PageId,
        declared: Locality,
    ) -> Result<PageGuard<'_>, IoError> {
        debug_assert!(pid.0 < self.cfg.db_pages, "page {pid} beyond database");
        let shard = self.shard_idx(pid);
        let mut sh = self.lock_shard(shard);
        if let Some(&l) = sh.map.get(&pid) {
            sh.meta[l].pin += 1;
            sh.policy.on_access(l);
            sh.stats.hits += 1;
            // Hits deliberately do NOT touch the shared classifier:
            // `Classifier::observe_hit` is a no-op for every kind (the
            // proximity window learns from I/O-layer traffic only), and
            // taking its global latch here would re-serialize the hit
            // path that sharding just spread out.
            return Ok(PageGuard {
                pool: self,
                shard,
                local: l,
                slot: self.bases[shard] + l,
                pid,
            });
        }
        sh.stats.misses += 1;
        let assigned = self.classifier.lock().classify_miss(pid, declared);

        // Pool-fill expansion: while this shard has never been full, a
        // miss fetches a run instead of one page. The clamp uses the
        // triggering shard's free count (at `shards = 1` exactly the
        // historical whole-pool clamp); expansion pages land in their own
        // shards' free frames.
        let expand = if !sh.filled_once && self.cfg.fill_expansion > 1 {
            let run = self
                .cfg
                .fill_expansion
                .min(self.cfg.db_pages - pid.0)
                .min(sh.free.len() as u64 + 1);
            run.max(1)
        } else {
            1
        };

        let (local, evicted) = sh.vacate_slot();
        let slot = self.bases[shard] + local;
        sh.meta[local] = FrameMeta {
            pid: Some(pid),
            dirty: false,
            pin: 1,
            class: assigned,
        };
        sh.map.insert(pid, local);
        sh.policy.on_install(local, pid);
        drop(sh);
        // Write-behind for the victim happens outside the shard latch but
        // before any read fills the frame, preserving per-thread I/O order.
        if let Some(mut ev) = evicted {
            ev.slot += self.bases[shard];
            self.flush_evicted(clk.now, &ev);
        }

        if expand > 1 {
            let pages = match self.layer.read_run(clk, pid, expand) {
                Ok(pages) => pages,
                Err(e) => {
                    self.abandon_install(shard, local, pid);
                    return Err(e);
                }
            };
            self.data[slot].write().copy_from(pages[0].as_slice());
            for (i, page) in pages.into_iter().enumerate().skip(1) {
                let extra = pid.offset(i as u64);
                let es = self.shard_idx(extra);
                let mut sh = self.lock_shard(es);
                if sh.map.contains_key(&extra) {
                    continue;
                }
                // A full shard takes no expansion page; other shards may
                // still have room (at `shards = 1` this is equivalent to
                // the historical `break`, since every later pop would
                // also fail).
                let Some(l) = sh.free.pop() else {
                    sh.filled_once = true;
                    continue;
                };
                sh.meta[l] = FrameMeta {
                    pid: Some(extra),
                    dirty: false,
                    pin: 0,
                    // Expansion pages were not individually requested; they
                    // are opportunistic fill, classified random like the
                    // triggering request.
                    class: Locality::Random,
                };
                sh.map.insert(extra, l);
                sh.policy.on_install(l, extra);
                sh.stats.expanded_fill_pages += 1;
                self.data[self.bases[es] + l]
                    .write()
                    .copy_from(page.as_slice());
                if sh.free.is_empty() {
                    sh.filled_once = true;
                }
            }
            // The triggering page itself may have consumed its shard's
            // last free frame (the historical post-loop check).
            let mut sh = self.lock_shard(shard);
            if sh.free.is_empty() {
                sh.filled_once = true;
            }
        } else {
            let mut buf = self.data[slot].write();
            // lint: allow(lock-across-io) — frame write latch only, held so
            // the fill lands atomically; the shard latch is already released
            // and the frame is pinned by this caller.
            let read = self.layer.read_page(clk, pid, assigned, buf.as_mut_slice());
            drop(buf);
            if let Err(e) = read {
                self.abandon_install(shard, local, pid);
                return Err(e);
            }
        }

        Ok(PageGuard {
            pool: self,
            shard,
            local,
            slot,
            pid,
        })
    }

    /// Back out a miss installation whose read from below failed: the map
    /// entry, frame metadata, and replacement state all revert, returning
    /// the slot to the free list.
    fn abandon_install(&self, shard: usize, local: usize, pid: PageId) {
        let mut sh = self.lock_shard(shard);
        debug_assert_eq!(sh.meta[local].pid, Some(pid));
        sh.map.remove(&pid);
        sh.meta[local] = FrameMeta::empty();
        sh.policy.on_remove(local, pid);
        sh.free.push(local);
    }

    /// Pin a *fresh* page that has never been written: installs a zeroed,
    /// dirty frame without any read I/O (page allocation path).
    pub fn create(&self, now: Time, pid: PageId) -> PageGuard<'_> {
        debug_assert!(pid.0 < self.cfg.db_pages, "page {pid} beyond database");
        let shard = self.shard_idx(pid);
        let mut sh = self.lock_shard(shard);
        assert!(
            !sh.map.contains_key(&pid),
            "create() of resident page {pid}"
        );
        let (local, evicted) = sh.vacate_slot();
        let slot = self.bases[shard] + local;
        sh.meta[local] = FrameMeta {
            pid: Some(pid),
            dirty: true,
            pin: 1,
            class: Locality::Random,
        };
        sh.link_dirty(local);
        sh.map.insert(pid, local);
        sh.policy.on_install(local, pid);
        drop(sh);
        if let Some(mut ev) = evicted {
            ev.slot += self.bases[shard];
            self.flush_evicted(now, &ev);
        }
        self.layer.note_dirtied(now, pid);
        self.data[slot].write().as_mut_slice().fill(0);
        PageGuard {
            pool: self,
            shard,
            local,
            slot,
            pid,
        }
    }

    /// Read-ahead: fetch the run `first .. first + n` below and install any
    /// pages not already resident, unpinned and classified *sequential*.
    pub fn prefetch_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<(), IoError> {
        assert!(first.0 + n <= self.cfg.db_pages, "prefetch beyond database");
        if n == 0 {
            return Ok(());
        }
        // A failed read-ahead installs nothing; the scan that requested it
        // simply falls back to demand reads of the same pages.
        let pages = self.layer.read_run(clk, first, n)?;
        // Pages of this run evicted *while installing it*: their entries in
        // `pages` were snapshotted before the eviction wrote newer bytes
        // below, so installing them would resurrect stale data. They are
        // skipped here and re-read (fresh) if the scan reaches them.
        let mut stale: Vec<bool> = vec![false; n as usize];
        // Evictions decided inside the loop owe write-behind I/O that must
        // not run under a shard latch. The victims' bytes are snapshotted
        // (into recycled staging buffers) before their frames are reused
        // and flushed after the loop; every booking lands at the same
        // virtual instant either way, so the deferral is invisible to the
        // simulation.
        let mut owed: Vec<(PendingEvict, Vec<u8>)> = Vec::new();
        for (i, page) in pages.into_iter().enumerate() {
            let pid = first.offset(i as u64);
            let es = self.shard_idx(pid);
            let mut sh = self.lock_shard(es);
            if sh.map.contains_key(&pid) || stale[i] {
                continue;
            }
            let assigned = self.classifier.lock().classify_prefetch(pid);
            let (local, evicted) = sh.vacate_slot();
            if let Some(mut ev) = evicted {
                ev.slot += self.bases[es];
                if ev.victim.0 >= first.0 && ev.victim.0 < first.0 + n {
                    stale[(ev.victim.0 - first.0) as usize] = true;
                }
                let mut snap = self.bufs.take();
                snap.copy_from_slice(self.data[ev.slot].read().as_slice());
                owed.push((ev, snap));
            }
            sh.meta[local] = FrameMeta {
                pid: Some(pid),
                dirty: false,
                pin: 0,
                class: assigned,
            };
            sh.map.insert(pid, local);
            // Double-stamp: install plus one protection access. Under
            // LRU-2 a single touch would leave the page with an empty
            // penultimate stamp, making it the preferred victim — a full
            // pool would evict read-ahead pages before the scan consumes
            // them, degrading every scan page to a random read. Other
            // policies interpret the extra access in their own idiom
            // (CLOCK/SIEVE set the reference bit, ARC promotes to
            // protected), matching the read-ahead page protection of a
            // production buffer manager.
            sh.policy.on_install(local, pid);
            sh.policy.on_access(local);
            sh.stats.prefetched_pages += 1;
            self.data[self.bases[es] + local]
                .write()
                .copy_from(page.as_slice());
        }
        for (ev, snap) in owed {
            self.layer
                .evict_page(clk.now, ev.victim, &snap, ev.dirty, ev.class);
            self.bufs.put(snap);
        }
        Ok(())
    }

    /// Hand an evicted page's bytes to the storage layer (write-behind).
    /// Eviction writes are asynchronous: device time is charged at `now`
    /// but the caller does not wait. Must be called *without* any shard
    /// latch and *before* the vacated frame is overwritten.
    fn flush_evicted(&self, now: Time, ev: &PendingEvict) {
        let layer = &self.layer;
        let data = self.data[ev.slot].read();
        // lint: allow(lock-across-io) — only the frame's read latch is held
        // (the shard latch is released); the slot is privately owned by this
        // caller and evict_page is a non-blocking async booking.
        layer.evict_page(now, ev.victim, data.as_slice(), ev.dirty, ev.class);
    }

    /// Sharp checkpoint of the memory pool: write every dirty page below
    /// (asynchronously), wait for the slowest write, then ask the layer to
    /// flush anything *it* holds dirty (the SSD, under LC).
    ///
    /// Dirty frames come from each shard's intrusive dirty list (no full
    /// frame-table scan), collected in shard order and sorted by local
    /// slot — with contiguous shard bases that is exactly the historical
    /// ascending-global-slot write order.
    pub fn checkpoint(&self, clk: &mut Clk) {
        let mut dirty: Vec<(usize, usize, PageId, Locality)> = Vec::new();
        for i in 0..self.nshards {
            let sh = self.lock_shard(i);
            let mut locals: Vec<usize> = Vec::with_capacity(sh.ndirty);
            let mut l = sh.dhead;
            while l != NIL {
                if sh.meta[l].pin == 0 {
                    locals.push(l);
                }
                l = sh.dnext[l];
            }
            locals.sort_unstable();
            for l in locals {
                // lint: allow(panic) — dirty-list members always hold a page.
                let pid = sh.meta[l].pid.expect("dirty frame has a page");
                dirty.push((i, l, pid, sh.meta[l].class));
            }
        }
        let mut done = clk.now;
        // Recycled copy-out buffer: the frame latch protects only the
        // memcpy, never the write I/O below it.
        let mut copy = self.bufs.lease();
        for (i, l, pid, class) in dirty {
            let slot = self.bases[i] + l;
            {
                let data = self.data[slot].read();
                copy.as_mut_slice().copy_from_slice(data.as_slice());
            }
            let t = self
                .layer
                .checkpoint_write(clk.now, pid, copy.as_slice(), class);
            done = done.max(t);
            let mut sh = self.lock_shard(i);
            // Revalidate: the frame may have been recycled meanwhile.
            if sh.meta[l].pid == Some(pid) && sh.meta[l].dirty {
                sh.meta[l].dirty = false;
                sh.unlink_dirty(l);
            }
            sh.stats.checkpoint_writes += 1;
        }
        drop(copy);
        clk.wait_until(done);
        self.layer.checkpoint_flush(clk);
    }

    /// True if `pid` is resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.lock_shard(self.shard_idx(pid)).map.contains_key(&pid)
    }

    /// True if `pid` is resident and dirty.
    pub fn is_dirty(&self, pid: PageId) -> bool {
        let sh = self.lock_shard(self.shard_idx(pid));
        sh.map.get(&pid).map(|&l| sh.meta[l].dirty).unwrap_or(false)
    }

    /// Number of resident pages (folded in shard order).
    pub fn resident(&self) -> usize {
        (0..self.nshards)
            .map(|i| self.lock_shard(i).map.len())
            .sum()
    }

    /// Number of dirty resident pages — O(shards), from the per-shard
    /// dirty-list counters.
    pub fn dirty_count(&self) -> usize {
        (0..self.nshards).map(|i| self.lock_shard(i).ndirty).sum()
    }

    /// Counter snapshot: per-shard counters folded in shard order, plus
    /// the latch-contention counters.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for i in 0..self.nshards {
            let s = self.lock_shard(i).stats;
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions_clean += s.evictions_clean;
            total.evictions_dirty += s.evictions_dirty;
            total.prefetched_pages += s.prefetched_pages;
            total.expanded_fill_pages += s.expanded_fill_pages;
            total.checkpoint_writes += s.checkpoint_writes;
        }
        for c in &self.locks {
            total.shard_acquisitions += c.acquisitions.load(Ordering::Relaxed);
            total.shard_contended += c.contended.load(Ordering::Relaxed);
        }
        total
    }

    /// Replacement-policy counter snapshot (ghost hits, scan cost, …),
    /// folded across shards in shard order.
    pub fn policy_stats(&self) -> PolicyStats {
        let mut total = PolicyStats::default();
        for i in 0..self.nshards {
            let s = self.lock_shard(i).policy.stats();
            total.ghost_hits += s.ghost_hits;
            total.scan_steps += s.scan_steps;
            total.second_chances += s.second_chances;
            total.probation_evictions += s.probation_evictions;
            total.protected_evictions += s.protected_evictions;
        }
        total
    }

    /// Short name of the active replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.lock_shard(0).policy.name()
    }

    /// Classifier confusion-matrix snapshot (§2.2 accuracy experiment).
    pub fn classifier_stats(&self) -> ClassifierStats {
        self.classifier.lock().stats()
    }

    fn unpin(&self, shard: usize, local: usize) {
        let mut sh = self.lock_shard(shard);
        let m = &mut sh.meta[local];
        debug_assert!(m.pin > 0, "unpin of unpinned frame");
        m.pin -= 1;
    }

    fn mark_dirty(&self, shard: usize, local: usize, pid: PageId, now: Time) {
        let mut sh = self.lock_shard(shard);
        let m = &mut sh.meta[local];
        debug_assert_eq!(m.pid, Some(pid));
        if !m.dirty {
            m.dirty = true;
            sh.link_dirty(local);
            drop(sh);
            // First dirtying invalidates any SSD copy (paper §2.2).
            self.layer.note_dirtied(now, pid);
        }
    }
}

/// A pinned page. Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    shard: usize,
    local: usize,
    /// Global data-slot index (`bases[shard] + local`).
    slot: usize,
    pid: PageId,
}

impl PageGuard<'_> {
    pub fn pid(&self) -> PageId {
        self.pid
    }

    /// Read access to the page bytes.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self.pool.data[self.slot].read().as_slice())
    }

    /// Write access to the page bytes; marks the page dirty and invalidates
    /// any SSD copy on the first dirtying.
    pub fn write<R>(&mut self, now: Time, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let r = f(self.pool.data[self.slot].write().as_mut_slice());
        self.pool.mark_dirty(self.shard, self.local, self.pid, now);
        r
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.shard, self.local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::DirectIo;
    use turbopool_iosim::{DeviceSetup, IoManager};

    const PS: usize = 32;

    fn pool(frames: usize, db_pages: u64) -> (Arc<IoManager>, BufferPool) {
        pool_sharded(frames, db_pages, ShardCount::Fixed(1))
    }

    fn pool_sharded(
        frames: usize,
        db_pages: u64,
        shards: ShardCount,
    ) -> (Arc<IoManager>, BufferPool) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, db_pages, 8)));
        let layer = Arc::new(DirectIo::new(Arc::clone(&io)));
        let mut cfg = BufferPoolConfig::new(frames, PS, db_pages);
        cfg.fill_expansion = 1; // keep unit tests one-page-per-miss
        cfg.shards = shards;
        (io, BufferPool::new(cfg, layer))
    }

    #[test]
    fn miss_then_hit() {
        let (_io, p) = pool(4, 64);
        let mut clk = Clk::new();
        {
            let g = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
            assert_eq!(g.pid(), PageId(1));
        }
        let t_after_miss = clk.now;
        assert!(t_after_miss > 0);
        {
            let _g = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        }
        assert_eq!(clk.now, t_after_miss, "hit is free of I/O time");
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn writes_round_trip_through_eviction() {
        let (_io, p) = pool(2, 64);
        let mut clk = Clk::new();
        {
            let mut g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 0xEE);
        }
        // Force page 0 out with two more pages.
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap();
        assert!(!p.contains(PageId(0)));
        assert_eq!(p.stats().evictions_dirty, 1);
        // Re-read from disk: the dirty eviction wrote it back.
        let g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        assert_eq!(g.read(|b| b[0]), 0xEE);
    }

    #[test]
    fn lru2_prefers_scanned_once_pages() {
        let (_io, p) = pool(3, 64);
        let mut clk = Clk::new();
        // Page 0 is hot (touched twice), pages 1 and 2 touched once.
        p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap();
        // Pool full; a new page must evict 1 or 2, not the hot page 0.
        p.get(&mut clk, PageId(3), Locality::Random).unwrap();
        assert!(p.contains(PageId(0)));
        assert!(!p.contains(PageId(1)), "oldest once-touched page evicted");
    }

    #[test]
    fn pinned_pages_are_never_victims() {
        let (_io, p) = pool(2, 64);
        let mut clk = Clk::new();
        let _held = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap(); // must evict 1, not 0
        assert!(p.contains(PageId(0)));
        assert!(!p.contains(PageId(1)));
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn all_pinned_pool_panics() {
        let (_io, p) = pool(1, 64);
        let mut clk = Clk::new();
        let _g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        let _h = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
    }

    #[test]
    fn create_skips_read_io_and_is_dirty() {
        let (io, p) = pool(2, 64);
        let g = p.create(0, PageId(9));
        drop(g);
        assert_eq!(io.disk_stats().read_ops, 0);
        assert!(p.is_dirty(PageId(9)));
    }

    #[test]
    fn prefetch_installs_unpinned_sequential_pages() {
        let (io, p) = pool(8, 64);
        let mut clk = Clk::new();
        p.prefetch_run(&mut clk, PageId(0), 4).unwrap();
        assert_eq!(p.resident(), 4);
        assert_eq!(p.stats().prefetched_pages, 4);
        // One multi-page request, not four single reads.
        assert!(io.disk_stats().read_ops <= 4);
        let before = p.stats().misses;
        p.get(&mut clk, PageId(2), Locality::Sequential).unwrap();
        assert_eq!(p.stats().misses, before, "prefetched page is a hit");
    }

    #[test]
    fn prefetch_never_resurrects_page_evicted_mid_install() {
        // Regression: read_run snapshots the whole run up front; installing
        // its early pages can evict a *dirty* resident page that lies later
        // in the same run. The eviction writes fresh bytes to disk, so the
        // pre-read snapshot of that page is stale and must not be installed.
        let (_io, p) = pool(4, 64);
        let mut clk = Clk::new();
        // Page 5 (inside the run below) is dirtied first, making it the
        // LRU-2 victim; pages 8..11 (outside the run) fill the remaining
        // frames so the stale install would stay resident afterwards.
        {
            let mut g = p.get(&mut clk, PageId(5), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 0xAB);
        }
        for pid in 8..11u64 {
            let mut g = p.get(&mut clk, PageId(pid), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = pid as u8);
        }
        assert_eq!(p.dirty_count(), 4);
        // Installing page 4 evicts dirty page 5 (writing 0xAB to disk);
        // page 5's slot in the run must then NOT be filled from the
        // pre-eviction snapshot (zeroes).
        p.prefetch_run(&mut clk, PageId(4), 4).unwrap();
        let g = p.get(&mut clk, PageId(5), Locality::Random).unwrap();
        g.read(|b| assert_eq!(b[0], 0xAB, "page 5 lost its committed write"));
    }

    #[test]
    fn checkpoint_flushes_all_dirty_pages() {
        let (io, p) = pool(4, 64);
        let mut clk = Clk::new();
        for i in 0..3u64 {
            let mut g = p.get(&mut clk, PageId(i), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = i as u8 + 1);
        }
        assert_eq!(p.dirty_count(), 3);
        let writes_before = io.disk_stats().write_ops;
        p.checkpoint(&mut clk);
        assert_eq!(p.dirty_count(), 0);
        assert_eq!(p.stats().checkpoint_writes, 3);
        assert_eq!(io.disk_stats().write_ops - writes_before, 3);
        // Disk now holds the new contents.
        let mut buf = [0u8; PS];
        io.disk_store().read(PageId(2), &mut buf);
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn fill_expansion_reads_runs_until_full() {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 64, 8)));
        let layer = Arc::new(DirectIo::new(Arc::clone(&io)));
        let mut cfg = BufferPoolConfig::new(16, PS, 64);
        cfg.fill_expansion = 8;
        cfg.shards = ShardCount::Fixed(1);
        let p = BufferPool::new(cfg, layer);
        let mut clk = Clk::new();
        p.get(&mut clk, PageId(10), Locality::Random).unwrap();
        // One miss installed 8 pages (1 requested + 7 expansion).
        assert_eq!(p.resident(), 8);
        assert_eq!(p.stats().expanded_fill_pages, 7);
        assert!(p.contains(PageId(17)));
    }

    #[test]
    fn hit_rate_math() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn sharded_pool_round_trips_and_folds_counters() {
        let (_io, p) = pool_sharded(16, 256, ShardCount::Fixed(4));
        assert_eq!(p.shard_count(), 4);
        let mut clk = Clk::new();
        for i in 0..32u64 {
            let mut g = p.get(&mut clk, PageId(i), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = i as u8);
        }
        // All 16 frames across the 4 shards should be usable.
        assert_eq!(p.resident(), 16);
        let s = p.stats();
        assert_eq!(s.misses, 32);
        assert_eq!(s.evictions_clean + s.evictions_dirty, 16);
        assert!(s.shard_acquisitions > 0, "latch acquisitions counted");
        assert_eq!(s.shard_contended, 0, "single-threaded: never contended");
        // Every written page reads back its byte (through eviction).
        for i in 0..32u64 {
            let g = p.get(&mut clk, PageId(i), Locality::Random).unwrap();
            assert_eq!(g.read(|b| b[0]), i as u8, "page {i}");
        }
    }

    #[test]
    fn sharded_checkpoint_writes_ascending_slots() {
        let (io, p) = pool_sharded(16, 256, ShardCount::Fixed(4));
        let mut clk = Clk::new();
        for i in 0..12u64 {
            let mut g = p.get(&mut clk, PageId(i), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 0xC0 | i as u8);
        }
        assert_eq!(p.dirty_count(), 12);
        p.checkpoint(&mut clk);
        assert_eq!(p.dirty_count(), 0);
        assert_eq!(p.stats().checkpoint_writes, 12);
        let mut buf = [0u8; PS];
        io.disk_store().read(PageId(7), &mut buf);
        assert_eq!(buf[0], 0xC0 | 7);
    }

    #[test]
    fn shard_assignment_is_pure_and_stable() {
        let (_io, p) = pool_sharded(16, 4096, ShardCount::Fixed(4));
        for k in 0..4096u64 {
            assert_eq!(
                p.shard_idx(PageId(k)),
                shard_of(k, 4),
                "routing is the published pure function"
            );
        }
    }

    #[test]
    fn dirty_list_tracks_evictions_and_redirtying() {
        let (_io, p) = pool(2, 64);
        let mut clk = Clk::new();
        {
            let mut g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 1);
            g.write(clk.now, |b| b[1] = 2); // second write: no double-link
        }
        assert_eq!(p.dirty_count(), 1);
        // Evicting the dirty page unlinks it.
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap();
        assert!(!p.contains(PageId(0)));
        assert_eq!(p.dirty_count(), 0);
        p.checkpoint(&mut clk);
        assert_eq!(p.stats().checkpoint_writes, 0, "nothing left to write");
    }
}
