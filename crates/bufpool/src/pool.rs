//! The buffer pool proper: frames, hash table, pluggable replacement, guards.

use std::collections::HashMap;
use std::sync::Arc;

use turbopool_iosim::sync::{Mutex, RwLock};
use turbopool_iosim::{Clk, IoError, Locality, PageBuf, PageId, Time};

use crate::policy::{PolicyStats, ReplacementKind, ReplacementPolicy};
use crate::readahead::{Classifier, ClassifierKind, ClassifierStats};
use crate::traits::PageIo;

/// Buffer pool sizing and behaviour knobs.
#[derive(Clone, Debug)]
pub struct BufferPoolConfig {
    /// Number of page frames (the paper dedicates 20 GB of DRAM).
    pub frames: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Total pages in the database (bounds fill expansion and read-ahead).
    pub db_pages: u64,
    /// Until the pool first fills, expand every single-page miss into a run
    /// of this many pages — the host-DBMS behaviour the paper observes in
    /// §4.3.2 ("expands every single-page read request to an 8 page request
    /// until the buffer pool is filled"). `<= 1` disables.
    pub fill_expansion: u64,
    /// How page accesses are classified random/sequential (§2.2).
    pub classifier: ClassifierKind,
    /// Which replacement policy picks eviction victims (LRU-2 is the
    /// paper's choice and the regression-gated default).
    pub replacement: ReplacementKind,
}

impl BufferPoolConfig {
    pub fn new(frames: usize, page_size: usize, db_pages: u64) -> Self {
        BufferPoolConfig {
            frames,
            page_size,
            db_pages,
            fill_expansion: 8,
            classifier: ClassifierKind::ReadAhead,
            replacement: ReplacementKind::Lru2,
        }
    }
}

/// Buffer pool counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions_clean: u64,
    pub evictions_dirty: u64,
    pub prefetched_pages: u64,
    pub expanded_fill_pages: u64,
    pub checkpoint_writes: u64,
}

impl PoolStats {
    /// Fraction of `get` calls served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct FrameMeta {
    pid: Option<PageId>,
    dirty: bool,
    pin: u32,
    class: Locality,
}

impl FrameMeta {
    fn empty() -> Self {
        FrameMeta {
            pid: None,
            dirty: false,
            pin: 0,
            class: Locality::Random,
        }
    }
}

/// An eviction decided under the pool latch whose write-behind I/O is
/// still owed. The slot is privately owned by the holder until new data
/// is installed, so the victim's bytes survive in the frame meanwhile.
#[derive(Clone, Copy, Debug)]
struct PendingEvict {
    slot: usize,
    victim: PageId,
    dirty: bool,
    class: Locality,
}

struct Inner {
    map: HashMap<PageId, usize>,
    meta: Vec<FrameMeta>,
    free: Vec<usize>,
    /// Victim selection + access bookkeeping, behind the policy trait.
    /// The default [`ReplacementKind::Lru2`] reproduces the pre-trait
    /// hardwired LRU-2 bit-for-bit (see `tests/policy_default_regression`).
    policy: Box<dyn ReplacementPolicy>,
    filled_once: bool,
    stats: PoolStats,
    classifier: Classifier,
}

impl Inner {
    /// Obtain a free slot, selecting and detaching the policy's victim if
    /// necessary — pure bookkeeping, no I/O, so it runs entirely under
    /// the pool latch. When a page is evicted the caller receives a
    /// [`PendingEvict`] and must hand the frame's bytes to the storage
    /// layer (after releasing the pool latch) *before* overwriting the
    /// frame, since the slot still holds the victim's data.
    fn vacate_slot(&mut self) -> (usize, Option<PendingEvict>) {
        if let Some(slot) = self.free.pop() {
            return (slot, None);
        }
        self.filled_once = true;
        // Split borrow: the policy mutates its own state while probing
        // frame metadata through the callback.
        let (policy, meta) = (&mut self.policy, &self.meta);
        let slot = policy
            .select_victim(&mut |s| meta[s].pid.is_some() && meta[s].pin == 0)
            // lint: allow(panic) — an unpinnable pool is a caller bug; the paper's pool sizes guarantee headroom.
            .expect("buffer pool exhausted: every frame is pinned");
        let m = self.meta[slot];
        // lint: allow(panic) — select_victim only returns slots the evictable callback approved.
        let victim = m.pid.expect("victim has a page");
        self.map.remove(&victim);
        self.policy.on_evict(slot, victim);
        if m.dirty {
            self.stats.evictions_dirty += 1;
        } else {
            self.stats.evictions_clean += 1;
        }
        self.meta[slot] = FrameMeta::empty();
        (
            slot,
            Some(PendingEvict {
                slot,
                victim,
                dirty: m.dirty,
                class: m.class,
            }),
        )
    }
}

/// The main-memory buffer pool.
///
/// Thread-safe for the discrete-event usage pattern of this workspace (one
/// logical client active at a time, many logical clients interleaved).
pub struct BufferPool {
    cfg: BufferPoolConfig,
    layer: Arc<dyn PageIo>,
    inner: Mutex<Inner>,
    data: Vec<RwLock<PageBuf>>,
}

impl BufferPool {
    pub fn new(cfg: BufferPoolConfig, layer: Arc<dyn PageIo>) -> Self {
        assert!(cfg.frames > 0, "pool needs at least one frame");
        let mut data = Vec::with_capacity(cfg.frames);
        data.resize_with(cfg.frames, || RwLock::new(PageBuf::zeroed(cfg.page_size)));
        BufferPool {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(cfg.frames),
                meta: vec![FrameMeta::empty(); cfg.frames],
                free: (0..cfg.frames).rev().collect(),
                policy: cfg.replacement.build(cfg.frames),
                filled_once: false,
                stats: PoolStats::default(),
                classifier: Classifier::new(cfg.classifier),
            }),
            data,
            cfg,
            layer,
        }
    }

    pub fn config(&self) -> &BufferPoolConfig {
        &self.cfg
    }

    /// Pin page `pid`, reading it from below on a miss. `declared` is the
    /// access method's ground-truth locality (index lookup = random, scan =
    /// sequential); the pool's classifier decides the *assigned* class that
    /// drives SSD admission.
    ///
    /// `Err` means the disk tier failed even after the storage layer's
    /// retries; the installation is backed out and the pool is left exactly
    /// as if the `get` had never happened.
    pub fn get(
        &self,
        clk: &mut Clk,
        pid: PageId,
        declared: Locality,
    ) -> Result<PageGuard<'_>, IoError> {
        debug_assert!(pid.0 < self.cfg.db_pages, "page {pid} beyond database");
        let mut inner = self.inner.lock();
        if let Some(&slot) = inner.map.get(&pid) {
            inner.meta[slot].pin += 1;
            inner.policy.on_access(slot);
            inner.stats.hits += 1;
            // A hit still teaches the proximity classifier the access
            // pattern it would have observed at the I/O layer.
            inner.classifier.observe_hit(pid);
            return Ok(PageGuard {
                pool: self,
                slot,
                pid,
            });
        }
        inner.stats.misses += 1;
        let assigned = inner.classifier.classify_miss(pid, declared);

        // Pool-fill expansion: while the pool has never been full, a miss
        // fetches a run instead of one page.
        let expand = if !inner.filled_once && self.cfg.fill_expansion > 1 {
            let run = self
                .cfg
                .fill_expansion
                .min(self.cfg.db_pages - pid.0)
                .min(inner.free.len() as u64 + 1);
            run.max(1)
        } else {
            1
        };

        let (slot, evicted) = inner.vacate_slot();
        inner.meta[slot] = FrameMeta {
            pid: Some(pid),
            dirty: false,
            pin: 1,
            class: assigned,
        };
        inner.map.insert(pid, slot);
        inner.policy.on_install(slot, pid);
        drop(inner);
        // Write-behind for the victim happens outside the pool latch but
        // before any read fills the frame, preserving per-thread I/O order.
        if let Some(ev) = evicted {
            self.flush_evicted(clk.now, &ev);
        }

        if expand > 1 {
            let pages = match self.layer.read_run(clk, pid, expand) {
                Ok(pages) => pages,
                Err(e) => {
                    self.abandon_install(slot, pid);
                    return Err(e);
                }
            };
            self.data[slot].write().copy_from(pages[0].as_slice());
            let mut inner = self.inner.lock();
            for (i, page) in pages.into_iter().enumerate().skip(1) {
                let extra = pid.offset(i as u64);
                if inner.map.contains_key(&extra) {
                    continue;
                }
                let Some(s) = inner.free.pop() else { break };
                inner.meta[s] = FrameMeta {
                    pid: Some(extra),
                    dirty: false,
                    pin: 0,
                    // Expansion pages were not individually requested; they
                    // are opportunistic fill, classified random like the
                    // triggering request.
                    class: Locality::Random,
                };
                inner.map.insert(extra, s);
                inner.policy.on_install(s, extra);
                inner.stats.expanded_fill_pages += 1;
                self.data[s].write().copy_from(page.as_slice());
            }
            if inner.free.is_empty() {
                inner.filled_once = true;
            }
        } else {
            let mut buf = self.data[slot].write();
            // lint: allow(lock-across-io) — frame write latch only, held so
            // the fill lands atomically; the pool latch is already released
            // and the frame is pinned by this caller.
            let read = self.layer.read_page(clk, pid, assigned, buf.as_mut_slice());
            drop(buf);
            if let Err(e) = read {
                self.abandon_install(slot, pid);
                return Err(e);
            }
        }

        Ok(PageGuard {
            pool: self,
            slot,
            pid,
        })
    }

    /// Back out a miss installation whose read from below failed: the map
    /// entry, frame metadata, and replacement state all revert, returning
    /// the slot to the free list.
    fn abandon_install(&self, slot: usize, pid: PageId) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.meta[slot].pid, Some(pid));
        inner.map.remove(&pid);
        inner.meta[slot] = FrameMeta::empty();
        inner.policy.on_remove(slot, pid);
        inner.free.push(slot);
    }

    /// Pin a *fresh* page that has never been written: installs a zeroed,
    /// dirty frame without any read I/O (page allocation path).
    pub fn create(&self, now: Time, pid: PageId) -> PageGuard<'_> {
        debug_assert!(pid.0 < self.cfg.db_pages, "page {pid} beyond database");
        let mut inner = self.inner.lock();
        assert!(
            !inner.map.contains_key(&pid),
            "create() of resident page {pid}"
        );
        let (slot, evicted) = inner.vacate_slot();
        inner.meta[slot] = FrameMeta {
            pid: Some(pid),
            dirty: true,
            pin: 1,
            class: Locality::Random,
        };
        inner.map.insert(pid, slot);
        inner.policy.on_install(slot, pid);
        drop(inner);
        if let Some(ev) = evicted {
            self.flush_evicted(now, &ev);
        }
        self.layer.note_dirtied(now, pid);
        self.data[slot].write().as_mut_slice().fill(0);
        PageGuard {
            pool: self,
            slot,
            pid,
        }
    }

    /// Read-ahead: fetch the run `first .. first + n` below and install any
    /// pages not already resident, unpinned and classified *sequential*.
    pub fn prefetch_run(&self, clk: &mut Clk, first: PageId, n: u64) -> Result<(), IoError> {
        assert!(first.0 + n <= self.cfg.db_pages, "prefetch beyond database");
        if n == 0 {
            return Ok(());
        }
        // A failed read-ahead installs nothing; the scan that requested it
        // simply falls back to demand reads of the same pages.
        let pages = self.layer.read_run(clk, first, n)?;
        let mut inner = self.inner.lock();
        // Pages of this run evicted *while installing it*: their entries in
        // `pages` were snapshotted before the eviction wrote newer bytes
        // below, so installing them would resurrect stale data. They are
        // skipped here and re-read (fresh) if the scan reaches them.
        let mut stale: Vec<bool> = vec![false; n as usize];
        // Evictions decided inside the loop owe write-behind I/O that must
        // not run under the pool latch. The victims' bytes are snapshotted
        // before their frames are reused and flushed after unlock; every
        // booking lands at the same virtual instant either way, so the
        // deferral is invisible to the simulation.
        let mut owed: Vec<(PendingEvict, PageBuf)> = Vec::new();
        for (i, page) in pages.into_iter().enumerate() {
            let pid = first.offset(i as u64);
            if inner.map.contains_key(&pid) || stale[i] {
                continue;
            }
            let assigned = inner.classifier.classify_prefetch(pid);
            let (slot, evicted) = inner.vacate_slot();
            if let Some(ev) = evicted {
                if ev.victim.0 >= first.0 && ev.victim.0 < first.0 + n {
                    stale[(ev.victim.0 - first.0) as usize] = true;
                }
                let mut snap = PageBuf::zeroed(self.cfg.page_size);
                snap.copy_from(self.data[ev.slot].read().as_slice());
                owed.push((ev, snap));
            }
            inner.meta[slot] = FrameMeta {
                pid: Some(pid),
                dirty: false,
                pin: 0,
                class: assigned,
            };
            inner.map.insert(pid, slot);
            // Double-stamp: install plus one protection access. Under
            // LRU-2 a single touch would leave the page with an empty
            // penultimate stamp, making it the preferred victim — a full
            // pool would evict read-ahead pages before the scan consumes
            // them, degrading every scan page to a random read. Other
            // policies interpret the extra access in their own idiom
            // (CLOCK/SIEVE set the reference bit, ARC promotes to
            // protected), matching the read-ahead page protection of a
            // production buffer manager.
            inner.policy.on_install(slot, pid);
            inner.policy.on_access(slot);
            inner.stats.prefetched_pages += 1;
            self.data[slot].write().copy_from(page.as_slice());
        }
        drop(inner);
        for (ev, snap) in owed {
            self.layer
                .evict_page(clk.now, ev.victim, snap.as_slice(), ev.dirty, ev.class);
        }
        Ok(())
    }

    /// Hand an evicted page's bytes to the storage layer (write-behind).
    /// Eviction writes are asynchronous: device time is charged at `now`
    /// but the caller does not wait. Must be called *without* the pool
    /// latch and *before* the vacated frame is overwritten.
    fn flush_evicted(&self, now: Time, ev: &PendingEvict) {
        let layer = &self.layer;
        let data = self.data[ev.slot].read();
        // lint: allow(lock-across-io) — only the frame's read latch is held
        // (the pool latch is released); the slot is privately owned by this
        // caller and evict_page is a non-blocking async booking.
        layer.evict_page(now, ev.victim, data.as_slice(), ev.dirty, ev.class);
    }

    /// Sharp checkpoint of the memory pool: write every dirty page below
    /// (asynchronously), wait for the slowest write, then ask the layer to
    /// flush anything *it* holds dirty (the SSD, under LC).
    pub fn checkpoint(&self, clk: &mut Clk) {
        let dirty: Vec<(usize, PageId, Locality)> = {
            let inner = self.inner.lock();
            inner
                .meta
                .iter()
                .enumerate()
                .filter_map(|(slot, m)| {
                    let pid = m.pid?;
                    (m.dirty && m.pin == 0).then_some((slot, pid, m.class))
                })
                .collect()
        };
        let mut done = clk.now;
        // Reused copy-out buffer: the frame latch protects only the memcpy,
        // never the write I/O below it.
        let mut copy = PageBuf::zeroed(self.cfg.page_size);
        for (slot, pid, class) in dirty {
            {
                let data = self.data[slot].read();
                copy.copy_from(data.as_slice());
            }
            let t = self
                .layer
                .checkpoint_write(clk.now, pid, copy.as_slice(), class);
            done = done.max(t);
            let mut inner = self.inner.lock();
            // Revalidate: the frame may have been recycled meanwhile.
            if inner.meta[slot].pid == Some(pid) {
                inner.meta[slot].dirty = false;
            }
            inner.stats.checkpoint_writes += 1;
        }
        clk.wait_until(done);
        self.layer.checkpoint_flush(clk);
    }

    /// True if `pid` is resident.
    pub fn contains(&self, pid: PageId) -> bool {
        self.inner.lock().map.contains_key(&pid)
    }

    /// True if `pid` is resident and dirty.
    pub fn is_dirty(&self, pid: PageId) -> bool {
        let inner = self.inner.lock();
        inner
            .map
            .get(&pid)
            .map(|&s| inner.meta[s].dirty)
            .unwrap_or(false)
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Number of dirty resident pages.
    pub fn dirty_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .meta
            .iter()
            .filter(|m| m.pid.is_some() && m.dirty)
            .count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Replacement-policy counter snapshot (ghost hits, scan cost, …).
    pub fn policy_stats(&self) -> PolicyStats {
        self.inner.lock().policy.stats()
    }

    /// Short name of the active replacement policy.
    pub fn policy_name(&self) -> &'static str {
        self.inner.lock().policy.name()
    }

    /// Classifier confusion-matrix snapshot (§2.2 accuracy experiment).
    pub fn classifier_stats(&self) -> ClassifierStats {
        self.inner.lock().classifier.stats()
    }

    fn unpin(&self, slot: usize) {
        let mut inner = self.inner.lock();
        let m = &mut inner.meta[slot];
        debug_assert!(m.pin > 0, "unpin of unpinned frame");
        m.pin -= 1;
    }

    fn mark_dirty(&self, slot: usize, pid: PageId, now: Time) {
        let mut inner = self.inner.lock();
        let m = &mut inner.meta[slot];
        debug_assert_eq!(m.pid, Some(pid));
        if !m.dirty {
            m.dirty = true;
            drop(inner);
            // First dirtying invalidates any SSD copy (paper §2.2).
            self.layer.note_dirtied(now, pid);
        }
    }
}

/// A pinned page. Dropping the guard unpins the frame.
pub struct PageGuard<'a> {
    pool: &'a BufferPool,
    slot: usize,
    pid: PageId,
}

impl PageGuard<'_> {
    pub fn pid(&self) -> PageId {
        self.pid
    }

    /// Read access to the page bytes.
    pub fn read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self.pool.data[self.slot].read().as_slice())
    }

    /// Write access to the page bytes; marks the page dirty and invalidates
    /// any SSD copy on the first dirtying.
    pub fn write<R>(&mut self, now: Time, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let r = f(self.pool.data[self.slot].write().as_mut_slice());
        self.pool.mark_dirty(self.slot, self.pid, now);
        r
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::DirectIo;
    use turbopool_iosim::{DeviceSetup, IoManager};

    const PS: usize = 32;

    fn pool(frames: usize, db_pages: u64) -> (Arc<IoManager>, BufferPool) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, db_pages, 8)));
        let layer = Arc::new(DirectIo::new(Arc::clone(&io)));
        let mut cfg = BufferPoolConfig::new(frames, PS, db_pages);
        cfg.fill_expansion = 1; // keep unit tests one-page-per-miss
        (io, BufferPool::new(cfg, layer))
    }

    #[test]
    fn miss_then_hit() {
        let (_io, p) = pool(4, 64);
        let mut clk = Clk::new();
        {
            let g = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
            assert_eq!(g.pid(), PageId(1));
        }
        let t_after_miss = clk.now;
        assert!(t_after_miss > 0);
        {
            let _g = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        }
        assert_eq!(clk.now, t_after_miss, "hit is free of I/O time");
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn writes_round_trip_through_eviction() {
        let (_io, p) = pool(2, 64);
        let mut clk = Clk::new();
        {
            let mut g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 0xEE);
        }
        // Force page 0 out with two more pages.
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap();
        assert!(!p.contains(PageId(0)));
        assert_eq!(p.stats().evictions_dirty, 1);
        // Re-read from disk: the dirty eviction wrote it back.
        let g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        assert_eq!(g.read(|b| b[0]), 0xEE);
    }

    #[test]
    fn lru2_prefers_scanned_once_pages() {
        let (_io, p) = pool(3, 64);
        let mut clk = Clk::new();
        // Page 0 is hot (touched twice), pages 1 and 2 touched once.
        p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap();
        // Pool full; a new page must evict 1 or 2, not the hot page 0.
        p.get(&mut clk, PageId(3), Locality::Random).unwrap();
        assert!(p.contains(PageId(0)));
        assert!(!p.contains(PageId(1)), "oldest once-touched page evicted");
    }

    #[test]
    fn pinned_pages_are_never_victims() {
        let (_io, p) = pool(2, 64);
        let mut clk = Clk::new();
        let _held = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        p.get(&mut clk, PageId(1), Locality::Random).unwrap();
        p.get(&mut clk, PageId(2), Locality::Random).unwrap(); // must evict 1, not 0
        assert!(p.contains(PageId(0)));
        assert!(!p.contains(PageId(1)));
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn all_pinned_pool_panics() {
        let (_io, p) = pool(1, 64);
        let mut clk = Clk::new();
        let _g = p.get(&mut clk, PageId(0), Locality::Random).unwrap();
        let _h = p.get(&mut clk, PageId(1), Locality::Random).unwrap();
    }

    #[test]
    fn create_skips_read_io_and_is_dirty() {
        let (io, p) = pool(2, 64);
        let g = p.create(0, PageId(9));
        drop(g);
        assert_eq!(io.disk_stats().read_ops, 0);
        assert!(p.is_dirty(PageId(9)));
    }

    #[test]
    fn prefetch_installs_unpinned_sequential_pages() {
        let (io, p) = pool(8, 64);
        let mut clk = Clk::new();
        p.prefetch_run(&mut clk, PageId(0), 4).unwrap();
        assert_eq!(p.resident(), 4);
        assert_eq!(p.stats().prefetched_pages, 4);
        // One multi-page request, not four single reads.
        assert!(io.disk_stats().read_ops <= 4);
        let before = p.stats().misses;
        p.get(&mut clk, PageId(2), Locality::Sequential).unwrap();
        assert_eq!(p.stats().misses, before, "prefetched page is a hit");
    }

    #[test]
    fn prefetch_never_resurrects_page_evicted_mid_install() {
        // Regression: read_run snapshots the whole run up front; installing
        // its early pages can evict a *dirty* resident page that lies later
        // in the same run. The eviction writes fresh bytes to disk, so the
        // pre-read snapshot of that page is stale and must not be installed.
        let (_io, p) = pool(4, 64);
        let mut clk = Clk::new();
        // Page 5 (inside the run below) is dirtied first, making it the
        // LRU-2 victim; pages 8..11 (outside the run) fill the remaining
        // frames so the stale install would stay resident afterwards.
        {
            let mut g = p.get(&mut clk, PageId(5), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = 0xAB);
        }
        for pid in 8..11u64 {
            let mut g = p.get(&mut clk, PageId(pid), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = pid as u8);
        }
        assert_eq!(p.dirty_count(), 4);
        // Installing page 4 evicts dirty page 5 (writing 0xAB to disk);
        // page 5's slot in the run must then NOT be filled from the
        // pre-eviction snapshot (zeroes).
        p.prefetch_run(&mut clk, PageId(4), 4).unwrap();
        let g = p.get(&mut clk, PageId(5), Locality::Random).unwrap();
        g.read(|b| assert_eq!(b[0], 0xAB, "page 5 lost its committed write"));
    }

    #[test]
    fn checkpoint_flushes_all_dirty_pages() {
        let (io, p) = pool(4, 64);
        let mut clk = Clk::new();
        for i in 0..3u64 {
            let mut g = p.get(&mut clk, PageId(i), Locality::Random).unwrap();
            g.write(clk.now, |b| b[0] = i as u8 + 1);
        }
        assert_eq!(p.dirty_count(), 3);
        let writes_before = io.disk_stats().write_ops;
        p.checkpoint(&mut clk);
        assert_eq!(p.dirty_count(), 0);
        assert_eq!(p.stats().checkpoint_writes, 3);
        assert_eq!(io.disk_stats().write_ops - writes_before, 3);
        // Disk now holds the new contents.
        let mut buf = [0u8; PS];
        io.disk_store().read(PageId(2), &mut buf);
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn fill_expansion_reads_runs_until_full() {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(PS, 64, 8)));
        let layer = Arc::new(DirectIo::new(Arc::clone(&io)));
        let mut cfg = BufferPoolConfig::new(16, PS, 64);
        cfg.fill_expansion = 8;
        let p = BufferPool::new(cfg, layer);
        let mut clk = Clk::new();
        p.get(&mut clk, PageId(10), Locality::Random).unwrap();
        // One miss installed 8 pages (1 requested + 7 expansion).
        assert_eq!(p.resident(), 8);
        assert_eq!(p.stats().expanded_fill_pages, 7);
        assert!(p.contains(PageId(17)));
    }

    #[test]
    fn hit_rate_math() {
        let s = PoolStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }
}
