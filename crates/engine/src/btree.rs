//! B+-tree index over `u64` keys and `u64` values (RIDs).
//!
//! Node layout (within one page):
//!
//! ```text
//! [0]      node type: 0 = leaf, 1 = internal
//! [2..4]   nkeys (u16 LE)
//! [4..12]  leaf: next-leaf pid + 1 (0 = none); internal: leftmost child
//! [16..]   entries, 16 bytes each: (key u64 LE, value/child u64 LE)
//! ```
//!
//! Entries within a node are **unsorted**: lookups scan linearly (CPU is
//! free in the simulator) and inserts append, so a non-splitting insert
//! dirties ~18 bytes — keeping the physical redo log near the volume a
//! physiological-logging engine would generate. Nodes sort their entries
//! only when they split. A zeroed page decodes as an empty leaf, so a fresh
//! index root needs no initialization I/O. Deletes remove the entry without
//! rebalancing (the classic lazy-deletion simplification).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_iosim::{Locality, PageId};

use crate::txn::Txn;

const LEAF: u8 = 0;
const INTERNAL: u8 = 1;
const HDR: usize = 16;
const ENTRY: usize = 16;

/// Index metadata (kept in the catalog).
#[derive(Clone, Debug)]
pub struct IndexMeta {
    /// Root page: fixed for the index's lifetime.
    pub root: PageId,
    /// Extent from which split pages are allocated.
    pub extent_first: PageId,
    pub extent_pages: u64,
    /// Next unallocated page within the extent.
    pub cursor: Arc<AtomicU64>,
}

impl IndexMeta {
    pub fn new(root: PageId, extent_first: PageId, extent_pages: u64) -> Self {
        IndexMeta {
            root,
            extent_first,
            extent_pages,
            cursor: Arc::new(AtomicU64::new(0)),
        }
    }

    fn alloc_node(&self) -> PageId {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        assert!(
            i < self.extent_pages,
            "index extent exhausted ({} pages)",
            self.extent_pages
        );
        self.extent_first.offset(i)
    }
}

/// Entries a node of this page size can hold.
pub fn node_capacity(page_size: usize) -> usize {
    (page_size - HDR) / ENTRY
}

// ---------------------------------------------------------------------
// Node accessors
// ---------------------------------------------------------------------

fn node_type(b: &[u8]) -> u8 {
    b[0]
}

fn nkeys(b: &[u8]) -> usize {
    u16::from_le_bytes([b[2], b[3]]) as usize
}

fn set_nkeys(b: &mut [u8], n: usize) {
    b[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn extra(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[4..12].try_into().unwrap())
}

fn set_extra(b: &mut [u8], v: u64) {
    b[4..12].copy_from_slice(&v.to_le_bytes());
}

fn entry(b: &[u8], i: usize) -> (u64, u64) {
    let off = HDR + i * ENTRY;
    (
        u64::from_le_bytes(b[off..off + 8].try_into().unwrap()),
        u64::from_le_bytes(b[off + 8..off + 16].try_into().unwrap()),
    )
}

fn set_entry(b: &mut [u8], i: usize, k: u64, v: u64) {
    let off = HDR + i * ENTRY;
    b[off..off + 8].copy_from_slice(&k.to_le_bytes());
    b[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
}

fn entries(b: &[u8]) -> Vec<(u64, u64)> {
    (0..nkeys(b)).map(|i| entry(b, i)).collect()
}

fn write_entries(b: &mut [u8], es: &[(u64, u64)]) {
    for (i, &(k, v)) in es.iter().enumerate() {
        set_entry(b, i, k, v);
    }
    set_nkeys(b, es.len());
}

/// Child pid routing `key` in an internal node: the child of the greatest
/// separator key `<= key`, or the leftmost child when every separator is
/// greater.
fn search_child(b: &[u8], key: u64) -> u64 {
    let mut best: Option<(u64, u64)> = None;
    for i in 0..nkeys(b) {
        let (k, c) = entry(b, i);
        if k <= key && best.map(|(bk, _)| k > bk).unwrap_or(true) {
            best = Some((k, c));
        }
    }
    best.map(|(_, c)| c).unwrap_or_else(|| extra(b))
}

fn find_in_leaf(b: &[u8], key: u64) -> Option<usize> {
    (0..nkeys(b)).find(|&i| entry(b, i).0 == key)
}

// ---------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------

/// Descend from the root to the leaf that owns `key`; returns the leaf pid
/// and the path of internal ancestors (root first).
fn descend(txn: &mut Txn<'_, '_>, meta: &IndexMeta, key: u64) -> (PageId, Vec<PageId>) {
    let mut path = Vec::new();
    let mut pid = meta.root;
    loop {
        let next = txn.read_page(pid, Locality::Random, |b| {
            (node_type(b) == INTERNAL).then(|| search_child(b, key))
        });
        match next {
            Some(child) => {
                path.push(pid);
                pid = PageId(child);
            }
            None => return (pid, path),
        }
    }
}

/// Insert or replace (`upsert`) the value for `key`.
pub fn insert(txn: &mut Txn<'_, '_>, meta: &IndexMeta, key: u64, val: u64) {
    let cap = node_capacity(txn.page_size());
    let (leaf, path) = descend(txn, meta, key);
    if let Some(slot) = txn.read_page(leaf, Locality::Random, |b| find_in_leaf(b, key)) {
        txn.write_page(leaf, Locality::Random, |b| set_entry(b, slot, key, val));
        return;
    }
    let n = txn.read_page(leaf, Locality::Random, nkeys);
    if n < cap {
        txn.write_page(leaf, Locality::Random, |b| {
            set_entry(b, n, key, val);
            set_nkeys(b, n + 1);
        });
        return;
    }

    // Leaf split: sort, halve, link, promote the right half's first key.
    let (mut es, old_next) = txn.read_page(leaf, Locality::Random, |b| (entries(b), extra(b)));
    es.push((key, val));
    es.sort_unstable();
    let mid = es.len() / 2;
    let sep = es[mid].0;
    let right = meta.alloc_node();
    txn.write_page(right, Locality::Random, |b| {
        b[0] = LEAF;
        set_extra(b, old_next);
        write_entries(b, &es[mid..]);
    });
    txn.write_page(leaf, Locality::Random, |b| {
        set_extra(b, right.0 + 1);
        write_entries(b, &es[..mid]);
    });
    insert_into_parent(txn, meta, path, leaf, sep, right, cap);
}

/// Install the separator for a freshly split node into its parent,
/// splitting ancestors (and ultimately the root) as needed.
fn insert_into_parent(
    txn: &mut Txn<'_, '_>,
    meta: &IndexMeta,
    mut path: Vec<PageId>,
    left: PageId,
    sep: u64,
    right: PageId,
    cap: usize,
) {
    let Some(parent) = path.pop() else {
        // `left` was the root: hoist its contents into a new page and turn
        // the (fixed) root page into an internal node over the two halves.
        debug_assert_eq!(left, meta.root);
        let new_left = meta.alloc_node();
        let image = txn.read_page(left, Locality::Random, |b| b.to_vec());
        txn.write_page(new_left, Locality::Random, |b| b.copy_from_slice(&image));
        txn.write_page(meta.root, Locality::Random, |b| {
            b.fill(0);
            b[0] = INTERNAL;
            set_extra(b, new_left.0);
            write_entries(b, &[(sep, right.0)]);
        });
        return;
    };
    let n = txn.read_page(parent, Locality::Random, nkeys);
    if n < cap {
        txn.write_page(parent, Locality::Random, |b| {
            set_entry(b, n, sep, right.0);
            set_nkeys(b, n + 1);
        });
        return;
    }
    // Internal split: the median key moves up; its child becomes the new
    // right node's leftmost child.
    let mut es = txn.read_page(parent, Locality::Random, entries);
    es.push((sep, right.0));
    es.sort_unstable();
    let mid = es.len() / 2;
    let (promoted_key, promoted_child) = es[mid];
    let new_right = meta.alloc_node();
    txn.write_page(new_right, Locality::Random, |b| {
        b[0] = INTERNAL;
        set_extra(b, promoted_child);
        write_entries(b, &es[mid + 1..]);
    });
    txn.write_page(parent, Locality::Random, |b| {
        write_entries(b, &es[..mid]);
    });
    insert_into_parent(txn, meta, path, parent, promoted_key, new_right, cap);
}

/// Point lookup.
pub fn get(txn: &mut Txn<'_, '_>, meta: &IndexMeta, key: u64) -> Option<u64> {
    let (leaf, _) = descend(txn, meta, key);
    txn.read_page(leaf, Locality::Random, |b| {
        find_in_leaf(b, key).map(|i| entry(b, i).1)
    })
}

/// Range scan over `lo..=hi`, returning at most `limit` pairs in key order.
pub fn range(
    txn: &mut Txn<'_, '_>,
    meta: &IndexMeta,
    lo: u64,
    hi: u64,
    limit: usize,
) -> Vec<(u64, u64)> {
    let (mut leaf, _) = descend(txn, meta, lo);
    let mut out = Vec::new();
    loop {
        let (mut in_range, any_beyond, next) = txn.read_page(leaf, Locality::Random, |b| {
            let mut in_range = Vec::new();
            let mut beyond = false;
            for i in 0..nkeys(b) {
                let (k, v) = entry(b, i);
                if k >= lo && k <= hi {
                    in_range.push((k, v));
                } else if k > hi {
                    beyond = true;
                }
            }
            (in_range, beyond, extra(b))
        });
        in_range.sort_unstable();
        out.extend(in_range);
        if out.len() >= limit || any_beyond || next == 0 {
            break;
        }
        leaf = PageId(next - 1);
    }
    out.truncate(limit);
    out
}

/// Remove `key`; returns whether it existed. No rebalancing.
pub fn delete(txn: &mut Txn<'_, '_>, meta: &IndexMeta, key: u64) -> bool {
    let (leaf, _) = descend(txn, meta, key);
    let slot = txn.read_page(leaf, Locality::Random, |b| find_in_leaf(b, key));
    let Some(slot) = slot else { return false };
    txn.write_page(leaf, Locality::Random, |b| {
        let n = nkeys(b);
        if slot != n - 1 {
            let (k, v) = entry(b, n - 1);
            set_entry(b, slot, k, v);
        }
        set_nkeys(b, n - 1);
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        assert_eq!(node_capacity(256), 15);
        assert_eq!(node_capacity(8192), 511);
    }

    #[test]
    fn node_byte_round_trip() {
        let mut b = vec![0u8; 256];
        assert_eq!(node_type(&b), LEAF);
        assert_eq!(nkeys(&b), 0);
        set_entry(&mut b, 0, 42, 7);
        set_nkeys(&mut b, 1);
        set_extra(&mut b, 99);
        assert_eq!(entry(&b, 0), (42, 7));
        assert_eq!(nkeys(&b), 1);
        assert_eq!(extra(&b), 99);
    }

    #[test]
    fn search_child_routing() {
        let mut b = vec![0u8; 256];
        b[0] = INTERNAL;
        set_extra(&mut b, 100); // leftmost
        write_entries(&mut b, &[(50, 102), (10, 101)]); // unsorted on purpose
        assert_eq!(search_child(&b, 5), 100);
        assert_eq!(search_child(&b, 10), 101);
        assert_eq!(search_child(&b, 49), 101);
        assert_eq!(search_child(&b, 50), 102);
        assert_eq!(search_child(&b, 1000), 102);
    }

    #[test]
    fn alloc_node_exhaustion() {
        let meta = IndexMeta::new(PageId(0), PageId(1), 2);
        assert_eq!(meta.alloc_node(), PageId(1));
        assert_eq!(meta.alloc_node(), PageId(2));
        let r = std::panic::catch_unwind(|| meta.alloc_node());
        assert!(r.is_err());
    }
}
