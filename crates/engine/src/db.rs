//! The database facade: wiring, catalog, checkpoints, crash & recovery.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_bufpool::{
    BufferPool, BufferPoolConfig, DirectIo, PageGuard, PageIo, PoolStats, ScanCursor,
};
use turbopool_core::{ImportReport, SsdDesign, SsdManager, TacCache};
use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{fault, Clk, IoError, IoManager, Locality, PageId, RetryPolicy, Time};
use turbopool_wal::log::DurableLog;
use turbopool_wal::{LogManager, LogScanReport, RecoveryStats, RedoStore};

use crate::btree::{self, IndexMeta};
use crate::config::DbConfig;
use crate::heap::{self, HeapMeta, Rid};
use crate::txn::Txn;

/// Handle to a heap file in the catalog.
pub type HeapId = usize;
/// Handle to a B+-tree index in the catalog.
pub type IndexId = usize;

struct Catalog {
    heaps: Vec<HeapMeta>,
    indexes: Vec<IndexMeta>,
    names: HashMap<String, (bool, usize)>, // (is_index, id)
}

/// The storage engine: two-level buffer hierarchy over the simulated
/// devices, with a WAL and a catalog of heaps and indexes.
pub struct Database {
    cfg: DbConfig,
    io: Arc<IoManager>,
    pool: BufferPool,
    layer: Arc<dyn PageIo>,
    ssd: Option<Arc<SsdManager>>,
    tac: Option<Arc<TacCache>>,
    log: LogManager,
    next_tx: AtomicU64,
    alloc: AtomicU64,
    catalog: Mutex<Catalog>,
    /// Recycled page-sized scratch buffers for the transaction hot path
    /// (zero-page serving, write_page before-images).
    bufs: turbopool_iosim::PageBufPool,
}

impl Database {
    /// Open a fresh database (empty disk image, empty log).
    pub fn open(cfg: DbConfig) -> Self {
        let io = Arc::new(IoManager::new(&cfg.device_setup()));
        Self::build(cfg, io, None)
    }

    fn build(cfg: DbConfig, io: Arc<IoManager>, log: Option<LogManager>) -> Self {
        type Layers = (
            Arc<dyn PageIo>,
            Option<Arc<SsdManager>>,
            Option<Arc<TacCache>>,
        );
        // Gray-failure extension: calibrate both fail-slow detectors to
        // the configured thresholds before any I/O is issued.
        io.configure_failslow(cfg.failslow);
        let (layer, ssd, tac): Layers = match &cfg.ssd {
            None => (
                Arc::new(DirectIo::with_retry(Arc::clone(&io), cfg.retry)),
                None,
                None,
            ),
            Some(scfg) if scfg.design == SsdDesign::Tac => {
                // Resolve the engine-level shard knob into a fixed count
                // here so the cache never consults host parallelism.
                let mut scfg = scfg.clone();
                scfg.tac_shards = turbopool_bufpool::ShardCount::Fixed(
                    cfg.tac_shards
                        .resolve(cfg.shard_hint, scfg.frames.max(1) as usize),
                );
                let t = Arc::new(TacCache::new(scfg, Arc::clone(&io)));
                (Arc::clone(&t) as Arc<dyn PageIo>, None, Some(t))
            }
            Some(scfg) => {
                let m = Arc::new(SsdManager::new(scfg.clone(), Arc::clone(&io)));
                (Arc::clone(&m) as Arc<dyn PageIo>, Some(m), None)
            }
        };
        let mut pcfg = BufferPoolConfig::new(cfg.mem_frames, cfg.page_size, cfg.db_pages);
        pcfg.fill_expansion = cfg.fill_expansion;
        pcfg.classifier = cfg.classifier;
        pcfg.replacement = cfg.replacement;
        pcfg.shards = cfg.pool_shards;
        pcfg.shard_hint = cfg.shard_hint;
        let pool = BufferPool::new(pcfg, Arc::clone(&layer));
        let log = log.unwrap_or_else(|| LogManager::new(Arc::clone(&io)));
        let bufs = turbopool_iosim::PageBufPool::new(cfg.page_size, 8);
        Database {
            cfg,
            io,
            pool,
            layer,
            ssd,
            tac,
            log,
            next_tx: AtomicU64::new(1),
            alloc: AtomicU64::new(0),
            catalog: Mutex::new(Catalog {
                heaps: Vec::new(),
                indexes: Vec::new(),
                names: HashMap::new(),
            }),
            bufs,
        }
    }

    /// The engine's scratch-buffer pool (page-sized, recycled).
    pub(crate) fn page_bufs(&self) -> &turbopool_iosim::PageBufPool {
        &self.bufs
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    pub fn io(&self) -> &Arc<IoManager> {
        &self.io
    }

    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    pub fn log(&self) -> &LogManager {
        &self.log
    }

    /// The SSD manager when running CW/DW/LC.
    pub fn ssd_manager(&self) -> Option<&Arc<SsdManager>> {
        self.ssd.as_ref()
    }

    /// The TAC cache when running TAC.
    pub fn tac_cache(&self) -> Option<&Arc<TacCache>> {
        self.tac.as_ref()
    }

    /// SSD-manager counters regardless of design (`None` for noSSD).
    pub fn ssd_metrics(&self) -> Option<turbopool_core::metrics::SsdMetricsSnapshot> {
        if let Some(m) = &self.ssd {
            Some(m.metrics.snapshot())
        } else {
            self.tac.as_ref().map(|t| t.metrics.snapshot())
        }
    }

    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Replacement-policy counter snapshot (ghost hits, scan cost, …).
    pub fn policy_stats(&self) -> turbopool_bufpool::PolicyStats {
        self.pool.policy_stats()
    }

    /// Validate that a page reference points inside the database file.
    /// References can come off disk pages (B+-tree child pointers), and a
    /// damaged restart (mid-log corruption) can roll an inner node back
    /// past its children — such a pointer must fail like a bad read, not
    /// panic the page store.
    pub(crate) fn check_pid(&self, pid: PageId) -> Result<(), IoError> {
        if pid.0 < self.cfg.db_pages {
            Ok(())
        } else {
            Err(IoError::new(
                turbopool_iosim::FaultDevice::Disk,
                turbopool_iosim::IoErrorKind::ChecksumMismatch,
                0,
            ))
        }
    }

    /// True if no copy of `pid` exists anywhere (pool, SSD, disk): the page
    /// has never been written and reads as zeroes.
    pub(crate) fn is_fresh(&self, pid: PageId) -> bool {
        if self.pool.contains(pid)
            || self.layer.has_copy(pid)
            || self.io.disk_store().is_materialized(pid)
        {
            return false;
        }
        if self.io.disk_write_lost(pid) {
            // The page's last disk write was dropped by a dead device: it is
            // unmaterialized but *not* never-written. Treating it as fresh
            // would serve zeroes for committed data; forcing the read path
            // instead surfaces the device error and poisons the transaction.
            return false;
        }
        // No copy anywhere — but a quarantined SSD may have stranded this
        // page's sole (dirty) copy, in which case it is salvageable from the
        // WAL tail, not fresh. Salvage is a no-op when nothing is stranded.
        if self.salvage(&[]) > 0 {
            return !self.io.disk_store().is_materialized(pid);
        }
        true
    }

    // ------------------------------------------------------------------
    // Fault tolerance: WAL-tail salvage of stranded SSD pages
    // ------------------------------------------------------------------

    /// Restore the committed content of lost pages onto the disk tier by
    /// replaying the durable log tail: every page the SSD manager reports as
    /// *stranded* (an LC dirty frame whose sole copy became unreadable),
    /// plus any `extra` pages the caller needs redone. Returns the number of
    /// pages restored.
    ///
    /// Sound because commit-time publication flushes a page's log records
    /// before the page can reach any cache, and sharp checkpoints flush all
    /// SSD-dirty pages before truncating the log — so the committed image of
    /// every cached-dirty page is always reconstructible from disk + tail.
    pub fn salvage(&self, extra: &[PageId]) -> usize {
        let mut pids: HashSet<PageId> = extra.iter().copied().collect();
        if let Some(m) = &self.ssd {
            pids.extend(m.take_stranded());
        }
        if pids.is_empty() {
            return 0;
        }
        let mut store = SalvageStore { io: &self.io };
        let n = match turbopool_wal::salvage(&self.log.durable_snapshot(), &mut store, &pids) {
            Ok(n) => n,
            // A salvage write failed even after unbounded transient retry:
            // the disk tier itself is dead. The failing page was marked as
            // a lost write inside the store, so its readers will surface
            // the device error instead of zeroes; there is nothing more a
            // salvage pass can do.
            Err(_) => 0,
        };
        if let Some(m) = &self.ssd {
            m.metrics
                .salvaged_pages
                .fetch_add(n as u64, Ordering::Relaxed);
        } else if let Some(t) = &self.tac {
            t.metrics
                .salvaged_pages
                .fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    /// Pin a page, salvaging and retrying once if the first attempt fails.
    /// The only recoverable failure is a stranded LC page (the read error
    /// queues it for salvage as a side effect); everything else — a dead
    /// disk after retries — is returned to the caller.
    pub(crate) fn get_with_salvage(
        &self,
        clk: &mut Clk,
        pid: PageId,
        class: Locality,
    ) -> Result<PageGuard<'_>, IoError> {
        match self.pool.get(clk, pid, class) {
            Ok(g) => Ok(g),
            Err(first) => {
                if self.salvage(&[]) == 0 {
                    return Err(first);
                }
                self.pool.get(clk, pid, class)
            }
        }
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    fn alloc_pages(&self, n: u64) -> PageId {
        let first = self.alloc.fetch_add(n, Ordering::Relaxed);
        assert!(
            first + n <= self.cfg.db_pages,
            "database full: {} + {n} > {}",
            first,
            self.cfg.db_pages
        );
        PageId(first)
    }

    /// Create a heap file of `pages` pages holding `record_size`-byte
    /// records. Costs no I/O (zeroed pages are valid empty pages).
    pub fn create_heap(
        &self,
        _clk: &mut Clk,
        name: &str,
        record_size: usize,
        pages: u64,
    ) -> HeapId {
        let first = self.alloc_pages(pages);
        let meta = HeapMeta::new(first, pages, record_size, self.cfg.page_size);
        let mut cat = self.catalog.lock();
        let id = cat.heaps.len();
        assert!(
            cat.names.insert(name.to_string(), (false, id)).is_none(),
            "duplicate table name {name}"
        );
        cat.heaps.push(meta);
        id
    }

    /// Create a B+-tree index with a split extent of `extent_pages` pages.
    pub fn create_index(&self, _clk: &mut Clk, name: &str, extent_pages: u64) -> IndexId {
        let root = self.alloc_pages(1);
        let extent = self.alloc_pages(extent_pages);
        let meta = IndexMeta::new(root, extent, extent_pages);
        let mut cat = self.catalog.lock();
        let id = cat.indexes.len();
        assert!(
            cat.names.insert(name.to_string(), (true, id)).is_none(),
            "duplicate index name {name}"
        );
        cat.indexes.push(meta);
        id
    }

    pub fn heap_meta(&self, id: HeapId) -> HeapMeta {
        self.catalog.lock().heaps[id].clone()
    }

    pub fn index_meta(&self, id: IndexId) -> IndexMeta {
        self.catalog.lock().indexes[id].clone()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a transaction on the given client clock.
    pub fn begin<'d, 'c>(&'d self, clk: &'c mut Clk) -> Txn<'d, 'c> {
        let id = self.next_tx.fetch_add(1, Ordering::Relaxed);
        Txn::new(self, clk, id)
    }

    // ------------------------------------------------------------------
    // Scans
    // ------------------------------------------------------------------

    /// Full sequential scan of a heap with read-ahead; calls
    /// `f(rid, record)` for every present record. Sees committed data only.
    /// `Err` means a page could not be read even after WAL-tail salvage —
    /// the disk tier itself failed; the scan stops at that page.
    pub fn scan_heap(
        &self,
        clk: &mut Clk,
        id: HeapId,
        mut f: impl FnMut(Rid, &[u8]),
    ) -> Result<(), IoError> {
        let meta = self.heap_meta(id);
        let end = meta.first.offset(meta.used_pages());
        let mut cursor = ScanCursor::new(meta.first, end, self.cfg.readahead_window);
        while let Some(next) = cursor.next(clk, &self.pool) {
            // The cursor has already advanced past the page it just served
            // (or failed to serve).
            let pid = PageId(end.0 - cursor.remaining() - 1);
            let g = match next {
                Ok(g) => g,
                Err(e) => {
                    if self.salvage(&[]) == 0 {
                        return Err(e);
                    }
                    self.pool.get(clk, pid, Locality::Sequential)?
                }
            };
            let page_index = pid.0 - meta.first.0;
            g.read(|b| heap::for_each_in_page(&meta, page_index, b, &mut f));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Checkpoint, crash, recovery
    // ------------------------------------------------------------------

    /// Take a sharp checkpoint: flush every dirty page in the memory pool,
    /// then (under LC) every dirty SSD page, then write and truncate the
    /// log. With `warm_restart` enabled, the SSD buffer table is embedded
    /// in the checkpoint record so a restart can re-adopt the SSD's
    /// contents. Returns the virtual duration of the checkpoint.
    pub fn checkpoint(&self, clk: &mut Clk) -> Time {
        let start = clk.now;
        self.pool.checkpoint(clk);
        // The SSD flush above may have stranded LC pages (unreadable dirty
        // frames). They must be salvaged from the log tail NOW — the
        // checkpoint below truncates that tail, after which the committed
        // content would be unrecoverable.
        self.salvage(&[]);
        let ssd_table = self
            .ssd
            .as_ref()
            .filter(|m| m.config().warm_restart)
            .map(|m| turbopool_wal::LogRecord::SsdTable {
                entries: m
                    .export_table()
                    .into_iter()
                    .map(|(p, f)| (p.0, f))
                    .collect(),
            });
        self.log.checkpoint_with(clk, ssd_table.as_ref());
        self.layer.checkpoint_window(start, clk.now);
        clk.now - start
    }

    /// Simulate a crash: all volatile state (buffer pool, SSD manager
    /// metadata, unflushed log) is lost; the disk image, the durable log
    /// and the (system-page-resident) catalog survive.
    pub fn crash(self) -> CrashImage {
        let cat = self.catalog.into_inner();
        CrashImage {
            cfg: self.cfg,
            io: self.io,
            log: self.log.durable_handle(),
            heaps: cat.heaps,
            indexes: cat.indexes,
            names: cat.names,
            alloc: self.alloc.load(Ordering::Relaxed),
            next_tx: self.next_tx.load(Ordering::Relaxed),
        }
    }

    /// Restart after a crash: replay the durable log onto the disk image,
    /// then open with cold caches (or, with the warm-restart extension,
    /// re-adopt probed-clean SSD frames).
    ///
    /// Infallible legacy entry point over [`Database::try_recover`]: the
    /// fault-free callers (drivers, most tests) have no fault plan attached
    /// at restart, so recovery cannot fail for them. Panics if the disk
    /// tier is genuinely dead — there is no database left to open.
    pub fn recover(image: CrashImage) -> (Self, RecoveryStats) {
        match Self::try_recover(image) {
            Ok((db, report)) => (db, report.stats),
            Err(e) => panic!("unrecoverable: disk tier failed during redo: {:?}", e.error),
        }
    }

    /// Fault-tolerant restart. Replays the durable log onto the disk image
    /// through the device fault model (transient redo errors retry with the
    /// configured capped-backoff policy; recovery's own writes are durable
    /// crash points), repairs the log tail, and — with warm restart on —
    /// re-adopts only SSD frames that probe clean, quarantining a dead SSD
    /// and degrading to a cold start instead of fighting it.
    ///
    /// Recovery is *re-entrant*: on `Err` the [`CrashImage`] is handed back
    /// unchanged (modulo partially-redone disk pages, which redo overwrites
    /// idempotently), so the caller may simply call `try_recover` again —
    /// the model of a machine crashing during recovery and rebooting into
    /// another recovery attempt. Any number of such interruptions converge
    /// to the same committed state.
    pub fn try_recover(image: CrashImage) -> Result<(Self, RecoveryReport), Box<RecoveryError>> {
        // The machine rebooted: devices come back idle, virtual time
        // restarts at zero for the new incarnation.
        image.io.reset_device_time();
        let log_bytes = image.log.bytes();
        let mut clk = Clk::new();
        let ssd_frames = image.io.ssd_frames();
        let outcome = {
            let mut store = TimedRedoStore {
                io: &image.io,
                retry: image.cfg.retry,
                clk: &mut clk,
                retries: 0,
            };
            match turbopool_wal::recover(&log_bytes, &mut store, Some(ssd_frames)) {
                Ok(o) => (o, store.retries),
                Err(error) => return Err(Box::new(RecoveryError { error, image })),
            }
        };
        let (outcome, redo_retries) = outcome;
        // Log repair: everything past the last cleanly decoded byte (a torn
        // tail, or a corrupt region) is dead weight that would hide future
        // appends from the *next* recovery. Redo is complete, so it is safe
        // — and idempotent — to drop it now.
        image.log.truncate_to_valid(outcome.report.valid_len);
        let log = image.log.reopen(Arc::clone(&image.io));
        let db = Self::build(image.cfg, image.io, Some(log));
        {
            let mut cat = db.catalog.lock();
            cat.heaps = image.heaps;
            cat.indexes = image.indexes;
            cat.names = image.names;
        }
        db.alloc.store(image.alloc, Ordering::Relaxed);
        db.next_tx.store(image.next_tx, Ordering::Relaxed);

        // Warm restart (extension): re-adopt SSD pages recorded in the
        // last checkpoint that are provably still valid — the frame's
        // in-page header must still name the page (frame not reused), the
        // page's disk image must not have advanced during redo, and the
        // frame's bytes must probe clean (checksum verified) at import.
        let mut warm = None;
        if let Some(mgr) = db.ssd.as_ref().filter(|m| m.config().warm_restart) {
            if let Some(entries) = &outcome.ssd_table {
                let io = Arc::clone(&db.io);
                let redone = &outcome.redone;
                warm = Some(mgr.import_table_checked(&mut clk, entries, |pid, frame| {
                    io.ssd_tag(frame) == Some(pid) && !redone.contains(&pid)
                }));
            }
        }
        // Recovery's redo and probe I/O booked device time on the new
        // incarnation's clock; its cost is captured in `duration`. Hand the
        // system over with idle devices — clients start at virtual zero
        // *after* recovery, not interleaved with it.
        db.io.reset_device_time();
        let report = RecoveryReport {
            stats: outcome.stats,
            log: outcome.report,
            warm,
            redo_retries,
            duration: clk.now,
        };
        Ok((db, report))
    }

    /// Fault-injection hook for tests: XOR `mask` into byte `byte` of the
    /// durable log, modeling at-rest media corruption of the log file.
    /// Returns false when out of range.
    pub fn corrupt_log(&self, byte: usize, mask: u8) -> bool {
        self.log.corrupt_durable(byte, mask)
    }
}

/// Everything a restart learned, for callers that must fail loudly.
///
/// `log.tail.is_damaged()` distinguishes the two damage classes: a torn
/// tail (expected after any crash mid-flush; truncated and harmless) versus
/// mid-log corruption (`LogTail::Corrupt`), after which the recovered state
/// is the last validated checkpoint plus the log prefix before the damage —
/// correct but possibly missing commits, which the caller must surface.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Redo counters.
    pub stats: RecoveryStats,
    /// Log-scan findings: tail condition, valid prefix length, checkpoint
    /// validation results.
    pub log: LogScanReport,
    /// Warm-restart probe results (`None`: cold restart or no SSD table in
    /// the checkpoint).
    pub warm: Option<ImportReport>,
    /// Transient device errors absorbed by redo's retry policy.
    pub redo_retries: u32,
    /// Virtual time the redo pass and warm import consumed.
    pub duration: Time,
}

impl RecoveryReport {
    /// Did this restart lose access to committed data (mid-log corruption)
    /// — as opposed to merely degrading performance (cold caches)?
    pub fn is_damaged(&self) -> bool {
        self.log.tail.is_damaged()
            && matches!(self.log.tail, turbopool_wal::LogTail::Corrupt { .. })
    }
}

/// Recovery could not complete: a redo read or write failed permanently.
/// Carries the [`CrashImage`] back so the caller can retry (`try_recover`
/// is re-entrant) once the fault clears, or give up loudly.
pub struct RecoveryError {
    pub error: IoError,
    pub image: CrashImage,
}

impl std::fmt::Debug for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryError")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// Redo-store over the live device model: every recovery read and write
/// goes through the disk array with fault gating and timing, retrying
/// transient errors with the engine's capped-backoff policy. This is what
/// makes recovery measurable (virtual duration) and crashable (each redo
/// write is a durable-write boundary for the crash-schedule explorer).
struct TimedRedoStore<'a> {
    io: &'a IoManager,
    retry: RetryPolicy,
    clk: &'a mut Clk,
    retries: u32,
}

impl RedoStore for TimedRedoStore<'_> {
    fn page_size(&self) -> usize {
        self.io.page_size()
    }
    fn read(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), IoError> {
        let (r, out) = fault::retry_sync_with(&self.retry, self.clk, |c| {
            self.io.read_disk(c, pid, buf, Locality::Sequential)
        });
        self.retries += r;
        out
    }
    fn write(&mut self, pid: PageId, data: &[u8]) -> Result<(), IoError> {
        let (r, out) = fault::retry_sync_with(&self.retry, self.clk, |c| {
            self.io.write_disk_sync(c, pid, data, Locality::Sequential)
        });
        self.retries += r;
        out
    }
}

/// Redo-store for live WAL-tail salvage: reads come straight from the disk
/// image (the base the log deltas patch), writes go through the device
/// write-behind path with unbounded transient retry — only a dead disk
/// falls through, and then the lost write is recorded so readers fail
/// loudly instead of seeing stale bytes.
struct SalvageStore<'a> {
    io: &'a IoManager,
}

impl RedoStore for SalvageStore<'_> {
    fn page_size(&self) -> usize {
        self.io.page_size()
    }
    fn read(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), IoError> {
        self.io.disk_store().read(pid, buf);
        Ok(())
    }
    fn write(&mut self, pid: PageId, data: &[u8]) -> Result<(), IoError> {
        match fault::retry_write_forever(|| {
            self.io.write_disk_async(0, pid, data, Locality::Random)
        }) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.io.note_lost_write(pid);
                Err(e)
            }
        }
    }
}

/// What survives a crash: the disk image, the durable log, and the catalog
/// / allocation metadata (resident on system pages in a real engine;
/// carried as plain values here — see DESIGN.md).
pub struct CrashImage {
    cfg: DbConfig,
    io: Arc<IoManager>,
    log: DurableLog,
    heaps: Vec<HeapMeta>,
    indexes: Vec<IndexMeta>,
    names: HashMap<String, (bool, usize)>,
    alloc: u64,
    next_tx: u64,
}

impl CrashImage {
    /// The device stack the image rides on. Exposed so crash-schedule
    /// drivers can arm (or clear) a [`turbopool_iosim::CrashSwitch`] across
    /// a reboot — recovery's own writes are durable crash points too.
    pub fn io(&self) -> &Arc<IoManager> {
        &self.io
    }
}

// ---------------------------------------------------------------------
// Transaction-level data access (convenience methods on Txn)
// ---------------------------------------------------------------------

impl Txn<'_, '_> {
    /// Page size of the underlying database.
    pub fn page_size(&self) -> usize {
        self.db.page_size()
    }

    /// Insert a record into a heap.
    pub fn heap_insert(&mut self, id: HeapId, data: &[u8]) -> Result<Rid, heap::HeapFull> {
        let meta = self.db.heap_meta(id);
        heap::insert(self, &meta, data)
    }

    /// Read a record from a heap.
    pub fn heap_get(&mut self, id: HeapId, rid: Rid) -> Option<Vec<u8>> {
        let meta = self.db.heap_meta(id);
        heap::get(self, &meta, rid)
    }

    /// Overwrite a record in a heap.
    pub fn heap_update(&mut self, id: HeapId, rid: Rid, data: &[u8]) -> bool {
        let meta = self.db.heap_meta(id);
        heap::update(self, &meta, rid, data)
    }

    /// Delete a record from a heap.
    pub fn heap_delete(&mut self, id: HeapId, rid: Rid) -> bool {
        let meta = self.db.heap_meta(id);
        heap::delete(self, &meta, rid)
    }

    /// Insert (or replace) a key in an index.
    pub fn index_insert(&mut self, id: IndexId, key: u64, val: u64) {
        let meta = self.db.index_meta(id);
        btree::insert(self, &meta, key, val);
    }

    /// Point lookup in an index.
    pub fn index_get(&mut self, id: IndexId, key: u64) -> Option<u64> {
        let meta = self.db.index_meta(id);
        btree::get(self, &meta, key)
    }

    /// Range scan `lo..=hi` (up to `limit` results, key order).
    pub fn index_range(&mut self, id: IndexId, lo: u64, hi: u64, limit: usize) -> Vec<(u64, u64)> {
        let meta = self.db.index_meta(id);
        btree::range(self, &meta, lo, hi, limit)
    }

    /// Delete a key from an index.
    pub fn index_delete(&mut self, id: IndexId, key: u64) -> bool {
        let meta = self.db.index_meta(id);
        btree::delete(self, &meta, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        Database::open(DbConfig::small_for_tests())
    }

    #[test]
    fn heap_insert_get_round_trip() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 16);
        let mut txn = db.begin(&mut clk);
        let rid = txn.heap_insert(h, b"hello").unwrap();
        assert_eq!(&txn.heap_get(h, rid).unwrap()[..5], b"hello");
        txn.commit();
        // Visible in a new transaction.
        let mut txn = db.begin(&mut clk);
        assert_eq!(&txn.heap_get(h, rid).unwrap()[..5], b"hello");
        txn.commit();
    }

    #[test]
    fn abort_discards_everything() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 16);
        let rid = {
            let mut txn = db.begin(&mut clk);
            let rid = txn.heap_insert(h, b"gone").unwrap();
            txn.abort();
            rid
        };
        let mut txn = db.begin(&mut clk);
        assert!(txn.heap_get(h, rid).is_none());
        txn.commit();
    }

    #[test]
    fn read_only_txn_writes_no_log() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 16);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"x").unwrap();
            txn.commit();
        }
        let before = db.log().flushed_lsn();
        let mut txn = db.begin(&mut clk);
        txn.heap_get(h, 0);
        txn.commit();
        assert_eq!(db.log().flushed_lsn(), before);
    }

    #[test]
    fn btree_insert_get_thousands_with_splits() {
        let db = db();
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 400);
        let mut txn = db.begin(&mut clk);
        // Insert in a scrambled order to exercise splits on both sides.
        let n = 1000u64;
        for i in 0..n {
            let k = (i * 7919) % n;
            txn.index_insert(idx, k, k * 10);
        }
        for k in 0..n {
            assert_eq!(txn.index_get(idx, k), Some(k * 10), "key {k}");
        }
        assert_eq!(txn.index_get(idx, n + 5), None);
        txn.commit();
    }

    #[test]
    fn btree_upsert_replaces() {
        let db = db();
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 50);
        let mut txn = db.begin(&mut clk);
        txn.index_insert(idx, 5, 1);
        txn.index_insert(idx, 5, 2);
        assert_eq!(txn.index_get(idx, 5), Some(2));
        txn.commit();
    }

    #[test]
    fn btree_range_is_sorted_and_bounded() {
        let db = db();
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 200);
        let mut txn = db.begin(&mut clk);
        for k in (0..1000u64).rev() {
            txn.index_insert(idx, k * 2, k);
        }
        let r = txn.index_range(idx, 100, 140, 100);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec![
                100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120, 122, 124, 126, 128, 130,
                132, 134, 136, 138, 140
            ]
        );
        let limited = txn.index_range(idx, 0, u64::MAX, 7);
        assert_eq!(limited.len(), 7);
        assert_eq!(limited[6].0, 12);
        txn.commit();
    }

    #[test]
    fn btree_delete_removes() {
        let db = db();
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 100);
        let mut txn = db.begin(&mut clk);
        for k in 0..500u64 {
            txn.index_insert(idx, k, k);
        }
        assert!(txn.index_delete(idx, 250));
        assert!(!txn.index_delete(idx, 250));
        assert_eq!(txn.index_get(idx, 250), None);
        assert_eq!(txn.index_get(idx, 251), Some(251));
        let r = txn.index_range(idx, 248, 252, 10);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![248, 249, 251, 252]);
        txn.commit();
    }

    #[test]
    fn scan_heap_sees_all_committed_records() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 16, 64);
        let mut txn = db.begin(&mut clk);
        for i in 0..100u64 {
            txn.heap_insert(h, &i.to_le_bytes()).unwrap();
        }
        txn.commit();
        let mut seen = Vec::new();
        db.scan_heap(&mut clk, h, |rid, rec| {
            seen.push((rid, u64::from_le_bytes(rec[..8].try_into().unwrap())));
        })
        .unwrap();
        assert_eq!(seen.len(), 100);
        assert!(seen.iter().all(|&(rid, v)| rid == v));
    }

    #[test]
    fn crash_before_commit_loses_nothing_committed() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 32);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"durable").unwrap();
            txn.commit();
        }
        // A transaction in flight at crash time:
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"lost").unwrap();
            txn.abort(); // never committed
        }
        let (db2, stats) = Database::recover(db.crash());
        assert!(stats.writes_applied > 0);
        let mut clk = Clk::new();
        let mut txn = db2.begin(&mut clk);
        assert_eq!(&txn.heap_get(h, 0).unwrap()[..7], b"durable");
        assert!(txn.heap_get(h, 1).is_none());
        txn.commit();
    }

    #[test]
    fn recovery_after_checkpoint_replays_only_the_tail() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 32);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"before").unwrap();
            txn.commit();
        }
        db.checkpoint(&mut clk);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"after").unwrap();
            txn.commit();
        }
        let (db2, stats) = Database::recover(db.crash());
        // Only the post-checkpoint transaction is replayed.
        assert_eq!(stats.txns_redone, 1);
        let mut clk = Clk::new();
        let mut txn = db2.begin(&mut clk);
        assert_eq!(&txn.heap_get(h, 0).unwrap()[..6], b"before");
        assert_eq!(&txn.heap_get(h, 1).unwrap()[..5], b"after");
        txn.commit();
    }

    #[test]
    fn checkpoint_leaves_no_dirty_pages() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 32);
        let mut txn = db.begin(&mut clk);
        for i in 0..20u64 {
            txn.heap_insert(h, &i.to_le_bytes()).unwrap();
        }
        txn.commit();
        assert!(db.pool().dirty_count() > 0);
        db.checkpoint(&mut clk);
        assert_eq!(db.pool().dirty_count(), 0);
    }

    #[test]
    fn fresh_pages_cost_no_read_io() {
        let db = db();
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 32);
        let reads_before = db.io().disk_stats().read_ops;
        let mut txn = db.begin(&mut clk);
        txn.heap_insert(h, b"first-touch").unwrap();
        txn.commit();
        assert_eq!(db.io().disk_stats().read_ops, reads_before);
    }

    #[test]
    fn fresh_page_write_read_back_after_eviction() {
        // A page created fresh, evicted, and re-read must round-trip.
        let mut cfg = DbConfig::small_for_tests();
        cfg.mem_frames = 2;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 64);
        let mut rids = Vec::new();
        for i in 0..30u64 {
            let mut txn = db.begin(&mut clk);
            rids.push(txn.heap_insert(h, &i.to_le_bytes()).unwrap());
            txn.commit();
        }
        let mut txn = db.begin(&mut clk);
        for (i, rid) in rids.iter().enumerate() {
            let rec = txn.heap_get(h, *rid).unwrap();
            assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), i as u64);
        }
        txn.commit();
    }

    #[test]
    fn works_identically_across_designs() {
        use turbopool_core::{SsdConfig, SsdDesign};
        for design in [
            None,
            Some(SsdDesign::CleanWrite),
            Some(SsdDesign::DualWrite),
            Some(SsdDesign::LazyCleaning),
            Some(SsdDesign::Tac),
        ] {
            let mut cfg = DbConfig::small_for_tests();
            cfg.mem_frames = 4;
            cfg.ssd = design.map(|d| {
                let mut s = SsdConfig::new(d, 16);
                s.partitions = 2;
                s
            });
            let db = Database::open(cfg);
            let mut clk = Clk::new();
            let h = db.create_heap(&mut clk, "t", 16, 32);
            let idx = db.create_index(&mut clk, "i", 64);
            let mut rids = Vec::new();
            for i in 0..200u64 {
                let mut txn = db.begin(&mut clk);
                let rid = txn.heap_insert(h, &i.to_le_bytes()).unwrap();
                txn.index_insert(idx, i, rid);
                txn.commit();
                rids.push(rid);
            }
            let mut txn = db.begin(&mut clk);
            for i in (0..200u64).step_by(7) {
                let rid = txn.index_get(idx, i).unwrap();
                let rec = txn.heap_get(h, rid).unwrap();
                assert_eq!(
                    u64::from_le_bytes(rec[..8].try_into().unwrap()),
                    i,
                    "design {design:?}"
                );
            }
            txn.commit();
        }
    }

    #[test]
    fn ssd_copies_are_invalidated_on_commit() {
        use turbopool_core::{SsdConfig, SsdDesign};
        let mut cfg = DbConfig::small_for_tests();
        cfg.mem_frames = 2;
        let mut s = SsdConfig::new(SsdDesign::DualWrite, 32);
        s.partitions = 1;
        cfg.ssd = Some(s);
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 32, 8);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h, b"v1").unwrap();
            txn.commit();
        }
        // Evict the page into the SSD by touching others.
        let h2 = db.create_heap(&mut clk, "u", 32, 8);
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_insert(h2, b"x").unwrap();
            txn.heap_insert(h2, b"y").unwrap();
            txn.commit();
        }
        let meta = db.heap_meta(h);
        let cached_before = db.ssd_manager().unwrap().contains(meta.first);
        // Update the record: the commit dirties the page, invalidating the
        // SSD copy; the Figure-3 invariant (mem==ssd when both) holds.
        {
            let mut txn = db.begin(&mut clk);
            txn.heap_update(h, 0, b"v2");
            txn.commit();
        }
        if cached_before {
            assert!(
                !db.ssd_manager().unwrap().is_dirty(meta.first),
                "DW must never hold a newer-than-disk SSD copy"
            );
        }
        let mut txn = db.begin(&mut clk);
        assert_eq!(&txn.heap_get(h, 0).unwrap()[..2], b"v2");
        txn.commit();
    }

    #[test]
    fn lc_ssd_death_recovers_stranded_dirty_pages_via_wal() {
        use turbopool_core::{SsdConfig, SsdDesign};
        use turbopool_iosim::fault::{FaultConfig, FaultPlan};
        // LazyCleaning is the only design where the SSD can hold the sole
        // current copy of committed data (dirty frames awaiting lazy
        // cleaning). Kill the SSD mid-workload and every committed value
        // must still be readable: the stranded pages are rebuilt from the
        // WAL tail onto disk (Database::salvage).
        let mut cfg = DbConfig::small_for_tests();
        cfg.mem_frames = 2;
        let mut s = SsdConfig::new(SsdDesign::LazyCleaning, 32);
        s.partitions = 1;
        cfg.ssd = Some(s);
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 16, 16);
        let mut rids = Vec::new();
        // Enough inserts that committed pages are evicted *dirty* to the
        // SSD (mem_frames = 2 forces constant eviction).
        for i in 0..100u64 {
            let mut txn = db.begin(&mut clk);
            rids.push(txn.heap_insert(h, &i.to_le_bytes()).unwrap());
            assert!(txn.commit().is_committed());
        }
        let dirty_before = db.ssd_manager().unwrap().dirty_count();
        assert!(dirty_before > 0, "LC must be holding dirty SSD frames");
        // The SSD dies.
        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(42)));
        db.io().set_ssd_fault(Some(Arc::clone(&plan)));
        plan.kill(clk.now);
        // Every committed row is still readable. The first request after
        // death quarantines the SSD; stranded dirty pages are rebuilt from
        // the WAL tail before any read of them can be served from disk.
        let mut txn = db.begin(&mut clk);
        for (i, rid) in rids.iter().enumerate() {
            let rec = txn.heap_get(h, *rid).unwrap();
            assert_eq!(
                u64::from_le_bytes(rec[..8].try_into().unwrap()),
                i as u64,
                "row {i} lost after SSD death"
            );
        }
        assert!(txn.commit().is_committed());
        let m = db.ssd_metrics().unwrap();
        assert_eq!(m.ssd_quarantined, 1);
        assert!(m.salvaged_pages > 0, "expected WAL salvage to run");
        assert_eq!(m.stranded_dirty, dirty_before);
        assert_eq!(db.ssd_manager().unwrap().audit_violations(), 0);
    }

    #[test]
    fn disk_death_poisons_reads_instead_of_serving_fresh_zeroes() {
        use crate::txn::CommitOutcome;
        use turbopool_iosim::fault::{FaultConfig, FaultPlan};
        // A dirty eviction to a dead disk is genuinely unpersistable — but
        // the page must not thereafter classify as never-written and read
        // back as zeroes under a Committed outcome. The IoManager tracks
        // the lost write; the next read touches the dead device, fails,
        // and poisons the transaction.
        let mut cfg = DbConfig::small_for_tests();
        cfg.mem_frames = 2;
        cfg.ssd = None; // noSSD: evictions go straight to disk
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 16, 4);
        let mut txn = db.begin(&mut clk);
        let rid = txn.heap_insert(h, &7u64.to_le_bytes()).unwrap();
        assert!(txn.commit().is_committed());

        let plan = Arc::new(FaultPlan::new(FaultConfig::quiet(13)));
        db.io().set_disk_fault(Some(Arc::clone(&plan)));
        plan.kill(clk.now);
        // Churn the 2-frame pool until the committed page's dirty eviction
        // hits the dead disk and is dropped.
        for i in 0..32u64 {
            let mut t = db.begin(&mut clk);
            let _ = t.heap_insert(h, &i.to_le_bytes());
            let _ = t.commit();
        }
        // Reading the committed row must now poison the transaction, not
        // serve zeroes with a Committed outcome.
        let mut txn = db.begin(&mut clk);
        let _ = txn.heap_get(h, rid);
        match txn.commit() {
            CommitOutcome::AbortedIo(e) => assert!(!e.is_transient()),
            CommitOutcome::Committed => {
                panic!("read of an unpersisted page committed after disk death")
            }
        }
    }
}
