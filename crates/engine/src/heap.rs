//! Heap files: fixed-size records addressed by RID.
//!
//! A heap file occupies a contiguous page extent. Each page holds
//! `slots_per_page` fixed-size records behind a presence-flag array, so a
//! zeroed (never-written) page is a valid empty page — creating a table
//! costs no I/O. RIDs are dense: `rid = page_index * slots_per_page + slot`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use turbopool_iosim::{Locality, PageId};

use crate::txn::Txn;

/// RID: a record's stable address within its heap file.
pub type Rid = u64;

/// Heap-file metadata (kept in the catalog).
#[derive(Clone, Debug)]
pub struct HeapMeta {
    pub first: PageId,
    pub pages: u64,
    pub record_size: usize,
    pub slots_per_page: usize,
    /// Append cursor: the next RID to hand out.
    pub next: Arc<AtomicU64>,
}

impl HeapMeta {
    pub fn new(first: PageId, pages: u64, record_size: usize, page_size: usize) -> Self {
        let slots_per_page = page_size / (1 + record_size);
        assert!(slots_per_page >= 1, "record larger than a page");
        HeapMeta {
            first,
            pages,
            record_size,
            slots_per_page,
            next: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total record capacity.
    pub fn capacity(&self) -> u64 {
        self.pages * self.slots_per_page as u64
    }

    /// Page and slot of a RID.
    #[inline]
    pub fn locate(&self, rid: Rid) -> (PageId, usize) {
        let page = self.first.offset(rid / self.slots_per_page as u64);
        let slot = (rid % self.slots_per_page as u64) as usize;
        (page, slot)
    }

    /// Byte offset of a slot's presence flag.
    #[inline]
    fn flag_off(&self, slot: usize) -> usize {
        slot
    }

    /// Byte offset of a slot's record bytes.
    #[inline]
    fn rec_off(&self, slot: usize) -> usize {
        self.slots_per_page + slot * self.record_size
    }

    /// Pages that contain at least one allocated RID (bounds table scans).
    pub fn used_pages(&self) -> u64 {
        let next = self.next.load(Ordering::Relaxed);
        next.div_ceil(self.slots_per_page as u64).min(self.pages)
    }
}

/// Append a record; returns its RID. The data must be at most
/// `record_size` bytes (shorter records are zero-padded).
pub fn insert(txn: &mut Txn<'_, '_>, meta: &HeapMeta, data: &[u8]) -> Result<Rid, HeapFull> {
    assert!(data.len() <= meta.record_size, "record too large");
    let rid = meta.next.fetch_add(1, Ordering::Relaxed);
    if rid >= meta.capacity() {
        return Err(HeapFull);
    }
    let (pid, slot) = meta.locate(rid);
    let (f, r) = (meta.flag_off(slot), meta.rec_off(slot));
    txn.write_page(pid, Locality::Random, |b| {
        b[f] = 1;
        b[r..r + data.len()].copy_from_slice(data);
        // Zero the padding in case the slot was previously used.
        b[r + data.len()..r + meta.record_size].fill(0);
    });
    Ok(rid)
}

/// The heap extent is out of slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapFull;

/// Read a record; `None` if the RID was never inserted or was deleted.
pub fn get(txn: &mut Txn<'_, '_>, meta: &HeapMeta, rid: Rid) -> Option<Vec<u8>> {
    if rid >= meta.capacity() {
        return None;
    }
    let (pid, slot) = meta.locate(rid);
    let (f, r) = (meta.flag_off(slot), meta.rec_off(slot));
    txn.read_page(pid, Locality::Random, |b| {
        (b[f] == 1).then(|| b[r..r + meta.record_size].to_vec())
    })
}

/// Overwrite an existing record in place.
pub fn update(txn: &mut Txn<'_, '_>, meta: &HeapMeta, rid: Rid, data: &[u8]) -> bool {
    assert!(data.len() <= meta.record_size, "record too large");
    if rid >= meta.capacity() {
        return false;
    }
    let (pid, slot) = meta.locate(rid);
    let (f, r) = (meta.flag_off(slot), meta.rec_off(slot));
    txn.write_page(pid, Locality::Random, |b| {
        if b[f] != 1 {
            return false;
        }
        b[r..r + data.len()].copy_from_slice(data);
        true
    })
}

/// Delete a record (the slot is not reused).
pub fn delete(txn: &mut Txn<'_, '_>, meta: &HeapMeta, rid: Rid) -> bool {
    if rid >= meta.capacity() {
        return false;
    }
    let (pid, slot) = meta.locate(rid);
    let f = meta.flag_off(slot);
    txn.write_page(pid, Locality::Random, |b| {
        let was = b[f] == 1;
        b[f] = 0;
        was
    })
}

/// Iterate the present records of one page image, calling
/// `f(rid, record_bytes)`.
pub fn for_each_in_page(
    meta: &HeapMeta,
    page_index: u64,
    page: &[u8],
    mut f: impl FnMut(Rid, &[u8]),
) {
    for slot in 0..meta.slots_per_page {
        if page[meta.flag_off(slot)] == 1 {
            let rid = page_index * meta.slots_per_page as u64 + slot as u64;
            let r = meta.rec_off(slot);
            f(rid, &page[r..r + meta.record_size]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_round_trips() {
        let m = HeapMeta::new(PageId(100), 10, 31, 256);
        assert_eq!(m.slots_per_page, 8);
        assert_eq!(m.capacity(), 80);
        assert_eq!(m.locate(0), (PageId(100), 0));
        assert_eq!(m.locate(7), (PageId(100), 7));
        assert_eq!(m.locate(8), (PageId(101), 0));
        assert_eq!(m.locate(79), (PageId(109), 7));
    }

    #[test]
    fn offsets_do_not_overlap() {
        let m = HeapMeta::new(PageId(0), 1, 31, 256);
        // Flags occupy [0, 8); records start at 8.
        assert_eq!(m.rec_off(0), 8);
        assert_eq!(m.rec_off(7), 8 + 7 * 31);
        assert!(m.rec_off(7) + 31 <= 256);
    }

    #[test]
    fn used_pages_tracks_cursor() {
        let m = HeapMeta::new(PageId(0), 10, 31, 256);
        assert_eq!(m.used_pages(), 0);
        m.next.store(1, Ordering::Relaxed);
        assert_eq!(m.used_pages(), 1);
        m.next.store(8, Ordering::Relaxed);
        assert_eq!(m.used_pages(), 1);
        m.next.store(9, Ordering::Relaxed);
        assert_eq!(m.used_pages(), 2);
        m.next.store(10_000, Ordering::Relaxed);
        assert_eq!(m.used_pages(), 10);
    }

    #[test]
    fn for_each_in_page_skips_absent_slots() {
        let m = HeapMeta::new(PageId(0), 1, 31, 256);
        let mut page = vec![0u8; 256];
        page[0] = 1; // slot 0 present
        page[2] = 1; // slot 2 present
        page[8] = 0xAA; // slot 0 record first byte
        let mut seen = Vec::new();
        for_each_in_page(&m, 5, &page, |rid, rec| seen.push((rid, rec[0])));
        assert_eq!(seen, vec![(40, 0xAA), (42, 0)]);
    }
}
