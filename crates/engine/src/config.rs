//! Engine configuration.

use turbopool_bufpool::{ClassifierKind, ReplacementKind, ShardCount};
use turbopool_core::SsdConfig;
use turbopool_iosim::{DeviceSetup, FailSlowConfig, RetryPolicy};

/// Everything needed to open a [`crate::Database`].
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Page size in bytes (8192 in the paper; tests use smaller pages).
    pub page_size: usize,
    /// Total pages of the database file group (includes growth headroom).
    pub db_pages: u64,
    /// Main-memory buffer-pool frames.
    pub mem_frames: usize,
    /// SSD cache configuration; `None` is the paper's `noSSD` baseline.
    pub ssd: Option<SsdConfig>,
    /// Pool-fill read expansion (see `BufferPoolConfig::fill_expansion`).
    pub fill_expansion: u64,
    /// Random/sequential classifier for SSD admission.
    pub classifier: ClassifierKind,
    /// DRAM replacement policy (LRU-2 is the paper's and the default).
    pub replacement: ReplacementKind,
    /// Read-ahead window for table scans, in pages.
    pub readahead_window: u64,
    /// Override the device calibration (defaults to the paper's Table 1).
    pub devices: Option<DeviceSetup>,
    /// Retry/backoff policy for the noSSD baseline's synchronous reads
    /// (SSD designs carry their own copy inside [`SsdConfig`]).
    pub retry: RetryPolicy,
    /// Fail-slow detector tuning applied to both the disk group and the
    /// SSD when the database opens (gray-failure extension).
    pub failslow: FailSlowConfig,
    /// Lock stripes for the DRAM buffer pool's page table (ISSUE 9).
    /// `Fixed(1)` is the legacy single latch and replays bit-for-bit;
    /// `Auto` resolves against [`DbConfig::shard_hint`].
    pub pool_shards: ShardCount,
    /// Lock stripes for the TAC buffer table (routed by extent).
    /// `Auto` resolves against [`DbConfig::shard_hint`]. Ignored by the
    /// CW/DW/LC manager, which stripes via `SsdConfig::partitions`.
    pub tac_shards: ShardCount,
    /// What `ShardCount::Auto` resolves to. Deliberately a config value
    /// (default 1 = legacy behavior), never the host's core count —
    /// results must not depend on the machine that produced them.
    pub shard_hint: usize,
}

impl DbConfig {
    /// A configuration with the paper's device calibration and the given
    /// sizes; SSD off until `ssd` is set.
    pub fn new(page_size: usize, db_pages: u64, mem_frames: usize) -> Self {
        DbConfig {
            page_size,
            db_pages,
            mem_frames,
            ssd: None,
            fill_expansion: 8,
            classifier: ClassifierKind::ReadAhead,
            replacement: ReplacementKind::Lru2,
            readahead_window: 32,
            devices: None,
            retry: RetryPolicy::default(),
            failslow: FailSlowConfig::default(),
            pool_shards: ShardCount::Auto,
            tac_shards: ShardCount::Auto,
            shard_hint: 1,
        }
    }

    /// A tiny configuration for unit tests and doc examples: 256-byte
    /// pages, 512-page database, 32-frame pool.
    pub fn small_for_tests() -> Self {
        let mut cfg = DbConfig::new(256, 512, 32);
        cfg.fill_expansion = 1;
        cfg
    }

    /// The device setup this config resolves to.
    pub fn device_setup(&self) -> DeviceSetup {
        self.devices.clone().unwrap_or_else(|| {
            let ssd_frames = self.ssd.as_ref().map(|s| s.frames).unwrap_or(1);
            DeviceSetup::paper(self.page_size, self.db_pages, ssd_frames)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_setup_sizes_ssd_from_config() {
        let mut cfg = DbConfig::new(8192, 1000, 100);
        assert_eq!(cfg.device_setup().ssd_frames, 1);
        cfg.ssd = Some(SsdConfig::new(turbopool_core::SsdDesign::LazyCleaning, 640));
        let setup = cfg.device_setup();
        assert_eq!(setup.ssd_frames, 640);
        assert_eq!(setup.db_pages, 1000);
        assert_eq!(setup.page_size, 8192);
    }
}
