//! Transactions: private write buffering, commit-time logging/publication.

use std::collections::HashMap;

use turbopool_iosim::{Clk, IoError, Locality, PageBuf, PageId};
use turbopool_wal::{LogRecord, TxId};

use crate::db::Database;

/// How a [`Txn::commit`] ended.
///
/// Deliberately *not* `#[must_use]`: fault-free callers (the workload
/// drivers, most tests) may keep writing `txn.commit();` — an ignored
/// `AbortedIo` leaves the database exactly as if the transaction never ran,
/// which is a safe default. Fault-aware callers match on the outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Logged, flushed, and published.
    Committed,
    /// The transaction was poisoned by an unrecoverable disk-tier error on
    /// one of its reads; nothing was logged or published. Carries the first
    /// such error.
    AbortedIo(IoError),
}

impl CommitOutcome {
    pub fn is_committed(&self) -> bool {
        matches!(self, CommitOutcome::Committed)
    }
}

/// Minimum run of unchanged bytes that splits a page diff into two log
/// records. Smaller gaps are cheaper to log as part of one record than as
/// a second record header.
const DIFF_GAP: usize = 32;

/// Compute the minimal set of changed byte ranges between two page images.
pub(crate) fn diff_ranges(before: &[u8], after: &[u8]) -> Vec<(u32, Vec<u8>)> {
    debug_assert_eq!(before.len(), after.len());
    let mut out: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut i = 0usize;
    let n = before.len();
    while i < n {
        if before[i] == after[i] {
            i += 1;
            continue;
        }
        // Start of a changed range; extend until DIFF_GAP unchanged bytes.
        let start = i;
        let mut end = i + 1;
        let mut gap = 0usize;
        let mut j = end;
        while j < n && gap < DIFF_GAP {
            if before[j] != after[j] {
                end = j + 1;
                gap = 0;
            } else {
                gap += 1;
            }
            j += 1;
        }
        out.push((start as u32, after[start..end].to_vec()));
        i = end;
    }
    out
}

/// An in-flight transaction.
///
/// Reads see the transaction's own writes through a page overlay; writes
/// stay private until [`Txn::commit`], which logs the byte-level deltas,
/// flushes the log (WAL), and only then publishes the modified pages to the
/// buffer pool. [`Txn::abort`] (or dropping the transaction) discards
/// everything.
pub struct Txn<'d, 'c> {
    pub(crate) db: &'d Database,
    pub clk: &'c mut Clk,
    id: TxId,
    overlay: HashMap<PageId, PageBuf>,
    ops: Vec<LogRecord>,
    /// First unrecoverable I/O error observed by a read; a poisoned
    /// transaction serves zeroed pages from then on and refuses to commit.
    poisoned: Option<IoError>,
}

impl<'d, 'c> Txn<'d, 'c> {
    pub(crate) fn new(db: &'d Database, clk: &'c mut Clk, id: TxId) -> Self {
        Txn {
            db,
            clk,
            id,
            overlay: HashMap::new(),
            ops: Vec::new(),
            poisoned: None,
        }
    }

    pub fn id(&self) -> TxId {
        self.id
    }

    /// The error that poisoned this transaction, if any. A poisoned
    /// transaction can only abort ([`Txn::commit`] returns
    /// [`CommitOutcome::AbortedIo`]).
    pub fn poisoned(&self) -> Option<IoError> {
        self.poisoned
    }

    fn poison(&mut self, e: IoError) {
        self.poisoned.get_or_insert(e);
    }

    /// Bytes of redo this transaction has generated so far.
    pub fn log_bytes(&self) -> usize {
        self.ops.iter().map(|r| r.encoded_len()).sum()
    }

    /// Read page `pid` (own writes visible). `class` is the declared access
    /// locality (index lookups are random; scans go through
    /// [`Database::scan_heap`] instead).
    pub fn read_page<R>(&mut self, pid: PageId, class: Locality, f: impl FnOnce(&[u8]) -> R) -> R {
        if let Some(p) = self.overlay.get(&pid) {
            return f(p.as_slice());
        }
        if let Err(e) = self.db.check_pid(pid) {
            // A reference that points outside the database file — only
            // reachable by following a pointer on a damaged page (e.g. a
            // B+-tree descent after mid-log corruption rolled an inner node
            // back past its children). Poison instead of panicking so the
            // access method unwinds and the caller sees the error.
            self.poison(e);
            return f(&self.db.page_bufs().lease_zeroed());
        }
        if self.db.is_fresh(pid) {
            // Never-written page: reads as zeroes with no I/O and no frame
            // (the scratch lease recycles, so no allocation either).
            return f(&self.db.page_bufs().lease_zeroed());
        }
        match self.db.get_with_salvage(self.clk, pid, class) {
            Ok(g) => g.read(f),
            Err(e) => {
                // Even WAL-tail salvage could not produce the page: poison
                // the transaction and serve zeroes so the access method can
                // unwind without a panic.
                self.poison(e);
                f(&self.db.page_bufs().lease_zeroed())
            }
        }
    }

    /// Modify page `pid` in the transaction's private overlay. The change
    /// is diffed against the pre-image and logged as byte ranges at commit.
    pub fn write_page<R>(
        &mut self,
        pid: PageId,
        class: Locality,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        if !self.overlay.contains_key(&pid) {
            let mut buf = PageBuf::zeroed(self.db.page_size());
            if let Err(e) = self.db.check_pid(pid) {
                // Same damaged-pointer defense as `read_page`: the write
                // stays in the overlay (it can never publish — the
                // transaction is poisoned) instead of indexing out of the
                // page store.
                self.poison(e);
            } else if !self.db.is_fresh(pid) {
                match self.db.get_with_salvage(self.clk, pid, class) {
                    Ok(g) => g.read(|b| buf.copy_from(b)),
                    // A missing pre-image poisons the whole transaction:
                    // the diff below would be against garbage.
                    Err(e) => self.poison(e),
                }
            }
            self.overlay.insert(pid, buf);
        }
        // Snapshot the pre-image into a recycled scratch buffer (a fresh
        // PageBuf clone per write_page is the old allocation hot spot).
        let mut before = self.db.page_bufs().lease();
        let page = self.overlay.get_mut(&pid).unwrap();
        before.copy_from_slice(page.as_slice());
        let r = f(page.as_mut_slice());
        for (offset, data) in diff_ranges(&before, page.as_slice()) {
            self.ops.push(LogRecord::PageWrite {
                txid: self.id,
                pid,
                offset,
                data,
            });
        }
        r
    }

    /// Commit: log, flush (WAL), publish. Read-only transactions are free.
    /// A poisoned transaction aborts instead (nothing logged or published).
    pub fn commit(self) -> CommitOutcome {
        if let Some(e) = self.poisoned {
            return CommitOutcome::AbortedIo(e);
        }
        if self.ops.is_empty() {
            return CommitOutcome::Committed;
        }
        let log = self.db.log();
        for rec in &self.ops {
            log.append(rec);
        }
        log.append(&LogRecord::Commit { txid: self.id });
        if !log.flush(self.clk) {
            // Power died during the commit flush (crash-schedule switch):
            // the commit record never became durable, so this transaction
            // did NOT commit. Publish nothing — the machine is off, and the
            // next incarnation's recovery must not find these writes
            // applied anywhere.
            return CommitOutcome::AbortedIo(IoError::new(
                turbopool_iosim::FaultDevice::Disk,
                turbopool_iosim::IoErrorKind::DeviceDead,
                self.clk.now,
            ));
        }
        // Publication: install the after-images into the buffer pool,
        // dirtying the pages (which invalidates any SSD copies). Ascending
        // page order, not `HashMap` order: replacement stamps and fault-plan
        // draws are consumed in publication order, so it must be identical
        // on every run for replay to be bit-reproducible.
        let mut pages: Vec<(PageId, PageBuf)> = self.overlay.into_iter().collect();
        pages.sort_unstable_by_key(|(pid, _)| pid.0);
        for (pid, image) in pages {
            if self.db.pool().contains(pid) || !self.db.is_fresh(pid) {
                match self.db.get_with_salvage(self.clk, pid, Locality::Random) {
                    Ok(mut g) => {
                        g.write(self.clk.now, |b| b.copy_from_slice(image.as_slice()));
                    }
                    Err(_) => {
                        // The commit record is already durable, so the
                        // transaction IS committed; the frame just cannot be
                        // cached right now. Redo this page's committed
                        // content straight onto the disk tier from the log.
                        self.db.salvage(&[pid]);
                    }
                }
            } else {
                let mut g = self.db.pool().create(self.clk.now, pid);
                g.write(self.clk.now, |b| b.copy_from_slice(image.as_slice()));
            }
        }
        CommitOutcome::Committed
    }

    /// Discard all buffered writes.
    pub fn abort(self) {
        // Dropping the overlay is the whole rollback.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_finds_single_range() {
        let a = vec![0u8; 100];
        let mut b = a.clone();
        b[10] = 1;
        b[12] = 2;
        let d = diff_ranges(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 10);
        assert_eq!(d[0].1, vec![1, 0, 2]);
    }

    #[test]
    fn diff_splits_on_large_gaps() {
        let a = vec![0u8; 200];
        let mut b = a.clone();
        b[0] = 1;
        b[150] = 2;
        let d = diff_ranges(&a, &b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], (0, vec![1]));
        assert_eq!(d[1], (150, vec![2]));
    }

    #[test]
    fn diff_merges_small_gaps() {
        let a = vec![0u8; 100];
        let mut b = a.clone();
        b[10] = 1;
        b[20] = 2; // 9-byte gap < DIFF_GAP
        let d = diff_ranges(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, 10);
        assert_eq!(d[0].1.len(), 11);
    }

    #[test]
    fn diff_of_identical_pages_is_empty() {
        let a = vec![7u8; 64];
        assert!(diff_ranges(&a, &a).is_empty());
    }

    #[test]
    fn diff_covers_page_edges() {
        let a = vec![0u8; 64];
        let mut b = a.clone();
        b[0] = 1;
        b[63] = 1;
        let d = diff_ranges(&a, &b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[1].0, 63);
    }
}
