//! Exhaustive crash-schedule exploration.
//!
//! The recovery code path is only as trustworthy as the set of crash points
//! it has been tested against. This module makes that set *exhaustive* for a
//! seeded trace: a recording run numbers every durable-write boundary (disk
//! page writes, SSD frame writes, log flushes) with a
//! [`CrashSwitch`] in recorder mode, then the trace is replayed once per
//! boundary with the switch armed there — power fails at exactly that write
//! (and, in the torn variant, *during* it). Each incarnation is recovered
//! with [`Database::try_recover`] and its surviving contents are checked
//! against an oracle computed from commit attribution alone.
//!
//! The oracle needs no I/O model: a transaction is durable iff its commit
//! log-flush boundary persisted. The recorder captures the boundary sequence
//! number `f_i` of every operation's commit flush; crashing at cut `k` makes
//! operation `i` durable iff `f_i <= k` (or `f_i < k` when the cut boundary
//! is torn — a torn flush loses its final byte, so its commit record never
//! decodes). Because the durable set is always a prefix of the trace, the
//! expected post-recovery state is a pure fold over the trace prefix.
//!
//! Double-crash schedules re-arm a second switch over *recovery's own*
//! writes: the first reboot's redo pass is interrupted mid-write, the
//! machine reboots again, and recovery re-runs from the handed-back
//! [`CrashImage`] until it converges — exercising the re-entrancy contract
//! end to end.
//!
//! Everything is deterministic: same config, same outcome, bit for bit —
//! [`ExplorerOutcome::fingerprint`] folds every recovered value and report
//! into one u64 so reruns can assert exact equality.

use std::sync::Arc;

use turbopool_core::SsdConfig;
use turbopool_iosim::rng::{Rng, SeedableRng, SmallRng};
use turbopool_iosim::{fault, BoundaryCounts, Clk, CrashSwitch};

use crate::config::DbConfig;
use crate::db::{Database, HeapId, RecoveryReport};
use crate::heap::Rid;

/// Record payload size for the explorer's heap (bytes). Nearly a full
/// 256-byte test page, so every insert opens a fresh page — a short trace
/// then overflows the 8-frame pool and the boundary stream gets evictions,
/// SSD admissions, and cleaning, not just commit flushes.
const RECORD_SIZE: usize = 200;
/// Heap extent in pages.
const HEAP_PAGES: u64 = 128;

/// One pre-resolved workload step. The trace is generated up front from the
/// seed so replaying it consumes no randomness — replay divergence would
/// silently invalidate the oracle.
#[derive(Debug, Clone, Copy)]
enum TraceOp {
    /// Insert a fresh record holding `val` (rids are assigned sequentially).
    Insert { val: u64 },
    /// Overwrite the record at `rid` with `val`.
    Update { rid: Rid, val: u64 },
    /// Read the record at `rid` (read-only transaction: no log flush, but
    /// misses drive SSD admissions and page temperature).
    Read { rid: Rid },
    /// Sharp checkpoint (flush everything, truncate the log, embed the SSD
    /// table when warm restart is on).
    Checkpoint,
}

/// What to explore. `ssd: None` is the noSSD baseline.
#[derive(Debug, Clone)]
pub struct ExplorerConfig {
    /// SSD design under test (admission/cleaning policy, warm restart…).
    pub ssd: Option<SsdConfig>,
    /// Trace length in operations (inserts/updates/checkpoints).
    pub ops: usize,
    /// Trace seed.
    pub seed: u64,
    /// Take a checkpoint every this many operations (0 = never).
    pub checkpoint_every: usize,
    /// Also run the torn variant of every cut (power fails *during* the
    /// write instead of just after it).
    pub torn_variants: bool,
    /// Explore every `cut_stride`-th boundary (1 = exhaustive).
    pub cut_stride: u64,
    /// Every this many cuts, additionally interrupt recovery itself with a
    /// second armed switch (0 = no double-crash schedules).
    pub double_crash_stride: u64,
}

impl ExplorerConfig {
    /// Defaults sized for an exhaustive sweep that stays test-suite cheap.
    pub fn new(ssd: Option<SsdConfig>) -> Self {
        ExplorerConfig {
            ssd,
            ops: 32,
            seed: 0x5EED_CA55,
            checkpoint_every: 10,
            torn_variants: true,
            cut_stride: 1,
            double_crash_stride: 8,
        }
    }
}

/// What an exploration sweep covered and concluded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplorerOutcome {
    /// Durable-write boundaries the recording run observed.
    pub boundaries: u64,
    /// The same, broken down by kind.
    pub counts: BoundaryCounts,
    /// Crash schedules replayed, recovered, and verified.
    pub schedules_run: u64,
    /// How many of those tore the cut write.
    pub torn_schedules: u64,
    /// Schedules that also armed a switch over recovery's writes.
    pub double_crash_armed: u64,
    /// Of those, schedules where recovery was actually interrupted and had
    /// to re-enter (the armed boundary was reached before redo finished).
    pub double_crash_interrupted: u64,
    /// Most recovery attempts any single schedule needed to converge.
    pub max_recovery_attempts: u32,
    /// Schedules whose recovery reported lost committed data. Pure power
    /// failures never corrupt the log mid-stream, so this must stay 0.
    pub damaged_reports: u64,
    /// Order-sensitive fold of every schedule's recovered values and
    /// recovery report — bit-identical across reruns of the same config.
    pub fingerprint: u64,
}

/// Run the full sweep. Panics with a schedule-identifying message on any
/// verification failure; returns the coverage summary otherwise.
pub fn explore(cfg: &ExplorerConfig) -> ExplorerOutcome {
    let trace = gen_trace(cfg);
    let rec = record_run(cfg, &trace);
    assert!(
        rec.boundaries > 0,
        "trace produced no durable writes — nothing to explore"
    );
    let mut out = ExplorerOutcome {
        boundaries: rec.boundaries,
        counts: rec.counts,
        ..ExplorerOutcome::default()
    };
    let mut fp: u64 = 0;
    let stride = cfg.cut_stride.max(1);
    let mut cut = 0;
    while cut < rec.boundaries {
        for torn in [false, true] {
            if torn && !cfg.torn_variants {
                continue;
            }
            let double = cfg.double_crash_stride != 0 && cut % cfg.double_crash_stride == 0;
            let (db, h, report, attempts, interrupted) =
                run_schedule(cfg, &trace, cut, torn, double);
            out.schedules_run += 1;
            out.torn_schedules += u64::from(torn);
            out.double_crash_armed += u64::from(double);
            out.double_crash_interrupted += u64::from(interrupted);
            out.max_recovery_attempts = out.max_recovery_attempts.max(attempts);
            out.damaged_reports += u64::from(report.is_damaged());
            let digest = verify(&db, h, &trace, &rec.commit_seq, cut, torn);
            fp = fold(fp, schedule_digest(cut, torn, attempts, &report, digest));
        }
        cut += stride;
    }
    out.fingerprint = fp;
    out
}

// ---------------------------------------------------------------------
// Trace generation and execution
// ---------------------------------------------------------------------

fn build_db(cfg: &ExplorerConfig) -> Database {
    let mut dbc = DbConfig::small_for_tests();
    dbc.db_pages = 512;
    // A small pool forces evictions and re-read misses, so the boundary
    // stream mixes page writes and SSD admissions between the commit
    // flushes instead of being all-log.
    dbc.mem_frames = 6;
    dbc.ssd = cfg.ssd.clone();
    Database::open(dbc)
}

fn record_bytes(val: u64) -> [u8; RECORD_SIZE] {
    let mut rec = [0u8; RECORD_SIZE];
    rec[..8].copy_from_slice(&val.to_le_bytes());
    rec
}

fn gen_trace(cfg: &ExplorerConfig) -> Vec<TraceOp> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut ops = Vec::with_capacity(cfg.ops);
    let mut inserted: u64 = 0;
    for i in 0..cfg.ops {
        if cfg.checkpoint_every != 0 && i > 0 && i % cfg.checkpoint_every == 0 {
            ops.push(TraceOp::Checkpoint);
            continue;
        }
        // Values are unique per operation so an update is always a real
        // page diff (and a wrong survivor is attributable to its writer).
        let val = ((i as u64 + 1) << 20) | rng.gen_range(0u64..1 << 20);
        // Uniform revisits: reuse distance grows with the trace, so pages
        // fall out of the pool and come back as read misses — the events
        // that drive SSD admissions (and TAC's temperature bookkeeping).
        let r: f64 = rng.gen();
        if inserted == 0 || r < 0.45 {
            ops.push(TraceOp::Insert { val });
            inserted += 1;
        } else if r < 0.70 {
            ops.push(TraceOp::Update {
                rid: rng.gen_range(0..inserted),
                val,
            });
        } else {
            ops.push(TraceOp::Read {
                rid: rng.gen_range(0..inserted),
            });
        }
    }
    ops
}

/// Execute one trace op. Returns whether it committed — always true in the
/// fault-free recording run; after the switch fires, commits abort and
/// checkpoints degrade, both of which the oracle already accounts for.
fn apply(db: &Database, clk: &mut Clk, h: HeapId, op: &TraceOp) -> bool {
    match *op {
        TraceOp::Insert { val } => {
            let mut txn = db.begin(clk);
            let _ = txn.heap_insert(h, &record_bytes(val));
            txn.commit().is_committed()
        }
        TraceOp::Update { rid, val } => {
            let mut txn = db.begin(clk);
            txn.heap_update(h, rid, &record_bytes(val));
            txn.commit().is_committed()
        }
        TraceOp::Read { rid } => {
            let mut txn = db.begin(clk);
            let _ = txn.heap_get(h, rid);
            txn.commit().is_committed()
        }
        TraceOp::Checkpoint => {
            db.checkpoint(clk);
            true
        }
    }
}

// ---------------------------------------------------------------------
// Recording run: number the boundaries, attribute the commits
// ---------------------------------------------------------------------

struct Recording {
    boundaries: u64,
    counts: BoundaryCounts,
    /// Per op: the boundary sequence number of its commit log-flush
    /// (`None` for checkpoints, which carry no user data).
    commit_seq: Vec<Option<u64>>,
}

fn record_run(cfg: &ExplorerConfig, trace: &[TraceOp]) -> Recording {
    let db = build_db(cfg);
    let sw = Arc::new(CrashSwitch::recorder());
    db.io().set_crash_switch(Some(Arc::clone(&sw)));
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "t", RECORD_SIZE, HEAP_PAGES);
    let mut commit_seq = Vec::with_capacity(trace.len());
    for op in trace {
        let committed = apply(&db, &mut clk, h, op);
        assert!(committed, "recording run is fault-free");
        commit_seq.push(match op {
            // Reads and checkpoints carry no user data: a read-only commit
            // never flushes, so the most recent log-flush boundary would be
            // some *earlier* op's — it must not be attributed here.
            TraceOp::Checkpoint | TraceOp::Read { .. } => None,
            // Each mutating commit flushes exactly once, and nothing else
            // flushes between ops, so the most recent log-flush boundary is
            // this op's commit flush.
            _ => Some(sw.last_log_flush_seq().expect("commit flushed the log")),
        });
    }
    Recording {
        boundaries: sw.boundaries(),
        counts: sw.counts(),
        commit_seq,
    }
}

// ---------------------------------------------------------------------
// One schedule: replay to the cut, reboot, recover (possibly repeatedly)
// ---------------------------------------------------------------------

fn run_schedule(
    cfg: &ExplorerConfig,
    trace: &[TraceOp],
    cut: u64,
    torn: bool,
    double: bool,
) -> (Database, HeapId, RecoveryReport, u32, bool) {
    let db = build_db(cfg);
    let sw = Arc::new(CrashSwitch::armed(cut, torn));
    db.io().set_crash_switch(Some(Arc::clone(&sw)));
    let mut clk = Clk::new();
    let h = db.create_heap(&mut clk, "t", RECORD_SIZE, HEAP_PAGES);
    for op in trace {
        apply(&db, &mut clk, h, op);
        if sw.fired() {
            break;
        }
    }
    assert!(
        sw.fired(),
        "replay diverged: cut {cut} inside {} recorded boundaries never fired",
        trace.len()
    );
    let mut image = db.crash();
    if double {
        // The next incarnation's power is also doomed: a second switch armed
        // over recovery's own durable writes. Vary the inner cut with the
        // outer one so different depths of the redo pass get interrupted.
        let inner = 1 + cut % 4;
        image
            .io()
            .set_crash_switch(Some(Arc::new(CrashSwitch::armed(inner, false))));
    } else {
        // Power restored for the reboot.
        image.io().set_crash_switch(None);
    }
    let mut attempts = 0u32;
    let mut interrupted = false;
    loop {
        attempts += 1;
        assert!(
            attempts <= 8,
            "recovery did not converge for cut {cut} (torn={torn})"
        );
        match Database::try_recover(image) {
            Ok((db, report)) => {
                if db.io().power_lost() {
                    // The inner switch fired on recovery's very last write:
                    // recovery "completed" into a dead machine. Reboot once
                    // more with power restored.
                    interrupted = true;
                    db.io().set_crash_switch(None);
                    image = db.crash();
                    continue;
                }
                db.io().set_crash_switch(None);
                return (db, h, report, attempts, interrupted);
            }
            Err(e) => {
                // Mid-recovery power loss: the image comes back unchanged
                // (redo is idempotent). Reboot with power restored and
                // re-enter recovery.
                interrupted = true;
                image = e.image;
                image.io().set_crash_switch(None);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Oracle and verification
// ---------------------------------------------------------------------

fn durable(f: Option<u64>, cut: u64, torn: bool) -> bool {
    match f {
        // The cut boundary itself persists unless torn; a torn log flush
        // loses its final byte, so its commit record never decodes.
        Some(f) if torn => f < cut,
        Some(f) => f <= cut,
        None => false,
    }
}

/// Fold the durable prefix of the trace into the expected heap image:
/// one slot per insert (in rid order), `None` where the insert was not
/// durable — those rids must read back as absent.
fn expected_state(
    trace: &[TraceOp],
    commit_seq: &[Option<u64>],
    cut: u64,
    torn: bool,
) -> Vec<Option<u64>> {
    let mut vals: Vec<Option<u64>> = Vec::new();
    for (i, op) in trace.iter().enumerate() {
        let d = durable(commit_seq[i], cut, torn);
        match *op {
            TraceOp::Insert { val } => vals.push(d.then_some(val)),
            TraceOp::Update { rid, val } => {
                if d {
                    vals[rid as usize] = Some(val);
                }
            }
            TraceOp::Read { .. } | TraceOp::Checkpoint => {}
        }
    }
    vals
}

/// Check every rid the trace ever inserted against the oracle; returns a
/// digest of the recovered values for the rerun fingerprint.
fn verify(
    db: &Database,
    h: HeapId,
    trace: &[TraceOp],
    commit_seq: &[Option<u64>],
    cut: u64,
    torn: bool,
) -> u64 {
    let vals = expected_state(trace, commit_seq, cut, torn);
    let mut bytes = Vec::with_capacity(vals.len() * 9);
    let mut clk = Clk::new();
    let mut txn = db.begin(&mut clk);
    for (rid, want) in vals.iter().enumerate() {
        let got = txn
            .heap_get(h, rid as Rid)
            .map(|rec| u64::from_le_bytes(rec[..8].try_into().unwrap()));
        assert_eq!(
            got, *want,
            "schedule cut={cut} torn={torn}: rid {rid} recovered wrong \
             (None = record absent)"
        );
        bytes.push(got.is_some() as u8);
        bytes.extend_from_slice(&got.unwrap_or(0).to_le_bytes());
    }
    assert!(
        txn.poisoned().is_none(),
        "schedule cut={cut} torn={torn}: verification reads hit I/O errors"
    );
    txn.commit();
    fault::checksum(&bytes)
}

/// One schedule's contribution to the sweep fingerprint: identity, the
/// recovered values, and the load-bearing report numbers.
fn schedule_digest(
    cut: u64,
    torn: bool,
    attempts: u32,
    report: &RecoveryReport,
    values: u64,
) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&cut.to_le_bytes());
    bytes.push(torn as u8);
    bytes.extend_from_slice(&attempts.to_le_bytes());
    bytes.extend_from_slice(&(report.stats.records_scanned as u64).to_le_bytes());
    bytes.extend_from_slice(&(report.stats.txns_redone as u64).to_le_bytes());
    bytes.extend_from_slice(&(report.stats.writes_applied as u64).to_le_bytes());
    bytes.extend_from_slice(&(report.log.valid_len as u64).to_le_bytes());
    bytes.push(report.log.used_checkpoint as u8);
    if let Some(w) = &report.warm {
        bytes.extend_from_slice(&w.imported.to_le_bytes());
        bytes.extend_from_slice(&w.rejected_stale.to_le_bytes());
        bytes.extend_from_slice(&w.rejected_checksum.to_le_bytes());
    }
    bytes.extend_from_slice(&values.to_le_bytes());
    fault::checksum(&bytes)
}

fn fold(acc: u64, digest: u64) -> u64 {
    // Order-sensitive combination (schedules are enumerated
    // deterministically, so order is part of the contract).
    acc.rotate_left(7) ^ digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_core::SsdDesign;

    fn tiny(ssd: Option<SsdConfig>) -> ExplorerConfig {
        let mut cfg = ExplorerConfig::new(ssd);
        cfg.ops = 10;
        cfg.checkpoint_every = 4;
        cfg.cut_stride = 7;
        cfg.double_crash_stride = 14;
        cfg
    }

    #[test]
    fn oracle_is_a_prefix_fold() {
        let trace = [
            TraceOp::Insert { val: 10 },
            TraceOp::Insert { val: 20 },
            TraceOp::Update { rid: 0, val: 30 },
            TraceOp::Checkpoint,
            TraceOp::Insert { val: 40 },
        ];
        let seq = [Some(2), Some(5), Some(9), None, Some(12)];
        // Cut after the update's flush but before the last insert's.
        let v = expected_state(&trace, &seq, 9, false);
        assert_eq!(v, vec![Some(30), Some(20), None]);
        // Torn at the update's own flush: the update is not durable.
        let v = expected_state(&trace, &seq, 9, true);
        assert_eq!(v, vec![Some(10), Some(20), None]);
        // Before anything.
        let v = expected_state(&trace, &seq, 1, false);
        assert_eq!(v, vec![None, None, None]);
    }

    #[test]
    fn tiny_sweep_verifies_nossd() {
        let out = explore(&tiny(None));
        assert!(out.boundaries > 0);
        assert!(out.schedules_run > 0);
        assert_eq!(out.damaged_reports, 0);
        assert!(out.counts.log_flushes > 0);
    }

    #[test]
    fn tiny_sweep_is_deterministic() {
        let cfg = tiny(Some(SsdConfig::new(SsdDesign::LazyCleaning, 32)));
        let a = explore(&cfg);
        let b = explore(&cfg);
        assert_eq!(a, b, "same config must explore bit-identically");
    }
}
