//! Bulk loading: the backup-restore path.
//!
//! The paper's experiments start from a restored database backup, not from
//! transactional inserts. These loaders build heap pages and B+-trees
//! directly in the persistent disk image, bypassing the buffer pools, the
//! WAL and the virtual clock entirely — exactly what restoring a backup
//! looks like to the storage stack. Benchmarks call them during setup and
//! then run measured workloads against cold caches.

use std::sync::atomic::Ordering;

use crate::btree::{node_capacity, IndexMeta};
use crate::db::{Database, HeapId, IndexId};
use crate::heap::HeapMeta;

/// Load `records` into the heap, packing pages fully in RID order.
/// Returns the number of records loaded. Panics if the heap overflows.
pub fn bulk_load_heap<I>(db: &Database, id: HeapId, records: I) -> u64
where
    I: IntoIterator,
    I::Item: AsRef<[u8]>,
{
    let meta: HeapMeta = db.heap_meta(id);
    let ps = db.page_size();
    let store = db.io().disk_store();
    let mut page = vec![0u8; ps];
    let mut page_index: u64 = 0;
    let mut slot = 0usize;
    let mut count: u64 = 0;

    let flush = |page: &mut Vec<u8>, page_index: u64| {
        store.write(meta.first.offset(page_index), page);
        page.fill(0);
    };

    for rec in records {
        let rec = rec.as_ref();
        assert!(rec.len() <= meta.record_size, "record too large");
        if slot == meta.slots_per_page {
            flush(&mut page, page_index);
            page_index += 1;
            slot = 0;
            assert!(page_index < meta.pages, "heap overflow during bulk load");
        }
        page[slot] = 1;
        let off = meta.slots_per_page + slot * meta.record_size;
        page[off..off + rec.len()].copy_from_slice(rec);
        slot += 1;
        count += 1;
    }
    if slot > 0 {
        flush(&mut page, page_index);
    }
    meta.next.store(count, Ordering::Relaxed);
    // The meta held by the catalog shares the cursor Arc, so the catalog
    // copy sees the new high-water mark too.
    count
}

/// Build a B+-tree bottom-up from key-sorted `(key, value)` pairs.
///
/// Leaves are filled to `fill` (e.g. 0.7 leaves room for inserts without
/// immediate splits), chained, and parented level by level; the top node is
/// written into the index's fixed root page. Panics if the pairs are not
/// strictly ascending or the extent overflows.
pub fn bulk_load_index<I>(db: &Database, id: IndexId, pairs: I, fill: f64)
where
    I: IntoIterator<Item = (u64, u64)>,
{
    assert!((0.1..=1.0).contains(&fill));
    let meta: IndexMeta = db.index_meta(id);
    let ps = db.page_size();
    let cap = node_capacity(ps);
    let per_leaf = ((cap as f64 * fill) as usize).max(1);
    let store = db.io().disk_store();

    // Gather leaves. (Materializing level-by-level keeps the code simple;
    // index sizes here are bench-setup scale.)
    let mut pairs_iter = pairs.into_iter();
    let mut leaves: Vec<(u64, Vec<(u64, u64)>)> = Vec::new(); // (first_key, entries)
    let mut last_key: Option<u64> = None;
    loop {
        let chunk: Vec<(u64, u64)> = pairs_iter.by_ref().take(per_leaf).collect();
        if chunk.is_empty() {
            break;
        }
        for &(k, _) in &chunk {
            assert!(last_key.map(|lk| k > lk).unwrap_or(true), "keys not sorted");
            last_key = Some(k);
        }
        leaves.push((chunk[0].0, chunk));
    }
    if leaves.is_empty() {
        return; // empty index: zeroed root is already an empty leaf
    }

    let alloc = || {
        let i = meta.cursor.fetch_add(1, Ordering::Relaxed);
        assert!(i < meta.extent_pages, "index extent overflow in bulk load");
        meta.extent_first.offset(i)
    };
    let write_leaf = |pid: turbopool_iosim::PageId, entries: &[(u64, u64)], next: u64| {
        let mut b = vec![0u8; ps];
        b[0] = 0; // leaf
        b[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        b[4..12].copy_from_slice(&next.to_le_bytes());
        for (i, &(k, v)) in entries.iter().enumerate() {
            let off = 16 + i * 16;
            b[off..off + 8].copy_from_slice(&k.to_le_bytes());
            b[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        store.write(pid, &b);
    };
    let write_internal = |pid: turbopool_iosim::PageId, leftmost: u64, entries: &[(u64, u64)]| {
        let mut b = vec![0u8; ps];
        b[0] = 1; // internal
        b[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        b[4..12].copy_from_slice(&leftmost.to_le_bytes());
        for (i, &(k, c)) in entries.iter().enumerate() {
            let off = 16 + i * 16;
            b[off..off + 8].copy_from_slice(&k.to_le_bytes());
            b[off + 8..off + 16].copy_from_slice(&c.to_le_bytes());
        }
        store.write(pid, &b);
    };

    if leaves.len() == 1 {
        // Single leaf: it *is* the root.
        write_leaf(meta.root, &leaves[0].1, 0);
        return;
    }

    // Write the leaf level (allocated from the extent), chaining next-leaf.
    let mut level: Vec<(u64, u64)> = Vec::with_capacity(leaves.len()); // (first_key, pid)
    let pids: Vec<turbopool_iosim::PageId> = leaves.iter().map(|_| alloc()).collect();
    for (i, (first_key, entries)) in leaves.iter().enumerate() {
        let next = if i + 1 < pids.len() {
            pids[i + 1].0 + 1
        } else {
            0
        };
        write_leaf(pids[i], entries, next);
        level.push((*first_key, pids[i].0));
    }

    // Build internal levels until one node remains; that node is the root.
    let per_node = ((cap as f64 * fill) as usize).max(2);
    loop {
        let mut next_level: Vec<(u64, u64)> = Vec::new();
        let is_root_level = level.len() <= per_node;
        for group in level.chunks(per_node) {
            let leftmost = group[0].1;
            let entries: Vec<(u64, u64)> = group[1..].to_vec();
            if is_root_level {
                write_internal(meta.root, leftmost, &entries);
                return;
            }
            let pid = alloc();
            write_internal(pid, leftmost, &entries);
            next_level.push((group[0].0, pid.0));
        }
        level = next_level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DbConfig;
    use turbopool_iosim::Clk;

    #[test]
    fn bulk_heap_load_round_trips() {
        let db = Database::open(DbConfig::small_for_tests());
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 16, 32);
        let n = bulk_load_heap(&db, h, (0..100u64).map(|i| i.to_le_bytes().to_vec()));
        assert_eq!(n, 100);
        let mut txn = db.begin(&mut clk);
        for rid in [0u64, 50, 99] {
            let rec = txn.heap_get(h, rid).unwrap();
            assert_eq!(u64::from_le_bytes(rec[..8].try_into().unwrap()), rid);
        }
        assert!(txn.heap_get(h, 100).is_none());
        txn.commit();
        // Scans see everything too.
        let mut count = 0;
        db.scan_heap(&mut clk, h, |_, _| count += 1).unwrap();
        assert_eq!(count, 100);
    }

    #[test]
    fn bulk_index_single_leaf() {
        let db = Database::open(DbConfig::small_for_tests());
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 16);
        bulk_load_index(&db, idx, (0..5u64).map(|k| (k * 2, k)), 0.7);
        let mut txn = db.begin(&mut clk);
        assert_eq!(txn.index_get(idx, 4), Some(2));
        assert_eq!(txn.index_get(idx, 5), None);
        txn.commit();
    }

    #[test]
    fn bulk_index_multi_level_lookup_and_range() {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 2048;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 1200);
        let n = 5000u64;
        bulk_load_index(&db, idx, (0..n).map(|k| (k, k + 7)), 0.7);
        let mut txn = db.begin(&mut clk);
        for k in (0..n).step_by(97) {
            assert_eq!(txn.index_get(idx, k), Some(k + 7), "key {k}");
        }
        let r = txn.index_range(idx, 1000, 1010, 100);
        assert_eq!(r.len(), 11);
        assert_eq!(r[0], (1000, 1007));
        assert_eq!(r[10], (1010, 1017));
        txn.commit();
    }

    #[test]
    fn bulk_loaded_index_accepts_inserts_and_splits() {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 2048;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 1500);
        bulk_load_index(&db, idx, (0..3000u64).map(|k| (k * 2, k)), 0.7);
        let mut txn = db.begin(&mut clk);
        // Odd keys force inserts into packed leaves, causing splits.
        for k in (1..2000u64).step_by(2) {
            txn.index_insert(idx, k, k);
        }
        for k in (1..2000u64).step_by(2) {
            assert_eq!(txn.index_get(idx, k), Some(k));
        }
        assert_eq!(txn.index_get(idx, 2500 * 2), Some(2500));
        txn.commit();
    }

    #[test]
    #[should_panic(expected = "keys not sorted")]
    fn bulk_index_rejects_unsorted() {
        let db = Database::open(DbConfig::small_for_tests());
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 16);
        bulk_load_index(&db, idx, vec![(5u64, 0u64), (3, 0)], 0.7);
    }

    #[test]
    fn bulk_load_costs_no_device_time() {
        let db = Database::open(DbConfig::small_for_tests());
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 16, 32);
        bulk_load_heap(&db, h, (0..50u64).map(|i| i.to_le_bytes().to_vec()));
        assert_eq!(db.io().disk_stats().write_ops, 0);
        assert_eq!(clk.now, 0);
    }
}
