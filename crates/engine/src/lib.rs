//! A mini page-based storage engine.
//!
//! This crate is the substrate that stands in for the paper's host DBMS
//! (SQL Server 2008 R2): heap files, B+-tree indexes, transactions with a
//! redo-only write-ahead log, sharp checkpoints, crash recovery, and table
//! scans driven by the buffer pool's read-ahead — everything the SSD
//! buffer-pool designs need to exercise their interesting paths.
//!
//! Concurrency model: transaction bodies execute as atomic steps of the
//! discrete-event driver (one logical client at a time), so transactions
//! are trivially serializable and no lock manager is modeled — the paper's
//! subject is buffer management, not concurrency control. A transaction
//! buffers its writes privately (read-your-writes via an overlay) and
//! publishes them at commit after the log flush, which makes every dirty
//! page committed-only and recovery pure redo.

#![forbid(unsafe_code)]

pub mod btree;
pub mod config;
pub mod db;
pub mod explorer;
pub mod heap;
pub mod loader;
pub mod txn;

pub use config::DbConfig;
pub use db::{CrashImage, Database, HeapId, IndexId, RecoveryError, RecoveryReport};
pub use explorer::{explore, ExplorerConfig, ExplorerOutcome};
pub use loader::{bulk_load_heap, bulk_load_index};
pub use txn::{CommitOutcome, Txn};
