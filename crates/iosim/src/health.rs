//! Per-device fail-slow detection.
//!
//! A [`FailSlowDetector`] watches one simulated device and decides, in
//! virtual time, whether the device is *gray-failing*: still answering
//! every request, just pathologically slowly (an SSD in a GC stall, a
//! disk group behind a saturated queue). Hard failures raise
//! [`IoError`](crate::fault::IoError)s and are handled by the retry and
//! quarantine machinery; latency never does — this detector closes that
//! gap so upper layers can hedge reads to the replica tier.
//!
//! The detector compares each observed per-page service latency against
//! a baseline calibrated from the device's
//! [`DeviceProfile`](crate::device::DeviceProfile), cross-checked with
//! the instantaneous queue depth, with trip/clear hysteresis so the
//! degraded flag does not flap on single outliers. Every input is
//! virtual time or integer state updated in submission order, so two
//! runs that issue the same requests make identical transitions — the
//! parallel driver's bit-identical replay guarantee holds by
//! construction.
//!
//! State machine (two states, hysteresis on both edges):
//!
//! ```text
//!            ≥ trip_after consecutive slow samples
//!   Healthy ─────────────────────────────────────▶ Degraded
//!      ▲                                              │
//!      └──────────────────────────────────────────────┘
//!            ≥ clear_after consecutive fast samples
//! ```
//!
//! A sample is *slow* when its observed latency exceeds
//! `baseline × slow_factor` or the queue depth at submission exceeds
//! `depth_limit`. Classifying each raw sample (rather than a smoothed
//! average) means recovery is visible the moment the device serves one
//! request at healthy speed — crucial when the degraded device only
//! receives sparse canary probes, whose streak must not be dragged out
//! by the memory of the slow period. The hysteresis streaks provide all
//! the smoothing the flag needs; a latency EWMA is still maintained as
//! an observability statistic (clamped to [`OUTLIER_CLAMP`] × the slow
//! threshold so one enormous outlier cannot distort it).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Observations are clamped to this multiple of the slow threshold
/// (`baseline × slow_factor`) before entering the reported EWMA, so a
/// single enormous outlier cannot distort the smoothed statistic.
pub const OUTLIER_CLAMP: u64 = 4;

use crate::clock::Time;
use crate::device::DeviceProfile;
use crate::sync::Mutex;

/// Tuning knobs for one device's fail-slow detector. The defaults favor
/// fast detection of 5–50× brownouts while ignoring ordinary queueing
/// noise; all comparisons inside the detector come from these named
/// fields, never from inline literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailSlowConfig {
    /// Divisor `d` of the reported latency EWMA (an observability
    /// statistic; trip/clear decisions use raw samples): each sample
    /// moves the average by `1/d` of the distance to the observation.
    /// Default 8.
    pub ewma_div: u64,
    /// Degraded threshold as a multiple of the calibrated baseline
    /// latency. Default 4×.
    pub slow_factor: u64,
    /// A sample is also slow when the device's queue depth at submission
    /// exceeds this. Default 256 outstanding requests — well above the
    /// paper's μ = 100 throttle threshold, so a healthy device saturated
    /// by ordinary load (the normal state during aggressive filling)
    /// never reads as failing; only the runaway queues a browned-out
    /// device accumulates do.
    pub depth_limit: usize,
    /// Consecutive slow samples required to trip Healthy → Degraded.
    /// Default 4.
    pub trip_after: u32,
    /// Consecutive fast samples required to clear Degraded → Healthy.
    /// Default 8 (clearing is deliberately slower than tripping).
    pub clear_after: u32,
}

impl Default for FailSlowConfig {
    fn default() -> Self {
        FailSlowConfig {
            ewma_div: 8,
            slow_factor: 4,
            depth_limit: 256,
            trip_after: 4,
            clear_after: 8,
        }
    }
}

/// Plain snapshot of a detector, cheap to compare in determinism
/// fingerprints.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FailSlowStats {
    /// Is the device currently flagged degraded?
    pub degraded: bool,
    /// Healthy↔Degraded edges taken (both directions).
    pub transitions: u64,
    /// Latency samples observed.
    pub samples: u64,
    /// Samples classified slow (latency or queue-depth breach).
    pub slow_samples: u64,
    /// Current latency EWMA in virtual nanoseconds (smoothed
    /// observability statistic; not used for trip/clear decisions).
    pub ewma_ns: Time,
}

#[derive(Debug)]
struct DetectorState {
    cfg: FailSlowConfig,
    ewma_ns: Time,
    slow_streak: u32,
    fast_streak: u32,
    degraded: bool,
}

impl DetectorState {
    fn fresh(cfg: FailSlowConfig) -> Self {
        DetectorState {
            cfg,
            ewma_ns: 0,
            slow_streak: 0,
            fast_streak: 0,
            degraded: false,
        }
    }
}

/// EWMA + queue-depth fail-slow detector for one device (see module
/// docs for the state machine).
#[derive(Debug)]
pub struct FailSlowDetector {
    /// Calibrated healthy-latency baseline: the device profile's average
    /// random service time.
    baseline_ns: Time,
    state: Mutex<DetectorState>,
    transitions: AtomicU64,
    samples: AtomicU64,
    slow_samples: AtomicU64,
}

impl FailSlowDetector {
    /// Build a detector calibrated to `profile`: the healthy baseline is
    /// the mean of the random read and write service times — the same
    /// quantity [`SimDevice::overloaded`](crate::device::SimDevice)
    /// throttles against.
    pub fn from_profile(profile: &DeviceProfile, cfg: FailSlowConfig) -> Self {
        let baseline_ns = ((profile.rand_read_ns + profile.rand_write_ns) / 2).max(1);
        FailSlowDetector {
            baseline_ns,
            state: Mutex::new(DetectorState::fresh(cfg)),
            transitions: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            slow_samples: AtomicU64::new(0),
        }
    }

    /// Replace the tuning knobs and forget learned state, so the new
    /// thresholds start from a clean slate. Cumulative counters survive:
    /// they are the run's history.
    pub fn configure(&self, cfg: FailSlowConfig) {
        *self.state.lock() = DetectorState::fresh(cfg);
    }

    /// The calibrated healthy baseline in virtual nanoseconds.
    pub fn baseline_ns(&self) -> Time {
        self.baseline_ns
    }

    /// Feed one completed request: its observed per-page *service*
    /// latency (queue wait excluded — wait grows with healthy load;
    /// service only grows when the device itself degrades) and the
    /// device queue depth at submission. Returns the degraded flag
    /// after the sample.
    pub fn observe(&self, latency_ns: Time, queue_depth: usize) -> bool {
        self.samples.fetch_add(1, Relaxed);
        let mut st = self.state.lock();
        let threshold = self.baseline_ns.saturating_mul(st.cfg.slow_factor);
        // Integer EWMA: old + (obs - old)/d, exact and replayable. The
        // average is seeded from the calibrated baseline so the first
        // sample carries no more weight than any other. Reported only;
        // the streaks below judge each raw sample so recovery shows the
        // moment one request completes at healthy speed.
        let obs = latency_ns.min(threshold.saturating_mul(OUTLIER_CLAMP));
        let old = if st.ewma_ns == 0 {
            self.baseline_ns
        } else {
            st.ewma_ns
        };
        let d = st.cfg.ewma_div.max(1);
        st.ewma_ns = if obs >= old {
            old + (obs - old) / d
        } else {
            old - (old - obs) / d
        };
        let slow = latency_ns > threshold || queue_depth > st.cfg.depth_limit;
        if slow {
            self.slow_samples.fetch_add(1, Relaxed);
            st.slow_streak += 1;
            st.fast_streak = 0;
            if !st.degraded && st.slow_streak >= st.cfg.trip_after {
                st.degraded = true;
                self.transitions.fetch_add(1, Relaxed);
            }
        } else {
            st.fast_streak += 1;
            st.slow_streak = 0;
            if st.degraded && st.fast_streak >= st.cfg.clear_after {
                st.degraded = false;
                self.transitions.fetch_add(1, Relaxed);
            }
        }
        st.degraded
    }

    /// Is the device currently flagged degraded?
    pub fn is_degraded(&self) -> bool {
        self.state.lock().degraded
    }

    /// Is the device degraded but mid-way through a fast-sample streak —
    /// i.e. looking like it has recovered, pending confirmation? Hedging
    /// layers use this to burst canary probes: once one probe comes back
    /// fast, probing every request completes (or refutes) the clear
    /// streak in `clear_after` requests instead of `clear_after ×
    /// probe_interval`.
    pub fn clearing(&self) -> bool {
        let st = self.state.lock();
        st.degraded && st.fast_streak > 0
    }

    /// Reset learned state (restart modeling: devices come back idle).
    /// Cumulative counters survive — they are part of the run's history.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        let cfg = st.cfg;
        *st = DetectorState::fresh(cfg);
    }

    /// Snapshot for metrics and determinism fingerprints.
    pub fn stats(&self) -> FailSlowStats {
        let st = self.state.lock();
        FailSlowStats {
            degraded: st.degraded,
            transitions: self.transitions.load(Relaxed),
            samples: self.samples.load(Relaxed),
            slow_samples: self.slow_samples.load(Relaxed),
            ewma_ns: st.ewma_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(cfg: FailSlowConfig) -> FailSlowDetector {
        // Baseline = (1000 + 3000)/2 = 2000 ns.
        let profile = DeviceProfile {
            rand_read_ns: 1000,
            seq_read_ns: 500,
            rand_write_ns: 3000,
            seq_write_ns: 800,
        };
        FailSlowDetector::from_profile(&profile, cfg)
    }

    #[test]
    fn baseline_is_mean_random_service() {
        let d = detector(FailSlowConfig::default());
        assert_eq!(d.baseline_ns(), 2000);
    }

    #[test]
    fn healthy_latencies_never_trip() {
        let d = detector(FailSlowConfig::default());
        for _ in 0..10_000 {
            assert!(!d.observe(2000, 1));
        }
        let s = d.stats();
        assert!(!s.degraded);
        assert_eq!(s.transitions, 0);
        assert_eq!(s.slow_samples, 0);
        assert_eq!(s.ewma_ns, 2000);
    }

    #[test]
    fn sustained_slowness_trips_after_hysteresis() {
        let cfg = FailSlowConfig::default();
        let d = detector(cfg);
        // 20× baseline: EWMA crosses 4× baseline quickly, then the
        // trip_after streak must still elapse.
        let mut tripped_at = None;
        for i in 0..100u32 {
            if d.observe(40_000, 1) {
                tripped_at = Some(i);
                break;
            }
        }
        let at = tripped_at.expect("sustained 20x slowness must trip");
        assert!(
            at + 1 >= cfg.trip_after,
            "tripped before the hysteresis streak: sample {at}"
        );
        assert_eq!(d.stats().transitions, 1);
    }

    #[test]
    fn single_outlier_does_not_trip() {
        let d = detector(FailSlowConfig::default());
        assert!(!d.observe(1_000_000, 1), "one spike is not a gray failure");
        for _ in 0..100 {
            assert!(!d.observe(2000, 1));
        }
        assert_eq!(d.stats().transitions, 0);
    }

    #[test]
    fn recovery_clears_after_longer_streak() {
        let cfg = FailSlowConfig::default();
        let d = detector(cfg);
        while !d.observe(40_000, 1) {}
        assert!(d.is_degraded());
        // Fast samples: EWMA decays below threshold, then clear_after
        // consecutive healthy samples flip the flag back.
        let mut cleared_at = None;
        for i in 0..1000u32 {
            if !d.observe(1000, 1) {
                cleared_at = Some(i);
                break;
            }
        }
        let at = cleared_at.expect("recovery must clear the flag");
        assert!(
            at + 1 >= cfg.clear_after,
            "cleared before the hysteresis streak: sample {at}"
        );
        assert_eq!(d.stats().transitions, 2);
        assert!(!d.is_degraded());
    }

    #[test]
    fn deep_queue_alone_is_a_slow_signal() {
        let cfg = FailSlowConfig::default();
        let d = detector(cfg);
        for _ in 0..cfg.trip_after {
            d.observe(2000, cfg.depth_limit + 1);
        }
        assert!(d.is_degraded(), "queue-depth breach must trip");
    }

    #[test]
    fn clearing_flags_a_pending_fast_streak() {
        let d = detector(FailSlowConfig::default());
        assert!(!d.clearing(), "healthy device is not clearing");
        while !d.observe(40_000, 1) {}
        assert!(!d.clearing(), "degraded with no fast samples yet");
        d.observe(1000, 1);
        assert!(d.clearing(), "one fast sample starts the clear streak");
        d.observe(40_000, 1);
        assert!(!d.clearing(), "a slow sample refutes the recovery");
    }

    #[test]
    fn identical_sample_streams_make_identical_transitions() {
        let run = || {
            let d = detector(FailSlowConfig::default());
            let mut flags = Vec::new();
            for i in 0..500u64 {
                let lat = if (100..200).contains(&i) {
                    50_000
                } else {
                    2000
                };
                flags.push(d.observe(lat, (i % 7) as usize));
            }
            (flags, d.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_forgets_state_but_keeps_history() {
        let d = detector(FailSlowConfig::default());
        while !d.observe(40_000, 1) {}
        let before = d.stats();
        d.reset();
        let after = d.stats();
        assert!(!after.degraded);
        assert_eq!(after.ewma_ns, 0);
        assert_eq!(after.transitions, before.transitions, "history survives");
        assert_eq!(after.samples, before.samples);
    }
}
