//! Virtual time.
//!
//! All simulation time is expressed in nanoseconds of *virtual* time as a
//! plain `u64`. A [`Clk`] is owned by each logical client (a transaction
//! stream, the lazy-cleaning thread, the checkpointer, ...) and advances only
//! when that client waits for a synchronous event.

/// Virtual time in nanoseconds since the start of the run.
pub type Time = u64;

/// One microsecond of virtual time.
pub const MICROSECOND: Time = 1_000;
/// One millisecond of virtual time.
pub const MILLISECOND: Time = 1_000_000;
/// One second of virtual time.
pub const SECOND: Time = 1_000_000_000;
/// One minute of virtual time.
pub const MINUTE: Time = 60 * SECOND;
/// One hour of virtual time.
pub const HOUR: Time = 60 * MINUTE;

/// A logical client's virtual clock.
///
/// The clock is passed by `&mut` through every synchronous operation; the
/// operation advances `now` to its completion time. Clocks never move
/// backwards: waiting for an event that completed in the past is free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clk {
    /// Current virtual time of this client.
    pub now: Time,
}

impl Clk {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Clk { now: 0 }
    }

    /// A clock starting at time `now`.
    pub fn at(now: Time) -> Self {
        Clk { now }
    }

    /// Wait until `t`: advances the clock if `t` is in the future, otherwise
    /// does nothing (the event already happened).
    #[inline]
    pub fn wait_until(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Spend `d` nanoseconds of virtual time (e.g. modeled CPU work).
    #[inline]
    pub fn elapse(&mut self, d: Time) {
        self.now += d;
    }
}

impl Default for Clk {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a virtual time as fractional hours, as used by the paper's
/// time-series figures.
pub fn as_hours(t: Time) -> f64 {
    t as f64 / HOUR as f64
}

/// Render a virtual time as fractional seconds.
pub fn as_secs(t: Time) -> f64 {
    t as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_until_only_moves_forward() {
        let mut c = Clk::new();
        c.wait_until(50);
        assert_eq!(c.now, 50);
        c.wait_until(10);
        assert_eq!(c.now, 50);
        c.elapse(5);
        assert_eq!(c.now, 55);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(SECOND, 1_000 * MILLISECOND);
        assert_eq!(MILLISECOND, 1_000 * MICROSECOND);
        assert_eq!(HOUR, 3_600 * SECOND);
        assert!((as_hours(HOUR / 2) - 0.5).abs() < 1e-12);
        assert!((as_secs(2 * SECOND + 500 * MILLISECOND) - 2.5).abs() < 1e-12);
    }
}
