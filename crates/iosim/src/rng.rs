//! A small, deterministic pseudo-random number generator.
//!
//! Hermetic replacement for the subset of the `rand` crate the workload
//! generators and tests use: a seedable xoshiro256++ generator plus
//! `gen`/`gen_range`/`gen_bool`, kept API-compatible so call sites only
//! change their `use` lines. Determinism per seed is part of the contract —
//! every experiment in this repository must replay bit-identically.

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling surface (mirrors the used subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform value in `range` (half-open or inclusive integer ranges).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`, exactly.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

/// xoshiro256++ with splitmix64 seeding — fast, tiny state, and good
/// enough statistical quality for workload skew generation.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 stream expands one word into the full state and
        // guarantees a nonzero state for any seed.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u16 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer ranges drawable via [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step — bias is < 2^-32 for every bound used
/// here, far below anything the simulations can resolve).
fn below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reached: {seen:?}");
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
