//! Database pages and page identifiers.

use std::fmt;

/// Identifier of a database page within the (single) simulated database file.
///
/// Page ids are dense: the database occupies pages `0..db_pages`, striped
/// round-robin across the disks of the array, so consecutive page ids map to
/// consecutive stripes — a scan over a page range drives every spindle with
/// sequential disk-local addresses, exactly like a striped file group.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The page `n` pages after this one.
    #[inline]
    pub fn offset(self, n: u64) -> PageId {
        PageId(self.0 + n)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An owned page-sized byte buffer.
///
/// The page size is a run-time configuration (the paper uses 8 KB pages;
/// tests use much smaller pages to keep fixtures compact), so `PageBuf` wraps
/// a boxed slice rather than a fixed-size array.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    data: Box<[u8]>,
}

impl PageBuf {
    /// A zeroed page of `page_size` bytes.
    pub fn zeroed(page_size: usize) -> Self {
        PageBuf {
            data: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// A page initialized from `data`.
    pub fn from_slice(data: &[u8]) -> Self {
        PageBuf { data: data.into() }
    }

    /// Page size in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the page has zero length (never the case for real pages;
    /// present to satisfy the `len`/`is_empty` convention).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the page bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the page bytes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Overwrite the whole page from `src` (lengths must match).
    #[inline]
    pub fn copy_from(&mut self, src: &[u8]) {
        self.data.copy_from_slice(src);
    }
}

impl fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageBuf({} bytes)", self.data.len())
    }
}

impl std::ops::Deref for PageBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PageBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_arithmetic() {
        let p = PageId(10);
        assert_eq!(p.offset(5), PageId(15));
        assert_eq!(format!("{p}"), "P10");
    }

    #[test]
    fn page_buf_round_trip() {
        let mut b = PageBuf::zeroed(64);
        assert_eq!(b.len(), 64);
        assert!(!b.is_empty());
        b.as_mut_slice()[0] = 0xAB;
        let c = PageBuf::from_slice(b.as_slice());
        assert_eq!(c.as_slice()[0], 0xAB);
        assert_eq!(b, c);
    }
}
