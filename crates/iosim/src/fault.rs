//! Deterministic storage-fault injection.
//!
//! A [`FaultPlan`] is a seeded stream of misbehavior attachable to one
//! simulated device: transient read/write errors, latency spikes, torn
//! writes that persist only a prefix of the payload, silent single-bit
//! corruption, and a scheduled whole-device death at a virtual-time
//! instant. Every decision is drawn from the repository's own
//! [`SmallRng`](crate::rng::SmallRng) in call order, so a run with the
//! same seed and the same workload replays its faults bit-identically —
//! the same property the timing model already guarantees.
//!
//! The plan only *decides*; [`IoManager`](crate::io_manager::IoManager)
//! applies the decisions at its submit points. Silent corruption (torn
//! frames, bit flips) is applied to the SSD tier only, where per-frame
//! checksums catch it on the next read; the disk tier — the durability
//! story of the system — reports its failures instead of hiding them.
//!
//! Gray failures are modeled by [`BrownoutSpec`]: windows of virtual
//! time in which the device still answers every request, just 5–50×
//! slower. Window membership is a pure function of `now` and the seed —
//! no per-request randomness — so brownouts replay bit-identically
//! under the parallel driver without consuming the plan's RNG stream.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::clock::{Clk, Time, MILLISECOND};
use crate::rng::{Rng, SeedableRng, SmallRng};
use crate::sync::Mutex;

/// Which storage tier an error was reported by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDevice {
    /// The striped database disk group.
    Disk,
    /// The SSD buffer-pool file.
    Ssd,
}

/// What went wrong with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// A read failed transiently; retrying may succeed.
    TransientRead,
    /// A write failed transiently; retrying may succeed. For multi-page
    /// disk runs a prefix of the pages may have been persisted.
    TransientWrite,
    /// The device is dead (scheduled death reached); permanent.
    DeviceDead,
    /// The bytes came back but failed checksum verification — torn or
    /// corrupted frame detected on read.
    ChecksumMismatch,
}

impl IoErrorKind {
    /// True for errors a bounded retry can reasonably clear.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            IoErrorKind::TransientRead | IoErrorKind::TransientWrite
        )
    }
}

/// A storage error: which device, what kind, and when (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    pub device: FaultDevice,
    pub kind: IoErrorKind,
    /// Virtual time at which the failure was reported.
    pub at: Time,
}

impl IoError {
    pub fn new(device: FaultDevice, kind: IoErrorKind, at: Time) -> Self {
        IoError { device, kind, at }
    }

    /// True for errors a bounded retry can reasonably clear.
    pub fn is_transient(&self) -> bool {
        self.kind.is_transient()
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dev = match self.device {
            FaultDevice::Disk => "disk",
            FaultDevice::Ssd => "ssd",
        };
        let kind = match self.kind {
            IoErrorKind::TransientRead => "transient read error",
            IoErrorKind::TransientWrite => "transient write error",
            IoErrorKind::DeviceDead => "device dead",
            IoErrorKind::ChecksumMismatch => "checksum mismatch",
        };
        write!(f, "{dev}: {kind} at t={}ns", self.at)
    }
}

impl std::error::Error for IoError {}

/// A sustained-slowdown (fail-slow) schedule for one device: inside its
/// windows every request completes, but the device's service time is
/// multiplied by `factor`. This models an SSD in a garbage-collection
/// stall or a disk group behind a saturated controller — the gray
/// failures that never raise an [`IoError`].
///
/// Membership is a pure function of virtual time, so two runs that
/// submit the same requests see the same slowdowns regardless of driver
/// threading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutSpec {
    /// First instant of the brownout range (inclusive).
    pub start: Time,
    /// End of the brownout range (exclusive).
    pub end: Time,
    /// Start-to-start spacing of repeated stalls inside `[start, end)`;
    /// `0` means one continuous stall covering the whole range.
    pub period: Time,
    /// Length of each stall when `period > 0` (ignored otherwise).
    pub duration: Time,
    /// Service-time multiplier while stalled; `1` disables the spec.
    pub factor: u32,
}

impl BrownoutSpec {
    /// The service-time multiplier in effect at `now` (`1` outside every
    /// stall window).
    pub fn factor_at(&self, now: Time) -> u32 {
        if now < self.start || now >= self.end || self.factor <= 1 {
            return 1;
        }
        if self.period == 0 || (now - self.start) % self.period < self.duration {
            self.factor
        } else {
            1
        }
    }
}

/// Least brownout multiplier drawn for a seeded plan, per the issue's
/// "multiplied 5–50×" slowdown range.
pub const BROWNOUT_FACTOR_MIN: u32 = 5;
/// Greatest brownout multiplier drawn for a seeded plan.
pub const BROWNOUT_FACTOR_MAX: u32 = 50;

/// SplitMix64 finalizer: a cheap seed→factor hash that does not touch
/// the plan's request-ordered RNG stream.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tunable fault probabilities for one device. All probabilities are per
/// request; a default-constructed config injects nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the plan's private RNG stream.
    pub seed: u64,
    /// Probability a read request fails with [`IoErrorKind::TransientRead`].
    pub read_error_prob: f64,
    /// Probability a write request fails with
    /// [`IoErrorKind::TransientWrite`] before persisting anything.
    pub write_error_prob: f64,
    /// Probability a surviving request is delayed by `latency_spike_ns`.
    pub latency_spike_prob: f64,
    /// Extra service time charged to a spiked request.
    pub latency_spike_ns: Time,
    /// Probability a write is torn: only a prefix persists. On the SSD
    /// this is silent (caught later by the frame checksum); on a disk
    /// multi-page run the prefix pages persist and the request errors.
    pub torn_write_prob: f64,
    /// Probability a write silently flips one stored bit (SSD only).
    pub bitflip_prob: f64,
    /// Virtual-time instant at which the whole device dies. Every request
    /// at or after this instant fails with [`IoErrorKind::DeviceDead`].
    pub death_at: Option<Time>,
    /// Sustained-slowdown windows (fail-slow gray failure); `None`
    /// injects no brownouts.
    pub brownout: Option<BrownoutSpec>,
}

impl FaultConfig {
    /// A plan that injects nothing (useful as a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            torn_write_prob: 0.0,
            bitflip_prob: 0.0,
            death_at: None,
            brownout: None,
        }
    }

    /// Transient read+write errors at probability `p`.
    pub fn transient(seed: u64, p: f64) -> Self {
        let mut c = Self::quiet(seed);
        c.read_error_prob = p;
        c.write_error_prob = p;
        c
    }

    /// Whole-device death at virtual time `t`.
    pub fn death(seed: u64, t: Time) -> Self {
        let mut c = Self::quiet(seed);
        c.death_at = Some(t);
        c
    }

    /// One continuous brownout over `[start, end)` with the service-time
    /// multiplier drawn from `[BROWNOUT_FACTOR_MIN, BROWNOUT_FACTOR_MAX]`
    /// by hashing `seed` (no RNG stream consumed).
    pub fn brownout(seed: u64, start: Time, end: Time) -> Self {
        let span = u64::from(BROWNOUT_FACTOR_MAX - BROWNOUT_FACTOR_MIN) + 1;
        // The unwrap cannot fire: span is a small nonzero constant, so the
        // remainder always fits in a u32. (The panic rule does not cover
        // this crate, so no allow marker is needed.)
        let factor = BROWNOUT_FACTOR_MIN + u32::try_from(mix64(seed) % span).unwrap();
        Self::brownout_train(seed, start, end, 0, 0, factor)
    }

    /// A stall train: every `period` ns inside `[start, end)` the device
    /// runs `factor`× slow for `duration` ns (GC-stall shape). With
    /// `period == 0` the whole range stalls continuously.
    pub fn brownout_train(
        seed: u64,
        start: Time,
        end: Time,
        period: Time,
        duration: Time,
        factor: u32,
    ) -> Self {
        let mut c = Self::quiet(seed);
        c.brownout = Some(BrownoutSpec {
            start,
            end,
            period,
            duration,
            factor,
        });
        c
    }
}

/// Counters of faults actually injected, readable at any time. These are
/// part of the determinism contract: two runs with the same seed and
/// workload must report identical counts.
#[derive(Debug, Default)]
struct FaultCounters {
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    latency_spikes: AtomicU64,
    torn_writes: AtomicU64,
    bitflips: AtomicU64,
    dead_rejects: AtomicU64,
    brownout_slowdowns: AtomicU64,
}

/// Plain snapshot of [`FaultPlan`] counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    pub read_errors: u64,
    pub write_errors: u64,
    pub latency_spikes: u64,
    pub torn_writes: u64,
    pub bitflips: u64,
    pub dead_rejects: u64,
    /// Requests whose service time was multiplied by an active brownout.
    pub brownout_slowdowns: u64,
}

/// Sentinel for "no dynamic death scheduled".
const NO_DEATH: u64 = u64::MAX;

/// A seeded fault stream for one device.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Mutex<SmallRng>,
    counters: FaultCounters,
    /// Death instant installed after construction (e.g. a torture test
    /// killing the device mid-run); `NO_DEATH` when unset.
    dynamic_death: AtomicU64,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            rng: Mutex::new(SmallRng::seed_from_u64(cfg.seed)),
            cfg,
            counters: FaultCounters::default(),
            dynamic_death: AtomicU64::new(NO_DEATH),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Kill the device effective at virtual time `at` (in addition to any
    /// configured `death_at`; the earlier instant wins).
    pub fn kill(&self, at: Time) {
        self.dynamic_death.fetch_min(at, Relaxed);
    }

    /// Is the device dead at `now`?
    pub fn is_dead(&self, now: Time) -> bool {
        let sched = self.cfg.death_at.unwrap_or(NO_DEATH);
        now >= sched.min(self.dynamic_death.load(Relaxed))
    }

    /// Draw with probability `p`, consuming randomness only when the
    /// outcome is actually in play (p in (0, 1]).
    fn draw(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().gen_bool(p)
    }

    /// Gate a read request at `now`. `Ok(extra)` lets it proceed with
    /// `extra` nanoseconds of injected latency; `Err` rejects it.
    pub fn before_read(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        if self.is_dead(now) {
            self.counters.dead_rejects.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::DeviceDead, now));
        }
        if self.draw(self.cfg.read_error_prob) {
            self.counters.read_errors.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::TransientRead, now));
        }
        Ok(self.spike())
    }

    /// Gate a write request at `now`, as [`Self::before_read`].
    pub fn before_write(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        if self.is_dead(now) {
            self.counters.dead_rejects.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::DeviceDead, now));
        }
        if self.draw(self.cfg.write_error_prob) {
            self.counters.write_errors.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::TransientWrite, now));
        }
        Ok(self.spike())
    }

    /// Is a brownout stall active at `now`? Pure query: no counter, no
    /// RNG.
    pub fn in_brownout(&self, now: Time) -> bool {
        self.cfg
            .brownout
            .is_some_and(|b| b.factor_at(now) > 1 && !self.is_dead(now))
    }

    /// The service-time multiplier to apply to a request submitted at
    /// `now` (`1` outside brownout windows). Counts one slowdown per
    /// call, so call it exactly once per admitted request.
    pub fn service_factor(&self, now: Time) -> u32 {
        let f = match self.cfg.brownout {
            Some(b) if !self.is_dead(now) => b.factor_at(now),
            _ => 1,
        };
        if f > 1 {
            self.counters.brownout_slowdowns.fetch_add(1, Relaxed);
        }
        f
    }

    fn spike(&self) -> Time {
        if self.draw(self.cfg.latency_spike_prob) {
            self.counters.latency_spikes.fetch_add(1, Relaxed);
            self.cfg.latency_spike_ns
        } else {
            0
        }
    }

    /// Should this write of `len` units tear? Returns the persisted prefix
    /// length, drawn uniformly from `[1, len)` (a torn write always loses
    /// at least its tail and persists at least one unit).
    pub fn torn_prefix(&self, len: usize) -> Option<usize> {
        if len >= 2 && self.draw(self.cfg.torn_write_prob) {
            self.counters.torn_writes.fetch_add(1, Relaxed);
            Some(self.rng.lock().gen_range(1..len))
        } else {
            None
        }
    }

    /// Should this write silently corrupt one bit? Returns the byte index
    /// (below `len`) and the flip mask.
    pub fn bitflip(&self, len: usize) -> Option<(usize, u8)> {
        if len > 0 && self.draw(self.cfg.bitflip_prob) {
            self.counters.bitflips.fetch_add(1, Relaxed);
            let mut rng = self.rng.lock();
            let byte = rng.gen_range(0..len);
            let bit = rng.gen_range(0u32..8);
            Some((byte, 1u8 << bit))
        } else {
            None
        }
    }

    /// Snapshot the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.counters.read_errors.load(Relaxed),
            write_errors: self.counters.write_errors.load(Relaxed),
            latency_spikes: self.counters.latency_spikes.load(Relaxed),
            torn_writes: self.counters.torn_writes.load(Relaxed),
            bitflips: self.counters.bitflips.load(Relaxed),
            dead_rejects: self.counters.dead_rejects.load(Relaxed),
            brownout_slowdowns: self.counters.brownout_slowdowns.load(Relaxed),
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

// ----------------------------------------------------------------------
// Checksums
// ----------------------------------------------------------------------

/// FNV-1a 64-bit hash over a frame's bytes — the per-frame checksum the
/// SSD tier stores beside its page-id tag and verifies on every read.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------------------
// Retry policy
// ----------------------------------------------------------------------

/// Attempts made on a transient disk error before giving up (the first
/// attempt plus `DISK_RETRY_LIMIT` retries) — the [`RetryPolicy`]
/// default.
pub const DISK_RETRY_LIMIT: u32 = 5;

/// Default backoff before the first retry (see [`RetryPolicy`]).
pub const RETRY_BASE_BACKOFF_NS: Time = MILLISECOND;

/// Default cap on the backoff growth exponent (see [`RetryPolicy`]).
pub const RETRY_BACKOFF_CAP_EXP: u32 = 3;

/// The bounded-retry knobs for transient I/O errors, promoted from the
/// fault layer's original hardcoded caps so deployments can tune them
/// per tier (`SsdConfig::retry`, `DbConfig::retry`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt; transient errors beyond
    /// this propagate to the caller. Default 5.
    pub limit: u32,
    /// Backoff before the first retry; each further retry quadruples it.
    /// Default 1 ms of virtual time.
    pub base_backoff_ns: Time,
    /// Retry index at which the backoff stops growing. The default (3)
    /// with the default base gives 1 ms, 4 ms, 16 ms, 64 ms, then 64 ms
    /// flat.
    pub backoff_cap_exp: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            limit: DISK_RETRY_LIMIT,
            base_backoff_ns: RETRY_BASE_BACKOFF_NS,
            backoff_cap_exp: RETRY_BACKOFF_CAP_EXP,
        }
    }
}

impl RetryPolicy {
    /// Capped exponential backoff before retry `attempt` (0-based).
    pub fn backoff_ns(&self, attempt: u32) -> Time {
        self.base_backoff_ns << (2 * attempt.min(self.backoff_cap_exp))
    }
}

/// Capped exponential backoff of the default policy:
/// 1 ms, 4 ms, 16 ms, 64 ms, then 64 ms flat — virtual time only.
pub fn backoff_ns(attempt: u32) -> Time {
    RetryPolicy::default().backoff_ns(attempt)
}

/// Run `op` with the synchronous retry policy `policy`: transient errors
/// wait out a capped virtual-time backoff on `clk` and retry; permanent
/// errors and retry exhaustion propagate. Returns the attempt count made
/// alongside the result so callers can account retries.
pub fn retry_sync_with<T>(
    policy: &RetryPolicy,
    clk: &mut Clk,
    mut op: impl FnMut(&mut Clk) -> Result<T, IoError>,
) -> (u32, Result<T, IoError>) {
    let mut attempt = 0u32;
    loop {
        match op(clk) {
            Ok(v) => return (attempt, Ok(v)),
            Err(e) if e.is_transient() && attempt < policy.limit => {
                clk.elapse(policy.backoff_ns(attempt));
                attempt += 1;
            }
            Err(e) => return (attempt, Err(e)),
        }
    }
}

/// [`retry_sync_with`] under the default policy.
pub fn retry_sync<T>(
    clk: &mut Clk,
    op: impl FnMut(&mut Clk) -> Result<T, IoError>,
) -> (u32, Result<T, IoError>) {
    retry_sync_with(&RetryPolicy::default(), clk, op)
}

/// Retry `op` until it succeeds or fails permanently. For write-behind of
/// data that must not be dropped (dirty evictions, checkpoint writes):
/// transient write errors are retried without bound — they clear with
/// probability 1 for any injection rate below certainty — so only a dead
/// device ever surfaces, and the caller then deals with genuine loss.
/// Deliberately not policy-bounded: a cap here would turn a transient
/// blip into silent data loss.
pub fn retry_write_forever<T>(mut op: impl FnMut() -> Result<T, IoError>) -> Result<T, IoError> {
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Run `op` with the asynchronous retry policy `policy`: retries happen
/// at the same submission instant (the caller's clock is not advanced by
/// write-behind I/O, so there is nothing to back off against).
pub fn retry_async_with<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> Result<T, IoError>,
) -> (u32, Result<T, IoError>) {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return (attempt, Ok(v)),
            Err(e) if e.is_transient() && attempt < policy.limit => attempt += 1,
            Err(e) => return (attempt, Err(e)),
        }
    }
}

/// [`retry_async_with`] under the default policy.
pub fn retry_async<T>(op: impl FnMut() -> Result<T, IoError>) -> (u32, Result<T, IoError>) {
    retry_async_with(&RetryPolicy::default(), op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::new(FaultConfig::quiet(1));
        for now in 0..1000 {
            assert_eq!(p.before_read(FaultDevice::Ssd, now), Ok(0));
            assert_eq!(p.before_write(FaultDevice::Ssd, now), Ok(0));
        }
        assert!(p.torn_prefix(4096).is_none());
        assert!(p.bitflip(4096).is_none());
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let mk = || FaultPlan::new(FaultConfig::transient(42, 0.3));
        let (a, b) = (mk(), mk());
        let run = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.before_read(FaultDevice::Disk, i).is_err())
                .collect()
        };
        assert_eq!(run(&a), run(&b));
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().read_errors > 0, "p=0.3 over 200 draws must fire");
    }

    #[test]
    fn death_is_a_wall_in_time() {
        let p = FaultPlan::new(FaultConfig::death(7, 1000));
        assert!(p.before_read(FaultDevice::Ssd, 999).is_ok());
        let e = p.before_write(FaultDevice::Ssd, 1000).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::DeviceDead);
        assert!(!e.is_transient());
        assert_eq!(p.stats().dead_rejects, 1);
    }

    #[test]
    fn dynamic_kill_takes_the_earlier_instant() {
        let p = FaultPlan::new(FaultConfig::death(7, 5000));
        p.kill(100);
        assert!(p.is_dead(100));
        assert!(!p.is_dead(99));
    }

    #[test]
    fn torn_prefix_is_a_strict_prefix() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.torn_write_prob = 1.0;
        let p = FaultPlan::new(cfg);
        for _ in 0..100 {
            let len = p.torn_prefix(64).expect("p=1 always tears");
            assert!((1..64).contains(&len));
        }
        // A single-unit write cannot tear.
        assert!(p.torn_prefix(1).is_none());
    }

    #[test]
    fn latency_spikes_add_configured_delay() {
        let mut cfg = FaultConfig::quiet(4);
        cfg.latency_spike_prob = 1.0;
        cfg.latency_spike_ns = 12_345;
        let p = FaultPlan::new(cfg);
        assert_eq!(p.before_read(FaultDevice::Disk, 0), Ok(12_345));
        assert_eq!(p.stats().latency_spikes, 1);
    }

    #[test]
    fn checksum_detects_any_single_bitflip() {
        let data = vec![0xA5u8; 64];
        let base = checksum(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut t = data.clone();
                t[byte] ^= 1 << bit;
                assert_ne!(checksum(&t), base, "flip {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn retry_sync_waits_out_transients() {
        let mut clk = Clk::new();
        let mut failures = 3;
        let (attempts, out) = retry_sync(&mut clk, |_clk| {
            if failures > 0 {
                failures -= 1;
                Err(IoError::new(
                    FaultDevice::Disk,
                    IoErrorKind::TransientRead,
                    0,
                ))
            } else {
                Ok(99)
            }
        });
        assert_eq!(out, Ok(99));
        assert_eq!(attempts, 3);
        // 1 + 4 + 16 ms of backoff elapsed on the virtual clock.
        assert_eq!(clk.now, 21 * MILLISECOND);
    }

    #[test]
    fn retry_sync_gives_up_on_permanent_errors() {
        let mut clk = Clk::new();
        let dead = IoError::new(FaultDevice::Disk, IoErrorKind::DeviceDead, 0);
        let (attempts, out) = retry_sync(&mut clk, |_clk| Err::<(), _>(dead));
        assert_eq!(out, Err(dead));
        assert_eq!(attempts, 0);
        assert_eq!(clk.now, 0, "no backoff for a dead device");
    }

    #[test]
    fn retry_async_bounds_attempts() {
        let torn = IoError::new(FaultDevice::Disk, IoErrorKind::TransientWrite, 0);
        let (attempts, out) = retry_async(|| Err::<(), _>(torn));
        assert_eq!(out, Err(torn));
        assert_eq!(attempts, DISK_RETRY_LIMIT);
    }

    #[test]
    fn backoff_is_capped() {
        assert_eq!(backoff_ns(0), MILLISECOND);
        assert_eq!(backoff_ns(1), 4 * MILLISECOND);
        assert_eq!(backoff_ns(3), 64 * MILLISECOND);
        assert_eq!(backoff_ns(10), 64 * MILLISECOND);
    }

    #[test]
    fn retry_policy_caps_are_tunable() {
        let tight = RetryPolicy {
            limit: 1,
            base_backoff_ns: 10,
            backoff_cap_exp: 0,
        };
        assert_eq!(tight.backoff_ns(0), 10);
        assert_eq!(tight.backoff_ns(5), 10, "growth capped at exponent 0");
        let mut clk = Clk::new();
        let torn = IoError::new(FaultDevice::Disk, IoErrorKind::TransientWrite, 0);
        let (attempts, out) = retry_sync_with(&tight, &mut clk, |_clk| Err::<(), _>(torn));
        assert_eq!(attempts, 1, "one retry, then give up");
        assert_eq!(out, Err(torn));
        assert_eq!(clk.now, 10, "only the single configured backoff elapsed");
        let (attempts, _) = retry_async_with(&tight, || Err::<(), _>(torn));
        assert_eq!(attempts, 1);
    }

    #[test]
    fn default_retry_policy_matches_legacy_constants() {
        let p = RetryPolicy::default();
        assert_eq!(p.limit, DISK_RETRY_LIMIT);
        for attempt in 0..8 {
            assert_eq!(p.backoff_ns(attempt), backoff_ns(attempt));
        }
    }

    #[test]
    fn brownout_is_a_pure_window_of_time() {
        let p = FaultPlan::new(FaultConfig::brownout_train(
            11, 1000, 5000, /* period */ 0, 0, 10,
        ));
        assert_eq!(p.service_factor(999), 1);
        assert!(!p.in_brownout(999));
        assert_eq!(p.service_factor(1000), 10);
        assert!(p.in_brownout(4999));
        assert_eq!(p.service_factor(5000), 1);
        // Requests still succeed while browned out, just slower.
        assert_eq!(p.before_read(FaultDevice::Ssd, 2000), Ok(0));
        // Two slowdowns were counted (t=1000 and t=4999 queries don't
        // count; only service_factor calls do).
        assert_eq!(p.stats().brownout_slowdowns, 1);
    }

    #[test]
    fn brownout_train_repeats_until_end() {
        // Stalls of 100 ns every 1000 ns over [0, 3000).
        let p = FaultPlan::new(FaultConfig::brownout_train(3, 0, 3000, 1000, 100, 7));
        for base in [0u64, 1000, 2000] {
            assert!(p.in_brownout(base));
            assert!(p.in_brownout(base + 99));
            assert!(!p.in_brownout(base + 100));
            assert!(!p.in_brownout(base + 999));
        }
        assert!(!p.in_brownout(3000), "train ends at the range end");
    }

    #[test]
    fn seeded_brownout_factor_is_in_range_and_stable() {
        for seed in 0..64u64 {
            let a = FaultConfig::brownout(seed, 0, 100);
            let b = FaultConfig::brownout(seed, 0, 100);
            let fa = a.brownout.expect("spec set").factor;
            assert_eq!(fa, b.brownout.expect("spec set").factor, "seed-stable");
            assert!((BROWNOUT_FACTOR_MIN..=BROWNOUT_FACTOR_MAX).contains(&fa));
        }
    }

    #[test]
    fn brownout_consumes_no_rng_stream() {
        // A plan with transient errors draws the same error stream whether
        // or not a brownout is configured — window checks are RNG-free.
        let mut with = FaultConfig::transient(77, 0.3);
        with.brownout = Some(BrownoutSpec {
            start: 0,
            end: 1000,
            period: 0,
            duration: 0,
            factor: 9,
        });
        let without = FaultConfig::transient(77, 0.3);
        let (a, b) = (FaultPlan::new(with), FaultPlan::new(without));
        let run = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| {
                    p.service_factor(i);
                    p.before_read(FaultDevice::Ssd, i).is_err()
                })
                .collect()
        };
        assert_eq!(run(&a), run(&b));
    }

    #[test]
    fn dead_device_does_not_brown_out() {
        let mut cfg = FaultConfig::brownout(5, 0, 10_000);
        cfg.death_at = Some(500);
        let p = FaultPlan::new(cfg);
        assert!(p.in_brownout(499));
        assert!(!p.in_brownout(500), "death supersedes slowness");
        assert_eq!(p.service_factor(600), 1);
    }
}
