//! Deterministic storage-fault injection.
//!
//! A [`FaultPlan`] is a seeded stream of misbehavior attachable to one
//! simulated device: transient read/write errors, latency spikes, torn
//! writes that persist only a prefix of the payload, silent single-bit
//! corruption, and a scheduled whole-device death at a virtual-time
//! instant. Every decision is drawn from the repository's own
//! [`SmallRng`](crate::rng::SmallRng) in call order, so a run with the
//! same seed and the same workload replays its faults bit-identically —
//! the same property the timing model already guarantees.
//!
//! The plan only *decides*; [`IoManager`](crate::io_manager::IoManager)
//! applies the decisions at its submit points. Silent corruption (torn
//! frames, bit flips) is applied to the SSD tier only, where per-frame
//! checksums catch it on the next read; the disk tier — the durability
//! story of the system — reports its failures instead of hiding them.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::clock::{Clk, Time, MILLISECOND};
use crate::rng::{Rng, SeedableRng, SmallRng};
use crate::sync::Mutex;

/// Which storage tier an error was reported by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDevice {
    /// The striped database disk group.
    Disk,
    /// The SSD buffer-pool file.
    Ssd,
}

/// What went wrong with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoErrorKind {
    /// A read failed transiently; retrying may succeed.
    TransientRead,
    /// A write failed transiently; retrying may succeed. For multi-page
    /// disk runs a prefix of the pages may have been persisted.
    TransientWrite,
    /// The device is dead (scheduled death reached); permanent.
    DeviceDead,
    /// The bytes came back but failed checksum verification — torn or
    /// corrupted frame detected on read.
    ChecksumMismatch,
}

impl IoErrorKind {
    /// True for errors a bounded retry can reasonably clear.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            IoErrorKind::TransientRead | IoErrorKind::TransientWrite
        )
    }
}

/// A storage error: which device, what kind, and when (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    pub device: FaultDevice,
    pub kind: IoErrorKind,
    /// Virtual time at which the failure was reported.
    pub at: Time,
}

impl IoError {
    pub fn new(device: FaultDevice, kind: IoErrorKind, at: Time) -> Self {
        IoError { device, kind, at }
    }

    /// True for errors a bounded retry can reasonably clear.
    pub fn is_transient(&self) -> bool {
        self.kind.is_transient()
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dev = match self.device {
            FaultDevice::Disk => "disk",
            FaultDevice::Ssd => "ssd",
        };
        let kind = match self.kind {
            IoErrorKind::TransientRead => "transient read error",
            IoErrorKind::TransientWrite => "transient write error",
            IoErrorKind::DeviceDead => "device dead",
            IoErrorKind::ChecksumMismatch => "checksum mismatch",
        };
        write!(f, "{dev}: {kind} at t={}ns", self.at)
    }
}

impl std::error::Error for IoError {}

/// Tunable fault probabilities for one device. All probabilities are per
/// request; a default-constructed config injects nothing.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the plan's private RNG stream.
    pub seed: u64,
    /// Probability a read request fails with [`IoErrorKind::TransientRead`].
    pub read_error_prob: f64,
    /// Probability a write request fails with
    /// [`IoErrorKind::TransientWrite`] before persisting anything.
    pub write_error_prob: f64,
    /// Probability a surviving request is delayed by `latency_spike_ns`.
    pub latency_spike_prob: f64,
    /// Extra service time charged to a spiked request.
    pub latency_spike_ns: Time,
    /// Probability a write is torn: only a prefix persists. On the SSD
    /// this is silent (caught later by the frame checksum); on a disk
    /// multi-page run the prefix pages persist and the request errors.
    pub torn_write_prob: f64,
    /// Probability a write silently flips one stored bit (SSD only).
    pub bitflip_prob: f64,
    /// Virtual-time instant at which the whole device dies. Every request
    /// at or after this instant fails with [`IoErrorKind::DeviceDead`].
    pub death_at: Option<Time>,
}

impl FaultConfig {
    /// A plan that injects nothing (useful as a base to tweak).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_prob: 0.0,
            write_error_prob: 0.0,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            torn_write_prob: 0.0,
            bitflip_prob: 0.0,
            death_at: None,
        }
    }

    /// Transient read+write errors at probability `p`.
    pub fn transient(seed: u64, p: f64) -> Self {
        let mut c = Self::quiet(seed);
        c.read_error_prob = p;
        c.write_error_prob = p;
        c
    }

    /// Whole-device death at virtual time `t`.
    pub fn death(seed: u64, t: Time) -> Self {
        let mut c = Self::quiet(seed);
        c.death_at = Some(t);
        c
    }
}

/// Counters of faults actually injected, readable at any time. These are
/// part of the determinism contract: two runs with the same seed and
/// workload must report identical counts.
#[derive(Debug, Default)]
struct FaultCounters {
    read_errors: AtomicU64,
    write_errors: AtomicU64,
    latency_spikes: AtomicU64,
    torn_writes: AtomicU64,
    bitflips: AtomicU64,
    dead_rejects: AtomicU64,
}

/// Plain snapshot of [`FaultPlan`] counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    pub read_errors: u64,
    pub write_errors: u64,
    pub latency_spikes: u64,
    pub torn_writes: u64,
    pub bitflips: u64,
    pub dead_rejects: u64,
}

/// Sentinel for "no dynamic death scheduled".
const NO_DEATH: u64 = u64::MAX;

/// A seeded fault stream for one device.
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Mutex<SmallRng>,
    counters: FaultCounters,
    /// Death instant installed after construction (e.g. a torture test
    /// killing the device mid-run); `NO_DEATH` when unset.
    dynamic_death: AtomicU64,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            rng: Mutex::new(SmallRng::seed_from_u64(cfg.seed)),
            cfg,
            counters: FaultCounters::default(),
            dynamic_death: AtomicU64::new(NO_DEATH),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Kill the device effective at virtual time `at` (in addition to any
    /// configured `death_at`; the earlier instant wins).
    pub fn kill(&self, at: Time) {
        self.dynamic_death.fetch_min(at, Relaxed);
    }

    /// Is the device dead at `now`?
    pub fn is_dead(&self, now: Time) -> bool {
        let sched = self.cfg.death_at.unwrap_or(NO_DEATH);
        now >= sched.min(self.dynamic_death.load(Relaxed))
    }

    /// Draw with probability `p`, consuming randomness only when the
    /// outcome is actually in play (p in (0, 1]).
    fn draw(&self, p: f64) -> bool {
        p > 0.0 && self.rng.lock().gen_bool(p)
    }

    /// Gate a read request at `now`. `Ok(extra)` lets it proceed with
    /// `extra` nanoseconds of injected latency; `Err` rejects it.
    pub fn before_read(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        if self.is_dead(now) {
            self.counters.dead_rejects.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::DeviceDead, now));
        }
        if self.draw(self.cfg.read_error_prob) {
            self.counters.read_errors.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::TransientRead, now));
        }
        Ok(self.spike())
    }

    /// Gate a write request at `now`, as [`Self::before_read`].
    pub fn before_write(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        if self.is_dead(now) {
            self.counters.dead_rejects.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::DeviceDead, now));
        }
        if self.draw(self.cfg.write_error_prob) {
            self.counters.write_errors.fetch_add(1, Relaxed);
            return Err(IoError::new(device, IoErrorKind::TransientWrite, now));
        }
        Ok(self.spike())
    }

    fn spike(&self) -> Time {
        if self.draw(self.cfg.latency_spike_prob) {
            self.counters.latency_spikes.fetch_add(1, Relaxed);
            self.cfg.latency_spike_ns
        } else {
            0
        }
    }

    /// Should this write of `len` units tear? Returns the persisted prefix
    /// length, drawn uniformly from `[1, len)` (a torn write always loses
    /// at least its tail and persists at least one unit).
    pub fn torn_prefix(&self, len: usize) -> Option<usize> {
        if len >= 2 && self.draw(self.cfg.torn_write_prob) {
            self.counters.torn_writes.fetch_add(1, Relaxed);
            Some(self.rng.lock().gen_range(1..len))
        } else {
            None
        }
    }

    /// Should this write silently corrupt one bit? Returns the byte index
    /// (below `len`) and the flip mask.
    pub fn bitflip(&self, len: usize) -> Option<(usize, u8)> {
        if len > 0 && self.draw(self.cfg.bitflip_prob) {
            self.counters.bitflips.fetch_add(1, Relaxed);
            let mut rng = self.rng.lock();
            let byte = rng.gen_range(0..len);
            let bit = rng.gen_range(0u32..8);
            Some((byte, 1u8 << bit))
        } else {
            None
        }
    }

    /// Snapshot the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.counters.read_errors.load(Relaxed),
            write_errors: self.counters.write_errors.load(Relaxed),
            latency_spikes: self.counters.latency_spikes.load(Relaxed),
            torn_writes: self.counters.torn_writes.load(Relaxed),
            bitflips: self.counters.bitflips.load(Relaxed),
            dead_rejects: self.counters.dead_rejects.load(Relaxed),
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("cfg", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

// ----------------------------------------------------------------------
// Checksums
// ----------------------------------------------------------------------

/// FNV-1a 64-bit hash over a frame's bytes — the per-frame checksum the
/// SSD tier stores beside its page-id tag and verifies on every read.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ----------------------------------------------------------------------
// Retry policy
// ----------------------------------------------------------------------

/// Attempts made on a transient disk error before giving up (the first
/// attempt plus `DISK_RETRY_LIMIT` retries).
pub const DISK_RETRY_LIMIT: u32 = 5;

/// Capped exponential backoff before retry `attempt` (0-based):
/// 1 ms, 4 ms, 16 ms, 64 ms, then 64 ms flat — virtual time only.
pub fn backoff_ns(attempt: u32) -> Time {
    MILLISECOND << (2 * attempt.min(3))
}

/// Run `op` with the standard synchronous retry policy: transient errors
/// wait out a capped virtual-time backoff on `clk` and retry; permanent
/// errors and retry exhaustion propagate. Returns the attempt count made
/// alongside the result so callers can account retries.
pub fn retry_sync<T>(
    clk: &mut Clk,
    mut op: impl FnMut(&mut Clk) -> Result<T, IoError>,
) -> (u32, Result<T, IoError>) {
    let mut attempt = 0u32;
    loop {
        match op(clk) {
            Ok(v) => return (attempt, Ok(v)),
            Err(e) if e.is_transient() && attempt < DISK_RETRY_LIMIT => {
                clk.elapse(backoff_ns(attempt));
                attempt += 1;
            }
            Err(e) => return (attempt, Err(e)),
        }
    }
}

/// Retry `op` until it succeeds or fails permanently. For write-behind of
/// data that must not be dropped (dirty evictions, checkpoint writes):
/// transient write errors are retried without bound — they clear with
/// probability 1 for any injection rate below certainty — so only a dead
/// device ever surfaces, and the caller then deals with genuine loss.
pub fn retry_write_forever<T>(mut op: impl FnMut() -> Result<T, IoError>) -> Result<T, IoError> {
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Run `op` with the asynchronous retry policy: retries happen at the
/// same submission instant (the caller's clock is not advanced by
/// write-behind I/O, so there is nothing to back off against).
pub fn retry_async<T>(mut op: impl FnMut() -> Result<T, IoError>) -> (u32, Result<T, IoError>) {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return (attempt, Ok(v)),
            Err(e) if e.is_transient() && attempt < DISK_RETRY_LIMIT => attempt += 1,
            Err(e) => return (attempt, Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::new(FaultConfig::quiet(1));
        for now in 0..1000 {
            assert_eq!(p.before_read(FaultDevice::Ssd, now), Ok(0));
            assert_eq!(p.before_write(FaultDevice::Ssd, now), Ok(0));
        }
        assert!(p.torn_prefix(4096).is_none());
        assert!(p.bitflip(4096).is_none());
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let mk = || FaultPlan::new(FaultConfig::transient(42, 0.3));
        let (a, b) = (mk(), mk());
        let run = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.before_read(FaultDevice::Disk, i).is_err())
                .collect()
        };
        assert_eq!(run(&a), run(&b));
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().read_errors > 0, "p=0.3 over 200 draws must fire");
    }

    #[test]
    fn death_is_a_wall_in_time() {
        let p = FaultPlan::new(FaultConfig::death(7, 1000));
        assert!(p.before_read(FaultDevice::Ssd, 999).is_ok());
        let e = p.before_write(FaultDevice::Ssd, 1000).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::DeviceDead);
        assert!(!e.is_transient());
        assert_eq!(p.stats().dead_rejects, 1);
    }

    #[test]
    fn dynamic_kill_takes_the_earlier_instant() {
        let p = FaultPlan::new(FaultConfig::death(7, 5000));
        p.kill(100);
        assert!(p.is_dead(100));
        assert!(!p.is_dead(99));
    }

    #[test]
    fn torn_prefix_is_a_strict_prefix() {
        let mut cfg = FaultConfig::quiet(3);
        cfg.torn_write_prob = 1.0;
        let p = FaultPlan::new(cfg);
        for _ in 0..100 {
            let len = p.torn_prefix(64).expect("p=1 always tears");
            assert!((1..64).contains(&len));
        }
        // A single-unit write cannot tear.
        assert!(p.torn_prefix(1).is_none());
    }

    #[test]
    fn latency_spikes_add_configured_delay() {
        let mut cfg = FaultConfig::quiet(4);
        cfg.latency_spike_prob = 1.0;
        cfg.latency_spike_ns = 12_345;
        let p = FaultPlan::new(cfg);
        assert_eq!(p.before_read(FaultDevice::Disk, 0), Ok(12_345));
        assert_eq!(p.stats().latency_spikes, 1);
    }

    #[test]
    fn checksum_detects_any_single_bitflip() {
        let data = vec![0xA5u8; 64];
        let base = checksum(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut t = data.clone();
                t[byte] ^= 1 << bit;
                assert_ne!(checksum(&t), base, "flip {byte}.{bit} undetected");
            }
        }
    }

    #[test]
    fn retry_sync_waits_out_transients() {
        let mut clk = Clk::new();
        let mut failures = 3;
        let (attempts, out) = retry_sync(&mut clk, |_clk| {
            if failures > 0 {
                failures -= 1;
                Err(IoError::new(
                    FaultDevice::Disk,
                    IoErrorKind::TransientRead,
                    0,
                ))
            } else {
                Ok(99)
            }
        });
        assert_eq!(out, Ok(99));
        assert_eq!(attempts, 3);
        // 1 + 4 + 16 ms of backoff elapsed on the virtual clock.
        assert_eq!(clk.now, 21 * MILLISECOND);
    }

    #[test]
    fn retry_sync_gives_up_on_permanent_errors() {
        let mut clk = Clk::new();
        let dead = IoError::new(FaultDevice::Disk, IoErrorKind::DeviceDead, 0);
        let (attempts, out) = retry_sync(&mut clk, |_clk| Err::<(), _>(dead));
        assert_eq!(out, Err(dead));
        assert_eq!(attempts, 0);
        assert_eq!(clk.now, 0, "no backoff for a dead device");
    }

    #[test]
    fn retry_async_bounds_attempts() {
        let torn = IoError::new(FaultDevice::Disk, IoErrorKind::TransientWrite, 0);
        let (attempts, out) = retry_async(|| Err::<(), _>(torn));
        assert_eq!(out, Err(torn));
        assert_eq!(attempts, DISK_RETRY_LIMIT);
    }

    #[test]
    fn backoff_is_capped() {
        assert_eq!(backoff_ns(0), MILLISECOND);
        assert_eq!(backoff_ns(1), 4 * MILLISECOND);
        assert_eq!(backoff_ns(3), 64 * MILLISECOND);
        assert_eq!(backoff_ns(10), 64 * MILLISECOND);
    }
}
