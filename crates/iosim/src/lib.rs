//! Virtual-time I/O subsystem simulator.
//!
//! This crate provides the hardware substrate for the buffer-pool study: a
//! discrete, deterministic timing model of the storage devices used in the
//! paper's testbed ("Turbocharging DBMS Buffer Pool Using SSDs", SIGMOD 2011):
//! eight striped 7,200 RPM SATA disks, one SLC flash SSD, and a dedicated log
//! disk. Devices are calibrated to the sustained IOPS the paper reports in
//! Table 1 and serve requests through a FCFS queue, so saturating a device in
//! virtual time produces the same queueing delays that gate throughput on
//! real hardware.
//!
//! Nothing in this crate sleeps: all timing is *virtual*. Callers carry a
//! [`Clk`] whose `now` field only moves forward when a synchronous I/O
//! completes. Asynchronous writes consume device time (delaying later
//! requests) without advancing the issuing client's clock, mirroring the
//! asynchronous write-behind I/O of a production DBMS disk manager.
//!
//! The crate also provides the page abstraction and in-memory backing stores
//! that hold the actual page bytes for the simulated disk and SSD.

#![forbid(unsafe_code)]

pub mod array;
pub mod clock;
pub mod crashsched;
pub mod device;
pub mod fault;
pub mod health;
pub mod io_manager;
pub mod page;
pub mod pagebuf;
pub mod profiles;
pub mod rng;
pub mod stats;
pub mod store;
pub mod sync;

pub use array::StripedArray;
pub use clock::{Clk, Time, HOUR, MICROSECOND, MILLISECOND, MINUTE, SECOND};
pub use crashsched::{BoundaryCounts, BoundaryKind, CrashSwitch, WriteFate};
pub use device::{DeviceProfile, IoKind, IoTicket, Locality, SimDevice};
pub use fault::{
    BrownoutSpec, FaultConfig, FaultDevice, FaultPlan, FaultStats, IoError, IoErrorKind,
    RetryPolicy,
};
pub use health::{FailSlowConfig, FailSlowDetector, FailSlowStats};
pub use io_manager::{DeviceSetup, IoManager};
pub use page::{PageBuf, PageId};
pub use pagebuf::{PageBufPool, PageLease};
pub use profiles::{hdd_array_profile, log_disk_profile, ssd_profile, PAPER_NUM_DISKS};
pub use stats::{DeviceStats, StatSnapshot};
pub use store::{MemStore, PageStore};
