//! Poison-free wrappers over `std::sync` locks.
//!
//! The workspace builds hermetically with the standard library only, so
//! these wrappers stand in for `parking_lot`: `lock()`/`read()`/`write()`
//! return guards directly instead of a `Result`. A poisoned lock is
//! recovered rather than propagated — every critical section in this
//! repository leaves its protected data structurally valid even when a
//! *test* thread panics mid-section (panics are how property tests and
//! `debug_assert!`s report failures), so continuing with the inner value
//! is sound and keeps the locking API infallible.

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking, recovering from
    /// poisoning. Returns `None` only when another thread holds the
    /// lock right now — the sharded buffer pool uses this to count
    /// contended acquisitions before falling back to a blocking
    /// `lock()`.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A readers-writer lock with infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1u8]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock stays usable after a panic");
    }
}
