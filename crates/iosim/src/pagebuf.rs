//! Reusable page-buffer pool for gather/flush/copy hot paths.
//!
//! Several layers stage whole pages in temporary `Vec<u8>` buffers: the
//! SSD manager's cleaner gathers up to α pages before one disk run, the
//! buffer pool snapshots victims during prefetch installs, and the
//! transaction layer captures before-images for redo diffing. Allocating
//! those buffers fresh puts an allocator round-trip on every such
//! operation (measured in `benches/micro.rs`, `page_buf_*`); this pool
//! recycles them instead.
//!
//! The pool lives in `iosim` (the workspace's base crate) so that both
//! `bufpool` and `core` can share the implementation; `turbopool_core`
//! re-exports it under its historical path.
//!
//! The spare list is its own innermost lock class (`spare` in
//! `lock_order.toml`): `take`/`put` acquire it only inside this module
//! and never while any other workspace lock is held.

use crate::sync::Mutex;

/// A bounded free list of page-sized byte buffers.
pub struct PageBufPool {
    page_size: usize,
    /// Recycled buffers, each exactly `page_size` bytes.
    spare: Mutex<Vec<Vec<u8>>>,
    /// Maximum buffers kept; beyond this, `put` lets them drop.
    cap: usize,
}

impl PageBufPool {
    /// A pool handing out `page_size`-byte buffers, retaining at most
    /// `cap` spares.
    pub fn new(page_size: usize, cap: usize) -> Self {
        assert!(page_size > 0);
        PageBufPool {
            page_size,
            spare: Mutex::new(Vec::new()),
            cap,
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Get a `page_size`-byte buffer. Contents are unspecified — callers
    /// must fully overwrite it (every user reads a whole page into it).
    pub fn take(&self) -> Vec<u8> {
        let recycled = {
            let mut s = self.spare.lock();
            s.pop()
        };
        recycled.unwrap_or_else(|| vec![0u8; self.page_size])
    }

    /// Return a buffer to the pool. Wrong-sized buffers (callers that
    /// truncated or grew it) and overflow beyond `cap` are dropped.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.len() != self.page_size {
            return;
        }
        let mut s = self.spare.lock();
        if s.len() < self.cap {
            s.push(buf);
        }
    }

    /// Borrow a buffer as a scoped lease that returns itself to the
    /// pool on drop. Contents are unspecified, as with [`take`].
    ///
    /// [`take`]: PageBufPool::take
    pub fn lease(&self) -> PageLease<'_> {
        PageLease {
            pool: self,
            buf: Some(self.take()),
        }
    }

    /// Like [`lease`], but the buffer is zero-filled — for callers that
    /// serve fresh/unwritten pages and must expose all-zero bytes.
    ///
    /// [`lease`]: PageBufPool::lease
    pub fn lease_zeroed(&self) -> PageLease<'_> {
        let mut l = self.lease();
        l.as_mut_slice().fill(0);
        l
    }

    /// Spare buffers currently retained (tests and metrics).
    pub fn spares(&self) -> usize {
        self.spare.lock().len()
    }
}

/// A scoped loan of one page buffer; returns it to the pool on drop.
pub struct PageLease<'a> {
    pool: &'a PageBufPool,
    buf: Option<Vec<u8>>,
}

impl PageLease<'_> {
    pub fn as_slice(&self) -> &[u8] {
        self.buf
            .as_deref()
            .expect("lease buffer present until drop")
    }

    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf
            .as_deref_mut()
            .expect("lease buffer present until drop")
    }

    /// Detach the buffer from the lease, keeping it past the scope.
    /// The caller owns it and may `put` it back explicitly.
    pub fn into_inner(mut self) -> Vec<u8> {
        self.buf.take().expect("lease buffer present until drop")
    }
}

impl std::ops::Deref for PageLease<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for PageLease<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl Drop for PageLease<'_> {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_allocations() {
        let pool = PageBufPool::new(512, 4);
        let a = pool.take();
        assert_eq!(a.len(), 512);
        pool.put(a);
        assert_eq!(pool.spares(), 1);
        let b = pool.take();
        assert_eq!(b.len(), 512);
        assert_eq!(pool.spares(), 0);
        pool.put(b);
        assert_eq!(pool.spares(), 1);
    }

    #[test]
    fn cap_bounds_retention() {
        let pool = PageBufPool::new(64, 2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take()).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.spares(), 2);
    }

    #[test]
    fn wrong_size_buffers_are_dropped() {
        let pool = PageBufPool::new(64, 2);
        pool.put(vec![0u8; 63]);
        pool.put(Vec::new());
        assert_eq!(pool.spares(), 0);
    }

    #[test]
    fn lease_returns_buffer_on_drop() {
        let pool = PageBufPool::new(32, 2);
        {
            let mut l = pool.lease();
            l.as_mut_slice()[0] = 0xAB;
            assert_eq!(pool.spares(), 0);
        }
        assert_eq!(pool.spares(), 1);
        let z = pool.lease_zeroed();
        assert!(z.iter().all(|&b| b == 0), "recycled lease is re-zeroed");
    }

    #[test]
    fn lease_into_inner_detaches() {
        let pool = PageBufPool::new(16, 2);
        let buf = pool.lease().into_inner();
        assert_eq!(buf.len(), 16);
        assert_eq!(pool.spares(), 0);
        pool.put(buf);
        assert_eq!(pool.spares(), 1);
    }
}
