//! A striped disk array: the paper's eight-HDD file group.

use crate::clock::Time;
use crate::device::{DeviceProfile, IoKind, IoTicket, Locality, SimDevice};
use crate::page::PageId;
use crate::stats::StatSnapshot;

/// Pages per stripe unit: 8 pages = 64 KB with 8 KB pages, a typical
/// file-group stripe size. A whole stripe lives on one disk, so a small
/// multi-page read hits one spindle (one seek), while a long scan streams
/// from every spindle in 64 KB chunks.
pub const STRIPE_PAGES: u64 = 8;

/// A striped array of identical [`SimDevice`]s with 64 KB stripe units.
///
/// Consecutive stripes land on consecutive disks; consecutive stripes on
/// the *same* disk are physically adjacent, so an uninterrupted scan
/// auto-detects as sequential on every member — the layout that makes "a
/// small number of striped disks" beat an SSD on sequential reads (paper
/// §1). Interleaved scan streams break that adjacency and pay seeks, which
/// is exactly the multi-stream interference the paper's TPC-H throughput
/// test exposes.
pub struct StripedArray {
    disks: Vec<SimDevice>,
    stripe_pages: u64,
}

impl StripedArray {
    /// Build an array of `n` disks from the *aggregate* profile of the whole
    /// group (each member gets `1/n` of the aggregate throughput).
    pub fn from_aggregate(name: &str, aggregate: DeviceProfile, n: u64) -> Self {
        assert!(n > 0);
        let per_disk = aggregate.per_member_of(n);
        let disks = (0..n)
            .map(|i| SimDevice::new(format!("{name}[{i}]"), per_disk))
            .collect();
        StripedArray {
            disks,
            stripe_pages: STRIPE_PAGES,
        }
    }

    /// Number of member disks.
    pub fn num_disks(&self) -> usize {
        self.disks.len()
    }

    /// Which member and disk-local address a page maps to.
    #[inline]
    pub fn locate(&self, page: PageId) -> (usize, u64) {
        let n = self.disks.len() as u64;
        let sp = self.stripe_pages;
        let stripe = page.0 / sp;
        let disk = (stripe % n) as usize;
        let lba = (stripe / n) * sp + page.0 % sp;
        (disk, lba)
    }

    /// Submit a single-page request.
    pub fn submit_page(
        &self,
        now: Time,
        kind: IoKind,
        page: PageId,
        hint: Option<Locality>,
    ) -> IoTicket {
        self.submit_page_scaled(now, kind, page, hint, 1)
    }

    /// [`Self::submit_page`] with a brownout service-time multiplier
    /// applied to the member disk that serves the page.
    pub fn submit_page_scaled(
        &self,
        now: Time,
        kind: IoKind,
        page: PageId,
        hint: Option<Locality>,
        scale: u32,
    ) -> IoTicket {
        let (d, lba) = self.locate(page);
        self.disks[d].submit_scaled(now, kind, lba, 1, hint, scale)
    }

    /// Submit a multi-page request for the consecutive run
    /// `first .. first + npages`.
    ///
    /// The run is split at stripe boundaries into per-disk spans of
    /// consecutive disk-local addresses; members transfer in parallel and
    /// the ticket completes when the slowest member does — this is what
    /// makes one large I/O cheaper than several small ones (paper §3.3.3).
    /// With `hint = None` each span's first page is costed by physical
    /// adjacency, so back-to-back runs of one scan stream as sequential
    /// while interleaved streams pay seeks.
    pub fn submit_run(
        &self,
        now: Time,
        kind: IoKind,
        first: PageId,
        npages: u64,
        hint: Option<Locality>,
    ) -> IoTicket {
        self.submit_run_scaled(now, kind, first, npages, hint, 1)
    }

    /// [`Self::submit_run`] with a brownout service-time multiplier
    /// applied to every member span of the run.
    pub fn submit_run_scaled(
        &self,
        now: Time,
        kind: IoKind,
        first: PageId,
        npages: u64,
        hint: Option<Locality>,
        scale: u32,
    ) -> IoTicket {
        assert!(npages > 0);
        let sp = self.stripe_pages;
        let mut ticket: Option<IoTicket> = None;
        let mut i = 0u64;
        while i < npages {
            let pid = PageId(first.0 + i);
            let (disk, lba) = self.locate(pid);
            let span = (sp - pid.0 % sp).min(npages - i);
            let t = self.disks[disk].submit_scaled(now, kind, lba, span, hint, scale);
            ticket = Some(match ticket {
                None => t,
                Some(prev) => IoTicket {
                    start: prev.start.min(t.start),
                    complete: prev.complete.max(t.complete),
                },
            });
            i += span;
        }
        ticket.expect("npages > 0")
    }

    /// Total outstanding requests across all members at `now`.
    pub fn queue_depth(&self, now: Time) -> usize {
        self.disks.iter().map(|d| d.queue_depth(now)).sum()
    }

    /// Aggregate statistics across members.
    pub fn stats_snapshot(&self) -> StatSnapshot {
        let mut agg = StatSnapshot::default();
        for d in &self.disks {
            let s = d.stats().snapshot();
            agg.read_ops += s.read_ops;
            agg.read_pages += s.read_pages;
            agg.read_busy_ns += s.read_busy_ns;
            agg.write_ops += s.write_ops;
            agg.write_pages += s.write_pages;
            agg.write_busy_ns += s.write_busy_ns;
        }
        agg
    }

    /// Enable the per-member traffic time series (Figure 8 support).
    pub fn enable_series(&self, bucket_ns: Time) {
        for d in &self.disks {
            d.stats().enable_series(bucket_ns);
        }
    }

    /// Merged traffic series across members: `(bucket_start, read_pages,
    /// write_pages)`.
    pub fn series(&self) -> Vec<(Time, u64, u64)> {
        let mut merged: Vec<(Time, u64, u64)> = Vec::new();
        for d in &self.disks {
            for (i, (t, r, w)) in d.stats().series().into_iter().enumerate() {
                if merged.len() <= i {
                    merged.push((t, 0, 0));
                }
                merged[i].1 += r;
                merged[i].2 += w;
            }
        }
        merged
    }

    /// Reset timing state on all members (restart modeling).
    pub fn reset_time(&self) {
        for d in &self.disks {
            d.reset_time();
        }
    }

    /// Reset statistics on all members.
    pub fn reset_stats(&self) {
        for d in &self.disks {
            d.stats().reset();
        }
    }

    /// Access a member device (tests, calibration harness).
    pub fn disk(&self, i: usize) -> &SimDevice {
        &self.disks[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SECOND;
    use crate::profiles::hdd_array_profile;

    fn array() -> StripedArray {
        StripedArray::from_aggregate("hdd", hdd_array_profile(), 8)
    }

    #[test]
    fn locate_stripes_in_64kb_units() {
        let a = array();
        // Pages 0..8 (stripe 0) on disk 0; 8..16 (stripe 1) on disk 1.
        assert_eq!(a.locate(PageId(0)), (0, 0));
        assert_eq!(a.locate(PageId(7)), (0, 7));
        assert_eq!(a.locate(PageId(8)), (1, 0));
        assert_eq!(a.locate(PageId(63)), (7, 7));
        // Stripe 8 wraps back to disk 0, adjacent to stripe 0's LBAs.
        assert_eq!(a.locate(PageId(64)), (0, 8));
    }

    #[test]
    fn sequential_run_hits_aggregate_rate() {
        // Stream a big sequential run; throughput should approach the
        // aggregate 26,370 seq-read IOPS of Table 1.
        let a = array();
        let pages = 26_370u64;
        let t = a.submit_run(
            0,
            IoKind::Read,
            PageId(0),
            pages,
            Some(Locality::Sequential),
        );
        let secs = t.complete as f64 / SECOND as f64;
        let iops = pages as f64 / secs;
        assert!((iops - 26_370.0).abs() / 26_370.0 < 0.02, "iops {iops}");
    }

    #[test]
    fn concurrent_random_reads_hit_aggregate_rate() {
        // 8 independent random streams (one per disk) should sustain the
        // aggregate 1,015 random-read IOPS.
        let a = array();
        let mut completes = [0u64; 8];
        let per_stream = 200u64;
        for i in 0..per_stream {
            for d in 0..8u64 {
                // Page ids chosen so stream d always hits disk d, randomly:
                // stripe ≡ d (mod 8).
                let stripe = d + 8 * (i * 7919 % 10_000);
                let pid = PageId(stripe * 8 + i % 8);
                let t = a.submit_page(
                    completes[d as usize],
                    IoKind::Read,
                    pid,
                    Some(Locality::Random),
                );
                completes[d as usize] = t.complete;
            }
        }
        let total_pages = 8 * per_stream;
        let end = completes.iter().copied().max().unwrap();
        let iops = total_pages as f64 / (end as f64 / SECOND as f64);
        assert!((iops - 1_015.0).abs() / 1_015.0 < 0.02, "iops {iops}");
    }

    #[test]
    fn run_splits_at_stripe_boundaries() {
        let a = array();
        // A 16-page run = 2 stripes on 2 disks.
        a.submit_run(0, IoKind::Read, PageId(0), 16, Some(Locality::Sequential));
        let s = a.stats_snapshot();
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.read_pages, 16);
        assert_eq!(a.disk(0).stats().snapshot().read_pages, 8);
        assert_eq!(a.disk(1).stats().snapshot().read_pages, 8);
    }

    #[test]
    fn small_unaligned_run_touches_at_most_two_disks() {
        let a = array();
        a.submit_run(0, IoKind::Read, PageId(6), 3, None); // stripe 0 + 1
        let s = a.stats_snapshot();
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.read_pages, 3);
        assert_eq!(a.disk(0).stats().snapshot().read_pages, 2);
        assert_eq!(a.disk(1).stats().snapshot().read_pages, 1);
        assert_eq!(a.disk(2).stats().snapshot().read_pages, 0);
    }

    #[test]
    fn uninterrupted_scan_auto_detects_sequential() {
        // Two back-to-back 64-page runs with NO hint: after the first
        // seeks, every span continues at its disk's expected LBA.
        let a = array();
        a.submit_run(0, IoKind::Read, PageId(0), 64, None);
        let b0 = a.stats_snapshot().read_busy_ns;
        a.submit_run(0, IoKind::Read, PageId(64), 64, None);
        let b1 = a.stats_snapshot().read_busy_ns - b0;
        // The second batch is all-sequential: much cheaper than the first
        // (which paid one random positioning per disk).
        assert!(b1 * 2 < b0, "first {b0} second {b1}");
    }

    #[test]
    fn merged_series_accumulates_members() {
        let a = array();
        a.enable_series(SECOND);
        a.submit_run(0, IoKind::Write, PageId(0), 64, Some(Locality::Sequential));
        let series = a.series();
        let total: u64 = series.iter().map(|(_, _, w)| *w).sum();
        assert_eq!(total, 64);
    }
}
