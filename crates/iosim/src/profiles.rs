//! Device profiles calibrated to the paper's Table 1.
//!
//! > Table 1: Maximum sustainable IOPS for each device when using page-sized
//! > (8KB) I/Os. Disk write caching is turned off.
//! >
//! > | device | rand read | seq read | rand write | seq write |
//! > |--------|-----------|----------|------------|-----------|
//! > | 8 HDDs | 1,015     | 26,370   | 895        | 9,463     |
//! > | SSD    | 12,182    | 15,980   | 12,374     | 14,965    |
//!
//! The HDD numbers are the *aggregate* for the eight-disk striped file group;
//! [`hdd_array_profile`] reports that aggregate and the array constructor
//! divides it per member.

use crate::device::DeviceProfile;

/// Number of data disks in the paper's striped file group.
pub const PAPER_NUM_DISKS: u64 = 8;

/// Table 1, "8 HDDs" row: aggregate IOPS of the striped eight-disk group.
pub fn hdd_array_profile() -> DeviceProfile {
    DeviceProfile::from_iops(1_015.0, 26_370.0, 895.0, 9_463.0)
}

/// Table 1, "SSD" row: the 160 GB SLC Fusion ioDrive.
pub fn ssd_profile() -> DeviceProfile {
    DeviceProfile::from_iops(12_182.0, 15_980.0, 12_374.0, 14_965.0)
}

/// The dedicated log disk: one 7,200 RPM SATA drive streaming sequential
/// appends. The paper does not calibrate it separately; we model it at
/// 100 MB/s sequential (12,500 page-sized writes per second) — the
/// streaming bandwidth of the era's commodity SATA drives, which the log's
/// pure-append pattern achieves even with write caching off — and ~200 IOPS
/// random (never exercised: the log only appends and is only read during
/// recovery).
pub fn log_disk_profile() -> DeviceProfile {
    DeviceProfile::from_iops(200.0, 12_500.0, 200.0, 12_500.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SECOND;
    use crate::device::{IoKind, Locality};

    #[test]
    fn table1_service_times() {
        let hdd = hdd_array_profile();
        // 1,015 IOPS -> ~985 us per random read (aggregate).
        assert_eq!(hdd.rand_read_ns, 985_222);
        let ssd = ssd_profile();
        // 12,182 IOPS -> ~82 us per random read.
        assert_eq!(ssd.rand_read_ns, 82_088);
        // The paper's headline gap: ~12x random-read advantage for the SSD.
        let gap = hdd.rand_read_ns as f64 / ssd.rand_read_ns as f64;
        assert!((11.0..13.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn sustained_iops_round_trip() {
        // Driving a profile at saturation reproduces the calibrated IOPS.
        let p = ssd_profile();
        let per_sec = SECOND as f64 / p.service_ns(IoKind::Write, Locality::Random) as f64;
        assert!((per_sec - 12_374.0).abs() / 12_374.0 < 0.01);
    }

    #[test]
    fn per_member_scales_service_time() {
        let agg = hdd_array_profile();
        let one = agg.per_member_of(8);
        assert_eq!(one.rand_read_ns, agg.rand_read_ns * 8);
    }
}
