//! Per-device I/O statistics, including the time-bucketed traffic series the
//! paper plots in Figure 8.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::sync::Mutex;

use crate::clock::Time;
use crate::device::IoKind;

/// Running totals plus an optional time-bucketed page-traffic series.
pub struct DeviceStats {
    read_ops: AtomicU64,
    read_pages: AtomicU64,
    read_busy_ns: AtomicU64,
    write_ops: AtomicU64,
    write_pages: AtomicU64,
    write_busy_ns: AtomicU64,
    /// Bucket width in ns; 0 disables the series.
    bucket_ns: AtomicU64,
    buckets: Mutex<Vec<Bucket>>,
}

#[derive(Copy, Clone, Default, Debug)]
struct Bucket {
    read_pages: u64,
    write_pages: u64,
}

/// Immutable totals snapshot.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StatSnapshot {
    pub read_ops: u64,
    pub read_pages: u64,
    pub read_busy_ns: u64,
    pub write_ops: u64,
    pub write_pages: u64,
    pub write_busy_ns: u64,
}

impl StatSnapshot {
    /// Pages transferred in both directions.
    pub fn total_pages(&self) -> u64 {
        self.read_pages + self.write_pages
    }
}

impl DeviceStats {
    pub fn new() -> Self {
        DeviceStats {
            read_ops: AtomicU64::new(0),
            read_pages: AtomicU64::new(0),
            read_busy_ns: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            write_pages: AtomicU64::new(0),
            write_busy_ns: AtomicU64::new(0),
            bucket_ns: AtomicU64::new(0),
            buckets: Mutex::new(Vec::new()),
        }
    }

    /// Enable the traffic time series with the given bucket width.
    pub fn enable_series(&self, bucket_ns: Time) {
        assert!(bucket_ns > 0);
        self.bucket_ns.store(bucket_ns, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, kind: IoKind, pages: u64, at: Time, busy_ns: Time) {
        match kind {
            IoKind::Read => {
                self.read_ops.fetch_add(1, Ordering::Relaxed);
                self.read_pages.fetch_add(pages, Ordering::Relaxed);
                self.read_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            }
            IoKind::Write => {
                self.write_ops.fetch_add(1, Ordering::Relaxed);
                self.write_pages.fetch_add(pages, Ordering::Relaxed);
                self.write_busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            }
        }
        let bw = self.bucket_ns.load(Ordering::Relaxed);
        if let Some(bucket) = at.checked_div(bw) {
            let idx = bucket as usize;
            let mut b = self.buckets.lock();
            if b.len() <= idx {
                b.resize(idx + 1, Bucket::default());
            }
            match kind {
                IoKind::Read => b[idx].read_pages += pages,
                IoKind::Write => b[idx].write_pages += pages,
            }
        }
    }

    /// Totals so far.
    pub fn snapshot(&self) -> StatSnapshot {
        StatSnapshot {
            read_ops: self.read_ops.load(Ordering::Relaxed),
            read_pages: self.read_pages.load(Ordering::Relaxed),
            read_busy_ns: self.read_busy_ns.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            write_pages: self.write_pages.load(Ordering::Relaxed),
            write_busy_ns: self.write_busy_ns.load(Ordering::Relaxed),
        }
    }

    /// The bucketed traffic series as `(bucket_start_time, read_pages,
    /// write_pages)` triples. Empty unless [`enable_series`] was called.
    ///
    /// [`enable_series`]: DeviceStats::enable_series
    pub fn series(&self) -> Vec<(Time, u64, u64)> {
        let bw = self.bucket_ns.load(Ordering::Relaxed);
        if bw == 0 {
            return Vec::new();
        }
        self.buckets
            .lock()
            .iter()
            .enumerate()
            .map(|(i, b)| (i as Time * bw, b.read_pages, b.write_pages))
            .collect()
    }

    /// Reset all counters and the series (used between benchmark phases).
    pub fn reset(&self) {
        self.read_ops.store(0, Ordering::Relaxed);
        self.read_pages.store(0, Ordering::Relaxed);
        self.read_busy_ns.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.write_pages.store(0, Ordering::Relaxed);
        self.write_busy_ns.store(0, Ordering::Relaxed);
        self.buckets.lock().clear();
    }
}

impl Default for DeviceStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate() {
        let s = DeviceStats::new();
        s.record(IoKind::Read, 4, 100, 40);
        s.record(IoKind::Write, 1, 200, 10);
        s.record(IoKind::Read, 2, 300, 20);
        let snap = s.snapshot();
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.read_pages, 6);
        assert_eq!(snap.read_busy_ns, 60);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.write_pages, 1);
        assert_eq!(snap.total_pages(), 7);
    }

    #[test]
    fn series_buckets_by_time() {
        let s = DeviceStats::new();
        s.enable_series(1_000);
        s.record(IoKind::Read, 1, 0, 1);
        s.record(IoKind::Read, 1, 999, 1);
        s.record(IoKind::Write, 3, 2_500, 1);
        let series = s.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (0, 2, 0));
        assert_eq!(series[1], (1_000, 0, 0));
        assert_eq!(series[2], (2_000, 0, 3));
    }

    #[test]
    fn series_disabled_by_default() {
        let s = DeviceStats::new();
        s.record(IoKind::Read, 1, 0, 1);
        assert!(s.series().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let s = DeviceStats::new();
        s.enable_series(10);
        s.record(IoKind::Read, 1, 0, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatSnapshot::default());
        assert!(s.series().is_empty());
    }
}
