//! Crash-schedule instrumentation: deterministic power failure at an exact
//! durable-write boundary.
//!
//! A *durable-write boundary* is any point where the simulated system hands
//! bytes to stable storage: a database-disk page write, an SSD frame write,
//! or a log group flush. The crash-schedule explorer runs a seeded trace
//! twice over: first with a [`CrashSwitch`] in recorder mode to number every
//! boundary, then once per boundary with the switch armed at that sequence
//! number. When the armed boundary is reached the switch "fires": that write
//! either persists as the final write of the incarnation, or is torn
//! (kind-specific partial persistence), and every later I/O on any device
//! fails with [`IoErrorKind::DeviceDead`] — the machine is off.
//!
//! Firing reports [`IoErrorKind::DeviceDead`] rather than a transient error
//! deliberately: the write-behind retry loops treat transient errors as
//! retriable forever, and a powered-off machine must terminate them, not
//! spin them.
//!
//! Everything here is free of randomness — the same trace with the same cut
//! produces the same post-crash image bit for bit, which is what lets the
//! explorer verify recovery against an oracle computed from commit
//! attribution alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What kind of durable write a boundary was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryKind {
    /// A page write to the database disk group (one boundary per page,
    /// including each page of a multi-page cleaning run).
    DiskPage,
    /// An SSD frame write.
    SsdFrame,
    /// A log group flush (one boundary per flush, not per record).
    LogFlush,
}

/// The fate the switch assigns to a durable write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFate {
    /// The write reaches stable storage in full.
    Persist,
    /// Power failed *during* the write: a kind-specific prefix persists
    /// (log flush loses its final byte; an SSD frame keeps a half-frame
    /// prefix over the old tail; a disk page persists nothing).
    Torn,
    /// Power was already lost; the write never reached the device.
    Dropped,
}

/// Per-kind boundary counters observed by a switch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryCounts {
    pub disk_pages: u64,
    pub ssd_frames: u64,
    pub log_flushes: u64,
}

impl BoundaryCounts {
    pub fn total(&self) -> u64 {
        self.disk_pages + self.ssd_frames + self.log_flushes
    }
}

/// Deterministic power-failure switch threaded through the [`crate::IoManager`].
///
/// In *recorder* mode it numbers boundaries and never fires. *Armed* at
/// `(cut, torn)` it persists boundaries `0..cut`, fires at boundary `cut`
/// (persisting it when `torn` is false, tearing it when true), and drops
/// everything after.
pub struct CrashSwitch {
    /// Next boundary sequence number.
    seq: AtomicU64,
    /// Boundary index to fire at; `u64::MAX` in recorder mode.
    cut: u64,
    /// Tear the firing write instead of letting it complete.
    torn: bool,
    fired: AtomicBool,
    disk_pages: AtomicU64,
    ssd_frames: AtomicU64,
    log_flushes: AtomicU64,
    /// Sequence number of the most recent `LogFlush` boundary, plus one
    /// (0 = none yet). Lets a recorder attribute each commit to the exact
    /// boundary its log flush occupied.
    last_log_flush: AtomicU64,
}

impl CrashSwitch {
    /// A switch that only counts boundaries (never fires).
    pub fn recorder() -> Self {
        Self::with_cut(u64::MAX, false)
    }

    /// A switch that fires at boundary `cut`. With `torn` false the cut
    /// boundary is the last write to persist; with `torn` true it is torn.
    pub fn armed(cut: u64, torn: bool) -> Self {
        Self::with_cut(cut, torn)
    }

    fn with_cut(cut: u64, torn: bool) -> Self {
        CrashSwitch {
            seq: AtomicU64::new(0),
            cut,
            torn,
            fired: AtomicBool::new(false),
            disk_pages: AtomicU64::new(0),
            ssd_frames: AtomicU64::new(0),
            log_flushes: AtomicU64::new(0),
            last_log_flush: AtomicU64::new(0),
        }
    }

    /// Number one durable-write boundary and decide its fate. Called by the
    /// I/O manager once per disk-page write, SSD-frame write, or log flush.
    pub fn on_write(&self, kind: BoundaryKind) -> WriteFate {
        let s = self.seq.fetch_add(1, Ordering::Relaxed);
        match kind {
            BoundaryKind::DiskPage => &self.disk_pages,
            BoundaryKind::SsdFrame => &self.ssd_frames,
            BoundaryKind::LogFlush => &self.log_flushes,
        }
        .fetch_add(1, Ordering::Relaxed);
        if kind == BoundaryKind::LogFlush {
            self.last_log_flush.store(s + 1, Ordering::Relaxed);
        }
        match s.cmp(&self.cut) {
            std::cmp::Ordering::Less => WriteFate::Persist,
            std::cmp::Ordering::Equal => {
                self.fired.store(true, Ordering::Release);
                if self.torn {
                    WriteFate::Torn
                } else {
                    WriteFate::Persist
                }
            }
            std::cmp::Ordering::Greater => WriteFate::Dropped,
        }
    }

    /// Has the armed boundary been reached? Once true, the machine is off:
    /// all reads and writes on all devices fail `DeviceDead`.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Total boundaries numbered so far.
    pub fn boundaries(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Sequence number of the most recent log-flush boundary, if any.
    pub fn last_log_flush_seq(&self) -> Option<u64> {
        let v = self.last_log_flush.load(Ordering::Relaxed);
        (v != 0).then(|| v - 1)
    }

    /// Per-kind boundary counts.
    pub fn counts(&self) -> BoundaryCounts {
        BoundaryCounts {
            disk_pages: self.disk_pages.load(Ordering::Relaxed),
            ssd_frames: self.ssd_frames.load(Ordering::Relaxed),
            log_flushes: self.log_flushes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_counts_and_never_fires() {
        let sw = CrashSwitch::recorder();
        for _ in 0..5 {
            assert_eq!(sw.on_write(BoundaryKind::DiskPage), WriteFate::Persist);
        }
        assert_eq!(sw.on_write(BoundaryKind::LogFlush), WriteFate::Persist);
        assert_eq!(sw.on_write(BoundaryKind::SsdFrame), WriteFate::Persist);
        assert!(!sw.fired());
        assert_eq!(sw.boundaries(), 7);
        let c = sw.counts();
        assert_eq!((c.disk_pages, c.ssd_frames, c.log_flushes), (5, 1, 1));
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn armed_persists_up_to_cut_then_drops() {
        let sw = CrashSwitch::armed(2, false);
        assert_eq!(sw.on_write(BoundaryKind::DiskPage), WriteFate::Persist);
        assert_eq!(sw.on_write(BoundaryKind::DiskPage), WriteFate::Persist);
        assert!(!sw.fired());
        // Boundary 2 is the cut: persists (torn=false) and kills power.
        assert_eq!(sw.on_write(BoundaryKind::LogFlush), WriteFate::Persist);
        assert!(sw.fired());
        assert_eq!(sw.on_write(BoundaryKind::DiskPage), WriteFate::Dropped);
        assert_eq!(sw.on_write(BoundaryKind::SsdFrame), WriteFate::Dropped);
    }

    #[test]
    fn torn_variant_tears_the_cut_boundary() {
        let sw = CrashSwitch::armed(0, true);
        assert_eq!(sw.on_write(BoundaryKind::LogFlush), WriteFate::Torn);
        assert!(sw.fired());
        assert_eq!(sw.on_write(BoundaryKind::LogFlush), WriteFate::Dropped);
    }
}
