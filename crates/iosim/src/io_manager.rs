//! The disk manager: one facade over the database disk array, the SSD, and
//! the log device, combining timing (devices) with data (stores).
//!
//! This is the component the buffer manager and the SSD manager talk to
//! (Figure 1 of the paper). Reads are synchronous — the caller's virtual
//! clock advances to the completion time. Writes come in both synchronous
//! and asynchronous flavors; asynchronous writes charge device time (and so
//! delay later requests on the same device) without advancing the caller's
//! clock, mirroring the write-behind I/O of the paper's disk manager.

use crate::array::StripedArray;
use crate::clock::{Clk, Time};
use crate::device::{DeviceProfile, IoKind, Locality, SimDevice};
use crate::page::{PageBuf, PageId};
use crate::profiles;
use crate::store::{MemStore, PageStore};

/// Sizing and calibration of the simulated storage subsystem.
#[derive(Clone, Debug)]
pub struct DeviceSetup {
    /// Page size in bytes (8192 in the paper; tests use smaller pages).
    pub page_size: usize,
    /// Capacity of the database file group, in pages.
    pub db_pages: u64,
    /// Capacity of the SSD buffer-pool file, in frames (the paper's `S`).
    pub ssd_frames: u64,
    /// Member count of the striped disk group (8 in the paper).
    pub num_disks: u64,
    /// Aggregate profile of the whole disk group.
    pub disk_profile: DeviceProfile,
    /// SSD profile.
    pub ssd_profile: DeviceProfile,
    /// Log device profile.
    pub log_profile: DeviceProfile,
}

impl DeviceSetup {
    /// The paper's testbed calibration (Table 1) with caller-chosen sizes.
    pub fn paper(page_size: usize, db_pages: u64, ssd_frames: u64) -> Self {
        DeviceSetup {
            page_size,
            db_pages,
            ssd_frames,
            num_disks: profiles::PAPER_NUM_DISKS,
            disk_profile: profiles::hdd_array_profile(),
            ssd_profile: profiles::ssd_profile(),
            log_profile: profiles::log_disk_profile(),
        }
    }

    /// The paper calibration with all device service times multiplied by
    /// `k` (see [`crate::device::DeviceProfile::time_scaled`]): used with
    /// `1/k`-scaled database sizes so that every ratio the evaluation
    /// depends on is preserved.
    pub fn paper_time_scaled(page_size: usize, db_pages: u64, ssd_frames: u64, k: f64) -> Self {
        let mut s = Self::paper(page_size, db_pages, ssd_frames);
        s.disk_profile = s.disk_profile.time_scaled(k);
        s.ssd_profile = s.ssd_profile.time_scaled(k);
        s.log_profile = s.log_profile.time_scaled(k);
        s
    }
}

/// Combined timing + data I/O manager for all three storage tiers.
pub struct IoManager {
    setup: DeviceSetup,
    page_size: usize,
    disk: StripedArray,
    disk_store: MemStore,
    ssd_dev: SimDevice,
    ssd_store: MemStore,
    /// Self-identification tag per SSD frame: the page id + 1 of the page
    /// last written there (0 = never written). Models the page-id header a
    /// real cache stores inside each cached page — persisted with the page
    /// at no extra I/O cost, and the basis of warm-restart validation.
    ssd_tags: Vec<std::sync::atomic::AtomicU64>,
    log_dev: SimDevice,
    log_lba: crate::sync::Mutex<u64>,
}

impl IoManager {
    pub fn new(setup: &DeviceSetup) -> Self {
        IoManager {
            setup: setup.clone(),
            page_size: setup.page_size,
            disk: StripedArray::from_aggregate("hdd", setup.disk_profile, setup.num_disks),
            disk_store: MemStore::new(setup.db_pages, setup.page_size),
            ssd_dev: SimDevice::new("ssd", setup.ssd_profile),
            ssd_store: MemStore::new(setup.ssd_frames, setup.page_size),
            ssd_tags: (0..setup.ssd_frames)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            log_dev: SimDevice::new("log", setup.log_profile),
            log_lba: crate::sync::Mutex::new(0),
        }
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The calibration this manager was built with.
    pub fn setup(&self) -> &DeviceSetup {
        &self.setup
    }

    pub fn db_pages(&self) -> u64 {
        self.disk_store.num_pages()
    }

    pub fn ssd_frames(&self) -> u64 {
        self.ssd_store.num_pages()
    }

    // ------------------------------------------------------------------
    // Database disk group
    // ------------------------------------------------------------------

    /// Synchronously read one database page.
    pub fn read_disk(&self, clk: &mut Clk, pid: PageId, buf: &mut [u8], hint: Locality) {
        let t = self
            .disk
            .submit_page(clk.now, IoKind::Read, pid, Some(hint));
        self.disk_store.read(pid, buf);
        clk.wait_until(t.complete);
    }

    /// Synchronously read the consecutive run `first .. first + n` as one
    /// multi-page request (read-ahead path, §3.3.3).
    ///
    /// The `hint` is advisory for the first page of each per-disk span:
    /// `Sequential` trusts the caller, anything else lets the devices
    /// auto-detect adjacency — so interleaved scan streams pay their
    /// real seeks.
    pub fn read_disk_run(
        &self,
        clk: &mut Clk,
        first: PageId,
        n: u64,
        hint: Locality,
    ) -> Vec<PageBuf> {
        let _ = hint; // adjacency is auto-detected per member span
        let t = self.disk.submit_run(clk.now, IoKind::Read, first, n, None);
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut buf = PageBuf::zeroed(self.page_size);
            self.disk_store.read(first.offset(i), buf.as_mut_slice());
            out.push(buf);
        }
        clk.wait_until(t.complete);
        out
    }

    /// Asynchronously write one database page; returns the completion time.
    /// The store is updated immediately so later reads observe the data.
    pub fn write_disk_async(&self, now: Time, pid: PageId, data: &[u8], hint: Locality) -> Time {
        let t = self.disk.submit_page(now, IoKind::Write, pid, Some(hint));
        self.disk_store.write(pid, data);
        t.complete
    }

    /// Synchronously write one database page.
    pub fn write_disk_sync(&self, clk: &mut Clk, pid: PageId, data: &[u8], hint: Locality) {
        let done = self.write_disk_async(clk.now, pid, data, hint);
        clk.wait_until(done);
    }

    /// Asynchronously write a consecutive run of pages as one request
    /// (group cleaning, §3.3.5). `pages[i]` is written to `first + i`.
    pub fn write_disk_run_async(&self, now: Time, first: PageId, pages: &[&[u8]]) -> Time {
        assert!(!pages.is_empty());
        let t = self.disk.submit_run(
            now,
            IoKind::Write,
            first,
            pages.len() as u64,
            // First page still seeks; the rest stream.
            Some(Locality::Random),
        );
        for (i, data) in pages.iter().enumerate() {
            self.disk_store.write(first.offset(i as u64), data);
        }
        t.complete
    }

    /// Outstanding request count on the disk group.
    pub fn disk_queue_depth(&self, now: Time) -> usize {
        self.disk.queue_depth(now)
    }

    // ------------------------------------------------------------------
    // SSD buffer-pool file
    // ------------------------------------------------------------------

    /// Synchronously read one SSD frame.
    pub fn read_ssd(&self, clk: &mut Clk, frame: u64, buf: &mut [u8]) {
        let t = self
            .ssd_dev
            .submit(clk.now, IoKind::Read, frame, 1, Some(Locality::Random));
        self.ssd_store.read(PageId(frame), buf);
        clk.wait_until(t.complete);
    }

    /// Asynchronously write one SSD frame; returns completion time. `tag`
    /// is the database page the frame now caches (stored as an in-page
    /// header, see `ssd_tag`).
    pub fn write_ssd_async(&self, now: Time, frame: u64, data: &[u8], tag: PageId) -> Time {
        let t = self
            .ssd_dev
            .submit(now, IoKind::Write, frame, 1, Some(Locality::Random));
        self.ssd_store.write(PageId(frame), data);
        self.ssd_tags[frame as usize].store(tag.0 + 1, std::sync::atomic::Ordering::Relaxed);
        t.complete
    }

    /// Synchronously write one SSD frame.
    pub fn write_ssd_sync(&self, clk: &mut Clk, frame: u64, data: &[u8], tag: PageId) {
        let done = self.write_ssd_async(clk.now, frame, data, tag);
        clk.wait_until(done);
    }

    /// The page id cached in `frame` per its in-page header, if any. This
    /// survives restarts (it lives in the frame itself).
    pub fn ssd_tag(&self, frame: u64) -> Option<PageId> {
        let t = self.ssd_tags[frame as usize].load(std::sync::atomic::Ordering::Relaxed);
        (t != 0).then(|| PageId(t - 1))
    }

    /// Pending I/O count on the SSD — the quantity the throttle-control
    /// optimization (threshold `mu`, §3.3.2) monitors.
    pub fn ssd_queue_depth(&self, now: Time) -> usize {
        self.ssd_dev.queue_depth(now)
    }

    /// Throttle-control predicate: is the SSD overloaded around `now`,
    /// with more than `mu` requests' worth of capacity booked?
    pub fn ssd_overloaded(&self, now: Time, mu: usize) -> bool {
        self.ssd_dev.overloaded(now, mu)
    }

    // ------------------------------------------------------------------
    // Log device
    // ------------------------------------------------------------------

    /// Synchronously append `nbytes` to the log (group flush). The log is a
    /// pure stream of sequential writes on its dedicated device; service
    /// time is charged per byte (amortized group commit — many commits
    /// share each physical log write, so a commit of a few hundred bytes
    /// does not pay for a whole page).
    pub fn append_log(&self, clk: &mut Clk, nbytes: usize) {
        let seq_ns = self.setup.log_profile.seq_write_ns;
        let service =
            ((nbytes.max(1) as u128 * seq_ns as u128) / self.page_size as u128).max(1) as Time;
        let npages = (nbytes.max(1)).div_ceil(self.page_size) as u64;
        {
            let mut g = self.log_lba.lock();
            *g += npages;
        }
        let t = self
            .log_dev
            .submit_duration(clk.now, IoKind::Write, service, npages);
        clk.wait_until(t.complete);
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Aggregate disk-group statistics.
    pub fn disk_stats(&self) -> crate::stats::StatSnapshot {
        self.disk.stats_snapshot()
    }

    pub fn ssd_stats(&self) -> crate::stats::StatSnapshot {
        self.ssd_dev.stats().snapshot()
    }

    pub fn log_stats(&self) -> crate::stats::StatSnapshot {
        self.log_dev.stats().snapshot()
    }

    /// Enable time-bucketed traffic series on the disk group and the SSD
    /// (Figure 8 support).
    pub fn enable_series(&self, bucket_ns: Time) {
        self.disk.enable_series(bucket_ns);
        self.ssd_dev.stats().enable_series(bucket_ns);
    }

    /// Disk-group traffic series: `(bucket_start, read_pages, write_pages)`.
    pub fn disk_series(&self) -> Vec<(Time, u64, u64)> {
        self.disk.series()
    }

    /// SSD traffic series.
    pub fn ssd_series(&self) -> Vec<(Time, u64, u64)> {
        self.ssd_dev.stats().series()
    }

    /// Reset all device *timing* state — capacity bookings, queues,
    /// sequential positions — while keeping statistics and data. Called at
    /// restart so a recovered system starts with idle devices at virtual
    /// time zero.
    pub fn reset_device_time(&self) {
        self.disk.reset_time();
        self.ssd_dev.reset_time();
        self.log_dev.reset_time();
    }

    /// Reset all device statistics (e.g. between warm-up and measurement).
    pub fn reset_stats(&self) {
        self.disk.reset_stats();
        self.ssd_dev.stats().reset();
        self.log_dev.stats().reset();
    }

    /// Direct access to the persistent database bytes, bypassing timing.
    /// Used by recovery (replaying the log onto the database) and by tests
    /// that inspect the "on disk" state after a simulated crash.
    pub fn disk_store(&self) -> &dyn PageStore {
        &self.disk_store
    }

    /// Direct access to the SSD bytes, bypassing timing (tests only; the
    /// paper's designs never read the SSD after a restart).
    pub fn ssd_store(&self) -> &dyn PageStore {
        &self.ssd_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io() -> IoManager {
        IoManager::new(&DeviceSetup::paper(64, 128, 16))
    }

    #[test]
    fn disk_write_then_read_round_trips_and_charges_time() {
        let io = io();
        let mut clk = Clk::new();
        let data = vec![3u8; 64];
        io.write_disk_sync(&mut clk, PageId(5), &data, Locality::Random);
        let after_write = clk.now;
        assert!(after_write > 0);
        let mut buf = vec![0u8; 64];
        io.read_disk(&mut clk, PageId(5), &mut buf, Locality::Random);
        assert_eq!(buf, data);
        assert!(clk.now > after_write);
    }

    #[test]
    fn async_write_does_not_advance_clock_but_is_visible() {
        let io = io();
        let mut clk = Clk::new();
        let done = io.write_disk_async(clk.now, PageId(1), &[9u8; 64], Locality::Random);
        assert_eq!(clk.now, 0);
        assert!(done > 0);
        let mut buf = vec![0u8; 64];
        io.read_disk(&mut clk, PageId(1), &mut buf, Locality::Random);
        assert_eq!(buf[0], 9);
        // The read queued behind the async write on the same disk.
        assert!(clk.now >= done);
    }

    #[test]
    fn run_read_returns_pages_in_order() {
        let io = io();
        let mut clk = Clk::new();
        for i in 0..4u64 {
            io.write_disk_async(0, PageId(10 + i), &[i as u8; 64], Locality::Sequential);
        }
        let pages = io.read_disk_run(&mut clk, PageId(10), 4, Locality::Sequential);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.as_slice()[0], i as u8);
        }
    }

    #[test]
    fn ssd_round_trip() {
        let io = io();
        let mut clk = Clk::new();
        io.write_ssd_sync(&mut clk, 3, &[0xCD; 64], PageId(77));
        let mut buf = vec![0u8; 64];
        io.read_ssd(&mut clk, 3, &mut buf);
        assert_eq!(buf[0], 0xCD);
        assert_eq!(io.ssd_stats().read_pages, 1);
        assert_eq!(io.ssd_stats().write_pages, 1);
        assert_eq!(io.ssd_tag(3), Some(PageId(77)));
        assert_eq!(io.ssd_tag(4), None);
    }

    #[test]
    fn log_appends_are_sequential_and_advance_clock() {
        let io = io();
        let mut clk = Clk::new();
        io.append_log(&mut clk, 10);
        let first = clk.now;
        io.append_log(&mut clk, 200);
        assert!(clk.now > first);
        // 10 bytes -> 1 page, 200 bytes -> 4 pages (64-byte pages).
        assert_eq!(io.log_stats().write_pages, 5);
    }

    #[test]
    fn queue_depth_reflects_outstanding_async_writes() {
        let io = io();
        for f in 0..5 {
            io.write_ssd_async(0, f, &[0u8; 64], PageId(f));
        }
        assert!(io.ssd_queue_depth(0) >= 4);
        let far = 10 * crate::clock::SECOND;
        assert_eq!(io.ssd_queue_depth(far), 0);
    }
}
