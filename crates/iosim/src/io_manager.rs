//! The disk manager: one facade over the database disk array, the SSD, and
//! the log device, combining timing (devices) with data (stores).
//!
//! This is the component the buffer manager and the SSD manager talk to
//! (Figure 1 of the paper). Reads are synchronous — the caller's virtual
//! clock advances to the completion time. Writes come in both synchronous
//! and asynchronous flavors; asynchronous writes charge device time (and so
//! delay later requests on the same device) without advancing the caller's
//! clock, mirroring the write-behind I/O of the paper's disk manager.

use std::sync::Arc;

use crate::array::StripedArray;
use crate::clock::{Clk, Time};
use crate::crashsched::{BoundaryKind, CrashSwitch, WriteFate};
use crate::device::{DeviceProfile, IoKind, Locality, SimDevice};
use crate::fault::{self, FaultDevice, FaultPlan, IoError, IoErrorKind};
use crate::health::{FailSlowConfig, FailSlowDetector, FailSlowStats};
use crate::page::{PageBuf, PageId};
use crate::profiles;
use crate::store::{MemStore, PageStore};
use crate::sync::RwLock;

/// Sizing and calibration of the simulated storage subsystem.
#[derive(Clone, Debug)]
pub struct DeviceSetup {
    /// Page size in bytes (8192 in the paper; tests use smaller pages).
    pub page_size: usize,
    /// Capacity of the database file group, in pages.
    pub db_pages: u64,
    /// Capacity of the SSD buffer-pool file, in frames (the paper's `S`).
    pub ssd_frames: u64,
    /// Member count of the striped disk group (8 in the paper).
    pub num_disks: u64,
    /// Aggregate profile of the whole disk group.
    pub disk_profile: DeviceProfile,
    /// SSD profile.
    pub ssd_profile: DeviceProfile,
    /// Log device profile.
    pub log_profile: DeviceProfile,
}

impl DeviceSetup {
    /// The paper's testbed calibration (Table 1) with caller-chosen sizes.
    pub fn paper(page_size: usize, db_pages: u64, ssd_frames: u64) -> Self {
        DeviceSetup {
            page_size,
            db_pages,
            ssd_frames,
            num_disks: profiles::PAPER_NUM_DISKS,
            disk_profile: profiles::hdd_array_profile(),
            ssd_profile: profiles::ssd_profile(),
            log_profile: profiles::log_disk_profile(),
        }
    }

    /// The paper calibration with all device service times multiplied by
    /// `k` (see [`crate::device::DeviceProfile::time_scaled`]): used with
    /// `1/k`-scaled database sizes so that every ratio the evaluation
    /// depends on is preserved.
    pub fn paper_time_scaled(page_size: usize, db_pages: u64, ssd_frames: u64, k: f64) -> Self {
        let mut s = Self::paper(page_size, db_pages, ssd_frames);
        s.disk_profile = s.disk_profile.time_scaled(k);
        s.ssd_profile = s.ssd_profile.time_scaled(k);
        s.log_profile = s.log_profile.time_scaled(k);
        s
    }

    /// Smallest service time any single request can take on any device
    /// in this setup — the conservative lookahead quantum for the
    /// parallel driver (`turbopool-workload`): no I/O submitted at or
    /// after virtual time `t` completes before `t + min_service_ns()`.
    /// The disk group is modeled as `num_disks` members each running at
    /// `1/num_disks` of the aggregate throughput, so the per-member
    /// profile is what bounds a single request.
    pub fn min_service_ns(&self) -> Time {
        self.disk_profile
            .per_member_of(self.num_disks)
            .min_service_ns()
            .min(self.ssd_profile.min_service_ns())
            .min(self.log_profile.min_service_ns())
    }
}

/// Combined timing + data I/O manager for all three storage tiers.
pub struct IoManager {
    setup: DeviceSetup,
    page_size: usize,
    disk: StripedArray,
    disk_store: MemStore,
    ssd_dev: SimDevice,
    ssd_store: MemStore,
    /// Self-identification tag per SSD frame: the page id + 1 of the page
    /// last written there (0 = never written). Models the page-id header a
    /// real cache stores inside each cached page — persisted with the page
    /// at no extra I/O cost, and the basis of warm-restart validation.
    ssd_tags: Vec<std::sync::atomic::AtomicU64>,
    /// FNV-1a checksum of the bytes each SSD frame was *meant* to hold,
    /// recorded at write submission and verified on every read. Models the
    /// in-page checksum a real cache stores beside the page-id header (same
    /// persistence argument as `ssd_tags`): injected torn writes and bit
    /// flips corrupt the stored bytes but not this intent record, so the
    /// next read detects the damage instead of returning bad bytes.
    ssd_sums: Vec<std::sync::atomic::AtomicU64>,
    log_dev: SimDevice,
    log_lba: crate::sync::Mutex<u64>,
    /// Fault stream for the database disk group, if any.
    disk_fault: RwLock<Option<Arc<FaultPlan>>>,
    /// Fault stream for the SSD, if any.
    ssd_fault: RwLock<Option<Arc<FaultPlan>>>,
    /// Pages whose most recent disk write was dropped by a failing device
    /// and never retried to success. The stored disk image (if any) is
    /// stale, so readers must not treat such a page as never-written and
    /// serve zeroes — see [`IoManager::disk_write_lost`].
    lost_disk_writes: crate::sync::Mutex<std::collections::HashSet<PageId>>,
    /// Fast-path flag: true while `lost_disk_writes` may be non-empty.
    any_lost_writes: std::sync::atomic::AtomicBool,
    /// Fail-slow detector for the disk group, fed by every disk request.
    disk_health: FailSlowDetector,
    /// Fail-slow detector for the SSD, fed by every SSD request.
    ssd_health: FailSlowDetector,
    /// Crash-schedule switch, if attached: numbers every durable-write
    /// boundary and can kill power at an exact one (see [`CrashSwitch`]).
    crash_switch: RwLock<Option<Arc<CrashSwitch>>>,
}

impl IoManager {
    pub fn new(setup: &DeviceSetup) -> Self {
        IoManager {
            setup: setup.clone(),
            page_size: setup.page_size,
            disk: StripedArray::from_aggregate("hdd", setup.disk_profile, setup.num_disks),
            disk_store: MemStore::new(setup.db_pages, setup.page_size),
            ssd_dev: SimDevice::new("ssd", setup.ssd_profile),
            ssd_store: MemStore::new(setup.ssd_frames, setup.page_size),
            ssd_tags: (0..setup.ssd_frames)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            ssd_sums: (0..setup.ssd_frames)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            log_dev: SimDevice::new("log", setup.log_profile),
            log_lba: crate::sync::Mutex::new(0),
            disk_fault: RwLock::new(None),
            ssd_fault: RwLock::new(None),
            lost_disk_writes: crate::sync::Mutex::new(std::collections::HashSet::new()),
            any_lost_writes: std::sync::atomic::AtomicBool::new(false),
            // Single-request baselines: the disk detector watches one
            // member's service time (a striped request occupies one
            // spindle), the SSD detector its whole device.
            disk_health: FailSlowDetector::from_profile(
                &setup.disk_profile.per_member_of(setup.num_disks.max(1)),
                FailSlowConfig::default(),
            ),
            ssd_health: FailSlowDetector::from_profile(
                &setup.ssd_profile,
                FailSlowConfig::default(),
            ),
            crash_switch: RwLock::new(None),
        }
    }

    // ------------------------------------------------------------------
    // Crash scheduling
    // ------------------------------------------------------------------

    /// Attach (or detach, with `None`) a crash-schedule switch. Every
    /// subsequent durable write consults it; once it fires, all I/O on all
    /// devices fails `DeviceDead` until the switch is detached (power is
    /// restored by the next incarnation removing or replacing it).
    pub fn set_crash_switch(&self, sw: Option<Arc<CrashSwitch>>) {
        *self.crash_switch.write() = sw;
    }

    /// The currently attached crash switch, if any.
    pub fn crash_switch(&self) -> Option<Arc<CrashSwitch>> {
        self.crash_switch.read().clone()
    }

    /// Is a fired crash switch attached — i.e. has simulated power been
    /// lost? While true, every device rejects every request.
    pub fn power_lost(&self) -> bool {
        self.crash_switch.read().as_ref().is_some_and(|s| s.fired())
    }

    /// Consult the crash switch for one durable-write boundary of `kind`.
    fn boundary_fate(&self, kind: BoundaryKind) -> WriteFate {
        match self.crash_switch.read().as_ref() {
            Some(sw) => sw.on_write(kind),
            None => WriteFate::Persist,
        }
    }

    fn power_err(device: FaultDevice, at: Time) -> IoError {
        IoError::new(device, IoErrorKind::DeviceDead, at)
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /// Attach (or detach, with `None`) a fault stream to the disk group.
    pub fn set_disk_fault(&self, plan: Option<Arc<FaultPlan>>) {
        *self.disk_fault.write() = plan;
    }

    /// Attach (or detach, with `None`) a fault stream to the SSD.
    pub fn set_ssd_fault(&self, plan: Option<Arc<FaultPlan>>) {
        *self.ssd_fault.write() = plan;
    }

    /// The currently attached disk fault stream, if any.
    pub fn disk_fault(&self) -> Option<Arc<FaultPlan>> {
        self.disk_fault.read().clone()
    }

    /// The currently attached SSD fault stream, if any.
    pub fn ssd_fault(&self) -> Option<Arc<FaultPlan>> {
        self.ssd_fault.read().clone()
    }

    fn plan_for(&self, device: FaultDevice) -> Option<Arc<FaultPlan>> {
        match device {
            FaultDevice::Disk => self.disk_fault.read().clone(),
            FaultDevice::Ssd => self.ssd_fault.read().clone(),
        }
    }

    /// Gate a read on `device` at `now`: `Ok(extra_latency)` or an error.
    fn gate_read(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        match self.plan_for(device) {
            Some(p) => p.before_read(device, now),
            None => Ok(0),
        }
    }

    /// Gate a write on `device` at `now`, as [`Self::gate_read`].
    fn gate_write(&self, device: FaultDevice, now: Time) -> Result<Time, IoError> {
        match self.plan_for(device) {
            Some(p) => p.before_write(device, now),
            None => Ok(0),
        }
    }

    /// The brownout service-time multiplier for a request admitted to
    /// `device` at `now` (1 outside brownout windows).
    fn service_scale(&self, device: FaultDevice, now: Time) -> u32 {
        match self.plan_for(device) {
            Some(p) => p.service_factor(now),
            None => 1,
        }
    }

    // ------------------------------------------------------------------
    // Fail-slow detection
    // ------------------------------------------------------------------

    /// Per-page *service* latency of a completed ticket, plus any
    /// fault-injected extra. Service time — not end-to-end latency — is
    /// what the detectors sample: queue wait grows with healthy load
    /// (saturation is the normal state under aggressive filling), while
    /// service time only grows when the device itself slows down, which
    /// is exactly the brownout signature.
    fn observed_ns(t: &crate::device::IoTicket, extra: Time, npages: u64) -> Time {
        t.complete.saturating_sub(t.start) / npages.max(1) + extra
    }

    /// Replace both detectors' tuning knobs (learned state restarts).
    pub fn configure_failslow(&self, cfg: FailSlowConfig) {
        self.disk_health.configure(cfg);
        self.ssd_health.configure(cfg);
    }

    /// Is the SSD currently flagged fail-slow?
    pub fn ssd_slow(&self) -> bool {
        self.ssd_health.is_degraded()
    }

    /// Is the disk group currently flagged fail-slow?
    pub fn disk_slow(&self) -> bool {
        self.disk_health.is_degraded()
    }

    /// Is the SSD degraded but part-way through a fast-sample streak
    /// (recovery pending confirmation)? Hedging layers burst canary
    /// probes while this holds.
    pub fn ssd_clearing(&self) -> bool {
        self.ssd_health.clearing()
    }

    /// Snapshot of the SSD fail-slow detector.
    pub fn ssd_failslow(&self) -> FailSlowStats {
        self.ssd_health.stats()
    }

    /// Snapshot of the disk-group fail-slow detector.
    pub fn disk_failslow(&self) -> FailSlowStats {
        self.disk_health.stats()
    }

    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The calibration this manager was built with.
    pub fn setup(&self) -> &DeviceSetup {
        &self.setup
    }

    pub fn db_pages(&self) -> u64 {
        self.disk_store.num_pages()
    }

    pub fn ssd_frames(&self) -> u64 {
        self.ssd_store.num_pages()
    }

    // ------------------------------------------------------------------
    // Database disk group
    // ------------------------------------------------------------------

    /// Synchronously read one database page.
    pub fn read_disk(
        &self,
        clk: &mut Clk,
        pid: PageId,
        buf: &mut [u8],
        hint: Locality,
    ) -> Result<(), IoError> {
        if self.power_lost() {
            return Err(Self::power_err(FaultDevice::Disk, clk.now));
        }
        let extra = self.gate_read(FaultDevice::Disk, clk.now)?;
        let scale = self.service_scale(FaultDevice::Disk, clk.now);
        let depth = self.disk.queue_depth(clk.now);
        let t = self
            .disk
            .submit_page_scaled(clk.now, IoKind::Read, pid, Some(hint), scale);
        self.disk_store.read(pid, buf);
        let done = t.complete + extra;
        self.disk_health
            .observe(Self::observed_ns(&t, extra, 1), depth);
        clk.wait_until(done);
        Ok(())
    }

    /// Synchronously read the consecutive run `first .. first + n` as one
    /// multi-page request (read-ahead path, §3.3.3).
    ///
    /// The `hint` is advisory for the first page of each per-disk span:
    /// `Sequential` trusts the caller, anything else lets the devices
    /// auto-detect adjacency — so interleaved scan streams pay their
    /// real seeks.
    pub fn read_disk_run(
        &self,
        clk: &mut Clk,
        first: PageId,
        n: u64,
        hint: Locality,
    ) -> Result<Vec<PageBuf>, IoError> {
        let _ = hint; // adjacency is auto-detected per member span
        if self.power_lost() {
            return Err(Self::power_err(FaultDevice::Disk, clk.now));
        }
        let extra = self.gate_read(FaultDevice::Disk, clk.now)?;
        let scale = self.service_scale(FaultDevice::Disk, clk.now);
        let depth = self.disk.queue_depth(clk.now);
        let t = self
            .disk
            .submit_run_scaled(clk.now, IoKind::Read, first, n, None, scale);
        let mut out = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut buf = PageBuf::zeroed(self.page_size);
            self.disk_store.read(first.offset(i), buf.as_mut_slice());
            out.push(buf);
        }
        let done = t.complete + extra;
        self.disk_health
            .observe(Self::observed_ns(&t, extra, n), depth);
        clk.wait_until(done);
        Ok(out)
    }

    /// Asynchronously write one database page; returns the completion time.
    /// The store is updated immediately so later reads observe the data.
    pub fn write_disk_async(
        &self,
        now: Time,
        pid: PageId,
        data: &[u8],
        hint: Locality,
    ) -> Result<Time, IoError> {
        match self.boundary_fate(BoundaryKind::DiskPage) {
            WriteFate::Persist => {}
            // A torn page write persists nothing in this model (pages are
            // the disk's atomicity unit only when the write completes), so
            // torn and dropped coincide: the stored image is stale.
            WriteFate::Torn | WriteFate::Dropped => {
                self.mark_lost_write(pid);
                return Err(Self::power_err(FaultDevice::Disk, now));
            }
        }
        let extra = match self.gate_write(FaultDevice::Disk, now) {
            Ok(extra) => extra,
            Err(e) => {
                self.mark_lost_write(pid);
                return Err(e);
            }
        };
        let scale = self.service_scale(FaultDevice::Disk, now);
        let depth = self.disk.queue_depth(now);
        let t = self
            .disk
            .submit_page_scaled(now, IoKind::Write, pid, Some(hint), scale);
        self.disk_store.write(pid, data);
        self.clear_lost_write(pid);
        let done = t.complete + extra;
        self.disk_health
            .observe(Self::observed_ns(&t, extra, 1), depth);
        Ok(done)
    }

    /// Synchronously write one database page.
    pub fn write_disk_sync(
        &self,
        clk: &mut Clk,
        pid: PageId,
        data: &[u8],
        hint: Locality,
    ) -> Result<(), IoError> {
        let done = self.write_disk_async(clk.now, pid, data, hint)?;
        clk.wait_until(done);
        Ok(())
    }

    /// Asynchronously write a consecutive run of pages as one request
    /// (group cleaning, §3.3.5). `pages[i]` is written to `first + i`.
    ///
    /// A torn multi-page write persists only a prefix of the run and then
    /// reports failure — the disk tier never corrupts silently, but a
    /// failed run may still have advanced some of its pages (exactly the
    /// partial-persistence window a real `writev` failure leaves behind).
    pub fn write_disk_run_async(
        &self,
        now: Time,
        first: PageId,
        pages: &[&[u8]],
    ) -> Result<Time, IoError> {
        assert!(!pages.is_empty());
        if self.crash_switch.read().is_some() {
            // One boundary per page: a crash can land inside the run. The
            // prefix that persisted before the cut is written; the cut page
            // and the rest never reached the platters.
            let mut keep = pages.len();
            for i in 0..pages.len() {
                match self.boundary_fate(BoundaryKind::DiskPage) {
                    WriteFate::Persist => {}
                    WriteFate::Torn | WriteFate::Dropped => {
                        keep = i;
                        break;
                    }
                }
            }
            if keep < pages.len() {
                for (i, data) in pages.iter().take(keep).enumerate() {
                    self.disk_store.write(first.offset(i as u64), data);
                    self.clear_lost_write(first.offset(i as u64));
                }
                for i in keep..pages.len() {
                    self.mark_lost_write(first.offset(i as u64));
                }
                return Err(Self::power_err(FaultDevice::Disk, now));
            }
        }
        let extra = match self.gate_write(FaultDevice::Disk, now) {
            Ok(extra) => extra,
            Err(e) => {
                for i in 0..pages.len() {
                    self.mark_lost_write(first.offset(i as u64));
                }
                return Err(e);
            }
        };
        let plan = self.plan_for(FaultDevice::Disk);
        let torn = plan.as_ref().and_then(|p| p.torn_prefix(pages.len()));
        let persisted = torn.unwrap_or(pages.len());
        let scale = plan.as_ref().map_or(1, |p| p.service_factor(now));
        let depth = self.disk.queue_depth(now);
        let t = self.disk.submit_run_scaled(
            now,
            IoKind::Write,
            first,
            persisted as u64,
            // First page still seeks; the rest stream.
            Some(Locality::Random),
            scale,
        );
        for (i, data) in pages.iter().take(persisted).enumerate() {
            self.disk_store.write(first.offset(i as u64), data);
            self.clear_lost_write(first.offset(i as u64));
        }
        for i in persisted..pages.len() {
            // The torn tail never reached the platter; until a retry lands
            // it, these pages must not read as fresh.
            self.mark_lost_write(first.offset(i as u64));
        }
        let done = t.complete + extra;
        self.disk_health
            .observe(Self::observed_ns(&t, extra, persisted.max(1) as u64), depth);
        if torn.is_some() {
            return Err(IoError::new(
                FaultDevice::Disk,
                IoErrorKind::TransientWrite,
                now,
            ));
        }
        Ok(done)
    }

    /// Record that the most recent durable write of `pid` never reached the
    /// disk and was abandoned (no further retries planned). Used by salvage
    /// paths that give up on a permanently failing device: the page must
    /// fail loudly on its next read rather than serve a stale image.
    pub fn note_lost_write(&self, pid: PageId) {
        self.mark_lost_write(pid);
    }

    fn mark_lost_write(&self, pid: PageId) {
        self.lost_disk_writes.lock().insert(pid);
        self.any_lost_writes
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn clear_lost_write(&self, pid: PageId) {
        if self
            .any_lost_writes
            .load(std::sync::atomic::Ordering::Acquire)
        {
            let mut lost = self.lost_disk_writes.lock();
            lost.remove(&pid);
            if lost.is_empty() {
                self.any_lost_writes
                    .store(false, std::sync::atomic::Ordering::Release);
            }
        }
    }

    /// True if `pid`'s most recent disk write was dropped by a failing
    /// device and never retried to success. The write-behind retry
    /// policies absorb transient errors, so in practice this only fires
    /// after whole-device death — but while it is set, the disk image of
    /// `pid` is stale (or absent) and the page must not be classified as
    /// never-written: a read has to touch the device and surface the
    /// error so the transaction is poisoned instead of served zeroes.
    pub fn disk_write_lost(&self, pid: PageId) -> bool {
        self.any_lost_writes
            .load(std::sync::atomic::Ordering::Acquire)
            && self.lost_disk_writes.lock().contains(&pid)
    }

    /// Outstanding request count on the disk group.
    pub fn disk_queue_depth(&self, now: Time) -> usize {
        self.disk.queue_depth(now)
    }

    // ------------------------------------------------------------------
    // SSD buffer-pool file
    // ------------------------------------------------------------------

    /// Synchronously read one SSD frame, verifying the frame checksum.
    ///
    /// An injected torn write or bit flip surfaces here as
    /// [`IoErrorKind::ChecksumMismatch`] — the caller gets an error, never
    /// silently corrupted bytes. The frame contents (possibly damaged) are
    /// still in `buf` for forensics; callers must not use them as page data.
    pub fn read_ssd(&self, clk: &mut Clk, frame: u64, buf: &mut [u8]) -> Result<(), IoError> {
        if self.power_lost() {
            return Err(Self::power_err(FaultDevice::Ssd, clk.now));
        }
        let extra = self.gate_read(FaultDevice::Ssd, clk.now)?;
        let scale = self.service_scale(FaultDevice::Ssd, clk.now);
        let depth = self.ssd_dev.queue_depth(clk.now);
        let t = self.ssd_dev.submit_scaled(
            clk.now,
            IoKind::Read,
            frame,
            1,
            Some(Locality::Random),
            scale,
        );
        self.ssd_store.read(PageId(frame), buf);
        let done = t.complete + extra;
        self.ssd_health
            .observe(Self::observed_ns(&t, extra, 1), depth);
        clk.wait_until(done);
        let written = self.ssd_tags[frame as usize].load(std::sync::atomic::Ordering::Relaxed) != 0;
        if written
            && fault::checksum(buf)
                != self.ssd_sums[frame as usize].load(std::sync::atomic::Ordering::Relaxed)
        {
            return Err(IoError::new(
                FaultDevice::Ssd,
                IoErrorKind::ChecksumMismatch,
                clk.now,
            ));
        }
        Ok(())
    }

    /// Asynchronously write one SSD frame; returns completion time. `tag`
    /// is the database page the frame now caches (stored as an in-page
    /// header, see `ssd_tag`).
    ///
    /// The checksum of the *intended* bytes is always recorded; injected
    /// silent corruption (torn prefix, bit flip) damages only the stored
    /// copy, so the next [`Self::read_ssd`] of this frame detects it.
    pub fn write_ssd_async(
        &self,
        now: Time,
        frame: u64,
        data: &[u8],
        tag: PageId,
    ) -> Result<Time, IoError> {
        match self.boundary_fate(BoundaryKind::SsdFrame) {
            WriteFate::Persist => {}
            WriteFate::Torn => {
                // Power died mid-frame: a deterministic half-frame prefix
                // of the new bytes lands over the old tail, while the
                // intent records (tag + checksum of the full new bytes)
                // are updated — so the next read of this frame reports
                // `ChecksumMismatch` instead of serving the hybrid.
                let keep = (self.page_size / 2).max(1).min(data.len());
                let mut merged = vec![0u8; self.page_size];
                self.ssd_store.read(PageId(frame), &mut merged);
                merged[..keep].copy_from_slice(&data[..keep]);
                self.ssd_store.write(PageId(frame), &merged);
                self.ssd_sums[frame as usize]
                    .store(fault::checksum(data), std::sync::atomic::Ordering::Relaxed);
                self.ssd_tags[frame as usize]
                    .store(tag.0 + 1, std::sync::atomic::Ordering::Relaxed);
                return Err(Self::power_err(FaultDevice::Ssd, now));
            }
            // Dropped: the old frame (tag, checksum, bytes) stays intact —
            // frame-granularity atomicity for a write that never started.
            WriteFate::Dropped => return Err(Self::power_err(FaultDevice::Ssd, now)),
        }
        let extra = self.gate_write(FaultDevice::Ssd, now)?;
        let scale = self.service_scale(FaultDevice::Ssd, now);
        let depth = self.ssd_dev.queue_depth(now);
        let t =
            self.ssd_dev
                .submit_scaled(now, IoKind::Write, frame, 1, Some(Locality::Random), scale);
        self.ssd_health
            .observe(Self::observed_ns(&t, extra, 1), depth);
        let plan = self.plan_for(FaultDevice::Ssd);
        if let Some(len) = plan.as_ref().and_then(|p| p.torn_prefix(data.len())) {
            // Torn frame: the new prefix lands over the old frame tail.
            let mut merged = vec![0u8; self.page_size];
            self.ssd_store.read(PageId(frame), &mut merged);
            merged[..len].copy_from_slice(&data[..len]);
            self.ssd_store.write(PageId(frame), &merged);
        } else if let Some((byte, mask)) = plan.as_ref().and_then(|p| p.bitflip(data.len())) {
            let mut flipped = data.to_vec();
            flipped[byte] ^= mask;
            self.ssd_store.write(PageId(frame), &flipped);
        } else {
            self.ssd_store.write(PageId(frame), data);
        }
        self.ssd_sums[frame as usize]
            .store(fault::checksum(data), std::sync::atomic::Ordering::Relaxed);
        self.ssd_tags[frame as usize].store(tag.0 + 1, std::sync::atomic::Ordering::Relaxed);
        Ok(t.complete + extra)
    }

    /// Synchronously write one SSD frame.
    pub fn write_ssd_sync(
        &self,
        clk: &mut Clk,
        frame: u64,
        data: &[u8],
        tag: PageId,
    ) -> Result<(), IoError> {
        let done = self.write_ssd_async(clk.now, frame, data, tag)?;
        clk.wait_until(done);
        Ok(())
    }

    /// The page id cached in `frame` per its in-page header, if any. This
    /// survives restarts (it lives in the frame itself).
    pub fn ssd_tag(&self, frame: u64) -> Option<PageId> {
        let t = self.ssd_tags[frame as usize].load(std::sync::atomic::Ordering::Relaxed);
        (t != 0).then(|| PageId(t - 1))
    }

    /// Pending I/O count on the SSD — the quantity the throttle-control
    /// optimization (threshold `mu`, §3.3.2) monitors.
    pub fn ssd_queue_depth(&self, now: Time) -> usize {
        self.ssd_dev.queue_depth(now)
    }

    /// Throttle-control predicate: is the SSD overloaded around `now`,
    /// with more than `mu` requests' worth of capacity booked?
    pub fn ssd_overloaded(&self, now: Time, mu: usize) -> bool {
        self.ssd_dev.overloaded(now, mu)
    }

    // ------------------------------------------------------------------
    // Log device
    // ------------------------------------------------------------------

    /// Synchronously append `nbytes` to the log (group flush). The log is a
    /// pure stream of sequential writes on its dedicated device; service
    /// time is charged per byte (amortized group commit — many commits
    /// share each physical log write, so a commit of a few hundred bytes
    /// does not pay for a whole page).
    /// Consult the crash switch for one log group flush of `nbytes`.
    /// `Persist` means the flush reaches the log device in full; `Torn`
    /// means power died during the flush (the log manager persists all but
    /// the final byte, leaving a clean torn tail for recovery to truncate);
    /// `Dropped` means power was already off and nothing was written.
    pub fn log_flush_fate(&self, nbytes: usize) -> WriteFate {
        let _ = nbytes;
        self.boundary_fate(BoundaryKind::LogFlush)
    }

    pub fn append_log(&self, clk: &mut Clk, nbytes: usize) {
        let seq_ns = self.setup.log_profile.seq_write_ns;
        let service =
            ((nbytes.max(1) as u128 * seq_ns as u128) / self.page_size as u128).max(1) as Time;
        let npages = (nbytes.max(1)).div_ceil(self.page_size) as u64;
        {
            let mut g = self.log_lba.lock();
            *g += npages;
        }
        let t = self
            .log_dev
            .submit_duration(clk.now, IoKind::Write, service, npages);
        clk.wait_until(t.complete);
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    /// Aggregate disk-group statistics.
    pub fn disk_stats(&self) -> crate::stats::StatSnapshot {
        self.disk.stats_snapshot()
    }

    pub fn ssd_stats(&self) -> crate::stats::StatSnapshot {
        self.ssd_dev.stats().snapshot()
    }

    pub fn log_stats(&self) -> crate::stats::StatSnapshot {
        self.log_dev.stats().snapshot()
    }

    /// Enable time-bucketed traffic series on the disk group and the SSD
    /// (Figure 8 support).
    pub fn enable_series(&self, bucket_ns: Time) {
        self.disk.enable_series(bucket_ns);
        self.ssd_dev.stats().enable_series(bucket_ns);
    }

    /// Disk-group traffic series: `(bucket_start, read_pages, write_pages)`.
    pub fn disk_series(&self) -> Vec<(Time, u64, u64)> {
        self.disk.series()
    }

    /// SSD traffic series.
    pub fn ssd_series(&self) -> Vec<(Time, u64, u64)> {
        self.ssd_dev.stats().series()
    }

    /// Reset all device *timing* state — capacity bookings, queues,
    /// sequential positions — while keeping statistics and data. Called at
    /// restart so a recovered system starts with idle devices at virtual
    /// time zero.
    pub fn reset_device_time(&self) {
        self.disk.reset_time();
        self.ssd_dev.reset_time();
        self.log_dev.reset_time();
        // A rebooted machine starts with idle, presumed-healthy devices;
        // the detectors re-learn from the new incarnation's latencies
        // (their cumulative transition counts survive as history).
        self.disk_health.reset();
        self.ssd_health.reset();
    }

    /// Reset all device statistics (e.g. between warm-up and measurement).
    pub fn reset_stats(&self) {
        self.disk.reset_stats();
        self.ssd_dev.stats().reset();
        self.log_dev.stats().reset();
    }

    /// Direct access to the persistent database bytes, bypassing timing.
    /// Used by recovery (replaying the log onto the database) and by tests
    /// that inspect the "on disk" state after a simulated crash.
    pub fn disk_store(&self) -> &dyn PageStore {
        &self.disk_store
    }

    /// Direct access to the SSD bytes, bypassing timing (tests only; the
    /// paper's designs never read the SSD after a restart).
    pub fn ssd_store(&self) -> &dyn PageStore {
        &self.ssd_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn io() -> IoManager {
        IoManager::new(&DeviceSetup::paper(64, 128, 16))
    }

    #[test]
    fn disk_write_then_read_round_trips_and_charges_time() {
        let io = io();
        let mut clk = Clk::new();
        let data = vec![3u8; 64];
        io.write_disk_sync(&mut clk, PageId(5), &data, Locality::Random)
            .unwrap();
        let after_write = clk.now;
        assert!(after_write > 0);
        let mut buf = vec![0u8; 64];
        io.read_disk(&mut clk, PageId(5), &mut buf, Locality::Random)
            .unwrap();
        assert_eq!(buf, data);
        assert!(clk.now > after_write);
    }

    #[test]
    fn async_write_does_not_advance_clock_but_is_visible() {
        let io = io();
        let mut clk = Clk::new();
        let done = io
            .write_disk_async(clk.now, PageId(1), &[9u8; 64], Locality::Random)
            .unwrap();
        assert_eq!(clk.now, 0);
        assert!(done > 0);
        let mut buf = vec![0u8; 64];
        io.read_disk(&mut clk, PageId(1), &mut buf, Locality::Random)
            .unwrap();
        assert_eq!(buf[0], 9);
        // The read queued behind the async write on the same disk.
        assert!(clk.now >= done);
    }

    #[test]
    fn run_read_returns_pages_in_order() {
        let io = io();
        let mut clk = Clk::new();
        for i in 0..4u64 {
            io.write_disk_async(0, PageId(10 + i), &[i as u8; 64], Locality::Sequential)
                .unwrap();
        }
        let pages = io
            .read_disk_run(&mut clk, PageId(10), 4, Locality::Sequential)
            .unwrap();
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.as_slice()[0], i as u8);
        }
    }

    #[test]
    fn ssd_round_trip() {
        let io = io();
        let mut clk = Clk::new();
        io.write_ssd_sync(&mut clk, 3, &[0xCD; 64], PageId(77))
            .unwrap();
        let mut buf = vec![0u8; 64];
        io.read_ssd(&mut clk, 3, &mut buf).unwrap();
        assert_eq!(buf[0], 0xCD);
        assert_eq!(io.ssd_stats().read_pages, 1);
        assert_eq!(io.ssd_stats().write_pages, 1);
        assert_eq!(io.ssd_tag(3), Some(PageId(77)));
        assert_eq!(io.ssd_tag(4), None);
    }

    #[test]
    fn ssd_death_rejects_everything_after_the_instant() {
        let io = io();
        let mut clk = Clk::new();
        io.write_ssd_sync(&mut clk, 0, &[1u8; 64], PageId(9))
            .unwrap();
        let death = clk.now + 1;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::death(1, death)))));
        let mut buf = vec![0u8; 64];
        // Still alive right now (clk.now < death).
        io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        clk.wait_until(death);
        let e = io.read_ssd(&mut clk, 0, &mut buf).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::DeviceDead);
        assert_eq!(e.device, FaultDevice::Ssd);
        let e = io
            .write_ssd_async(clk.now, 1, &[0u8; 64], PageId(2))
            .unwrap_err();
        assert_eq!(e.kind, IoErrorKind::DeviceDead);
        // The disk is unaffected.
        io.write_disk_sync(&mut clk, PageId(0), &[5u8; 64], Locality::Random)
            .unwrap();
    }

    #[test]
    fn torn_ssd_write_is_caught_by_the_checksum() {
        let io = io();
        let mut clk = Clk::new();
        io.write_ssd_sync(&mut clk, 2, &[0x11; 64], PageId(4))
            .unwrap();
        let mut cfg = FaultConfig::quiet(5);
        cfg.torn_write_prob = 1.0;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(cfg))));
        io.write_ssd_sync(&mut clk, 2, &[0x22; 64], PageId(4))
            .unwrap();
        io.set_ssd_fault(None);
        let mut buf = vec![0u8; 64];
        let e = io.read_ssd(&mut clk, 2, &mut buf).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::ChecksumMismatch);
        // The damaged frame is a prefix of new bytes over old bytes.
        assert_eq!(buf[0], 0x22);
        assert_eq!(buf[63], 0x11);
    }

    #[test]
    fn bitflip_is_caught_by_the_checksum() {
        let io = io();
        let mut clk = Clk::new();
        let mut cfg = FaultConfig::quiet(6);
        cfg.bitflip_prob = 1.0;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(cfg))));
        io.write_ssd_sync(&mut clk, 7, &[0xAB; 64], PageId(1))
            .unwrap();
        io.set_ssd_fault(None);
        let mut buf = vec![0u8; 64];
        let e = io.read_ssd(&mut clk, 7, &mut buf).unwrap_err();
        assert_eq!(e.kind, IoErrorKind::ChecksumMismatch);
        // A clean rewrite repairs the frame.
        io.write_ssd_sync(&mut clk, 7, &[0xAB; 64], PageId(1))
            .unwrap();
        io.read_ssd(&mut clk, 7, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAB; 64]);
    }

    #[test]
    fn torn_disk_run_persists_prefix_and_reports_failure() {
        let io = io();
        let mut clk = Clk::new();
        let mut cfg = FaultConfig::quiet(0xBEEF);
        cfg.torn_write_prob = 1.0;
        io.set_disk_fault(Some(Arc::new(FaultPlan::new(cfg))));
        let pages: Vec<Vec<u8>> = (0..4).map(|i| vec![0x40 + i as u8; 64]).collect();
        let refs: Vec<&[u8]> = pages.iter().map(|p| p.as_slice()).collect();
        let e = io
            .write_disk_run_async(clk.now, PageId(20), &refs)
            .unwrap_err();
        assert_eq!(e.kind, IoErrorKind::TransientWrite);
        io.set_disk_fault(None);
        // Some strict prefix of the run landed; the tail reads as zeroes.
        let got = io
            .read_disk_run(&mut clk, PageId(20), 4, Locality::Sequential)
            .unwrap();
        let persisted = got.iter().take_while(|p| p.as_slice()[0] != 0).count();
        assert!((1..4).contains(&persisted), "persisted {persisted} pages");
        for (i, p) in got.iter().enumerate().take(persisted) {
            assert_eq!(p.as_slice()[0], 0x40 + i as u8);
        }
    }

    #[test]
    fn transient_disk_errors_replay_per_seed() {
        let run = || {
            let io = io();
            io.set_disk_fault(Some(Arc::new(FaultPlan::new(FaultConfig::transient(
                0xD15C, 0.25,
            )))));
            let mut clk = Clk::new();
            let mut buf = vec![0u8; 64];
            let outcomes: Vec<bool> = (0..64)
                .map(|i| {
                    io.read_disk(&mut clk, PageId(i % 8), &mut buf, Locality::Random)
                        .is_ok()
                })
                .collect();
            let stats = io.disk_fault().expect("plan attached").stats();
            (outcomes, stats)
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.read_errors > 0);
    }

    #[test]
    fn log_appends_are_sequential_and_advance_clock() {
        let io = io();
        let mut clk = Clk::new();
        io.append_log(&mut clk, 10);
        let first = clk.now;
        io.append_log(&mut clk, 200);
        assert!(clk.now > first);
        // 10 bytes -> 1 page, 200 bytes -> 4 pages (64-byte pages).
        assert_eq!(io.log_stats().write_pages, 5);
    }

    #[test]
    fn brownout_multiplies_ssd_service_and_trips_the_detector() {
        let io = io();
        let mut clk = Clk::new();
        // Healthy reference latency.
        io.write_ssd_sync(&mut clk, 0, &[1u8; 64], PageId(0))
            .unwrap();
        let mut buf = vec![0u8; 64];
        let t0 = clk.now;
        io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        let healthy = clk.now - t0;
        assert!(!io.ssd_slow());
        // Brown out the SSD from here to the far future at 20x.
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout_train(
            9,
            clk.now,
            u64::MAX,
            0,
            0,
            20,
        )))));
        let t1 = clk.now;
        io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        let slowed = clk.now - t1;
        assert!(
            slowed >= healthy * 20,
            "brownout must stretch service: {healthy} -> {slowed}"
        );
        // Sustained slowness flips the detector with hysteresis.
        for _ in 0..32 {
            io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        }
        assert!(io.ssd_slow(), "detector must trip during the brownout");
        let fs = io.ssd_failslow();
        assert!(fs.degraded);
        assert_eq!(fs.transitions, 1);
        assert!(fs.slow_samples > 0);
        assert!(
            io.ssd_fault().expect("attached").stats().brownout_slowdowns > 0,
            "slowdowns must be counted"
        );
        // The disk tier is untouched.
        assert!(!io.disk_slow());
    }

    #[test]
    fn detector_clears_after_the_brownout_window_ends() {
        let io = io();
        let mut clk = Clk::new();
        io.write_ssd_sync(&mut clk, 0, &[1u8; 64], PageId(0))
            .unwrap();
        let end = clk.now + 500 * crate::clock::MILLISECOND;
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout_train(
            2, 0, end, 0, 0, 30,
        )))));
        let mut buf = vec![0u8; 64];
        while clk.now < end {
            io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        }
        assert!(io.ssd_slow());
        // Healthy reads after the window: EWMA decays, flag clears.
        for _ in 0..200 {
            io.read_ssd(&mut clk, 0, &mut buf).unwrap();
            if !io.ssd_slow() {
                break;
            }
        }
        assert!(!io.ssd_slow(), "detector must clear after recovery");
        assert_eq!(io.ssd_failslow().transitions, 2);
    }

    #[test]
    fn disk_brownout_feeds_the_disk_detector() {
        let io = io();
        let mut clk = Clk::new();
        io.set_disk_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout_train(
            4,
            0,
            u64::MAX,
            0,
            0,
            25,
        )))));
        let mut buf = vec![0u8; 64];
        for i in 0..32 {
            io.read_disk(&mut clk, PageId(i % 8), &mut buf, Locality::Random)
                .unwrap();
        }
        assert!(io.disk_slow(), "sustained 25x disk slowness must trip");
        assert!(!io.ssd_slow());
    }

    #[test]
    fn reset_device_time_resets_detector_state() {
        let io = io();
        let mut clk = Clk::new();
        io.set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout_train(
            7,
            0,
            u64::MAX,
            0,
            0,
            40,
        )))));
        io.write_ssd_sync(&mut clk, 0, &[1u8; 64], PageId(0))
            .unwrap();
        let mut buf = vec![0u8; 64];
        for _ in 0..32 {
            io.read_ssd(&mut clk, 0, &mut buf).unwrap();
        }
        assert!(io.ssd_slow());
        io.reset_device_time();
        assert!(!io.ssd_slow(), "restart forgets the degraded flag");
    }

    #[test]
    fn queue_depth_reflects_outstanding_async_writes() {
        let io = io();
        for f in 0..5 {
            io.write_ssd_async(0, f, &[0u8; 64], PageId(f)).unwrap();
        }
        assert!(io.ssd_queue_depth(0) >= 4);
        let far = 10 * crate::clock::SECOND;
        assert_eq!(io.ssd_queue_depth(far), 0);
    }
}
