//! A single simulated storage device.
//!
//! # Timing model
//!
//! The device is a unit-rate server: every request consumes `service`
//! nanoseconds of device capacity. Capacity is tracked in a bucketed
//! *ledger* over virtual time: a request submitted at `now` consumes idle
//! capacity from `now` forward, completing once its full service amount is
//! accumulated. This is work-conserving and — crucially for a
//! discrete-event simulation whose clients execute whole transactions as
//! atomic steps — tolerant of out-of-order arrivals: when a client whose
//! clock lags submits a request, it uses capacity the device had idle at
//! that earlier time, rather than queueing behind requests that were
//! submitted (by wall-clock order) earlier but belong to a *later* virtual
//! time. Saturation behaves exactly like a FIFO queue: once a region of
//! time is fully booked, later requests spill forward, producing queueing
//! delay.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sync::Mutex;

use crate::clock::Time;
use crate::stats::DeviceStats;

/// Direction of an I/O request.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum IoKind {
    Read,
    Write,
}

/// Locality class of a page access.
///
/// The buffer manager classifies every page read as *sequential* (issued by
/// the read-ahead mechanism during a scan) or *random* (everything else);
/// the classification doubles as the SSD admission signal (paper §2.2).
/// Devices also auto-detect physical adjacency so that, absent a hint,
/// back-to-back adjacent requests get sequential service times.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Locality {
    Random,
    Sequential,
}

/// Per-(kind, locality) service time of one page-sized transfer, in virtual
/// nanoseconds.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeviceProfile {
    pub rand_read_ns: Time,
    pub seq_read_ns: Time,
    pub rand_write_ns: Time,
    pub seq_write_ns: Time,
}

impl DeviceProfile {
    /// Build a profile from sustained page-sized IOPS numbers, as reported
    /// by an Iometer-style calibration (Table 1 of the paper).
    pub fn from_iops(rand_read: f64, seq_read: f64, rand_write: f64, seq_write: f64) -> Self {
        let ns = |iops: f64| -> Time {
            assert!(iops > 0.0, "IOPS must be positive");
            (1e9 / iops).round() as Time
        };
        DeviceProfile {
            rand_read_ns: ns(rand_read),
            seq_read_ns: ns(seq_read),
            rand_write_ns: ns(rand_write),
            seq_write_ns: ns(seq_write),
        }
    }

    /// Service time of a single page transfer.
    #[inline]
    pub fn service_ns(&self, kind: IoKind, loc: Locality) -> Time {
        match (kind, loc) {
            (IoKind::Read, Locality::Random) => self.rand_read_ns,
            (IoKind::Read, Locality::Sequential) => self.seq_read_ns,
            (IoKind::Write, Locality::Random) => self.rand_write_ns,
            (IoKind::Write, Locality::Sequential) => self.seq_write_ns,
        }
    }

    /// Divide every throughput figure by `n`, modeling one member of an
    /// `n`-way array whose aggregate was calibrated as a whole.
    pub fn per_member_of(&self, n: u64) -> DeviceProfile {
        DeviceProfile {
            rand_read_ns: self.rand_read_ns * n,
            seq_read_ns: self.seq_read_ns * n,
            rand_write_ns: self.rand_write_ns * n,
            seq_write_ns: self.seq_write_ns * n,
        }
    }

    /// Multiply every service time by `k` — the benchmark harnesses slow
    /// all devices down by the same factor the database sizes were scaled
    /// down by, which leaves every rate *ratio* (and therefore hit rates,
    /// ramp-up shape and crossover points) identical to the unscaled system
    /// while dividing absolute throughput by `k`.
    pub fn time_scaled(&self, k: f64) -> DeviceProfile {
        assert!(k > 0.0);
        let s = |ns: Time| -> Time { ((ns as f64) * k).round().max(1.0) as Time };
        DeviceProfile {
            rand_read_ns: s(self.rand_read_ns),
            seq_read_ns: s(self.seq_read_ns),
            rand_write_ns: s(self.rand_write_ns),
            seq_write_ns: s(self.seq_write_ns),
        }
    }

    fn max_service(&self) -> Time {
        self.rand_read_ns
            .max(self.seq_read_ns)
            .max(self.rand_write_ns)
            .max(self.seq_write_ns)
    }

    /// Smallest service time any single request can take on this device —
    /// the conservative lookahead quantum of the parallel driver: no
    /// request submitted at or after time `t` can complete before
    /// `t + min_service_ns()`.
    pub fn min_service_ns(&self) -> Time {
        self.rand_read_ns
            .min(self.seq_read_ns)
            .min(self.rand_write_ns)
            .min(self.seq_write_ns)
            .max(1)
    }
}

/// Completion information for a submitted request.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IoTicket {
    /// When the device began servicing the request.
    pub start: Time,
    /// When the last byte transferred.
    pub complete: Time,
}

/// Work-conserving capacity ledger: tracks consumed service time per
/// fixed-width bucket of virtual time.
#[derive(Debug)]
struct Ledger {
    bucket_ns: Time,
    /// Used service time per bucket, starting at bucket `base`.
    used: Vec<Time>,
    base: u64,
}

impl Ledger {
    fn new(bucket_ns: Time) -> Self {
        Ledger {
            bucket_ns: bucket_ns.max(1),
            used: Vec::new(),
            base: 0,
        }
    }

    /// Consume `service` ns of capacity in the buckets from `now`'s bucket
    /// forward; returns the completion time (never earlier than
    /// `now + service`). Capacity is tracked at bucket granularity, so
    /// ordering within one bucket is approximate but total work is
    /// conserved exactly.
    fn schedule(&mut self, now: Time, service: Time) -> Time {
        debug_assert!(service > 0);
        let mut b = (now / self.bucket_ns).max(self.base);
        let mut remaining = service;
        #[allow(unused_assignments)]
        let mut end = 0;
        loop {
            let idx = (b - self.base) as usize;
            if idx >= self.used.len() {
                self.used.resize(idx + 1, 0);
            }
            let free = self.bucket_ns - self.used[idx];
            let take = free.min(remaining);
            if take > 0 {
                self.used[idx] += take;
                remaining -= take;
                end = b * self.bucket_ns + self.used[idx];
                if remaining == 0 {
                    break;
                }
            }
            b += 1;
        }
        end.max(now + service)
    }

    /// Free capacity within `[from, from + window)`.
    fn free_in_window(&self, from: Time, window: Time) -> Time {
        let mut free = 0;
        let first = (from / self.bucket_ns).max(self.base);
        let last = ((from + window).div_ceil(self.bucket_ns)).max(self.base);
        for b in first..last {
            let idx = (b - self.base) as usize;
            let used = self.used.get(idx).copied().unwrap_or(0);
            // Clip the bucket to the window (approximately: bucket
            // granularity matches the rest of the ledger).
            let b_start = b * self.bucket_ns;
            let b_end = b_start + self.bucket_ns;
            let clip = b_end.min(from + window).saturating_sub(b_start.max(from));
            free += clip.saturating_sub(used.min(clip));
        }
        free
    }

    /// End of the last booked bucket (device horizon).
    fn horizon(&self) -> Time {
        match self.used.iter().rposition(|&u| u > 0) {
            Some(i) => {
                let b = self.base + i as u64;
                b * self.bucket_ns + self.used[i]
            }
            None => 0,
        }
    }
}

struct DeviceState {
    ledger: Ledger,
    /// The LBA a perfectly sequential successor request would start at.
    expected_lba: u64,
    /// Whether `expected_lba` is meaningful (false before the first
    /// request).
    primed: bool,
    /// Completion times of outstanding requests, for queue-depth queries.
    outstanding: BinaryHeap<Reverse<Time>>,
}

/// One simulated device: a unit-rate server with a bucketed capacity
/// ledger (see the module docs for the queueing model).
pub struct SimDevice {
    name: String,
    profile: DeviceProfile,
    state: Mutex<DeviceState>,
    stats: DeviceStats,
}

impl SimDevice {
    pub fn new(name: impl Into<String>, profile: DeviceProfile) -> Self {
        // Bucket width: a few max-service quanta — fine enough that
        // within-bucket ordering doesn't matter, coarse enough to stay
        // tiny for multi-hour runs.
        let bucket = profile
            .max_service()
            .saturating_mul(4)
            .clamp(1, crate::clock::SECOND * 4);
        SimDevice {
            name: name.into(),
            profile,
            state: Mutex::new(DeviceState {
                ledger: Ledger::new(bucket),
                expected_lba: 0,
                primed: false,
                outstanding: BinaryHeap::new(),
            }),
            stats: DeviceStats::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Submit a request for `npages` page-sized transfers starting at
    /// device-local address `lba`.
    ///
    /// The first page is serviced at random or sequential cost according to
    /// `hint`, falling back to physical-adjacency detection when no hint is
    /// given; pages after the first within one request always transfer at
    /// the sequential rate (the device streams them).
    pub fn submit(
        &self,
        now: Time,
        kind: IoKind,
        lba: u64,
        npages: u64,
        hint: Option<Locality>,
    ) -> IoTicket {
        self.submit_scaled(now, kind, lba, npages, hint, 1)
    }

    /// [`Self::submit`] with the service time multiplied by `scale` — the
    /// brownout (fail-slow) injection point. The scaled service books
    /// real ledger capacity, so a browned-out device also queues later
    /// requests behind the stall, exactly like a device in a GC pause.
    pub fn submit_scaled(
        &self,
        now: Time,
        kind: IoKind,
        lba: u64,
        npages: u64,
        hint: Option<Locality>,
        scale: u32,
    ) -> IoTicket {
        assert!(npages > 0, "empty I/O request");
        let mut st = self.state.lock();
        let adjacent = st.primed && lba == st.expected_lba;
        let first_loc = hint.unwrap_or(if adjacent {
            Locality::Sequential
        } else {
            Locality::Random
        });
        let service = (self.profile.service_ns(kind, first_loc)
            + (npages - 1) * self.profile.service_ns(kind, Locality::Sequential))
            * Time::from(scale.max(1));
        st.expected_lba = lba + npages;
        st.primed = true;
        self.finish(&mut st, now, kind, service, npages)
    }

    /// Submit a request with an explicitly computed service duration,
    /// bypassing the per-page cost model. Used for byte-granular log
    /// appends, where group commit lets many small records share one
    /// device write — charging full pages per commit would fabricate a
    /// log bottleneck that real group-committing engines do not have.
    pub fn submit_duration(
        &self,
        now: Time,
        kind: IoKind,
        service_ns: Time,
        stat_pages: u64,
    ) -> IoTicket {
        let mut st = self.state.lock();
        st.primed = false; // duration-based I/O carries no locality state
        self.finish(&mut st, now, kind, service_ns.max(1), stat_pages)
    }

    fn finish(
        &self,
        st: &mut DeviceState,
        now: Time,
        kind: IoKind,
        service: Time,
        stat_pages: u64,
    ) -> IoTicket {
        let complete = st.ledger.schedule(now, service);
        let start = complete.saturating_sub(service).max(now);
        while let Some(&Reverse(t)) = st.outstanding.peek() {
            if t <= now {
                st.outstanding.pop();
            } else {
                break;
            }
        }
        st.outstanding.push(Reverse(complete));
        self.stats.record(kind, stat_pages, complete, service);
        IoTicket { start, complete }
    }

    /// Number of requests that have been submitted but whose completion
    /// time is after `now` — the device queue length the SSD
    /// throttle-control optimization monitors (paper §3.3.2).
    pub fn queue_depth(&self, now: Time) -> usize {
        let mut st = self.state.lock();
        while let Some(&Reverse(t)) = st.outstanding.peek() {
            if t <= now {
                st.outstanding.pop();
            } else {
                break;
            }
        }
        st.outstanding.len()
    }

    /// End of the last busy period currently booked (for tests).
    pub fn busy_until(&self) -> Time {
        self.state.lock().ledger.horizon()
    }

    /// Forget all timing state (capacity bookings, outstanding requests,
    /// sequential-detection position) while keeping statistics. Models a
    /// machine restart: virtual time starts over with idle devices.
    pub fn reset_time(&self) {
        let mut st = self.state.lock();
        let bucket = st.ledger.bucket_ns;
        st.ledger = Ledger::new(bucket);
        st.outstanding.clear();
        st.primed = false;
    }

    /// Throttle-control predicate (§3.3.2): is the device, *around virtual
    /// time `now`*, so loaded that more than `limit` requests would be
    /// pending? Measured as booked capacity over the window the next
    /// `limit` average requests would occupy — a virtual-time-consistent
    /// stand-in for an outstanding-I/O count, which is ill-defined when
    /// observers' clocks differ (see the module docs).
    pub fn overloaded(&self, now: Time, limit: usize) -> bool {
        let avg = (self.profile.rand_read_ns + self.profile.rand_write_ns) / 2;
        // Cap the window: a huge `limit` means "throttle off", and an
        // unbounded window would both overflow and scan the whole ledger.
        let window = avg
            .saturating_mul(limit as Time)
            .clamp(1, 4 * crate::clock::HOUR);
        let st = self.state.lock();
        let free = st.ledger.free_in_window(now, window);
        free < window / 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> SimDevice {
        // 1000 rand IOPS (1 ms), 10_000 seq IOPS (100 us), writes the same.
        SimDevice::new(
            "t",
            DeviceProfile::from_iops(1_000.0, 10_000.0, 1_000.0, 10_000.0),
        )
    }

    #[test]
    fn scaled_submit_books_scaled_capacity() {
        let d = dev();
        let t1 = d.submit(0, IoKind::Read, 0, 1, Some(Locality::Random));
        assert_eq!(t1.complete - t1.start, 1_000_000);
        let d = dev();
        let t10 = d.submit_scaled(0, IoKind::Read, 0, 1, Some(Locality::Random), 10);
        assert_eq!(t10.complete - t10.start, 10_000_000);
        // The stall consumes real capacity: the next request queues
        // behind it rather than overlapping.
        let next = d.submit(0, IoKind::Read, 99, 1, Some(Locality::Random));
        assert!(next.complete >= t10.complete + 1_000_000);
        // Scale 1 (and the saturating 0 case) are the identity.
        let d = dev();
        let a = d.submit_scaled(0, IoKind::Read, 0, 1, Some(Locality::Random), 0);
        assert_eq!(a.complete - a.start, 1_000_000);
    }

    #[test]
    fn profile_from_iops() {
        let p = DeviceProfile::from_iops(1_000.0, 10_000.0, 500.0, 2_000.0);
        assert_eq!(p.rand_read_ns, 1_000_000);
        assert_eq!(p.seq_read_ns, 100_000);
        assert_eq!(p.rand_write_ns, 2_000_000);
        assert_eq!(p.seq_write_ns, 500_000);
    }

    #[test]
    fn random_then_adjacent_is_sequential() {
        let d = dev();
        let t1 = d.submit(0, IoKind::Read, 100, 1, None);
        assert_eq!(t1.complete, 1_000_000); // random
        let t2 = d.submit(t1.complete, IoKind::Read, 101, 1, None);
        assert_eq!(t2.complete - t1.complete, 100_000); // auto-sequential
        let t3 = d.submit(t2.complete, IoKind::Read, 500, 1, None);
        assert_eq!(t3.complete - t2.complete, 1_000_000); // jump -> random
    }

    #[test]
    fn hint_overrides_detection() {
        let d = dev();
        let t = d.submit(0, IoKind::Read, 7, 1, Some(Locality::Sequential));
        assert_eq!(t.complete, 100_000);
    }

    #[test]
    fn multi_page_request_streams_after_first() {
        let d = dev();
        let t = d.submit(0, IoKind::Read, 0, 8, Some(Locality::Random));
        // 1 random + 7 sequential pages.
        assert_eq!(t.complete, 1_000_000 + 7 * 100_000);
    }

    #[test]
    fn same_time_arrivals_serialize() {
        let d = dev();
        let a = d.submit(0, IoKind::Read, 10, 1, Some(Locality::Random));
        let b = d.submit(0, IoKind::Read, 999, 1, Some(Locality::Random));
        assert_eq!(a.complete, 1_000_000);
        assert_eq!(b.start, a.complete);
        assert_eq!(b.complete, 2_000_000);
    }

    #[test]
    fn lagging_clients_use_idle_capacity() {
        // A request from a client whose clock lags must not queue behind
        // capacity booked far in its future.
        let d = dev();
        let far = d.submit(10_000_000, IoKind::Read, 0, 1, Some(Locality::Random));
        assert_eq!(far.complete, 11_000_000);
        let early = d.submit(0, IoKind::Read, 50, 1, Some(Locality::Random));
        assert_eq!(
            early.complete, 1_000_000,
            "idle capacity before the future booking must be used"
        );
    }

    #[test]
    fn saturation_spills_forward() {
        let d = dev();
        // Book 10 requests at t=0: they serialize across 10 ms.
        let mut last = 0;
        for i in 0..10 {
            let t = d.submit(0, IoKind::Read, i * 37, 1, Some(Locality::Random));
            assert_eq!(t.complete, (i as Time + 1) * 1_000_000);
            last = t.complete;
        }
        assert_eq!(last, 10_000_000);
        assert_eq!(d.busy_until(), 10_000_000);
    }

    #[test]
    fn queue_depth_counts_outstanding() {
        let d = dev();
        d.submit(0, IoKind::Write, 1, 1, Some(Locality::Random));
        d.submit(0, IoKind::Write, 2, 1, Some(Locality::Random));
        d.submit(0, IoKind::Write, 3, 1, Some(Locality::Random));
        assert_eq!(d.queue_depth(0), 3);
        assert_eq!(d.queue_depth(1_000_000), 2);
        assert_eq!(d.queue_depth(3_000_000), 0);
    }

    #[test]
    fn idle_device_serves_immediately() {
        let d = dev();
        let t = d.submit(5_000_000, IoKind::Read, 0, 1, None);
        assert_eq!(t.complete, 6_000_000);
        assert!(t.start >= 5_000_000);
    }

    #[test]
    fn sustained_throughput_matches_profile() {
        // Closed-loop client: arrival at previous completion. Over many
        // requests, throughput must equal the calibrated IOPS.
        let d = dev();
        let mut now = 0;
        let n = 5_000u64;
        for i in 0..n {
            now = d
                .submit(now, IoKind::Read, i * 13 % 9_999, 1, Some(Locality::Random))
                .complete;
        }
        let iops = n as f64 / (now as f64 / 1e9);
        assert!((iops - 1_000.0).abs() < 10.0, "iops {iops}");
    }

    #[test]
    fn ledger_completion_never_beats_service_time() {
        // A request arriving mid-bucket still takes its full service time
        // even when the bucket has nominal capacity left.
        let mut l = Ledger::new(1_000);
        let c = l.schedule(500, 1_000);
        assert_eq!(c, 1_500);
        // Bucket 0 is fully booked now; an early arrival spills to the
        // next bucket (bucket-granular ordering).
        let c2 = l.schedule(0, 400);
        assert_eq!(c2, 1_400);
    }

    #[test]
    fn ledger_work_conservation() {
        let mut l = Ledger::new(100);
        // Fill 10 buckets exactly.
        let c = l.schedule(0, 1_000);
        assert_eq!(c, 1_000);
        // Next unit lands right after.
        assert_eq!(l.schedule(0, 50), 1_050);
        assert_eq!(l.horizon(), 1_050);
    }
}
