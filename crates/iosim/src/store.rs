//! Backing stores that hold the actual page bytes of the simulated devices.
//!
//! Timing and data are deliberately separated: devices model *when* a
//! transfer completes, stores hold *what* the bytes are. Stores apply writes
//! at submission so later virtual-time reads always observe them (the
//! simulator never reorders a read before a write that was submitted earlier
//! in its virtual history).

use crate::sync::RwLock;

use crate::page::PageId;

/// Byte storage addressed by page id.
pub trait PageStore: Send + Sync {
    /// Copy page `pid` into `buf`. Reading a never-written page yields
    /// zeroes, like a freshly created database file.
    fn read(&self, pid: PageId, buf: &mut [u8]);

    /// Overwrite page `pid` with `data`.
    fn write(&self, pid: PageId, data: &[u8]);

    /// Capacity in pages.
    fn num_pages(&self) -> u64;

    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// True if the page has ever been written. Fresh pages read as zeroes;
    /// the engine uses this to format never-written pages in memory without
    /// charging a pointless read I/O.
    fn is_materialized(&self, pid: PageId) -> bool;
}

/// In-memory page store with lazily allocated pages.
///
/// Pages start out as `None` (read as zeroes) so a mostly-cold simulated
/// 400 GB-scaled database does not allocate every page buffer up front.
pub struct MemStore {
    page_size: usize,
    pages: Vec<RwLock<Option<Box<[u8]>>>>,
}

impl MemStore {
    pub fn new(num_pages: u64, page_size: usize) -> Self {
        assert!(page_size > 0);
        let mut pages = Vec::with_capacity(num_pages as usize);
        pages.resize_with(num_pages as usize, || RwLock::new(None));
        MemStore { page_size, pages }
    }

    fn slot(&self, pid: PageId) -> &RwLock<Option<Box<[u8]>>> {
        self.pages
            .get(pid.0 as usize)
            .unwrap_or_else(|| panic!("page {pid} out of bounds ({} pages)", self.pages.len()))
    }
}

impl PageStore for MemStore {
    fn read(&self, pid: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "read buffer size mismatch");
        match &*self.slot(pid).read() {
            Some(data) => buf.copy_from_slice(data),
            None => buf.fill(0),
        }
    }

    fn write(&self, pid: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "write size mismatch");
        let mut slot = self.slot(pid).write();
        match &mut *slot {
            Some(existing) => existing.copy_from_slice(data),
            None => *slot = Some(data.into()),
        }
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn is_materialized(&self, pid: PageId) -> bool {
        self.slot(pid).read().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_pages_read_as_zero() {
        let s = MemStore::new(4, 16);
        let mut buf = [0xFFu8; 16];
        s.read(PageId(2), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert!(!s.is_materialized(PageId(2)));
    }

    #[test]
    fn write_then_read_round_trips() {
        let s = MemStore::new(4, 8);
        s.write(PageId(1), &[7u8; 8]);
        assert!(s.is_materialized(PageId(1)));
        let mut buf = [0u8; 8];
        s.read(PageId(1), &mut buf);
        assert_eq!(buf, [7u8; 8]);
    }

    #[test]
    fn overwrite_replaces_content() {
        let s = MemStore::new(2, 4);
        s.write(PageId(0), &[1, 2, 3, 4]);
        s.write(PageId(0), &[9, 9, 9, 9]);
        let mut buf = [0u8; 4];
        s.read(PageId(0), &mut buf);
        assert_eq!(buf, [9, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let s = MemStore::new(2, 4);
        let mut buf = [0u8; 4];
        s.read(PageId(2), &mut buf);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_write_panics() {
        let s = MemStore::new(2, 4);
        s.write(PageId(0), &[0u8; 5]);
    }
}
