//! The log manager: append, group flush, checkpoint truncation.

use std::sync::Arc;

use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{Clk, IoManager};

use crate::record::LogRecord;

/// Log sequence number: a byte position in the (logical) log stream.
pub type Lsn = u64;

struct LogState {
    /// Durably flushed bytes (survives a simulated crash).
    durable: Vec<u8>,
    /// Appended but not yet flushed bytes (lost on crash).
    pending: Vec<u8>,
    /// Logical byte offset of `durable[0]` (grows with truncation).
    base: Lsn,
}

/// Append-only log with explicit group flush.
///
/// The WAL protocol obligation of the paper's designs (§2.4) — "forcibly
/// flushing the log records for that page to log storage before writing the
/// page to the SSD" — is enforced by the engine calling [`LogManager::flush`]
/// during commit, before any dirty page is published to the buffer pool and
/// hence before it can reach the SSD or the disk.
pub struct LogManager {
    io: Arc<IoManager>,
    state: Arc<Mutex<LogState>>,
}

impl LogManager {
    pub fn new(io: Arc<IoManager>) -> Self {
        LogManager {
            io,
            state: Arc::new(Mutex::new(LogState {
                durable: Vec::new(),
                pending: Vec::new(),
                base: 0,
            })),
        }
    }

    /// Append a record to the unflushed tail; returns the LSN one past the
    /// record (its durability point).
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut st = self.state.lock();
        rec.encode(&mut st.pending);
        st.base + (st.durable.len() + st.pending.len()) as Lsn
    }

    /// Flush everything appended so far, charging sequential log-device time
    /// to `clk`.
    pub fn flush(&self, clk: &mut Clk) {
        let nbytes = {
            let mut st = self.state.lock();
            if st.pending.is_empty() {
                return;
            }
            let pending = std::mem::take(&mut st.pending);
            let n = pending.len();
            st.durable.extend_from_slice(&pending);
            n
        };
        self.io.append_log(clk, nbytes);
    }

    /// LSN up to which the log is durable.
    pub fn flushed_lsn(&self) -> Lsn {
        let st = self.state.lock();
        st.base + st.durable.len() as Lsn
    }

    /// Bytes currently retained in the durable log (after truncation).
    pub fn durable_len(&self) -> usize {
        self.state.lock().durable.len()
    }

    /// Write a checkpoint record, flush, and truncate everything before it.
    ///
    /// Must only be called after the engine has flushed every dirty page
    /// (memory pool and, under LC, the SSD) — the sharp-checkpoint contract.
    pub fn checkpoint(&self, clk: &mut Clk) {
        self.checkpoint_with(clk, None);
    }

    /// Like [`LogManager::checkpoint`], optionally embedding an extra
    /// record (the SSD buffer table for warm restart) that is retained
    /// together with the checkpoint record across truncation.
    pub fn checkpoint_with(&self, clk: &mut Clk, extra: Option<&LogRecord>) {
        let mut keep = 0usize;
        if let Some(rec) = extra {
            self.append(rec);
            keep += rec.encoded_len();
        }
        self.append(&LogRecord::Checkpoint);
        keep += LogRecord::Checkpoint.encoded_len();
        self.flush(clk);
        let mut st = self.state.lock();
        let cut = st.durable.len() - keep;
        st.durable.drain(..cut);
        st.base += cut as Lsn;
    }

    /// Snapshot of the durable log contents, as recovery would read them
    /// from the log device after a crash (unflushed bytes are gone).
    pub fn durable_snapshot(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// A handle that shares this log's durable state: after a simulated
    /// crash, build a fresh `LogManager` from the handle to model the log
    /// file surviving on its device while all volatile state is lost.
    pub fn durable_handle(&self) -> DurableLog {
        DurableLog {
            state: Arc::clone(&self.state),
        }
    }
}

/// Persistent handle to a log's durable bytes (survives simulated crashes).
#[derive(Clone)]
pub struct DurableLog {
    state: Arc<Mutex<LogState>>,
}

impl DurableLog {
    /// Reconstruct a log manager "after restart": durable bytes are kept,
    /// unflushed bytes are discarded (they never reached the device).
    pub fn reopen(&self, io: Arc<IoManager>) -> LogManager {
        self.state.lock().pending.clear();
        LogManager {
            io,
            state: Arc::clone(&self.state),
        }
    }

    /// The durable bytes, for recovery scanning.
    pub fn bytes(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{DeviceSetup, PageId};

    fn mgr() -> (Arc<IoManager>, LogManager) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(64, 16, 4)));
        let log = LogManager::new(Arc::clone(&io));
        (io, log)
    }

    #[test]
    fn append_then_flush_becomes_durable() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        let lsn = log.append(&LogRecord::Commit { txid: 1 });
        assert_eq!(log.flushed_lsn(), 0);
        log.flush(&mut clk);
        assert_eq!(log.flushed_lsn(), lsn);
        assert!(clk.now > 0, "flush must charge log-device time");
        assert_eq!(io.log_stats().write_ops, 1);
    }

    #[test]
    fn flush_of_empty_log_is_free() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        log.flush(&mut clk);
        assert_eq!(clk.now, 0);
        assert_eq!(io.log_stats().write_ops, 0);
    }

    #[test]
    fn crash_loses_unflushed_tail() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        log.append(&LogRecord::Commit { txid: 1 });
        log.flush(&mut clk);
        log.append(&LogRecord::Commit { txid: 2 }); // never flushed
        let handle = log.durable_handle();
        drop(log);
        let reopened = handle.reopen(io);
        let recs = crate::record::decode_all(&reopened.durable_snapshot());
        assert_eq!(recs, vec![LogRecord::Commit { txid: 1 }]);
    }

    #[test]
    fn checkpoint_truncates_history() {
        let (_io, log) = mgr();
        let mut clk = Clk::new();
        for i in 0..100 {
            log.append(&LogRecord::PageWrite {
                txid: i,
                pid: PageId(i),
                offset: 0,
                data: vec![0; 32],
            });
            log.append(&LogRecord::Commit { txid: i });
        }
        log.flush(&mut clk);
        let before = log.durable_len();
        log.checkpoint(&mut clk);
        assert!(log.durable_len() < before);
        let recs = crate::record::decode_all(&log.durable_snapshot());
        assert_eq!(recs, vec![LogRecord::Checkpoint]);
        // LSNs keep increasing across truncation.
        let lsn = log.append(&LogRecord::Commit { txid: 999 });
        assert!(lsn > before as Lsn);
    }
}
