//! The log manager: append, group flush, checkpoint truncation.

use std::sync::Arc;

use turbopool_iosim::sync::Mutex;
use turbopool_iosim::{Clk, IoManager, WriteFate};

use crate::record::LogRecord;

/// Log sequence number: a byte position in the (logical) log stream.
pub type Lsn = u64;

struct LogState {
    /// Durably flushed bytes (survives a simulated crash).
    durable: Vec<u8>,
    /// Appended but not yet flushed bytes (lost on crash).
    pending: Vec<u8>,
    /// Logical byte offset of `durable[0]` (grows with truncation).
    base: Lsn,
}

/// Append-only log with explicit group flush.
///
/// The WAL protocol obligation of the paper's designs (§2.4) — "forcibly
/// flushing the log records for that page to log storage before writing the
/// page to the SSD" — is enforced by the engine calling [`LogManager::flush`]
/// during commit, before any dirty page is published to the buffer pool and
/// hence before it can reach the SSD or the disk.
pub struct LogManager {
    io: Arc<IoManager>,
    state: Arc<Mutex<LogState>>,
}

impl LogManager {
    pub fn new(io: Arc<IoManager>) -> Self {
        LogManager {
            io,
            state: Arc::new(Mutex::new(LogState {
                durable: Vec::new(),
                pending: Vec::new(),
                base: 0,
            })),
        }
    }

    /// Append a record to the unflushed tail; returns the LSN one past the
    /// record (its durability point).
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let mut st = self.state.lock();
        rec.encode(&mut st.pending);
        st.base + (st.durable.len() + st.pending.len()) as Lsn
    }

    /// Flush everything appended so far, charging sequential log-device time
    /// to `clk`. Returns true when every pending byte reached the device.
    ///
    /// Under an armed crash switch a flush is a durable-write boundary: it
    /// may be torn (power died mid-flush — all but the final byte persists,
    /// so the chunk's last record decodes as an incomplete torn tail) or
    /// dropped (power already off — nothing persists). Either way the
    /// machine is dead; callers must treat `false` as "this commit (or
    /// checkpoint) did not happen".
    pub fn flush(&self, clk: &mut Clk) -> bool {
        let (nbytes, complete) = {
            let mut st = self.state.lock();
            if st.pending.is_empty() {
                return true;
            }
            let pending = std::mem::take(&mut st.pending);
            match self.io.log_flush_fate(pending.len()) {
                WriteFate::Persist => {
                    let n = pending.len();
                    st.durable.extend_from_slice(&pending);
                    (n, true)
                }
                WriteFate::Torn => {
                    let keep = pending.len() - 1;
                    st.durable.extend_from_slice(&pending[..keep]);
                    (keep, false)
                }
                WriteFate::Dropped => (0, false),
            }
        };
        if nbytes > 0 {
            self.io.append_log(clk, nbytes);
        }
        complete
    }

    /// LSN up to which the log is durable.
    pub fn flushed_lsn(&self) -> Lsn {
        let st = self.state.lock();
        st.base + st.durable.len() as Lsn
    }

    /// Bytes currently retained in the durable log (after truncation).
    pub fn durable_len(&self) -> usize {
        self.state.lock().durable.len()
    }

    /// Write a checkpoint record, flush, and truncate everything before it.
    ///
    /// Must only be called after the engine has flushed every dirty page
    /// (memory pool and, under LC, the SSD) — the sharp-checkpoint contract.
    pub fn checkpoint(&self, clk: &mut Clk) {
        self.checkpoint_with(clk, None);
    }

    /// Like [`LogManager::checkpoint`], optionally embedding an extra
    /// record (the SSD buffer table for warm restart) that is retained
    /// together with the checkpoint record across truncation.
    pub fn checkpoint_with(&self, clk: &mut Clk, extra: Option<&LogRecord>) {
        let mut keep = 0usize;
        if let Some(rec) = extra {
            self.append(rec);
            keep += rec.encoded_len();
        }
        self.append(&LogRecord::Checkpoint);
        keep += LogRecord::Checkpoint.encoded_len();
        if !self.flush(clk) {
            // Power died before the checkpoint record was durable: the
            // pre-checkpoint log is still the only redo source and must
            // not be truncated. (The machine is off; recovery will replay
            // from the previous checkpoint.)
            return;
        }
        if self.io.power_lost() {
            // The checkpoint record itself was the last write to persist
            // (crash-schedule cut landed on the flush): the machine is off,
            // and truncation — a separate durable mutation of the log file —
            // can no longer happen. Harmless either way (the sharp-checkpoint
            // contract flushed every dirty page before this flush, so redo
            // from the longer log converges to the same state), but the
            // model should not pretend a powered-off machine rewrote a file.
            return;
        }
        let mut st = self.state.lock();
        let cut = st.durable.len() - keep;
        st.durable.drain(..cut);
        st.base += cut as Lsn;
    }

    /// Snapshot of the durable log contents, as recovery would read them
    /// from the log device after a crash (unflushed bytes are gone).
    pub fn durable_snapshot(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// Fault-injection hook: XOR `mask` into durable byte `byte`, modeling
    /// media corruption of the log file at rest. Returns false (no-op) when
    /// the offset is out of range or the mask is zero.
    pub fn corrupt_durable(&self, byte: usize, mask: u8) -> bool {
        let mut st = self.state.lock();
        if mask == 0 || byte >= st.durable.len() {
            return false;
        }
        st.durable[byte] ^= mask;
        true
    }

    /// A handle that shares this log's durable state: after a simulated
    /// crash, build a fresh `LogManager` from the handle to model the log
    /// file surviving on its device while all volatile state is lost.
    pub fn durable_handle(&self) -> DurableLog {
        DurableLog {
            state: Arc::clone(&self.state),
        }
    }
}

/// Persistent handle to a log's durable bytes (survives simulated crashes).
#[derive(Clone)]
pub struct DurableLog {
    state: Arc<Mutex<LogState>>,
}

impl DurableLog {
    /// Reconstruct a log manager "after restart": durable bytes are kept,
    /// unflushed bytes are discarded (they never reached the device).
    pub fn reopen(&self, io: Arc<IoManager>) -> LogManager {
        self.state.lock().pending.clear();
        LogManager {
            io,
            state: Arc::clone(&self.state),
        }
    }

    /// The durable bytes, for recovery scanning.
    pub fn bytes(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// Log repair after a successful recovery: discard everything past the
    /// last cleanly decoded byte (`valid_len` from the recovery scan), so
    /// that the next incarnation's appends land directly after the last
    /// usable record instead of hiding behind a torn or corrupt region.
    /// Idempotent; a no-op when the log is already clean.
    pub fn truncate_to_valid(&self, valid_len: usize) {
        let mut st = self.state.lock();
        if valid_len < st.durable.len() {
            st.durable.truncate(valid_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{DeviceSetup, PageId};

    fn mgr() -> (Arc<IoManager>, LogManager) {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(64, 16, 4)));
        let log = LogManager::new(Arc::clone(&io));
        (io, log)
    }

    #[test]
    fn append_then_flush_becomes_durable() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        let lsn = log.append(&LogRecord::Commit { txid: 1 });
        assert_eq!(log.flushed_lsn(), 0);
        log.flush(&mut clk);
        assert_eq!(log.flushed_lsn(), lsn);
        assert!(clk.now > 0, "flush must charge log-device time");
        assert_eq!(io.log_stats().write_ops, 1);
    }

    #[test]
    fn flush_of_empty_log_is_free() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        log.flush(&mut clk);
        assert_eq!(clk.now, 0);
        assert_eq!(io.log_stats().write_ops, 0);
    }

    #[test]
    fn crash_loses_unflushed_tail() {
        let (io, log) = mgr();
        let mut clk = Clk::new();
        log.append(&LogRecord::Commit { txid: 1 });
        log.flush(&mut clk);
        log.append(&LogRecord::Commit { txid: 2 }); // never flushed
        let handle = log.durable_handle();
        drop(log);
        let reopened = handle.reopen(io);
        let out = crate::record::decode_all(&reopened.durable_snapshot());
        assert_eq!(out.records, vec![LogRecord::Commit { txid: 1 }]);
        assert!(!out.tail.is_damaged());
    }

    #[test]
    fn checkpoint_truncates_history() {
        let (_io, log) = mgr();
        let mut clk = Clk::new();
        for i in 0..100 {
            log.append(&LogRecord::PageWrite {
                txid: i,
                pid: PageId(i),
                offset: 0,
                data: vec![0; 32],
            });
            log.append(&LogRecord::Commit { txid: i });
        }
        log.flush(&mut clk);
        let before = log.durable_len();
        log.checkpoint(&mut clk);
        assert!(log.durable_len() < before);
        let out = crate::record::decode_all(&log.durable_snapshot());
        assert_eq!(out.records, vec![LogRecord::Checkpoint]);
        // LSNs keep increasing across truncation.
        let lsn = log.append(&LogRecord::Commit { txid: 999 });
        assert!(lsn > before as Lsn);
    }

    #[test]
    fn torn_flush_leaves_a_clean_torn_tail() {
        use turbopool_iosim::CrashSwitch;
        let (io, log) = mgr();
        let mut clk = Clk::new();
        log.append(&LogRecord::Commit { txid: 1 });
        assert!(log.flush(&mut clk));
        // Arm the switch to tear the next log flush (boundary 0).
        io.set_crash_switch(Some(Arc::new(CrashSwitch::armed(0, true))));
        log.append(&LogRecord::PageWrite {
            txid: 2,
            pid: PageId(3),
            offset: 0,
            data: vec![7; 8],
        });
        log.append(&LogRecord::Commit { txid: 2 });
        assert!(!log.flush(&mut clk), "torn flush must report incomplete");
        io.set_crash_switch(None);
        let out = crate::record::decode_all(&log.durable_snapshot());
        // The final record (txn 2's commit) lost its last byte: txn 2 did
        // not commit, and the damage reads as a torn tail, not corruption.
        assert_eq!(out.records.len(), 2, "commit{{1}} + pagewrite{{2}}");
        assert!(matches!(out.tail, crate::record::LogTail::Torn { .. }));
    }

    #[test]
    fn dropped_flush_persists_nothing() {
        use turbopool_iosim::CrashSwitch;
        let (io, log) = mgr();
        let mut clk = Clk::new();
        // Fire at boundary 0 (a disk write, say); flushes after that drop.
        let sw = Arc::new(CrashSwitch::armed(0, false));
        io.set_crash_switch(Some(Arc::clone(&sw)));
        sw.on_write(turbopool_iosim::BoundaryKind::DiskPage);
        assert!(sw.fired());
        log.append(&LogRecord::Commit { txid: 5 });
        assert!(!log.flush(&mut clk));
        io.set_crash_switch(None);
        assert_eq!(log.durable_len(), 0);
        assert_eq!(io.log_stats().write_ops, 0);
    }

    #[test]
    fn corrupt_then_truncate_repairs_the_log() {
        let (_io, log) = mgr();
        let mut clk = Clk::new();
        log.append(&LogRecord::Commit { txid: 1 });
        log.flush(&mut clk);
        let clean_len = log.durable_len();
        log.append(&LogRecord::Commit { txid: 2 });
        log.flush(&mut clk);
        assert!(log.corrupt_durable(clean_len + 2, 0x10));
        let out = crate::record::decode_all(&log.durable_snapshot());
        assert_eq!(out.records, vec![LogRecord::Commit { txid: 1 }]);
        assert!(out.tail.is_damaged());
        assert_eq!(out.valid_len, clean_len);
        // Repair: drop the damaged region; the log decodes clean again.
        log.durable_handle().truncate_to_valid(out.valid_len);
        let out = crate::record::decode_all(&log.durable_snapshot());
        assert_eq!(out.records, vec![LogRecord::Commit { txid: 1 }]);
        assert!(!out.tail.is_damaged());
        // Out-of-range / zero-mask corruption requests are no-ops.
        assert!(!log.corrupt_durable(10_000, 0x01));
        assert!(!log.corrupt_durable(0, 0));
    }
}
