//! Crash recovery: redo committed page writes after the last checkpoint.
//!
//! Recovery is fallible end to end: redo reads and writes go through a
//! [`RedoStore`], whose engine-side implementation routes them through the
//! simulated devices (with transient-error retry) instead of poking the
//! backing bytes directly. A torn log tail is truncated and replay
//! proceeds; mid-log corruption stops the scan at the damage point and is
//! surfaced in the [`LogScanReport`] so the caller can fail loudly.

use std::collections::HashSet;

use turbopool_iosim::{IoError, PageId, PageStore};

use crate::record::{decode_all, LogRecord, LogTail};
use crate::TxId;

/// Fallible page access for redo: the device-facing face of recovery.
///
/// Implementations decide how faults surface — the engine adapter retries
/// transient errors with capped virtual-time backoff and propagates
/// permanent ones; [`DirectStore`] (unit tests, timing-free replay) never
/// fails.
pub trait RedoStore {
    fn page_size(&self) -> usize;
    fn read(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), IoError>;
    fn write(&mut self, pid: PageId, data: &[u8]) -> Result<(), IoError>;
}

/// Infallible [`RedoStore`] over raw backing bytes, bypassing devices and
/// timing. For unit tests and callers that have already absorbed faults.
pub struct DirectStore<'a>(pub &'a dyn PageStore);

impl RedoStore for DirectStore<'_> {
    fn page_size(&self) -> usize {
        self.0.page_size()
    }
    fn read(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), IoError> {
        self.0.read(pid, buf);
        Ok(())
    }
    fn write(&mut self, pid: PageId, data: &[u8]) -> Result<(), IoError> {
        self.0.write(pid, data);
        Ok(())
    }
}

/// Full result of a recovery pass.
#[derive(Debug, Default, Clone)]
pub struct RecoveryOutcome {
    /// Counters.
    pub stats: RecoveryStats,
    /// Pages whose disk image advanced during redo: their pre-crash SSD
    /// copies are stale and must not be warm-imported.
    pub redone: HashSet<PageId>,
    /// The SSD buffer table embedded in the adopted checkpoint, if any.
    pub ssd_table: Option<Vec<(PageId, u64)>>,
    /// What the log scan found: tail condition, checkpoint adoption.
    pub report: LogScanReport,
}

/// How the durable-log scan went — the WAL half of a `RecoveryReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogScanReport {
    /// How the record stream ended.
    pub tail: LogTail,
    /// Bytes of durable log presented to the scan.
    pub log_bytes: usize,
    /// Bytes of cleanly decoded records — the trustworthy prefix. The
    /// caller should truncate the durable log to this length so future
    /// appends land after the last usable record.
    pub valid_len: usize,
    /// Checkpoint records decoded.
    pub checkpoints_seen: usize,
    /// Checkpoints rejected because their embedded `SsdTable` failed
    /// validation; the scan fell back to the previous complete checkpoint.
    pub checkpoints_rejected: usize,
    /// True when a (validated) checkpoint anchored replay; false means
    /// replay covered the whole retained log.
    pub used_checkpoint: bool,
}

impl Default for LogScanReport {
    fn default() -> Self {
        LogScanReport {
            tail: LogTail::Clean,
            log_bytes: 0,
            valid_len: 0,
            checkpoints_seen: 0,
            checkpoints_rejected: 0,
            used_checkpoint: false,
        }
    }
}

/// Outcome counters from a recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records scanned after the last checkpoint.
    pub records_scanned: usize,
    /// Distinct committed transactions whose writes were redone.
    pub txns_redone: usize,
    /// Individual page-write records applied.
    pub writes_applied: usize,
    /// Page-write records skipped because their transaction never committed.
    pub writes_skipped: usize,
}

/// Semantic validation of an embedded SSD buffer table: every frame in
/// range (when the geometry is known), no page listed twice, no frame
/// listed twice. A table that fails this check is garbage — adopting it
/// would seed the warm restart with lies — so its checkpoint is rejected.
fn table_valid(entries: &[(u64, u64)], ssd_frames: Option<u64>) -> bool {
    let mut pids: HashSet<u64> = HashSet::with_capacity(entries.len());
    let mut frames: HashSet<u64> = HashSet::with_capacity(entries.len());
    for &(pid, frame) in entries {
        if let Some(n) = ssd_frames {
            if frame >= n {
                return false;
            }
        }
        if !pids.insert(pid) || !frames.insert(frame) {
            return false;
        }
    }
    true
}

/// Scan `records` for the replay anchor: the last checkpoint whose
/// embedded `SsdTable` (if any) validates. Returns
/// `(start_index, ssd_table, checkpoints_seen, checkpoints_rejected)`.
fn find_anchor(
    records: &[LogRecord],
    ssd_frames: Option<u64>,
) -> (usize, Option<Vec<(PageId, u64)>>, usize, usize) {
    let ckpts: Vec<usize> = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| matches!(r, LogRecord::Checkpoint).then_some(i))
        .collect();
    let seen = ckpts.len();
    let mut rejected = 0usize;
    for &i in ckpts.iter().rev() {
        // Only a table directly attached to this checkpoint counts: scan
        // back to the previous checkpoint (or the stream start).
        let table = records[..i].iter().rev().find_map(|r| match r {
            LogRecord::SsdTable { entries } => Some(entries),
            LogRecord::Checkpoint => None,
            _ => None,
        });
        match table {
            Some(entries) if !table_valid(entries, ssd_frames) => {
                // Reject this checkpoint and fall back to the previous
                // complete one instead of adopting a garbage table.
                rejected += 1;
            }
            Some(entries) => {
                let t = entries.iter().map(|&(p, f)| (PageId(p), f)).collect();
                return (i + 1, Some(t), seen, rejected);
            }
            None => return (i + 1, None, seen, rejected),
        }
    }
    (0, None, seen, rejected)
}

/// Replay the durable log onto the persistent database.
///
/// Two passes over the suffix that follows the adopted checkpoint record:
/// first collect the set of committed transactions, then apply their
/// `PageWrite` after-images to `db` in log order. Writes of transactions
/// without a commit record are losers (the crash interrupted their commit
/// before the log flush finished) and are skipped — which is also correct,
/// because commit-time publication means no page they touched was ever
/// dirtied in the buffer pool.
///
/// `ssd_frames` is the SSD geometry for validating embedded buffer tables
/// (`None` skips the range check). A checkpoint whose table fails
/// validation is rejected and the scan falls back to the previous complete
/// checkpoint; replaying a longer suffix is always safe because redo is
/// idempotent.
///
/// The SSD is deliberately *not* consulted: as in the paper (§6), no design
/// uses SSD contents at restart, so recovery sees only the disk image plus
/// the log. Under LC this is safe because every sharp checkpoint flushed all
/// SSD-dirty pages before writing its checkpoint record, and post-checkpoint
/// committed writes are all in the log suffix being replayed.
///
/// `Err` means a redo read or write failed permanently (after whatever
/// retry the [`RedoStore`] applies): the disk image is part-redone but the
/// log is untouched, so recovery can simply be run again — redo is
/// idempotent and convergent.
pub fn recover(
    log_bytes: &[u8],
    db: &mut dyn RedoStore,
    ssd_frames: Option<u64>,
) -> Result<RecoveryOutcome, IoError> {
    let decoded = decode_all(log_bytes);
    let records = decoded.records;
    let (start, ssd_table, ckpts_seen, ckpts_rejected) = find_anchor(&records, ssd_frames);
    let report = LogScanReport {
        tail: decoded.tail,
        log_bytes: log_bytes.len(),
        valid_len: decoded.valid_len,
        checkpoints_seen: ckpts_seen,
        checkpoints_rejected: ckpts_rejected,
        used_checkpoint: start > 0,
    };
    let tail = &records[start..];

    let committed: HashSet<TxId> = tail
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txid } => Some(*txid),
            _ => None,
        })
        .collect();

    let mut stats = RecoveryStats {
        records_scanned: tail.len(),
        txns_redone: committed.len(),
        ..Default::default()
    };
    let mut redone: HashSet<PageId> = HashSet::new();

    let page_size = db.page_size();
    let mut page_buf = vec![0u8; page_size];
    for rec in tail {
        if let LogRecord::PageWrite {
            txid,
            pid,
            offset,
            data,
        } = rec
        {
            if !committed.contains(txid) {
                stats.writes_skipped += 1;
                continue;
            }
            let off = *offset as usize;
            assert!(
                off + data.len() <= page_size,
                "log record exceeds page bounds"
            );
            db.read(*pid, &mut page_buf)?;
            page_buf[off..off + data.len()].copy_from_slice(data);
            db.write(*pid, &page_buf)?;
            stats.writes_applied += 1;
            redone.insert(*pid);
        }
    }
    Ok(RecoveryOutcome {
        stats,
        redone,
        ssd_table,
        report,
    })
}

/// Targeted live redo: rebuild the committed content of `pids` onto `db`
/// from the durable log tail, without touching any other page.
///
/// This is the WAL-tail salvage path of the fault-tolerance extension: under
/// lazy cleaning the SSD may hold the *only* current copy of a dirty page,
/// and if that copy becomes unreadable (checksum mismatch, device death) the
/// page is "stranded". Its committed content is still reconstructible,
/// because (a) the WAL protocol flushed the page's log records before the
/// page ever reached the SSD, and (b) every sharp checkpoint flushes all
/// SSD-dirty pages before truncating the log — so all writes newer than the
/// disk image sit in the post-checkpoint suffix replayed here.
///
/// Replay is restricted to committed transactions and is idempotent (byte
/// after-images applied in log order), so salvaging a page whose disk image
/// was already current is harmless. Returns the distinct pages restored;
/// `Err` means the disk tier itself failed mid-salvage.
pub fn salvage(
    log_bytes: &[u8],
    db: &mut dyn RedoStore,
    pids: &HashSet<PageId>,
) -> Result<usize, IoError> {
    if pids.is_empty() {
        return Ok(0);
    }
    let records = decode_all(log_bytes).records;
    let (start, _, _, _) = find_anchor(&records, None);
    let tail = &records[start..];
    let committed: HashSet<TxId> = tail
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txid } => Some(*txid),
            _ => None,
        })
        .collect();

    let page_size = db.page_size();
    let mut page_buf = vec![0u8; page_size];
    let mut restored: HashSet<PageId> = HashSet::new();
    for rec in tail {
        if let LogRecord::PageWrite {
            txid,
            pid,
            offset,
            data,
        } = rec
        {
            if !pids.contains(pid) || !committed.contains(txid) {
                continue;
            }
            let off = *offset as usize;
            assert!(
                off + data.len() <= page_size,
                "log record exceeds page bounds"
            );
            db.read(*pid, &mut page_buf)?;
            page_buf[off..off + data.len()].copy_from_slice(data);
            db.write(*pid, &page_buf)?;
            restored.insert(*pid);
        }
    }
    Ok(restored.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{MemStore, PageId};

    fn encode(recs: &[LogRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in recs {
            r.encode(&mut buf);
        }
        buf
    }

    fn run(log: &[u8], db: &MemStore) -> RecoveryOutcome {
        recover(log, &mut DirectStore(db), None).unwrap()
    }

    #[test]
    fn redo_applies_committed_writes_in_order() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 2,
                data: vec![2; 4],
            },
            LogRecord::Commit { txid: 1 },
        ]);
        let out = run(&log, &db);
        assert_eq!(out.stats.writes_applied, 2);
        assert_eq!(out.stats.txns_redone, 1);
        assert!(out.redone.contains(&PageId(0)));
        assert_eq!(out.report.tail, LogTail::Clean);
        assert_eq!(out.report.valid_len, log.len());
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..6], &[1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn uncommitted_writes_are_skipped() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 7,
                pid: PageId(1),
                offset: 0,
                data: vec![9; 8],
            },
            // no Commit{7}
        ]);
        let out = run(&log, &db);
        assert_eq!(out.stats.writes_applied, 0);
        assert_eq!(out.stats.writes_skipped, 1);
        assert!(out.redone.is_empty());
        let mut buf = [0u8; 16];
        db.read(PageId(1), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn replay_starts_after_last_checkpoint() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![5; 4],
            },
            LogRecord::Commit { txid: 1 },
            LogRecord::Checkpoint,
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(2),
                offset: 0,
                data: vec![6; 4],
            },
            LogRecord::Commit { txid: 2 },
        ]);
        let out = run(&log, &db);
        // Pre-checkpoint write is NOT replayed (it is on disk by contract).
        assert_eq!(out.stats.writes_applied, 1);
        assert!(out.report.used_checkpoint);
        assert_eq!(out.report.checkpoints_seen, 1);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        db.read(PageId(2), &mut buf);
        assert_eq!(&buf[..4], &[6; 4]);
    }

    #[test]
    fn commit_after_writes_of_other_txns_interleaved() {
        let db = MemStore::new(4, 8);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 2],
            },
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(0),
                offset: 0,
                data: vec![2; 2],
            },
            LogRecord::Commit { txid: 2 },
            LogRecord::Commit { txid: 1 },
        ]);
        run(&log, &db);
        // Log order decides: txn 2's write happened after txn 1's.
        let mut buf = [0u8; 8];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..2], &[2, 2]);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let db = MemStore::new(1, 8);
        let out = run(&[], &db);
        assert_eq!(out.stats, RecoveryStats::default());
        assert!(out.redone.is_empty());
        assert!(out.ssd_table.is_none());
        assert_eq!(out.report, LogScanReport::default());
    }

    #[test]
    fn ssd_table_attached_to_last_checkpoint_is_returned() {
        let db = MemStore::new(4, 8);
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(1, 10)],
            }, // stale (older ckpt)
            LogRecord::Checkpoint,
            LogRecord::SsdTable {
                entries: vec![(2, 20), (3, 21)],
            },
            LogRecord::Checkpoint,
            LogRecord::Commit { txid: 9 },
        ]);
        let out = run(&log, &db);
        assert_eq!(out.ssd_table, Some(vec![(PageId(2), 20), (PageId(3), 21)]));
        assert_eq!(out.report.checkpoints_seen, 2);
        assert_eq!(out.report.checkpoints_rejected, 0);
    }

    #[test]
    fn invalid_ssd_table_rejects_its_checkpoint() {
        let db = MemStore::new(4, 16);
        // First checkpoint: valid table. Second checkpoint: table with a
        // duplicate frame — semantically garbage even though the record
        // itself checksums fine. The scan must fall back to the first
        // checkpoint and replay the longer suffix.
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(1, 10)],
            },
            LogRecord::Checkpoint,
            LogRecord::PageWrite {
                txid: 3,
                pid: PageId(1),
                offset: 0,
                data: vec![7; 4],
            },
            LogRecord::Commit { txid: 3 },
            LogRecord::SsdTable {
                entries: vec![(2, 20), (3, 20)], // duplicate frame 20
            },
            LogRecord::Checkpoint,
        ]);
        let out = run(&log, &db);
        assert_eq!(out.report.checkpoints_rejected, 1);
        assert_eq!(out.ssd_table, Some(vec![(PageId(1), 10)]));
        // Replay anchored at the *first* checkpoint redoes txn 3.
        assert_eq!(out.stats.writes_applied, 1);
        let mut buf = [0u8; 16];
        db.read(PageId(1), &mut buf);
        assert_eq!(&buf[..4], &[7; 4]);
    }

    #[test]
    fn out_of_range_frame_rejects_the_table() {
        let db = MemStore::new(4, 8);
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(1, 99)],
            },
            LogRecord::Checkpoint,
        ]);
        // With known geometry (16 frames), frame 99 is impossible.
        let out = recover(&log, &mut DirectStore(&db), Some(16)).unwrap();
        assert_eq!(out.report.checkpoints_rejected, 1);
        assert!(out.ssd_table.is_none());
        assert!(!out.report.used_checkpoint);
        // Without geometry, the same table passes the range check.
        let out = recover(&log, &mut DirectStore(&db), None).unwrap();
        assert_eq!(out.report.checkpoints_rejected, 0);
    }

    #[test]
    fn corrupt_mid_log_stops_at_damage_and_reports() {
        let db = MemStore::new(4, 16);
        let mut log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::Commit { txid: 1 },
        ]);
        let first_two = log.len();
        log.extend(encode(&[
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(1),
                offset: 0,
                data: vec![2; 4],
            },
            LogRecord::Commit { txid: 2 },
        ]));
        // Flip a bit inside txn 2's page write.
        log[first_two + 5] ^= 0x01;
        let out = run(&log, &db);
        assert_eq!(out.report.tail, LogTail::Corrupt { at: first_two });
        assert_eq!(out.report.valid_len, first_two);
        // Txn 1 was replayed; txn 2 is unreachable.
        assert_eq!(out.stats.writes_applied, 1);
        let mut buf = [0u8; 16];
        db.read(PageId(1), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn salvage_restores_only_the_requested_pages() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(2),
                offset: 0,
                data: vec![3; 4],
            },
            LogRecord::Commit { txid: 1 },
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(0),
                offset: 2,
                data: vec![2; 2],
            },
            LogRecord::Commit { txid: 2 },
        ]);
        let want: HashSet<PageId> = [PageId(0)].into_iter().collect();
        assert_eq!(salvage(&log, &mut DirectStore(&db), &want).unwrap(), 1);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..4], &[1, 1, 2, 2], "both commits replayed in order");
        db.read(PageId(2), &mut buf);
        assert_eq!(buf, [0u8; 16], "page 2 untouched");
    }

    #[test]
    fn salvage_skips_uncommitted_writes_and_empty_sets() {
        let db = MemStore::new(4, 16);
        let log = encode(&[LogRecord::PageWrite {
            txid: 1,
            pid: PageId(0),
            offset: 0,
            data: vec![9; 4],
        }]);
        let want: HashSet<PageId> = [PageId(0)].into_iter().collect();
        assert_eq!(salvage(&log, &mut DirectStore(&db), &want).unwrap(), 0);
        assert_eq!(
            salvage(&log, &mut DirectStore(&db), &HashSet::new()).unwrap(),
            0
        );
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn salvage_is_idempotent_over_a_current_disk_image() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(1),
                offset: 4,
                data: vec![7; 4],
            },
            LogRecord::Commit { txid: 1 },
        ]);
        let want: HashSet<PageId> = [PageId(1)].into_iter().collect();
        assert_eq!(salvage(&log, &mut DirectStore(&db), &want).unwrap(), 1);
        let mut first = [0u8; 16];
        db.read(PageId(1), &mut first);
        assert_eq!(salvage(&log, &mut DirectStore(&db), &want).unwrap(), 1);
        let mut second = [0u8; 16];
        db.read(PageId(1), &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn ssd_table_must_be_adjacent_to_its_checkpoint() {
        let db = MemStore::new(4, 8);
        // A table followed by unrelated records then a checkpoint: still
        // found (it belongs to the pre-checkpoint flush)...
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(5, 50)],
            },
            LogRecord::Checkpoint,
        ]);
        let out = run(&log, &db);
        assert_eq!(out.ssd_table, Some(vec![(PageId(5), 50)]));
    }

    #[test]
    fn recovery_is_reentrant_after_a_failed_pass() {
        // A store that fails its first N writes models recovery crashing
        // mid-redo: rerunning recover on the same (partial) image must
        // converge to the same final state.
        struct Flaky<'a> {
            inner: &'a MemStore,
            failures_left: usize,
        }
        impl RedoStore for Flaky<'_> {
            fn page_size(&self) -> usize {
                self.inner.page_size()
            }
            fn read(&mut self, pid: PageId, buf: &mut [u8]) -> Result<(), IoError> {
                self.inner.read(pid, buf);
                Ok(())
            }
            fn write(&mut self, pid: PageId, data: &[u8]) -> Result<(), IoError> {
                if self.failures_left > 0 {
                    self.failures_left -= 1;
                    return Err(IoError::new(
                        turbopool_iosim::FaultDevice::Disk,
                        turbopool_iosim::IoErrorKind::DeviceDead,
                        0,
                    ));
                }
                self.inner.write(pid, data);
                Ok(())
            }
        }
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::Commit { txid: 1 },
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(1),
                offset: 0,
                data: vec![2; 4],
            },
            LogRecord::Commit { txid: 2 },
        ]);
        let db = MemStore::new(4, 16);
        let mut flaky = Flaky {
            inner: &db,
            failures_left: 2,
        };
        // First and second passes die mid-redo; the third converges.
        assert!(recover(&log, &mut flaky, None).is_err());
        assert!(recover(&log, &mut flaky, None).is_err());
        let out = recover(&log, &mut flaky, None).unwrap();
        assert_eq!(out.stats.writes_applied, 2);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..4], &[1; 4]);
        db.read(PageId(1), &mut buf);
        assert_eq!(&buf[..4], &[2; 4]);
    }
}
