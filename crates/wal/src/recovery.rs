//! Crash recovery: redo committed page writes after the last checkpoint.

use std::collections::HashSet;

use turbopool_iosim::{PageId, PageStore};

use crate::record::{decode_all, LogRecord};
use crate::TxId;

/// Full result of a recovery pass.
#[derive(Debug, Default, Clone)]
pub struct RecoveryOutcome {
    /// Counters.
    pub stats: RecoveryStats,
    /// Pages whose disk image advanced during redo: their pre-crash SSD
    /// copies are stale and must not be warm-imported.
    pub redone: HashSet<PageId>,
    /// The SSD buffer table embedded in the last checkpoint, if any.
    pub ssd_table: Option<Vec<(PageId, u64)>>,
}

/// Outcome counters from a recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records scanned after the last checkpoint.
    pub records_scanned: usize,
    /// Distinct committed transactions whose writes were redone.
    pub txns_redone: usize,
    /// Individual page-write records applied.
    pub writes_applied: usize,
    /// Page-write records skipped because their transaction never committed.
    pub writes_skipped: usize,
}

/// Replay the durable log onto the persistent database.
///
/// Two passes over the suffix that follows the last checkpoint record:
/// first collect the set of committed transactions, then apply their
/// `PageWrite` after-images to `db` in log order. Writes of transactions
/// without a commit record are losers (the crash interrupted their commit
/// before the log flush finished) and are skipped — which is also correct,
/// because commit-time publication means no page they touched was ever
/// dirtied in the buffer pool.
///
/// The SSD is deliberately *not* consulted: as in the paper (§6), no design
/// uses SSD contents at restart, so recovery sees only the disk image plus
/// the log. Under LC this is safe because every sharp checkpoint flushed all
/// SSD-dirty pages before writing its checkpoint record, and post-checkpoint
/// committed writes are all in the log suffix being replayed.
pub fn recover(log_bytes: &[u8], db: &dyn PageStore) -> RecoveryOutcome {
    let records = decode_all(log_bytes);
    // Start after the *last* checkpoint (the log manager truncates, but a
    // crash can land between two checkpoints of an untruncated stream).
    let start = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    // The warm-restart table, if one was embedded in that checkpoint.
    let ssd_table = (start > 0)
        .then(|| {
            records[..start - 1].iter().rev().find_map(|r| match r {
                LogRecord::SsdTable { entries } => Some(
                    entries
                        .iter()
                        .map(|&(p, f)| (PageId(p), f))
                        .collect::<Vec<_>>(),
                ),
                // Only a table directly attached to this checkpoint counts.
                LogRecord::Checkpoint => None,
                _ => None,
            })
        })
        .flatten();
    let tail = &records[start..];

    let committed: HashSet<TxId> = tail
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txid } => Some(*txid),
            _ => None,
        })
        .collect();

    let mut stats = RecoveryStats {
        records_scanned: tail.len(),
        txns_redone: committed.len(),
        ..Default::default()
    };
    let mut redone: HashSet<PageId> = HashSet::new();

    let page_size = db.page_size();
    let mut page_buf = vec![0u8; page_size];
    for rec in tail {
        if let LogRecord::PageWrite {
            txid,
            pid,
            offset,
            data,
        } = rec
        {
            if !committed.contains(txid) {
                stats.writes_skipped += 1;
                continue;
            }
            let off = *offset as usize;
            assert!(
                off + data.len() <= page_size,
                "log record exceeds page bounds"
            );
            db.read(*pid, &mut page_buf);
            page_buf[off..off + data.len()].copy_from_slice(data);
            db.write(*pid, &page_buf);
            stats.writes_applied += 1;
            redone.insert(*pid);
        }
    }
    RecoveryOutcome {
        stats,
        redone,
        ssd_table,
    }
}

/// Targeted live redo: rebuild the committed content of `pids` onto `db`
/// from the durable log tail, without touching any other page.
///
/// This is the WAL-tail salvage path of the fault-tolerance extension: under
/// lazy cleaning the SSD may hold the *only* current copy of a dirty page,
/// and if that copy becomes unreadable (checksum mismatch, device death) the
/// page is "stranded". Its committed content is still reconstructible,
/// because (a) the WAL protocol flushed the page's log records before the
/// page ever reached the SSD, and (b) every sharp checkpoint flushes all
/// SSD-dirty pages before truncating the log — so all writes newer than the
/// disk image sit in the post-checkpoint suffix replayed here.
///
/// Replay is restricted to committed transactions and is idempotent (byte
/// after-images applied in log order), so salvaging a page whose disk image
/// was already current is harmless. Returns the distinct pages restored.
pub fn salvage(log_bytes: &[u8], db: &dyn PageStore, pids: &HashSet<PageId>) -> usize {
    if pids.is_empty() {
        return 0;
    }
    let records = decode_all(log_bytes);
    let start = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let tail = &records[start..];
    let committed: HashSet<TxId> = tail
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txid } => Some(*txid),
            _ => None,
        })
        .collect();

    let page_size = db.page_size();
    let mut page_buf = vec![0u8; page_size];
    let mut restored: HashSet<PageId> = HashSet::new();
    for rec in tail {
        if let LogRecord::PageWrite {
            txid,
            pid,
            offset,
            data,
        } = rec
        {
            if !pids.contains(pid) || !committed.contains(txid) {
                continue;
            }
            let off = *offset as usize;
            assert!(
                off + data.len() <= page_size,
                "log record exceeds page bounds"
            );
            db.read(*pid, &mut page_buf);
            page_buf[off..off + data.len()].copy_from_slice(data);
            db.write(*pid, &page_buf);
            restored.insert(*pid);
        }
    }
    restored.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use turbopool_iosim::{MemStore, PageId};

    fn encode(recs: &[LogRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in recs {
            r.encode(&mut buf);
        }
        buf
    }

    #[test]
    fn redo_applies_committed_writes_in_order() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 2,
                data: vec![2; 4],
            },
            LogRecord::Commit { txid: 1 },
        ]);
        let out = recover(&log, &db);
        assert_eq!(out.stats.writes_applied, 2);
        assert_eq!(out.stats.txns_redone, 1);
        assert!(out.redone.contains(&PageId(0)));
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..6], &[1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn uncommitted_writes_are_skipped() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 7,
                pid: PageId(1),
                offset: 0,
                data: vec![9; 8],
            },
            // no Commit{7}
        ]);
        let out = recover(&log, &db);
        assert_eq!(out.stats.writes_applied, 0);
        assert_eq!(out.stats.writes_skipped, 1);
        assert!(out.redone.is_empty());
        let mut buf = [0u8; 16];
        db.read(PageId(1), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn replay_starts_after_last_checkpoint() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![5; 4],
            },
            LogRecord::Commit { txid: 1 },
            LogRecord::Checkpoint,
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(2),
                offset: 0,
                data: vec![6; 4],
            },
            LogRecord::Commit { txid: 2 },
        ]);
        let out = recover(&log, &db);
        // Pre-checkpoint write is NOT replayed (it is on disk by contract).
        assert_eq!(out.stats.writes_applied, 1);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        db.read(PageId(2), &mut buf);
        assert_eq!(&buf[..4], &[6; 4]);
    }

    #[test]
    fn commit_after_writes_of_other_txns_interleaved() {
        let db = MemStore::new(4, 8);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 2],
            },
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(0),
                offset: 0,
                data: vec![2; 2],
            },
            LogRecord::Commit { txid: 2 },
            LogRecord::Commit { txid: 1 },
        ]);
        recover(&log, &db);
        // Log order decides: txn 2's write happened after txn 1's.
        let mut buf = [0u8; 8];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..2], &[2, 2]);
    }

    #[test]
    fn empty_log_is_a_noop() {
        let db = MemStore::new(1, 8);
        let out = recover(&[], &db);
        assert_eq!(out.stats, RecoveryStats::default());
        assert!(out.redone.is_empty());
        assert!(out.ssd_table.is_none());
    }

    #[test]
    fn ssd_table_attached_to_last_checkpoint_is_returned() {
        let db = MemStore::new(4, 8);
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(1, 10)],
            }, // stale (older ckpt)
            LogRecord::Checkpoint,
            LogRecord::SsdTable {
                entries: vec![(2, 20), (3, 21)],
            },
            LogRecord::Checkpoint,
            LogRecord::Commit { txid: 9 },
        ]);
        let out = recover(&log, &db);
        assert_eq!(out.ssd_table, Some(vec![(PageId(2), 20), (PageId(3), 21)]));
    }

    #[test]
    fn salvage_restores_only_the_requested_pages() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(0),
                offset: 0,
                data: vec![1; 4],
            },
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(2),
                offset: 0,
                data: vec![3; 4],
            },
            LogRecord::Commit { txid: 1 },
            LogRecord::PageWrite {
                txid: 2,
                pid: PageId(0),
                offset: 2,
                data: vec![2; 2],
            },
            LogRecord::Commit { txid: 2 },
        ]);
        let want: HashSet<PageId> = [PageId(0)].into_iter().collect();
        assert_eq!(salvage(&log, &db, &want), 1);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(&buf[..4], &[1, 1, 2, 2], "both commits replayed in order");
        db.read(PageId(2), &mut buf);
        assert_eq!(buf, [0u8; 16], "page 2 untouched");
    }

    #[test]
    fn salvage_skips_uncommitted_writes_and_empty_sets() {
        let db = MemStore::new(4, 16);
        let log = encode(&[LogRecord::PageWrite {
            txid: 1,
            pid: PageId(0),
            offset: 0,
            data: vec![9; 4],
        }]);
        let want: HashSet<PageId> = [PageId(0)].into_iter().collect();
        assert_eq!(salvage(&log, &db, &want), 0);
        assert_eq!(salvage(&log, &db, &HashSet::new()), 0);
        let mut buf = [0u8; 16];
        db.read(PageId(0), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn salvage_is_idempotent_over_a_current_disk_image() {
        let db = MemStore::new(4, 16);
        let log = encode(&[
            LogRecord::PageWrite {
                txid: 1,
                pid: PageId(1),
                offset: 4,
                data: vec![7; 4],
            },
            LogRecord::Commit { txid: 1 },
        ]);
        let want: HashSet<PageId> = [PageId(1)].into_iter().collect();
        assert_eq!(salvage(&log, &db, &want), 1);
        let mut first = [0u8; 16];
        db.read(PageId(1), &mut first);
        assert_eq!(salvage(&log, &db, &want), 1);
        let mut second = [0u8; 16];
        db.read(PageId(1), &mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn ssd_table_must_be_adjacent_to_its_checkpoint() {
        let db = MemStore::new(4, 8);
        // A table followed by unrelated records then a checkpoint: still
        // found (it belongs to the pre-checkpoint flush)...
        let log = encode(&[
            LogRecord::SsdTable {
                entries: vec![(5, 50)],
            },
            LogRecord::Checkpoint,
        ]);
        let out = recover(&log, &db);
        assert_eq!(out.ssd_table, Some(vec![(PageId(5), 50)]));
    }
}
