//! Redo-only write-ahead logging with sharp checkpoints.
//!
//! The engine uses commit-time publication: a transaction buffers its page
//! writes privately and, at commit, (1) appends the writes plus a commit
//! record to the log, (2) flushes the log, and (3) only then publishes the
//! writes to buffer-pool pages. Consequently every dirty page in the buffer
//! pool (or in the SSD cache, under the lazy-cleaning design) carries only
//! committed data, and recovery is pure redo: replay the committed page
//! writes found after the last completed sharp checkpoint.
//!
//! Sharp checkpoints (the policy of the paper's host DBMS, §2.3.3) flush
//! *all* dirty pages — from the memory pool and, under LC, from the SSD —
//! before the checkpoint record is written, so the log before the checkpoint
//! is never needed again and is truncated.

#![forbid(unsafe_code)]

pub mod log;
pub mod record;
pub mod recovery;

pub use log::{DurableLog, LogManager, Lsn};
pub use record::{DecodeError, DecodeOutcome, LogRecord, LogTail};
pub use recovery::{
    recover, salvage, DirectStore, LogScanReport, RecoveryOutcome, RecoveryStats, RedoStore,
};

/// Transaction identifier.
pub type TxId = u64;
