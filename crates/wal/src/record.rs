//! Log record types and their binary encoding.
//!
//! Every record is framed as `body ++ fnv1a64(body)`: an 8-byte checksum
//! trailer over the record's own bytes. The trailer is what lets a
//! recovery scan tell a *torn tail* (the stream ends inside a record —
//! the crash interrupted the last log flush; truncate and proceed) from
//! *mid-log corruption* (the bytes are all there but the checksum does
//! not match — damaged media; stop and report loudly).

use turbopool_iosim::{fault, PageId};

use crate::TxId;

/// A single log record.
///
/// The log is redo-only: `PageWrite` records carry after-images of the byte
/// range a committed transaction changed, and `Commit` makes all preceding
/// `PageWrite`s of that transaction durable. `Checkpoint` marks a completed
/// sharp checkpoint — everything before it is already on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// After-image of `data.len()` bytes at `offset` within page `pid`,
    /// written by transaction `txid`.
    PageWrite {
        txid: TxId,
        pid: PageId,
        offset: u32,
        data: Vec<u8>,
    },
    /// Transaction `txid` committed; its page writes must be redone.
    Commit { txid: TxId },
    /// A completed sharp checkpoint. Redo never needs to look further back.
    Checkpoint,
    /// The SSD buffer table as of the checkpoint this record precedes:
    /// `(page id, SSD frame)` pairs for every (clean) cached page. Written
    /// only when warm restart is enabled — the extension the paper
    /// sketches in §4.1/§6 ("adding the SSD buffer table data structure
    /// ... to the checkpoint record").
    SsdTable { entries: Vec<(u64, u64)> },
}

const TAG_PAGE_WRITE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_SSD_TABLE: u8 = 4;

/// Bytes of the per-record FNV-1a-64 checksum trailer.
pub const CHECKSUM_LEN: usize = 8;

/// Why a record could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends inside the record: a torn tail after a crash.
    Incomplete,
    /// The bytes are structurally complete but wrong: unknown tag or
    /// checksum mismatch. The log is damaged at this point.
    Corrupt,
}

/// How a full-log scan ended. Offsets are byte positions into the scanned
/// buffer — everything before the offset decoded cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogTail {
    /// Every byte decoded: the log ends exactly on a record boundary.
    Clean,
    /// The stream ends inside a record at `at` — the torn tail of an
    /// interrupted flush. Safe to truncate at `at` and proceed.
    Torn { at: usize },
    /// Undecodable bytes at `at` with more bytes following: mid-log
    /// corruption. Records beyond `at` are unreachable (the stream has no
    /// out-of-band framing to resynchronize on) and recovery must report
    /// the damage instead of silently proceeding.
    Corrupt { at: usize },
}

impl LogTail {
    /// True when the scan needs to be surfaced to an operator: some bytes
    /// in the durable log could not be used.
    pub fn is_damaged(&self) -> bool {
        !matches!(self, LogTail::Clean)
    }
}

/// Result of scanning a byte stream for records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// Records decoded, in stream order, up to the end/torn/corrupt point.
    pub records: Vec<LogRecord>,
    /// How the scan ended.
    pub tail: LogTail,
    /// Bytes consumed by cleanly decoded records: the prefix of the buffer
    /// that is trustworthy (equals the tail offset for `Torn`/`Corrupt`,
    /// the buffer length for `Clean`).
    pub valid_len: usize,
}

impl LogRecord {
    /// Append the binary encoding of this record (body + checksum trailer)
    /// to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        match self {
            LogRecord::PageWrite {
                txid,
                pid,
                offset,
                data,
            } => {
                out.push(TAG_PAGE_WRITE);
                out.extend_from_slice(&txid.to_le_bytes());
                out.extend_from_slice(&pid.0.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            LogRecord::Commit { txid } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txid.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(TAG_CHECKPOINT),
            LogRecord::SsdTable { entries } => {
                out.push(TAG_SSD_TABLE);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for &(pid, frame) in entries {
                    out.extend_from_slice(&pid.to_le_bytes());
                    out.extend_from_slice(&frame.to_le_bytes());
                }
            }
        }
        let sum = fault::checksum(&out[start..]);
        out.extend_from_slice(&sum.to_le_bytes());
    }

    /// Size of the binary encoding (including the checksum trailer).
    pub fn encoded_len(&self) -> usize {
        let body = match self {
            LogRecord::PageWrite { data, .. } => 1 + 8 + 8 + 4 + 4 + data.len(),
            LogRecord::Commit { .. } => 1 + 8,
            LogRecord::Checkpoint => 1,
            LogRecord::SsdTable { entries } => 1 + 4 + 16 * entries.len(),
        };
        body + CHECKSUM_LEN
    }

    /// Decode one record from the front of `buf`, returning the record and
    /// the number of bytes consumed (body + trailer).
    pub fn decode(buf: &[u8]) -> Result<(LogRecord, usize), DecodeError> {
        let (body_len, rec) = Self::decode_body(buf)?;
        let total = body_len + CHECKSUM_LEN;
        if buf.len() < total {
            return Err(DecodeError::Incomplete);
        }
        let stored = u64::from_le_bytes(buf[body_len..total].try_into().unwrap());
        if fault::checksum(&buf[..body_len]) != stored {
            return Err(DecodeError::Corrupt);
        }
        Ok((rec, total))
    }

    /// Decode the record body, returning `(body_len, record)`.
    fn decode_body(buf: &[u8]) -> Result<(usize, LogRecord), DecodeError> {
        let (&tag, rest) = buf.split_first().ok_or(DecodeError::Incomplete)?;
        match tag {
            TAG_PAGE_WRITE => {
                if rest.len() < 24 {
                    return Err(DecodeError::Incomplete);
                }
                let txid = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                let pid = u64::from_le_bytes(rest[8..16].try_into().unwrap());
                let offset = u32::from_le_bytes(rest[16..20].try_into().unwrap());
                let len = u32::from_le_bytes(rest[20..24].try_into().unwrap()) as usize;
                if rest.len() < 24 + len {
                    return Err(DecodeError::Incomplete);
                }
                let data = rest[24..24 + len].to_vec();
                Ok((
                    1 + 24 + len,
                    LogRecord::PageWrite {
                        txid,
                        pid: PageId(pid),
                        offset,
                        data,
                    },
                ))
            }
            TAG_COMMIT => {
                if rest.len() < 8 {
                    return Err(DecodeError::Incomplete);
                }
                let txid = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                Ok((9, LogRecord::Commit { txid }))
            }
            TAG_CHECKPOINT => Ok((1, LogRecord::Checkpoint)),
            TAG_SSD_TABLE => {
                if rest.len() < 4 {
                    return Err(DecodeError::Incomplete);
                }
                let n = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                if rest.len() < 4 + 16 * n {
                    return Err(DecodeError::Incomplete);
                }
                let mut entries = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 4 + i * 16;
                    entries.push((
                        u64::from_le_bytes(rest[off..off + 8].try_into().unwrap()),
                        u64::from_le_bytes(rest[off + 8..off + 16].try_into().unwrap()),
                    ));
                }
                Ok((1 + 4 + 16 * n, LogRecord::SsdTable { entries }))
            }
            _ => Err(DecodeError::Corrupt),
        }
    }
}

/// Scan `buf` for records, classifying how the stream ends (clean record
/// boundary, torn tail, or mid-log corruption).
pub fn decode_all(buf: &[u8]) -> DecodeOutcome {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        match LogRecord::decode(&buf[pos..]) {
            Ok((rec, used)) => {
                records.push(rec);
                pos += used;
            }
            Err(DecodeError::Incomplete) => {
                return DecodeOutcome {
                    records,
                    tail: LogTail::Torn { at: pos },
                    valid_len: pos,
                };
            }
            Err(DecodeError::Corrupt) => {
                return DecodeOutcome {
                    records,
                    tail: LogTail::Corrupt { at: pos },
                    valid_len: pos,
                };
            }
        }
    }
    DecodeOutcome {
        records,
        tail: LogTail::Clean,
        valid_len: pos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rec: LogRecord) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (decoded, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, rec);
    }

    #[test]
    fn round_trips() {
        round_trip(LogRecord::PageWrite {
            txid: 42,
            pid: PageId(7),
            offset: 128,
            data: vec![1, 2, 3, 4, 5],
        });
        round_trip(LogRecord::PageWrite {
            txid: 0,
            pid: PageId(0),
            offset: 0,
            data: vec![],
        });
        round_trip(LogRecord::Commit { txid: u64::MAX });
        round_trip(LogRecord::Checkpoint);
        round_trip(LogRecord::SsdTable { entries: vec![] });
        round_trip(LogRecord::SsdTable {
            entries: (0..100).map(|i| (i * 3, i)).collect(),
        });
    }

    #[test]
    fn decode_all_stops_at_torn_tail() {
        let mut buf = Vec::new();
        LogRecord::Commit { txid: 1 }.encode(&mut buf);
        let first_len = buf.len();
        LogRecord::PageWrite {
            txid: 2,
            pid: PageId(3),
            offset: 0,
            data: vec![9; 100],
        }
        .encode(&mut buf);
        // Tear the last record in half.
        buf.truncate(buf.len() - 50);
        let out = decode_all(&buf);
        assert_eq!(out.records, vec![LogRecord::Commit { txid: 1 }]);
        assert_eq!(out.tail, LogTail::Torn { at: first_len });
        assert_eq!(out.valid_len, first_len);
    }

    #[test]
    fn missing_trailer_alone_is_a_torn_tail() {
        // The body is complete but the checksum trailer is cut short: still
        // classified torn, not corrupt (the flush lost its suffix).
        let mut buf = Vec::new();
        LogRecord::Commit { txid: 5 }.encode(&mut buf);
        buf.truncate(buf.len() - 3);
        assert_eq!(LogRecord::decode(&buf), Err(DecodeError::Incomplete));
        assert_eq!(decode_all(&buf).tail, LogTail::Torn { at: 0 });
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert_eq!(
            LogRecord::decode(&[0xFF, 1, 2, 3]),
            Err(DecodeError::Corrupt)
        );
    }

    #[test]
    fn bit_flip_anywhere_is_caught() {
        let mut clean = Vec::new();
        LogRecord::PageWrite {
            txid: 9,
            pid: PageId(4),
            offset: 16,
            data: vec![0xAA; 40],
        }
        .encode(&mut clean);
        LogRecord::Commit { txid: 9 }.encode(&mut clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut damaged = clean.clone();
                damaged[byte] ^= 1 << bit;
                let out = decode_all(&damaged);
                // A flip must never be absorbed silently: either the scan
                // reports damage, or (flipping a length field downward) the
                // shortened record fails its checksum and reports damage.
                assert!(
                    out.tail.is_damaged(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn corruption_before_valid_records_hides_them() {
        // Records after a corrupt region are unreachable: the scan reports
        // Corrupt with following bytes present.
        let mut buf = Vec::new();
        LogRecord::Commit { txid: 1 }.encode(&mut buf);
        let cut = buf.len();
        LogRecord::Commit { txid: 2 }.encode(&mut buf);
        buf[2] ^= 0x10; // damage the first record's txid
        let out = decode_all(&buf);
        assert!(out.records.is_empty());
        assert_eq!(out.tail, LogTail::Corrupt { at: 0 });
        let _ = cut;
    }

    #[test]
    fn decode_all_handles_back_to_back_records() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            LogRecord::PageWrite {
                txid: i,
                pid: PageId(i * 2),
                offset: i as u32,
                data: vec![i as u8; i as usize],
            }
            .encode(&mut buf);
        }
        LogRecord::Checkpoint.encode(&mut buf);
        let out = decode_all(&buf);
        assert_eq!(out.records.len(), 11);
        assert_eq!(out.records[10], LogRecord::Checkpoint);
        assert_eq!(out.tail, LogTail::Clean);
        assert_eq!(out.valid_len, buf.len());
    }
}
