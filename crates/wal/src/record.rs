//! Log record types and their binary encoding.

use turbopool_iosim::PageId;

use crate::TxId;

/// A single log record.
///
/// The log is redo-only: `PageWrite` records carry after-images of the byte
/// range a committed transaction changed, and `Commit` makes all preceding
/// `PageWrite`s of that transaction durable. `Checkpoint` marks a completed
/// sharp checkpoint — everything before it is already on disk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// After-image of `data.len()` bytes at `offset` within page `pid`,
    /// written by transaction `txid`.
    PageWrite {
        txid: TxId,
        pid: PageId,
        offset: u32,
        data: Vec<u8>,
    },
    /// Transaction `txid` committed; its page writes must be redone.
    Commit { txid: TxId },
    /// A completed sharp checkpoint. Redo never needs to look further back.
    Checkpoint,
    /// The SSD buffer table as of the checkpoint this record precedes:
    /// `(page id, SSD frame)` pairs for every (clean) cached page. Written
    /// only when warm restart is enabled — the extension the paper
    /// sketches in §4.1/§6 ("adding the SSD buffer table data structure
    /// ... to the checkpoint record").
    SsdTable { entries: Vec<(u64, u64)> },
}

const TAG_PAGE_WRITE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_SSD_TABLE: u8 = 4;

impl LogRecord {
    /// Append the binary encoding of this record to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            LogRecord::PageWrite {
                txid,
                pid,
                offset,
                data,
            } => {
                out.push(TAG_PAGE_WRITE);
                out.extend_from_slice(&txid.to_le_bytes());
                out.extend_from_slice(&pid.0.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            LogRecord::Commit { txid } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txid.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(TAG_CHECKPOINT),
            LogRecord::SsdTable { entries } => {
                out.push(TAG_SSD_TABLE);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for &(pid, frame) in entries {
                    out.extend_from_slice(&pid.to_le_bytes());
                    out.extend_from_slice(&frame.to_le_bytes());
                }
            }
        }
    }

    /// Size of the binary encoding, in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            LogRecord::PageWrite { data, .. } => 1 + 8 + 8 + 4 + 4 + data.len(),
            LogRecord::Commit { .. } => 1 + 8,
            LogRecord::Checkpoint => 1,
            LogRecord::SsdTable { entries } => 1 + 4 + 16 * entries.len(),
        }
    }

    /// Decode one record from the front of `buf`, returning the record and
    /// the number of bytes consumed, or `None` if `buf` holds an incomplete
    /// record (a torn tail after a crash — recovery stops there).
    pub fn decode(buf: &[u8]) -> Option<(LogRecord, usize)> {
        let (&tag, rest) = buf.split_first()?;
        match tag {
            TAG_PAGE_WRITE => {
                if rest.len() < 24 {
                    return None;
                }
                let txid = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                let pid = u64::from_le_bytes(rest[8..16].try_into().unwrap());
                let offset = u32::from_le_bytes(rest[16..20].try_into().unwrap());
                let len = u32::from_le_bytes(rest[20..24].try_into().unwrap()) as usize;
                if rest.len() < 24 + len {
                    return None;
                }
                let data = rest[24..24 + len].to_vec();
                Some((
                    LogRecord::PageWrite {
                        txid,
                        pid: PageId(pid),
                        offset,
                        data,
                    },
                    1 + 24 + len,
                ))
            }
            TAG_COMMIT => {
                if rest.len() < 8 {
                    return None;
                }
                let txid = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                Some((LogRecord::Commit { txid }, 9))
            }
            TAG_CHECKPOINT => Some((LogRecord::Checkpoint, 1)),
            TAG_SSD_TABLE => {
                if rest.len() < 4 {
                    return None;
                }
                let n = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
                if rest.len() < 4 + 16 * n {
                    return None;
                }
                let mut entries = Vec::with_capacity(n);
                for i in 0..n {
                    let off = 4 + i * 16;
                    entries.push((
                        u64::from_le_bytes(rest[off..off + 8].try_into().unwrap()),
                        u64::from_le_bytes(rest[off + 8..off + 16].try_into().unwrap()),
                    ));
                }
                Some((LogRecord::SsdTable { entries }, 1 + 4 + 16 * n))
            }
            _ => None, // corrupt byte: treat as end of usable log
        }
    }
}

/// Iterate over the records encoded in `buf`, stopping at the first
/// incomplete or corrupt record.
pub fn decode_all(buf: &[u8]) -> Vec<LogRecord> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        match LogRecord::decode(&buf[pos..]) {
            Some((rec, used)) => {
                out.push(rec);
                pos += used;
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(rec: LogRecord) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(buf.len(), rec.encoded_len());
        let (decoded, used) = LogRecord::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(decoded, rec);
    }

    #[test]
    fn round_trips() {
        round_trip(LogRecord::PageWrite {
            txid: 42,
            pid: PageId(7),
            offset: 128,
            data: vec![1, 2, 3, 4, 5],
        });
        round_trip(LogRecord::PageWrite {
            txid: 0,
            pid: PageId(0),
            offset: 0,
            data: vec![],
        });
        round_trip(LogRecord::Commit { txid: u64::MAX });
        round_trip(LogRecord::Checkpoint);
        round_trip(LogRecord::SsdTable { entries: vec![] });
        round_trip(LogRecord::SsdTable {
            entries: (0..100).map(|i| (i * 3, i)).collect(),
        });
    }

    #[test]
    fn decode_all_stops_at_torn_tail() {
        let mut buf = Vec::new();
        LogRecord::Commit { txid: 1 }.encode(&mut buf);
        LogRecord::PageWrite {
            txid: 2,
            pid: PageId(3),
            offset: 0,
            data: vec![9; 100],
        }
        .encode(&mut buf);
        // Tear the last record in half.
        buf.truncate(buf.len() - 50);
        let recs = decode_all(&buf);
        assert_eq!(recs, vec![LogRecord::Commit { txid: 1 }]);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert!(LogRecord::decode(&[0xFF, 1, 2, 3]).is_none());
    }

    #[test]
    fn decode_all_handles_back_to_back_records() {
        let mut buf = Vec::new();
        for i in 0..10u64 {
            LogRecord::PageWrite {
                txid: i,
                pid: PageId(i * 2),
                offset: i as u32,
                data: vec![i as u8; i as usize],
            }
            .encode(&mut buf);
        }
        LogRecord::Checkpoint.encode(&mut buf);
        let recs = decode_all(&buf);
        assert_eq!(recs.len(), 11);
        assert_eq!(recs[10], LogRecord::Checkpoint);
    }
}
