//! Driver scaling — wall-clock speedup of the time-windowed parallel
//! driver (ISSUE 4 tentpole) at 1/2/4/8 worker threads, over:
//!
//! * the fig6-quick workload (TPC-C 2K warehouses; LC, DW, TAC and noSSD
//!   each in their own share-nothing domain), and
//! * a fault matrix (four SSD designs × two fault streams, eight
//!   domains of synthetic clients with injected SSD errors), and
//! * a buffer-pool contention stress (ISSUE 9): real OS threads
//!   hammering ONE shared pool's hit path, lock-striped 1-way vs N-way.
//!
//! Every sweep asserts that per-domain results are bit-identical across
//! thread counts — the parallel driver must never trade determinism for
//! speed. Speedups are reported in `BENCH_driver_scaling.json`; on an
//! N-core runner the 4-thread OLTP sweep should approach min(4, N)×.
//! Each sample records the host's core count, and `speedup_vs_1` is
//! only computed when the host can actually run threads in parallel —
//! a single-core runner otherwise "reports" meaningless slowdowns.
//! `TURBO_QUICK` shortens runs and caps the sweep at 4 threads.

use std::sync::Arc;

use turbopool_bench::{quick, BenchReport, Json, OltpKind, RunOptions, WallTimer};
use turbopool_bufpool::{BufferPool, BufferPoolConfig, DirectIo, PageIo, ShardCount};
use turbopool_core::metrics::SsdMetricsSnapshot;
use turbopool_iosim::fault::{FaultConfig, FaultPlan};
use turbopool_iosim::{Clk, DeviceSetup, IoManager, Locality, PageId, MINUTE};
use turbopool_workload::driver::{Driver, ThroughputRecorder};
use turbopool_workload::scenario::Design;
use turbopool_workload::synthetic::{Synthetic, SyntheticConfig};

const FAULT_SEED: u64 = 0x5CA1E;

fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// One (threads -> outcome) sample of a sweep.
struct Sample {
    threads: usize,
    drive_secs: f64,
    steps: u64,
    /// Host core count at sample time — speedup is only meaningful
    /// against it.
    cores: u64,
    /// Per-domain fingerprints, compared across thread counts.
    fingerprint: Vec<(String, u64)>,
}

fn sample_json(s: &Sample, baseline_secs: f64) -> Json {
    // On a single-core host the multi-threaded samples measure scheduler
    // overhead, not scaling; emit null rather than a misleading number.
    let speedup = if s.cores > 1 && s.drive_secs > 0.0 {
        Json::Num(baseline_secs / s.drive_secs)
    } else {
        Json::Null
    };
    Json::Obj(vec![
        ("threads".to_string(), Json::Int(s.threads as u64)),
        ("cores".to_string(), Json::Int(s.cores)),
        ("drive_secs".to_string(), Json::Num(s.drive_secs)),
        ("steps".to_string(), Json::Int(s.steps)),
        (
            "steps_per_sec".to_string(),
            Json::Num(if s.drive_secs > 0.0 {
                s.steps as f64 / s.drive_secs
            } else {
                0.0
            }),
        ),
        ("speedup_vs_1".to_string(), speedup),
    ])
}

/// Run the fig6-quick OLTP panel at `threads` and fingerprint each
/// design's result with its commit count.
fn oltp_sample(threads: usize, duration: turbopool_iosim::Time) -> Sample {
    let designs = [Design::Lc, Design::Dw, Design::Tac, Design::NoSsd];
    let opts = RunOptions::tpcc(duration);
    let set =
        turbopool_bench::run_oltp_set(OltpKind::TpcC { warehouses: 20 }, &designs, &opts, threads);
    let fingerprint = set
        .runs
        .iter()
        .map(|run| (run.design.label().to_string(), run.metric.total()))
        .collect();
    Sample {
        threads,
        drive_secs: set.drive_secs,
        steps: set.steps,
        cores: host_cores(),
        fingerprint,
    }
}

/// Sum a few SSD counters into one order-insensitive fingerprint word.
fn metrics_word(m: &SsdMetricsSnapshot) -> u64 {
    m.ssd_hits
        .wrapping_add(m.admissions.wrapping_mul(3))
        .wrapping_add(m.ssd_io_errors.wrapping_mul(5))
        .wrapping_add(m.checksum_misses.wrapping_mul(7))
}

/// Run the fault matrix at `threads`: eight (design × fault) domains of
/// synthetic clients with injected SSD error streams.
fn fault_sample(threads: usize, duration: turbopool_iosim::Time) -> Sample {
    let designs = [Design::Cw, Design::Dw, Design::Lc, Design::Tac];
    let faults = ["transient", "bitflips"];
    let cfg = SyntheticConfig {
        rows: 5_000,
        ..Default::default()
    };
    let mut driver = Driver::new();
    let mut handles = Vec::new();
    let mut lookahead = turbopool_iosim::Time::MAX;
    for (d, &design) in designs.iter().enumerate() {
        for (f, &fault) in faults.iter().enumerate() {
            let domain = d * faults.len() + f;
            let s = Arc::new(Synthetic::setup(design, cfg.clone(), |spec| {
                spec.mem_frames = 64;
                spec.ssd_frames = 256;
            }));
            let fc = match fault {
                "transient" => FaultConfig::transient(FAULT_SEED + domain as u64, 0.02),
                _ => {
                    let mut fc = FaultConfig::quiet(FAULT_SEED + domain as u64);
                    fc.bitflip_prob = 0.05;
                    fc
                }
            };
            s.db.io().set_ssd_fault(Some(Arc::new(FaultPlan::new(fc))));
            lookahead = lookahead.min(s.db.io().setup().min_service_ns());
            let rec = ThroughputRecorder::new(MINUTE);
            for c in 0..3 {
                driver.add_in_domain(domain, 0, Box::new(s.client(c, Arc::clone(&rec))));
            }
            handles.push((format!("{}/{fault}", design.label()), s, rec));
        }
    }
    driver.set_lookahead(lookahead.saturating_mul(4096));
    let timer = WallTimer::start();
    driver.run_until_parallel(duration, threads);
    let drive_secs = timer.secs();
    let fingerprint = handles
        .iter()
        .map(|(label, s, rec)| {
            let m = s.db.ssd_metrics().expect("matrix designs have an SSD");
            (
                label.clone(),
                rec.total().wrapping_mul(31) ^ metrics_word(&m),
            )
        })
        .collect();
    Sample {
        threads,
        drive_secs,
        steps: driver.steps(),
        cores: host_cores(),
        fingerprint,
    }
}

fn sweep(
    name: &str,
    thread_counts: &[usize],
    mut run: impl FnMut(usize) -> Sample,
) -> (Vec<Json>, f64) {
    let mut samples = Vec::new();
    for &threads in thread_counts {
        let s = run(threads);
        println!(
            "{name:<14} threads={threads} drive_secs={:.3} steps={}",
            s.drive_secs, s.steps
        );
        samples.push(s);
    }
    let base = &samples[0];
    for s in &samples[1..] {
        assert_eq!(
            s.fingerprint, base.fingerprint,
            "{name}: results diverged between {} and {} threads",
            base.threads, s.threads
        );
        assert_eq!(s.steps, base.steps, "{name}: step counts diverged");
    }
    println!("{name:<14} results identical across all thread counts");
    let baseline_secs = base.drive_secs;
    let entries = samples
        .iter()
        .map(|s| sample_json(s, baseline_secs))
        .collect();
    (entries, baseline_secs)
}

// ---------------------------------------------------------------------
// ISSUE 9: buffer-pool lock-striping contention stress
// ---------------------------------------------------------------------

/// Pages in the stress pool. Frames == pages, so after a single warming
/// pass every access is a hit: the measurement is pure page-table +
/// policy metadata work under the shard latches, with no I/O (whose own
/// locks would mask the effect, as in the ablation-4 partitioning bench).
const STRESS_PAGES: u64 = 4096;

/// One shared pool hammered by real threads at a given stripe count.
fn contention_sample(shards: usize, threads: usize, gets_per_thread: u64) -> Json {
    let io = Arc::new(IoManager::new(&DeviceSetup::paper(256, STRESS_PAGES, 1)));
    let layer: Arc<dyn PageIo> = Arc::new(DirectIo::new(io));
    let mut cfg = BufferPoolConfig::new(STRESS_PAGES as usize, 256, STRESS_PAGES);
    cfg.shards = ShardCount::Fixed(shards);
    let pool = Arc::new(BufferPool::new(cfg, layer));
    // Warm every page resident (unmeasured, single-threaded).
    let mut clk = Clk::new();
    for p in 0..STRESS_PAGES {
        pool.get(&mut clk, PageId(p), Locality::Random).unwrap();
    }
    let warm = pool.stats();
    // Wall clock on purpose: this measures real OS-thread latch
    // contention across stripe counts, which the virtual clock cannot
    // observe. Identical measurement rationale to ablation 4 (§3.3.4).
    // lint: allow(wallclock) — harness-side timing of real latch contention
    let t0 = std::time::Instant::now();
    // lint: allow(thread-spawn) — contention stress needs true parallelism; the hammered pool is bench-local, no simulation state is shared.
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let mut clk = Clk::new();
                let mut x = t + 1;
                for _ in 0..gets_per_thread {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let pid = PageId((x >> 16) % STRESS_PAGES);
                    let g = pool.get(&mut clk, pid, Locality::Random).unwrap();
                    std::hint::black_box(&g);
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let stats = pool.stats();
    let acq = stats.shard_acquisitions - warm.shard_acquisitions;
    let contended = stats.shard_contended - warm.shard_contended;
    let gets = gets_per_thread * threads as u64;
    println!(
        "contention     shards={shards} threads={threads} wall={wall:.3}s \
         gets/s={:.0} contended_share={:.4}",
        gets as f64 / wall.max(1e-9),
        contended as f64 / acq.max(1) as f64,
    );
    Json::Obj(vec![
        ("shards".to_string(), Json::Int(shards as u64)),
        ("threads".to_string(), Json::Int(threads as u64)),
        ("cores".to_string(), Json::Int(host_cores())),
        ("wall_secs".to_string(), Json::Num(wall)),
        ("gets".to_string(), Json::Int(gets)),
        (
            "gets_per_sec".to_string(),
            Json::Num(gets as f64 / wall.max(1e-9)),
        ),
        ("shard_acquisitions".to_string(), Json::Int(acq)),
        ("shard_contended".to_string(), Json::Int(contended)),
        (
            "contended_share".to_string(),
            Json::Num(contended as f64 / acq.max(1) as f64),
        ),
    ])
}

fn main() {
    let quick = quick();
    let thread_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let oltp_minutes: u64 = if quick { 20 } else { 60 };
    let fault_minutes: u64 = if quick { 10 } else { 30 };
    let timer = WallTimer::start();

    println!("== driver_scaling: fig6-quick (TPC-C 2K, 4 design domains) ==");
    let (oltp, _) = sweep("oltp", thread_counts, |t| {
        oltp_sample(t, oltp_minutes * MINUTE)
    });

    println!("\n== driver_scaling: fault matrix (4 designs x 2 fault streams) ==");
    let (faults, _) = sweep("fault_matrix", thread_counts, |t| {
        fault_sample(t, fault_minutes * MINUTE)
    });

    println!("\n== driver_scaling: pool lock-striping contention (1 shared pool) ==");
    let gets_per_thread: u64 = if quick { 500_000 } else { 2_000_000 };
    let mut contention = Vec::new();
    for &shards in &[1usize, 8] {
        for &threads in thread_counts {
            contention.push(contention_sample(shards, threads, gets_per_thread));
        }
    }

    let virtual_ns =
        (oltp_minutes * MINUTE).saturating_mul(4) + (fault_minutes * MINUTE).saturating_mul(8);
    let mut report = BenchReport::new("driver_scaling");
    report
        .standard(
            timer.secs(),
            *thread_counts.last().unwrap_or(&1),
            virtual_ns * thread_counts.len() as u64,
            0,
        )
        .set("oltp", Json::Arr(oltp))
        .set("fault_matrix", Json::Arr(faults))
        .set("pool_contention", Json::Arr(contention))
        .int("cores", host_cores());
    report.emit();
}
