//! Figure 5 — speedups of DW, LC and TAC over noSSD across all nine
//! databases (TPC-C 1K/2K/4K warehouses, TPC-E 10K/20K/40K customers,
//! TPC-H 30/100 SF), plus the §4.1 CW datapoint.
//!
//! Paper numbers (speedup over noSSD):
//!
//! ```text
//! TPC-C:  1K  2K  4K     TPC-E: 10K  20K  40K    TPC-H:  30SF 100SF
//! DW     2.2 1.9 2.2            5.5  8.0  2.7            3.4  2.8
//! LC     9.1 9.4 6.2            5.4  7.6  2.7            3.2  2.9
//! TAC    1.9 1.4 1.9            5.2  7.5  3.0            3.3  2.9
//! ```
//!
//! Env: TURBO_HOURS (default 10), TURBO_QUICK.

use std::sync::Arc;

use turbopool_bench::{run_hours, run_oltp, BenchReport, OltpKind, RunOptions, Table, WallTimer};
use turbopool_workload::scenario::Design;
use turbopool_workload::tpch::{self, Tpch};

struct PaperRow {
    dw: f64,
    lc: f64,
    tac: f64,
}

fn oltp_section(
    name: &str,
    metric_name: &str,
    cases: &[(&str, OltpKind, PaperRow)],
    opts_for: impl Fn(&OltpKind) -> RunOptions,
) {
    println!("\n== Figure 5 ({name}) ==\n");
    let mut table = Table::new(vec![
        "database",
        "design",
        metric_name,
        "speedup",
        "paper",
        "ssd hit%",
    ]);
    for (label, kind, paper) in cases {
        let opts = opts_for(kind);
        let base = run_oltp(*kind, Design::NoSsd, &opts);
        table.row(vec![
            label.to_string(),
            "noSSD".into(),
            format!("{:.2}", base.last_hour_per_min),
            "1.0x".into(),
            "1.0x".into(),
            "-".into(),
        ]);
        for (design, paper_x) in [
            (Design::Dw, paper.dw),
            (Design::Lc, paper.lc),
            (Design::Tac, paper.tac),
        ] {
            let run = run_oltp(*kind, design, &opts);
            let speedup = run.last_hour_per_min / base.last_hour_per_min.max(1e-9);
            let hit = run.ssd.map(|m| m.hit_rate() * 100.0).unwrap_or(0.0);
            table.row(vec![
                label.to_string(),
                design.label().into(),
                format!("{:.2}", run.last_hour_per_min),
                format!("{speedup:.1}x"),
                format!("{paper_x:.1}x"),
                format!("{hit:.0}%"),
            ]);
        }
    }
    table.print();
}

fn tpch_section(quick: bool) {
    println!("\n== Figure 5 (g,h): TPC-H QphH speedups ==\n");
    let mut table = Table::new(vec!["SF", "design", "QphH", "speedup", "paper"]);
    let sfs: &[(u64, usize, [f64; 3])] = if quick {
        &[(30, 4, [3.4, 3.2, 3.3])]
    } else {
        &[(30, 4, [3.4, 3.2, 3.3]), (100, 5, [2.8, 2.9, 2.9])]
    };
    for &(sf, streams, paper) in sfs {
        let mut base_qphh = 0.0;
        for (i, design) in [Design::NoSsd, Design::Dw, Design::Lc, Design::Tac]
            .into_iter()
            .enumerate()
        {
            tpch::reset_finish_time();
            let t = Arc::new(Tpch::setup(design, sf, 0.01));
            let mut clk = turbopool_iosim::Clk::new();
            let p = t.power_test(&mut clk);
            tpch::reset_finish_time();
            let tput = t.throughput_test(streams);
            let qphh = tpch::qphh(p.power, tput);
            if i == 0 {
                base_qphh = qphh;
            }
            let speedup = qphh / base_qphh;
            let paper_x = if i == 0 { 1.0 } else { paper[i - 1] };
            table.row(vec![
                format!("{sf}"),
                design.label().into(),
                format!("{qphh:.0}"),
                format!("{speedup:.1}x"),
                format!("{paper_x:.1}x"),
            ]);
        }
    }
    table.print();
}

fn cw_note() {
    // §4.1: "for the 20K customer TPC-E database, CW was 21.6% and 23.3%
    // slower than DW and LC, respectively."
    println!("\n== §4.1 CW datapoint (TPC-E 20K) ==\n");
    let opts = RunOptions::tpce(run_hours());
    let cw = run_oltp(OltpKind::TpcE { customers: 2_000 }, Design::Cw, &opts);
    let dw = run_oltp(OltpKind::TpcE { customers: 2_000 }, Design::Dw, &opts);
    let lc = run_oltp(OltpKind::TpcE { customers: 2_000 }, Design::Lc, &opts);
    let vs_dw = 100.0 * (1.0 - cw.last_hour_per_min / dw.last_hour_per_min.max(1e-9));
    let vs_lc = 100.0 * (1.0 - cw.last_hour_per_min / lc.last_hour_per_min.max(1e-9));
    println!("CW slower than DW by {vs_dw:.1}% (paper: 21.6%)");
    println!("CW slower than LC by {vs_lc:.1}% (paper: 23.3%)");
}

fn main() {
    let timer = WallTimer::start();
    let quick = turbopool_bench::quick();
    let hours = run_hours();

    let tpcc: Vec<(&str, OltpKind, PaperRow)> = if quick {
        vec![(
            "2K wh (200GB)",
            OltpKind::TpcC { warehouses: 20 },
            PaperRow {
                dw: 1.9,
                lc: 9.4,
                tac: 1.4,
            },
        )]
    } else {
        vec![
            (
                "1K wh (100GB)",
                OltpKind::TpcC { warehouses: 10 },
                PaperRow {
                    dw: 2.2,
                    lc: 9.1,
                    tac: 1.9,
                },
            ),
            (
                "2K wh (200GB)",
                OltpKind::TpcC { warehouses: 20 },
                PaperRow {
                    dw: 1.9,
                    lc: 9.4,
                    tac: 1.4,
                },
            ),
            (
                "4K wh (400GB)",
                OltpKind::TpcC { warehouses: 40 },
                PaperRow {
                    dw: 2.2,
                    lc: 6.2,
                    tac: 1.9,
                },
            ),
        ]
    };
    oltp_section("a-c: TPC-C tpmC", "tpmC*", &tpcc, |_| {
        RunOptions::tpcc(hours)
    });

    let tpce: Vec<(&str, OltpKind, PaperRow)> = if quick {
        vec![(
            "20K cust (230GB)",
            OltpKind::TpcE { customers: 2_000 },
            PaperRow {
                dw: 8.0,
                lc: 7.6,
                tac: 7.5,
            },
        )]
    } else {
        vec![
            (
                "10K cust (115GB)",
                OltpKind::TpcE { customers: 1_000 },
                PaperRow {
                    dw: 5.5,
                    lc: 5.4,
                    tac: 5.2,
                },
            ),
            (
                "20K cust (230GB)",
                OltpKind::TpcE { customers: 2_000 },
                PaperRow {
                    dw: 8.0,
                    lc: 7.6,
                    tac: 7.5,
                },
            ),
            (
                "40K cust (415GB)",
                OltpKind::TpcE { customers: 4_000 },
                PaperRow {
                    dw: 2.7,
                    lc: 2.7,
                    tac: 3.0,
                },
            ),
        ]
    };
    oltp_section("d-f: TPC-E tpmE-equivalent", "tps*60", &tpce, |_| {
        RunOptions::tpce(hours)
    });

    tpch_section(quick);
    if !quick {
        cw_note();
    }
    println!("\n(*metrics are scaled: divide paper absolute numbers by 1000 to compare; speedups are scale-free.)");
    BenchReport::new("fig5")
        .standard(timer.secs(), 1, hours, 0)
        .emit();
}
