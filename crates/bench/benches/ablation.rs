//! Ablations — one experiment per design choice the paper calls out.
//!
//! 1. Random/sequential classifier accuracy: read-ahead-based vs the
//!    64-page proximity rule (§2.2: 82% vs 51%).
//! 2. TAC's logical-invalidation waste (§2.5: 7.4/10.4/8.9 GB of the
//!    140 GB SSD on TPC-C 1K/2K/4K).
//! 3. Multi-page I/O: trim vs split vs disk-only (§3.3.3).
//! 4. SSD partitioning under real thread concurrency (§3.3.4).
//! 5. Aggressive filling on/off (§3.3.1) — ramp-up speed.
//! 6. Throttle control on/off (§3.3.2).

use std::sync::Arc;

use turbopool_bench::{run_oltp, OltpKind, RunOptions, Table};
use turbopool_bufpool::{
    BufferPool, BufferPoolConfig, ClassifierKind, DirectIo, PageIo, ScanCursor,
};
use turbopool_core::{MultiPageMode, SsdConfig, SsdDesign, SsdManager};
use turbopool_iosim::{Clk, DeviceSetup, IoManager, Locality, PageId, HOUR, MILLISECOND, MINUTE};
use turbopool_workload::driver::{Driver, ThroughputRecorder};
use turbopool_workload::scenario::{Design, PAGE_SIZE, SCALE};
use turbopool_workload::synthetic::{Synthetic, SyntheticConfig};

/// §2.2 — classifier accuracy under interleaved scans + nearby random
/// lookups.
fn classifier_accuracy() {
    println!("== Ablation 1: sequential-read classification accuracy (§2.2) ==\n");
    let mut table = Table::new(vec!["classifier", "seq accuracy", "paper"]);
    for (kind, paper) in [
        (ClassifierKind::ReadAhead, "82%"),
        (ClassifierKind::Proximity, "51%"),
    ] {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(512, 4096, 8)));
        let mut cfg = BufferPoolConfig::new(512, 512, 4096);
        cfg.classifier = kind;
        cfg.fill_expansion = 1;
        let pool = BufferPool::new(cfg, Arc::new(DirectIo::new(io)));
        let mut clk = Clk::new();
        // Two interleaved sequential streams plus random lookups that
        // sometimes land near the streams — the concurrent mixture that
        // defeats the proximity rule.
        // Tightly interleaved streams with small read-ahead windows plus
        // two random lookups per round: the I/O-arrival mixture a busy
        // multi-user system shows the classifier.
        let mut a = ScanCursor::new(PageId(0), PageId(1000), 2);
        let mut b = ScanCursor::new(PageId(2000), PageId(3000), 2);
        let mut rnd = 0u64;
        loop {
            let ga = a.next(&mut clk, &pool).is_some();
            rnd = (rnd
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                >> 16)
                % 4096;
            pool.get(&mut clk, PageId(rnd), Locality::Random);
            let gb = b.next(&mut clk, &pool).is_some();
            rnd = (rnd
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407)
                >> 16)
                % 4096;
            pool.get(&mut clk, PageId(rnd), Locality::Random);
            if !ga && !gb {
                break;
            }
        }
        let s = pool.classifier_stats();
        table.row(vec![
            format!("{kind:?}"),
            format!("{:.0}%", s.sequential_accuracy() * 100.0),
            paper.to_string(),
        ]);
    }
    table.print();
}

/// §2.5 — SSD space wasted on logically invalid pages under TAC.
fn tac_waste() {
    println!("\n== Ablation 2: TAC logical-invalidation waste (§2.5) ==\n");
    let quick = turbopool_bench::quick();
    let cases: &[(&str, u64, f64)] = if quick {
        &[("2K wh", 20, 10.4)]
    } else {
        &[("1K wh", 10, 7.4), ("2K wh", 20, 10.4), ("4K wh", 40, 8.9)]
    };
    let hours = if quick {
        HOUR
    } else {
        turbopool_bench::run_hours()
    };
    let mut table = Table::new(vec![
        "database",
        "invalid frames",
        "waste (GB eq.)",
        "paper (GB)",
    ]);
    for &(label, sw, paper_gb) in cases {
        let run = run_oltp(
            OltpKind::TpcC { warehouses: sw },
            Design::Tac,
            &RunOptions::tpcc(hours),
        );
        let gb = run.tac_invalid_frames as f64 * PAGE_SIZE as f64 * SCALE / (1u64 << 30) as f64;
        table.row(vec![
            label.to_string(),
            format!("{}", run.tac_invalid_frames),
            format!("{gb:.1}"),
            format!("{paper_gb:.1}"),
        ]);
    }
    table.print();
}

/// §3.3.3 — multi-page read handling.
fn multipage() {
    println!("\n== Ablation 3: multi-page I/O — trim vs split vs disk-only (§3.3.3) ==\n");
    let mut table = Table::new(vec!["mode", "virtual time", "vs Trim"]);
    let mut base = 0.0;
    for mode in [
        MultiPageMode::Trim,
        MultiPageMode::Split,
        MultiPageMode::DiskOnly,
    ] {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(
            PAGE_SIZE, 65_536, 4_096,
        )));
        let mut cfg = SsdConfig::new(SsdDesign::DualWrite, 4_096);
        cfg.multipage = mode;
        cfg.partitions = 1;
        let m = SsdManager::new(cfg, Arc::clone(&io));
        // One quarter of the pages are SSD-resident, scattered through the
        // scan range — the paper's §3.3.3 situation where parts of every
        // multi-page request are cached (their example: the 3rd and 5th
        // pages of a 6-page read).
        // Spread the pre-population in virtual time so the manager's own
        // throttle does not shed it.
        let zero = vec![0u8; PAGE_SIZE];
        for i in 0..16_000u64 {
            m.evict_page(
                i * MILLISECOND,
                PageId(i * 4 + 1),
                &zero,
                false,
                Locality::Random,
            );
        }
        // Start after the fill writes have drained so the throttle stays
        // out of the picture.
        let mut clk = Clk::at(HOUR);
        for run in 0..2_000u64 {
            m.read_run(&mut clk, PageId(run * 32), 32);
        }
        clk.now -= HOUR;
        let secs = clk.now as f64 / 1e9;
        if base == 0.0 {
            base = secs;
        }
        table.row(vec![
            format!("{mode:?}"),
            format!("{secs:.2}s"),
            format!("{:.2}x", secs / base),
        ]);
    }
    table.print();
    println!("(paper: splitting reduced performance; trimming recovers it)");
}

/// §3.3.4 — partitioning under real thread concurrency (latch contention).
///
/// The paper's motivation is the latch on the SSD manager's shared data
/// structures, so this measures pure metadata operations (lookups against
/// the buffer table under the partition latches) from 8 OS threads — I/O
/// is deliberately excluded so the device model's own lock does not mask
/// the effect being measured.
fn partitioning() {
    println!("\n== Ablation 4: SSD partitioning, 8 threads of buffer-table ops (§3.3.4) ==\n");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        println!("note: this host exposes {cores} CPU(s); latch contention cannot");
        println!("manifest without true parallelism, so expect flat numbers here.");
        println!("On a multicore host, N=16 spreads the buffer-table latch 16 ways.\n");
    }
    let mut table = Table::new(vec!["partitions", "wall time", "vs N=16"]);
    let mut base = 0.0;
    for n in [16usize, 4, 1] {
        let io = Arc::new(IoManager::new(&DeviceSetup::paper(
            PAGE_SIZE,
            1 << 20,
            65_536,
        )));
        let mut cfg = SsdConfig::new(SsdDesign::DualWrite, 65_536);
        cfg.partitions = n;
        let m = Arc::new(SsdManager::new(cfg, io));
        // Pre-populate the cache once (unmeasured).
        let zero = vec![0u8; PAGE_SIZE];
        for i in 0..60_000u64 {
            m.evict_page(0, PageId(i), &zero, false, Locality::Random);
        }
        // Wall clock on purpose (turbopool-lint allowlists this file):
        // this measures real OS-thread latch contention across partition
        // counts, which the virtual clock cannot observe.
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut x = t + 1;
                    let mut hits = 0u64;
                    for _ in 0..2_000_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let pid = PageId((x >> 16) % 60_000);
                        if m.contains(pid) {
                            hits += 1;
                        }
                    }
                    std::hint::black_box(hits);
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        if base == 0.0 {
            base = wall;
        }
        table.row(vec![
            format!("{n}"),
            format!("{wall:.2}s"),
            format!("{:.2}x", wall / base),
        ]);
    }
    table.print();
    println!("(more partitions -> less latch contention under real concurrency)");
}

/// §3.3.1 — aggressive filling primes the SSD from cold starts.
///
/// Scenario: a full table scan warms the system from cold (its evicted
/// pages are *sequential*, so only the filling phase will cache them),
/// then a burst of random index lookups runs against the same table.
/// With τ = 95% the scan pre-loads the SSD and the lookups hit it; with
/// filling off, every lookup pays a disk seek.
fn filling() {
    println!("\n== Ablation 5: aggressive filling on/off (§3.3.1) ==\n");
    let mut table = Table::new(vec![
        "tau",
        "random-phase time",
        "SSD hit%",
        "fill admissions",
    ]);
    for (label, tau) in [("95% (on)", 0.95), ("0% (off)", 0.0)] {
        let cfg = SyntheticConfig {
            rows: 800_000,
            record_size: 128,
            theta: 0.0,
            update_frac: 0.0,
            ..Default::default()
        };
        let s = Arc::new(Synthetic::setup(Design::Dw, cfg, |spec| {
            spec.tau = tau;
        }));
        let mut clk = Clk::new();
        // Cold scan: floods the pool; evictions are sequential-class.
        s.db.scan_heap(&mut clk, s.heap, |_, _| {}).unwrap();
        // Random phase.
        let start = clk.now;
        let mut txn = s.db.begin(&mut clk);
        let mut x = 7u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if let Some(rid) = txn.index_get(s.index, (x >> 16) % 800_000) {
                txn.heap_get(s.heap, rid);
            }
        }
        txn.commit();
        let elapsed = (clk.now - start) as f64 / 1e9;
        let m = s.db.ssd_metrics().unwrap();
        table.row(vec![
            label.to_string(),
            format!("{elapsed:.0}s"),
            format!("{:.0}%", m.hit_rate() * 100.0),
            format!("{}", m.fill_admissions),
        ]);
    }
    table.print();
    let _ = HOUR;
    let _ = MINUTE;
}

/// §3.3.2 — throttle control under SSD admission storms.
///
/// The throttle's job is to shed *optional* SSD traffic when the SSD queue
/// is deep, so foreground reads are not wedged behind it. Scenario: a
/// steady SSD-resident read workload, plus a periodic admission storm
/// (20,000 eviction-admissions in one go — a pool flush's worth). With
/// mu = 100 the storm is shed; without it, every storm books ~27 virtual
/// minutes of SSD time that the readers must queue behind.
fn throttle() {
    println!("\n== Ablation 6: throttle control mu=100 vs off (§3.3.2) ==\n");
    let hours = if turbopool_bench::quick() {
        HOUR
    } else {
        2 * HOUR
    };
    let mut table = Table::new(vec![
        "mu",
        "reader txns",
        "throttled admissions",
        "ssd writes",
    ]);

    struct AdmissionStorm {
        s: Arc<Synthetic>,
        junk: turbopool_engine::HeapId,
        period: u64,
        pages: u64,
        next_pid: u64,
    }
    impl turbopool_workload::driver::Client for AdmissionStorm {
        fn step(&mut self, clk: &mut Clk) -> turbopool_workload::driver::StepResult {
            let mgr = self.s.db.ssd_manager().unwrap();
            let meta = self.s.db.heap_meta(self.junk);
            let zero = vec![0u8; PAGE_SIZE];
            for _ in 0..self.pages {
                let pid = meta.first.offset(self.next_pid % meta.pages);
                self.next_pid += 1;
                mgr.evict_page(clk.now, pid, &zero, false, Locality::Random);
            }
            clk.elapse(self.period);
            turbopool_workload::driver::StepResult::Continue
        }
    }

    for (label, mu) in [("100 (on)", 100usize), ("off", usize::MAX / 2)] {
        let cfg = SyntheticConfig {
            rows: 400_000,
            record_size: 128,
            theta: 0.0,
            update_frac: 0.0,
            ops_per_txn: 2,
            ..Default::default()
        };
        let s = Arc::new(Synthetic::setup(Design::Dw, cfg, |spec| {
            spec.mu = mu;
            spec.mem_frames = 512;
            spec.db_pages += 40_000; // junk heap for the storm
        }));
        let mut clk = Clk::new();
        let junk = s.db.create_heap(&mut clk, "junk", 128, 40_000);
        // Pre-warm the SSD with the read set.
        {
            let mgr = s.db.ssd_manager().unwrap();
            let ps = s.db.page_size();
            let zero = vec![0u8; ps];
            let meta = s.db.heap_meta(s.heap);
            for i in 0..meta.used_pages() {
                // Spread over virtual time to stay below the throttle.
                mgr.evict_page(
                    i * 100 * MILLISECOND,
                    meta.first.offset(i),
                    &zero,
                    false,
                    Locality::Random,
                );
            }
        }
        let rec = ThroughputRecorder::new(MINUTE);
        let mut d = Driver::new();
        for c in 0..3 {
            d.add(HOUR, Box::new(s.client(c, Arc::clone(&rec))));
        }
        d.add(
            HOUR + 10 * MINUTE,
            Box::new(AdmissionStorm {
                s: Arc::clone(&s),
                junk,
                period: 40 * MINUTE,
                pages: 20_000,
                next_pid: 0,
            }),
        );
        d.run_until(HOUR + hours);
        let m = s.db.ssd_metrics().unwrap();
        table.row(vec![
            label.to_string(),
            format!("{}", rec.total()),
            format!("{}", m.throttled_admissions),
            format!("{}", s.db.io().ssd_stats().write_ops),
        ]);
    }
    table.print();
    println!("(the throttle sheds the storm, keeping reads fast; without it the");
    println!(" readers queue behind tens of minutes of optional SSD writes)");
}

fn main() {
    let timer = turbopool_bench::WallTimer::start();
    classifier_accuracy();
    tac_waste();
    multipage();
    partitioning();
    filling();
    throttle();
    turbopool_bench::BenchReport::new("ablation")
        .standard(timer.secs(), 1, 0, 0)
        .emit();
}
