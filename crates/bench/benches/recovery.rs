//! Recovery hardening — restart cost and crash-schedule coverage.
//!
//! Three experiments on the engine's recovery path:
//!
//! 1. **Redo cost vs log length.** Sharp checkpoints bound recovery work
//!    by the post-checkpoint log suffix; this measures virtual recovery
//!    time as the number of committed transactions since the last
//!    checkpoint grows.
//! 2. **Warm vs cold re-adoption.** The checkpoint-embedded SSD table
//!    makes restart re-adoption nearly free compared to re-warming
//!    through misses; this reports the probe/import accounting.
//! 3. **Crash-schedule coverage.** The exhaustive explorer enumerates
//!    every durable-write boundary of a seeded trace per design and
//!    verifies recovery at each; the counts here are the proof of
//!    coverage (every device kind must contribute boundaries).

use turbopool_bench::{BenchReport, Table, WallTimer};
use turbopool_core::{SsdConfig, SsdDesign};
use turbopool_engine::{explore, Database, DbConfig, ExplorerConfig};
use turbopool_iosim::Clk;

fn build(warm: bool) -> Database {
    let mut cfg = DbConfig::small_for_tests();
    cfg.db_pages = 4096;
    cfg.mem_frames = 24;
    let mut s = SsdConfig::new(SsdDesign::LazyCleaning, 256);
    s.partitions = 4;
    s.lambda = 0.5;
    s.warm_restart = warm;
    cfg.ssd = Some(s);
    Database::open(cfg)
}

fn load(db: &Database, clk: &mut Clk, n: u64) -> usize {
    let h = db.create_heap(clk, "t", 64, 2048);
    for i in 0..n {
        let mut txn = db.begin(clk);
        let mut rec = [0u8; 64];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        txn.heap_insert(h, &rec).unwrap();
        txn.commit();
    }
    h
}

/// Commit `txns` single-record updates after a checkpoint, crash, and
/// recover; returns (virtual recovery ns, records scanned, writes applied).
fn redo_cost(txns: u64) -> (u64, u64, u64) {
    let db = build(false);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 2_000);
    db.checkpoint(&mut clk);
    for i in 0..txns {
        let mut txn = db.begin(&mut clk);
        let rid = i % 2_000;
        if let Some(mut rec) = txn.heap_get(h, rid) {
            rec[8] = rec[8].wrapping_add(1);
            txn.heap_update(h, rid, &rec);
        }
        txn.commit();
    }
    let (_, report) = Database::try_recover(db.crash()).expect("healthy disk tier");
    (
        report.duration,
        report.stats.records_scanned as u64,
        report.stats.writes_applied as u64,
    )
}

/// Fill the SSD, checkpoint, crash, recover; returns the import report's
/// (attempted, imported, rejected_stale, rejected_checksum).
fn readoption(warm: bool) -> (u64, u64, u64, u64) {
    let db = build(warm);
    let mut clk = Clk::new();
    let h = load(&db, &mut clk, 3_000);
    let mut txn = db.begin(&mut clk);
    for i in (0..3_000u64).step_by(3) {
        txn.heap_get(h, i);
    }
    txn.commit();
    db.checkpoint(&mut clk);
    let (_, report) = Database::try_recover(db.crash()).expect("healthy disk tier");
    match report.warm {
        Some(w) => (
            w.attempted as u64,
            w.imported as u64,
            w.rejected_stale as u64,
            w.rejected_checksum as u64,
        ),
        None => (0, 0, 0, 0),
    }
}

fn main() {
    let timer = WallTimer::start();
    let quick = turbopool_bench::quick();
    println!("== Recovery hardening: restart cost and crash coverage ==\n");

    // 1. Redo cost scales with the post-checkpoint log suffix.
    let mut redo = Table::new(vec![
        "txns since ckpt",
        "recovery (virtual ms)",
        "records scanned",
        "writes applied",
    ]);
    let points: &[u64] = if quick {
        &[0, 200, 800]
    } else {
        &[0, 200, 800, 3_200]
    };
    let mut redo_rows = Vec::new();
    for &txns in points {
        let (ns, scanned, applied) = redo_cost(txns);
        redo.row(vec![
            format!("{txns}"),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{scanned}"),
            format!("{applied}"),
        ]);
        redo_rows.push((txns, ns, scanned, applied));
    }
    redo.print();
    println!();

    // 2. Warm vs cold re-adoption accounting.
    let mut adopt = Table::new(vec![
        "restart",
        "attempted",
        "imported",
        "rejected stale",
        "rejected checksum",
    ]);
    let (cold_att, cold_imp, _, _) = readoption(false);
    let (att, imp, stale, bad) = readoption(true);
    adopt.row(vec![
        "cold (paper)".to_string(),
        format!("{cold_att}"),
        format!("{cold_imp}"),
        "-".to_string(),
        "-".to_string(),
    ]);
    adopt.row(vec![
        "warm (extension)".to_string(),
        format!("{att}"),
        format!("{imp}"),
        format!("{stale}"),
        format!("{bad}"),
    ]);
    adopt.print();
    println!();

    // 3. Exhaustive crash-schedule coverage per design.
    let mut cov = Table::new(vec![
        "design",
        "boundaries",
        "disk",
        "ssd",
        "log",
        "schedules",
        "2x-crash hit",
    ]);
    let designs: &[(&str, Option<SsdDesign>)] = &[
        ("noSSD", None),
        ("CW", Some(SsdDesign::CleanWrite)),
        ("DW", Some(SsdDesign::DualWrite)),
        ("LC", Some(SsdDesign::LazyCleaning)),
        ("TAC", Some(SsdDesign::Tac)),
    ];
    let mut total_boundaries = 0u64;
    let mut total_schedules = 0u64;
    let mut counts = (0u64, 0u64, 0u64);
    for &(name, design) in designs {
        let ssd = design.map(|d| {
            let mut s = SsdConfig::new(d, 32);
            s.partitions = 2;
            s.lambda = 0.5;
            s.warm_restart = true;
            s
        });
        let mut cfg = ExplorerConfig::new(ssd);
        // Trace length stays at 40 even in quick mode: shorter traces do
        // not re-read enough evicted pages for TAC to admit anything, so
        // its SSD boundary count would read as zero coverage.
        cfg.ops = 40;
        cfg.checkpoint_every = 8;
        cfg.cut_stride = if quick { 3 } else { 1 };
        cfg.double_crash_stride = 6;
        let out = explore(&cfg);
        cov.row(vec![
            name.to_string(),
            format!("{}", out.boundaries),
            format!("{}", out.counts.disk_pages),
            format!("{}", out.counts.ssd_frames),
            format!("{}", out.counts.log_flushes),
            format!("{}", out.schedules_run),
            format!("{}", out.double_crash_interrupted),
        ]);
        total_boundaries += out.boundaries;
        total_schedules += out.schedules_run;
        counts.0 += out.counts.disk_pages;
        counts.1 += out.counts.ssd_frames;
        counts.2 += out.counts.log_flushes;
    }
    cov.print();
    println!("\nRecovery time grows linearly with the post-checkpoint suffix; the");
    println!("warm restart re-adopts the SSD working set for the cost of one probe");
    println!("read per frame. Every design's crash sweep covers all three durable");
    println!("write kinds, including schedules that crash recovery itself.");

    let mut report = BenchReport::new("recovery");
    report.standard(timer.secs(), 1, redo_rows.last().map_or(0, |r| r.1), 0);
    for (txns, ns, scanned, applied) in &redo_rows {
        report.int(&format!("redo_{txns}_virtual_ns"), *ns);
        report.int(&format!("redo_{txns}_records_scanned"), *scanned);
        report.int(&format!("redo_{txns}_writes_applied"), *applied);
    }
    report
        .int("warm_attempted", att)
        .int("warm_imported", imp)
        .int("warm_rejected_stale", stale)
        .int("warm_rejected_checksum", bad)
        .int("cold_imported", cold_imp)
        .int("sweep_boundaries", total_boundaries)
        .int("sweep_schedules", total_schedules)
        .int("sweep_disk_page_boundaries", counts.0)
        .int("sweep_ssd_frame_boundaries", counts.1)
        .int("sweep_log_flush_boundaries", counts.2)
        .emit();
}
