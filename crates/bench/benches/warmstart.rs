//! Warm-restart extension — the paper's §6 future work, implemented and
//! measured.
//!
//! > "No design to-date leverages the data in the SSD during system
//! > restart, and as a result, it takes a very long time to warm-up the
//! > SSD with useful pages."
//!
//! We embed the SSD buffer table in every checkpoint record (the mechanism
//! the paper sketches in §4.1) and re-adopt provably valid entries at
//! restart. This harness runs an I/O-bound workload, crashes the system,
//! and compares the post-restart ramp with a cold SSD vs a warm one.

use std::sync::Arc;

use turbopool_bench::{BenchReport, Table, WallTimer};
use turbopool_iosim::{Clk, HOUR, MINUTE};
use turbopool_workload::driver::{Driver, ThroughputRecorder};
use turbopool_workload::scenario::Design;
use turbopool_workload::synthetic::{Synthetic, SyntheticConfig};

fn run_phase(s: &Arc<Synthetic>, hours: u64, clients: u64) -> Arc<ThroughputRecorder> {
    let rec = ThroughputRecorder::new(6 * MINUTE);
    let mut d = Driver::new();
    for c in 0..clients {
        d.add(0, Box::new(s.client(c, Arc::clone(&rec))));
    }
    d.run_until(hours * HOUR);
    rec
}

fn experiment(warm: bool) -> (f64, f64, u64) {
    let cfg = SyntheticConfig {
        rows: 1_200_000,
        record_size: 128,
        theta: 0.6,
        update_frac: 0.2,
        ..Default::default()
    };
    let s = Arc::new(Synthetic::setup(Design::Dw, cfg, |spec| {
        spec.warm_restart = warm;
    }));
    // Phase 1: warm the SSD the slow way, then checkpoint (embeds the SSD
    // buffer table when the extension is on) and crash.
    let hours = if turbopool_bench::quick() { 2 } else { 4 };
    let pre = run_phase(&s, hours, 25);
    let pre_rate = pre.rate_between((hours - 1) * HOUR, hours * HOUR, MINUTE);
    let mut clk = Clk::at(hours * HOUR);
    s.db.checkpoint(&mut clk);

    let s = Arc::try_unwrap(s).ok().expect("clients dropped");
    let (s2, _) = s.crash_and_recover();
    let imported = s2.db.ssd_metrics().unwrap().warm_imports;

    // Phase 2: measure the restart ramp.
    let s2 = Arc::new(s2);
    let post = run_phase(&s2, 1, 25);
    let first30 = post.rate_between(0, 30 * MINUTE, MINUTE);
    (pre_rate, first30, imported)
}

fn main() {
    let timer = WallTimer::start();
    println!("== Warm restart (paper §6 future work, implemented) ==\n");
    let mut table = Table::new(vec![
        "restart",
        "pre-crash rate",
        "first-30-min rate",
        "ramp retained",
        "pages re-adopted",
    ]);
    for warm in [false, true] {
        let (pre, post, imported) = experiment(warm);
        table.row(vec![
            if warm {
                "warm (extension)"
            } else {
                "cold (paper)"
            }
            .to_string(),
            format!("{pre:.1}/min"),
            format!("{post:.1}/min"),
            format!("{:.0}%", post / pre.max(1e-9) * 100.0),
            format!("{imported}"),
        ]);
    }
    table.print();
    println!("\nA cold restart re-enters the multi-hour SSD ramp of Figure 6 (its");
    println!("first-30-minute rate falls well below the pre-crash rate); the warm");
    println!("restart resumes at or above the pre-crash rate immediately.");
    BenchReport::new("warmstart")
        .standard(timer.secs(), 1, 0, 0)
        .emit();
}
