//! Figure 6 — full 10-hour throughput-vs-time curves.
//!
//! (a) TPC-C 2K warehouses, (b) TPC-C 4K warehouses,
//! (c) TPC-E 20K customers, (d) TPC-E 40K customers;
//! each with LC, DW, TAC and noSSD. Six-minute buckets, like the paper.
//!
//! Expected shape (paper §4.2.1 / §4.3.1):
//! * LC on TPC-C climbs steeply, then drops when the dirty SSD pages cross
//!   the λ=50% threshold (~1:50h at 2K, ~2:30h at 4K) and the cleaner
//!   starts consuming disk bandwidth.
//! * TPC-E ramps slowly (the SSD fills at the random-read speed of the
//!   disks); checkpoint dips every ~40 minutes.

use turbopool_bench::{run_hours, run_oltp, OltpKind, RunOptions};
use turbopool_workload::scenario::Design;

fn panel(name: &str, kind: OltpKind, opts: &RunOptions) {
    println!("\n== Figure 6 {name} ==");
    for design in [Design::Lc, Design::Dw, Design::Tac, Design::NoSsd] {
        let run = run_oltp(kind, design, opts);
        println!(
            "\n--- {} (last-hour rate {:.2}/min) ---",
            design.label(),
            run.last_hour_per_min
        );
        print!("{}", render(&run.series));
    }
}

/// Render a (hours, per-minute) series as one line per ~30 buckets.
fn render(series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let peak = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let step = (series.len() / 25).max(1);
    for chunk in series.chunks(step) {
        let h = chunk[0].0;
        let v = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
        let bar = if peak > 0.0 {
            (v / peak * 48.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{h:5.1}h {v:8.2} {}\n", "#".repeat(bar)));
    }
    out
}

fn main() {
    let hours = run_hours();
    let quick = turbopool_bench::quick();
    panel(
        "(a): TPC-C 2K warehouses (tpmC*)",
        OltpKind::TpcC { warehouses: 20 },
        &RunOptions::tpcc(hours),
    );
    if !quick {
        panel(
            "(b): TPC-C 4K warehouses (tpmC*)",
            OltpKind::TpcC { warehouses: 40 },
            &RunOptions::tpcc(hours),
        );
        panel(
            "(c): TPC-E 20K customers (trades/min*)",
            OltpKind::TpcE { customers: 2_000 },
            &RunOptions::tpce(hours),
        );
        panel(
            "(d): TPC-E 40K customers (trades/min*)",
            OltpKind::TpcE { customers: 4_000 },
            &RunOptions::tpce(hours),
        );
    }
    println!("\n(*scaled rates; shapes and crossover times are the comparable quantities.)");
}
