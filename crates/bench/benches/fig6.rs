//! Figure 6 — full 10-hour throughput-vs-time curves.
//!
//! (a) TPC-C 2K warehouses, (b) TPC-C 4K warehouses,
//! (c) TPC-E 20K customers, (d) TPC-E 40K customers;
//! each with LC, DW, TAC and noSSD. Six-minute buckets, like the paper.
//!
//! The four designs of each panel run *concurrently* as share-nothing
//! driver domains (`run_oltp_set`) — results are bit-identical to
//! running them one at a time, only wall-clock time changes. Set
//! `TURBO_THREADS=1` to force the sequential schedule.
//!
//! Expected shape (paper §4.2.1 / §4.3.1):
//! * LC on TPC-C climbs steeply, then drops when the dirty SSD pages cross
//!   the λ=50% threshold (~1:50h at 2K, ~2:30h at 4K) and the cleaner
//!   starts consuming disk bandwidth.
//! * TPC-E ramps slowly (the SSD fills at the random-read speed of the
//!   disks); checkpoint dips every ~40 minutes.

use turbopool_bench::{
    bench_threads, run_hours, run_oltp_set, BenchReport, Json, OltpKind, RunOptions, WallTimer,
};
use turbopool_workload::scenario::Design;

const DESIGNS: [Design; 4] = [Design::Lc, Design::Dw, Design::Tac, Design::NoSsd];

fn panel(name: &str, kind: OltpKind, opts: &RunOptions, threads: usize) -> (Json, u64) {
    println!("\n== Figure 6 {name} ==");
    let set = run_oltp_set(kind, &DESIGNS, opts, threads);
    let mut rates = Vec::new();
    for run in &set.runs {
        println!(
            "\n--- {} (last-hour rate {:.2}/min) ---",
            run.design.label(),
            run.last_hour_per_min
        );
        print!("{}", render(&run.series));
        rates.push((
            run.design.label().to_string(),
            Json::Num(run.last_hour_per_min),
        ));
    }
    let entry = Json::Obj(vec![
        ("panel".to_string(), Json::Str(name.to_string())),
        ("drive_secs".to_string(), Json::Num(set.drive_secs)),
        ("steps".to_string(), Json::Int(set.steps)),
        ("last_hour_per_min".to_string(), Json::Obj(rates)),
    ]);
    (entry, set.steps)
}

/// Render a (hours, per-minute) series as one line per ~30 buckets.
fn render(series: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let peak = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let step = (series.len() / 25).max(1);
    for chunk in series.chunks(step) {
        let h = chunk[0].0;
        let v = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
        let bar = if peak > 0.0 {
            (v / peak * 48.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{h:5.1}h {v:8.2} {}\n", "#".repeat(bar)));
    }
    out
}

fn main() {
    let hours = run_hours();
    let quick = turbopool_bench::quick();
    let threads = bench_threads();
    let timer = WallTimer::start();
    let mut panels = Vec::new();
    let mut steps = 0u64;

    let (entry, s) = panel(
        "(a): TPC-C 2K warehouses (tpmC*)",
        OltpKind::TpcC { warehouses: 20 },
        &RunOptions::tpcc(hours),
        threads,
    );
    panels.push(entry);
    steps += s;
    if !quick {
        for (name, kind, opts) in [
            (
                "(b): TPC-C 4K warehouses (tpmC*)",
                OltpKind::TpcC { warehouses: 40 },
                RunOptions::tpcc(hours),
            ),
            (
                "(c): TPC-E 20K customers (trades/min*)",
                OltpKind::TpcE { customers: 2_000 },
                RunOptions::tpce(hours),
            ),
            (
                "(d): TPC-E 40K customers (trades/min*)",
                OltpKind::TpcE { customers: 4_000 },
                RunOptions::tpce(hours),
            ),
        ] {
            let (entry, s) = panel(name, kind, &opts, threads);
            panels.push(entry);
            steps += s;
        }
    }
    println!("\n(*scaled rates; shapes and crossover times are the comparable quantities.)");

    let virtual_ns = hours.saturating_mul(panels.len() as u64 * DESIGNS.len() as u64);
    let mut report = BenchReport::new("fig6");
    report
        .standard(timer.secs(), threads, virtual_ns, steps)
        .set("panels", Json::Arr(panels));
    report.emit();
}
