//! Table 1 — maximum sustainable IOPS per device, page-sized I/Os.
//!
//! Drives each simulated device with a closed loop of page-sized requests
//! (one outstanding request, as in the paper's Iometer setup) and reports
//! the sustained IOPS next to the numbers the devices were calibrated to.

use turbopool_iosim::{
    hdd_array_profile, ssd_profile, IoKind, Locality, PageId, SimDevice, StripedArray, SECOND,
};

/// Closed-loop sustained IOPS on a striped array.
fn array_iops(kind: IoKind, loc: Locality) -> f64 {
    let a = StripedArray::from_aggregate("hdd", hdd_array_profile(), 8);
    let pages = 40_000u64;
    match loc {
        Locality::Sequential => {
            // One sequential stream through the whole array.
            let t = a.submit_run(0, kind, PageId(0), pages, Some(Locality::Sequential));
            pages as f64 / (t.complete as f64 / SECOND as f64)
        }
        Locality::Random => {
            // Eight independent random streams, one per member (queue
            // depth 1 per disk, like the paper's Iometer run).
            let mut completes = [0u64; 8];
            let per_stream = pages / 8;
            for i in 0..per_stream {
                for d in 0..8u64 {
                    let stripe = d + 8 * ((i * 7919 + d * 13) % 50_000);
                    let pid = PageId(stripe * 8 + (i % 8));
                    let t = a.submit_page(completes[d as usize], kind, pid, Some(Locality::Random));
                    completes[d as usize] = t.complete;
                }
            }
            let end = completes.iter().copied().max().unwrap();
            pages as f64 / (end as f64 / SECOND as f64)
        }
    }
}

/// Closed-loop sustained IOPS on the SSD.
fn ssd_iops(kind: IoKind, loc: Locality) -> f64 {
    let d = SimDevice::new("ssd", ssd_profile());
    let n = 40_000u64;
    let mut now = 0;
    for i in 0..n {
        let lba = match loc {
            Locality::Sequential => i,
            Locality::Random => (i * 7919) % 1_000_000,
        };
        now = d.submit(now, kind, lba, 1, Some(loc)).complete;
    }
    n as f64 / (now as f64 / SECOND as f64)
}

fn main() {
    let timer = turbopool_bench::WallTimer::start();
    println!("== Table 1: maximum sustainable IOPS (8 KB I/Os) ==\n");
    let mut t = turbopool_bench::Table::new(vec!["device", "op", "paper", "measured", "ratio"]);
    type Case = (&'static str, IoKind, Locality, f64, Box<dyn Fn() -> f64>);
    let cases: [Case; 8] = [
        (
            "8 HDDs",
            IoKind::Read,
            Locality::Random,
            1_015.0,
            Box::new(|| array_iops(IoKind::Read, Locality::Random)),
        ),
        (
            "8 HDDs",
            IoKind::Read,
            Locality::Sequential,
            26_370.0,
            Box::new(|| array_iops(IoKind::Read, Locality::Sequential)),
        ),
        (
            "8 HDDs",
            IoKind::Write,
            Locality::Random,
            895.0,
            Box::new(|| array_iops(IoKind::Write, Locality::Random)),
        ),
        (
            "8 HDDs",
            IoKind::Write,
            Locality::Sequential,
            9_463.0,
            Box::new(|| array_iops(IoKind::Write, Locality::Sequential)),
        ),
        (
            "SSD",
            IoKind::Read,
            Locality::Random,
            12_182.0,
            Box::new(|| ssd_iops(IoKind::Read, Locality::Random)),
        ),
        (
            "SSD",
            IoKind::Read,
            Locality::Sequential,
            15_980.0,
            Box::new(|| ssd_iops(IoKind::Read, Locality::Sequential)),
        ),
        (
            "SSD",
            IoKind::Write,
            Locality::Random,
            12_374.0,
            Box::new(|| ssd_iops(IoKind::Write, Locality::Random)),
        ),
        (
            "SSD",
            IoKind::Write,
            Locality::Sequential,
            14_965.0,
            Box::new(|| ssd_iops(IoKind::Write, Locality::Sequential)),
        ),
    ];
    let mut rows = Vec::new();
    for (dev, kind, loc, paper, f) in cases {
        let got = f();
        rows.push(turbopool_bench::Json::Obj(vec![
            (
                "case".to_string(),
                turbopool_bench::Json::Str(format!("{dev} {loc:?} {kind:?}")),
            ),
            ("paper_iops".to_string(), turbopool_bench::Json::Num(paper)),
            ("measured_iops".to_string(), turbopool_bench::Json::Num(got)),
        ]));
        t.row(vec![
            dev.to_string(),
            format!("{:?} {:?}", loc, kind),
            format!("{paper:.0}"),
            format!("{got:.0}"),
            format!("{:.3}", got / paper),
        ]);
    }
    t.print();
    println!("\n(Every ratio should be ~1.00: the devices are calibrated to Table 1.)");
    let mut report = turbopool_bench::BenchReport::new("table1");
    report
        .standard(timer.secs(), 1, 0, 0)
        .set("cases", turbopool_bench::Json::Arr(rows));
    report.emit();
}
