//! Figure 8 — I/O traffic to the disks and the SSD over a full TPC-E run
//! (20K customers, DW design).
//!
//! Paper shape: disk reads start high (pool-fill expansion), drop sharply
//! once the pool fills, then the steady state is gated by the disks'
//! aggregate random traffic (~6.5 MB/s full scale) while the SSD stays far
//! below its capacity; checkpoint write spikes are visible in both write
//! series.

use turbopool_bench::{run_hours, run_oltp, OltpKind, RunOptions};
use turbopool_iosim::{Time, MINUTE};
use turbopool_workload::scenario::{Design, PAGE_SIZE, SCALE};

/// Scaled pages-per-bucket → full-scale MB/s equivalent.
fn mbps(pages: u64, bucket: Time) -> f64 {
    let bytes = pages as f64 * PAGE_SIZE as f64;
    let secs = bucket as f64 / 1e9;
    bytes / secs / 1e6 * SCALE
}

fn render(name: &str, series: &[(Time, u64, u64)], bucket: Time) {
    println!("\n--- {name} (full-scale-equivalent MB/s) ---");
    println!("{:>6} {:>10} {:>10}", "hour", "read", "write");
    let step = (series.len() / 25).max(1);
    for chunk in series.chunks(step) {
        let h = chunk[0].0 as f64 / 3.6e12;
        let n = chunk.len() as u64;
        let r: u64 = chunk.iter().map(|c| c.1).sum::<u64>() / n;
        let w: u64 = chunk.iter().map(|c| c.2).sum::<u64>() / n;
        let rbar = "#".repeat(((mbps(r, bucket) / 2.0) as usize).min(40));
        println!(
            "{h:6.2} {:10.2} {:10.2}  {rbar}",
            mbps(r, bucket),
            mbps(w, bucket)
        );
    }
}

fn main() {
    let timer = turbopool_bench::WallTimer::start();
    println!("== Figure 8: device traffic, TPC-E 20K customers, DW ==");
    let bucket = 6 * MINUTE;
    let opts = RunOptions {
        io_series: Some(bucket),
        ..RunOptions::tpce(run_hours())
    };
    let customers = if turbopool_bench::quick() { 500 } else { 2_000 };
    let run = run_oltp(OltpKind::TpcE { customers }, Design::Dw, &opts);
    render("(a) disks", &run.disk_series, bucket);
    render("(b) SSD", &run.ssd_series, bucket);
    println!(
        "\nSteady-state disk totals: {} reads, {} writes; SSD: {} reads, {} writes.",
        run.disk.read_pages, run.disk.write_pages, run.ssd_dev.read_pages, run.ssd_dev.write_pages
    );
    println!("Paper: disks saturate ~6.5 MB/s of random traffic; SSD peaks ~46 MB/s read,");
    println!("far below its ~95 MB/s capability — the disks are the bottleneck.");
    turbopool_bench::BenchReport::new("fig8")
        .standard(timer.secs(), 1, run_hours(), 0)
        .emit();
}
