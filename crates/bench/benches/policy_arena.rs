//! Policy arena — every replacement policy × every admission policy ×
//! every SSD design × TPC-C/TPC-E, in one grid.
//!
//! The paper fixes LRU-2 in DRAM and per-design SSD admission rules;
//! this harness measures how much of each design's shape survives a
//! policy swap. Per cell it reports the DRAM and SSD hit rates, the
//! committed-metric rate, and the replacement policy's eviction-scan
//! cost (scan steps per eviction — the price of victim selection).
//!
//! Emits `BENCH_policy_arena.json` with one record per cell plus the
//! usual steps/sec standard block. Env: TURBO_QUICK shortens runs (the
//! grid itself is never thinned — coverage is the point), TURBO_THREADS.
//!
//! The noSSD baseline is skipped: it has no admission site and its
//! replacement-only column is already covered by the SSD designs'
//! DRAM tiers.

use turbopool_bench::{
    bench_threads, policy_stats_json, quick, run_oltp_set, BenchReport, Json, OltpKind, OltpRun,
    RunOptions, Table, WallTimer,
};
use turbopool_bufpool::{AdmissionKind, ReplacementKind};
use turbopool_iosim::{HOUR, MINUTE};
use turbopool_workload::scenario::Design;

fn cell_json(workload: &str, run: &OltpRun, replacement: ReplacementKind) -> Json {
    let pool = &run.pool;
    let evictions = pool.evictions_clean + pool.evictions_dirty;
    let scan_per_evict = if evictions == 0 {
        0.0
    } else {
        run.policy.scan_steps as f64 / evictions as f64
    };
    let mut fields = vec![
        ("workload".into(), Json::Str(workload.into())),
        ("design".into(), Json::Str(run.design.label().into())),
        ("replacement".into(), Json::Str(replacement.label())),
        ("metric_per_min".into(), Json::Num(run.last_hour_per_min)),
        ("dram_hit_rate".into(), Json::Num(pool.hit_rate())),
        (
            "ssd_hit_rate".into(),
            run.ssd
                .as_ref()
                .map(|m| Json::Num(m.hit_rate()))
                .unwrap_or(Json::Null),
        ),
        ("evictions".into(), Json::Int(evictions)),
        ("scan_steps_per_eviction".into(), Json::Num(scan_per_evict)),
        ("policy".into(), policy_stats_json(&run.policy)),
    ];
    if let Some(m) = &run.ssd {
        fields.push(("ssd_ghost_admits".into(), Json::Int(m.admission_ghost_hits)));
        fields.push(("ssd_rejections".into(), Json::Int(m.policy_rejections)));
    }
    Json::Obj(fields)
}

fn main() {
    let timer = WallTimer::start();
    let quick = quick();
    let threads = bench_threads();
    let duration = if quick { 20 * MINUTE } else { HOUR };
    // SSD designs only — see the module docs for why noSSD sits out.
    let designs = [Design::Cw, Design::Dw, Design::Lc, Design::Tac];
    let workloads: &[(&str, OltpKind)] = &[
        ("tpcc", OltpKind::TpcC { warehouses: 4 }),
        ("tpce", OltpKind::TpcE { customers: 400 }),
    ];

    let mut cells = Vec::new();
    let mut steps = 0u64;
    let mut drive_secs = 0.0f64;
    for (wname, kind) in workloads {
        let mut table = Table::new(vec![
            "design",
            "replacement",
            "admission",
            "metric/min",
            "dram hit%",
            "ssd hit%",
            "scan/evict",
        ]);
        for replacement in ReplacementKind::arena() {
            for admission in AdmissionKind::arena() {
                let mut opts = match kind {
                    OltpKind::TpcC { .. } => RunOptions::tpcc(duration),
                    OltpKind::TpcE { .. } => RunOptions::tpce(duration),
                };
                opts.clients = 5;
                opts.replacement = replacement;
                opts.admission = admission;
                // Shrink both tiers well below the touched working set so
                // every cell actually churns: replacement picks victims,
                // and the SSD leaves its aggressive-filling phase early
                // enough that admission decides real traffic.
                opts.mem_frames = Some(192);
                opts.ssd_frames = Some(320);
                let set = run_oltp_set(*kind, &designs, &opts, threads);
                steps += set.steps;
                drive_secs += set.drive_secs;
                for run in &set.runs {
                    let evictions = run.pool.evictions_clean + run.pool.evictions_dirty;
                    table.row(vec![
                        run.design.label().into(),
                        replacement.label(),
                        admission.label().into(),
                        format!("{:.2}", run.last_hour_per_min),
                        format!("{:.1}%", run.pool.hit_rate() * 100.0),
                        run.ssd
                            .as_ref()
                            .map(|m| format!("{:.1}%", m.hit_rate() * 100.0))
                            .unwrap_or_else(|| "-".into()),
                        format!(
                            "{:.2}",
                            if evictions == 0 {
                                0.0
                            } else {
                                run.policy.scan_steps as f64 / evictions as f64
                            }
                        ),
                    ]);
                    let mut cell = cell_json(wname, run, replacement);
                    if let Json::Obj(fields) = &mut cell {
                        fields.insert(3, ("admission".into(), Json::Str(admission.label().into())));
                    }
                    cells.push(cell);
                }
            }
        }
        println!("\n== Policy arena ({wname}) ==\n");
        table.print();
    }

    let mut report = BenchReport::new("policy_arena");
    report
        .standard(timer.secs(), threads, duration, steps)
        .num("drive_secs", drive_secs)
        .num(
            "steps_per_drive_sec",
            if drive_secs > 0.0 {
                steps as f64 / drive_secs
            } else {
                0.0
            },
        )
        .set("cells", Json::Arr(cells));
    report.emit();
}
