//! Figure 9 — effect of the checkpoint interval (40 min vs 5 h) on DW and
//! LC, TPC-E 20K customers.
//!
//! Paper shape:
//! * DW: frequent checkpoints help while the SSD is filling (checkpointed
//!   random pages are mirrored into the SSD, §3.2); once full, the long
//!   interval wins because checkpoint floods stop displacing useful pages.
//! * LC with a 5-hour interval runs ahead until the first checkpoint,
//!   which then takes very long (all accumulated dirty SSD pages must be
//!   flushed) and throughput collapses for the duration.

use turbopool_bench::{run_hours, run_oltp, BenchReport, OltpKind, RunOptions, WallTimer};
use turbopool_iosim::{HOUR, MINUTE};
use turbopool_workload::scenario::Design;

fn render(series: &[(f64, f64)]) {
    let peak = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let step = (series.len() / 22).max(1);
    for chunk in series.chunks(step) {
        let h = chunk[0].0;
        let v = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
        let bar = if peak > 0.0 {
            (v / peak * 48.0).round() as usize
        } else {
            0
        };
        println!("{h:5.1}h {v:8.2} {}", "#".repeat(bar));
    }
}

fn main() {
    let timer = WallTimer::start();
    // The paper runs this for 13 hours; honor TURBO_HOURS but add the
    // extra 3 hours so the post-first-checkpoint behaviour of LC-5h shows.
    let hours = run_hours()
        + if turbopool_bench::quick() {
            0
        } else {
            3 * HOUR
        };
    let customers = if turbopool_bench::quick() { 500 } else { 2_000 };
    println!(
        "== Figure 9: checkpoint interval 40 min vs 5 h (TPC-E {customers} scaled customers) =="
    );

    for (panel, design) in [("(a) DW", Design::Dw), ("(b) LC", Design::Lc)] {
        println!("\n=== {panel} ===");
        for (label, interval, lambda) in [
            ("40 min", 40 * MINUTE, 0.01),
            // With the long interval the paper raises λ to 50% so LC can
            // actually accumulate dirty pages between checkpoints.
            ("5 hours", 5 * HOUR, 0.50),
        ] {
            let opts = RunOptions {
                duration: hours,
                checkpoint: Some(interval),
                lambda: if design == Design::Lc { lambda } else { 0.01 },
                ..RunOptions::tpce(hours)
            };
            let run = run_oltp(OltpKind::TpcE { customers }, design, &opts);
            println!(
                "\n--- checkpoint every {label} (last-hour rate {:.2}/min, checkpoint-cleaned SSD pages {}) ---",
                run.last_hour_per_min,
                run.ssd.map(|m| m.checkpoint_cleaned).unwrap_or(0),
            );
            render(&run.series);
        }
    }
    BenchReport::new("fig9")
        .standard(timer.secs(), 1, hours.saturating_mul(4), 0)
        .emit();
}
