//! Brownout — OLTP-style throughput through a mid-run SSD gray failure
//! (ISSUE 5). Five share-nothing domains (CW, DW, LC, TAC, noSSD) run
//! the same synthetic update mix; in the middle third of the run the
//! SSD suffers a stall train (periodic 25x service-time slowdowns, the
//! GC-stall shape). The fail-slow detector must trip during each stall
//! and clear between them, hedged reads must ride the stalls out on the
//! disk copy, and the SSD designs must keep a decisive edge over noSSD
//! even while their SSD is browned out.
//!
//! Emits `BENCH_brownout.json` with per-design throughput over the
//! warm, degraded and recovered windows, plus the hedge/detector
//! counters. Asserts CW/DW/LC retain >= 2x noSSD throughput during the
//! degraded window. `TURBO_QUICK` shortens the run.

use std::sync::Arc;

use turbopool_bench::{quick, BenchReport, Json, WallTimer};
use turbopool_iosim::fault::{FaultConfig, FaultPlan};
use turbopool_iosim::{Time, HOUR, MINUTE, SECOND};
use turbopool_workload::driver::{CleanerClient, Driver, ThroughputRecorder};
use turbopool_workload::scenario::Design;
use turbopool_workload::synthetic::{Synthetic, SyntheticConfig};

const SEED: u64 = 0xB700;
const CLIENTS: usize = 3;
/// Stall train shape inside the degraded window: every 15 (virtual,
/// time-scaled) minutes the SSD runs `FACTOR`x slow for 5 minutes. At
/// SCALE=1000 a scaled SSD read is ~82ms, so a stall multiplies it to
/// ~2s — the detector trips within a handful of reads and clears on
/// canary probes once the stall passes.
const STALL_PERIOD: Time = 15 * MINUTE;
const STALL_LEN: Time = 5 * MINUTE;
const FACTOR: u32 = 25;

struct DomainRun {
    label: String,
    s: Arc<Synthetic>,
    rec: Arc<ThroughputRecorder>,
}

fn main() {
    // Time-scaled workloads (SCALE=1000) need virtual hours: disk reads
    // take ~8.4 scaled seconds, so warming the SSD tier takes a sizable
    // fraction of an hour of virtual time.
    let total: Time = if quick() { 3 * HOUR } else { 9 * HOUR };
    // The run splits into thirds: healthy warm-up, brownout, recovery.
    let degrade_start = total / 3;
    let degrade_end = 2 * total / 3;
    let designs = [
        Design::Cw,
        Design::Dw,
        Design::Lc,
        Design::Tac,
        Design::NoSsd,
    ];
    // A mostly-read mix, for two reasons. Clean evictions dominate, so
    // even CW (which admits only clean pages) warms its SSD tier within
    // the first third of the run. And the dirty write-behind stays under
    // the disk group's (time-scaled) random-write capacity: hedged reads
    // can only ride out a stall if the disk tier has headroom — a disk
    // already oversubscribed by CW/DW write-behind queues hedged reads
    // behind hours of booked writes and no failover policy can help.
    let cfg = SyntheticConfig {
        rows: 5_000,
        update_frac: 0.05,
        ..Default::default()
    };

    let mut driver = Driver::new();
    let mut runs = Vec::new();
    let mut lookahead = Time::MAX;
    for (domain, &design) in designs.iter().enumerate() {
        let s = Arc::new(Synthetic::setup(design, cfg.clone(), |spec| {
            spec.mem_frames = 64;
            spec.ssd_frames = 256;
        }));
        if design != Design::NoSsd {
            s.db.io()
                .set_ssd_fault(Some(Arc::new(FaultPlan::new(FaultConfig::brownout_train(
                    SEED + domain as u64,
                    degrade_start,
                    degrade_end,
                    STALL_PERIOD,
                    STALL_LEN,
                    FACTOR,
                )))));
        }
        lookahead = lookahead.min(s.db.io().setup().min_service_ns());
        let rec = ThroughputRecorder::new(MINUTE);
        for c in 0..CLIENTS {
            driver.add_in_domain(domain, 0, Box::new(s.client(c as u64, Arc::clone(&rec))));
        }
        if let Some(cleaner) = CleanerClient::for_db(&s.db) {
            driver.add_in_domain(domain, 0, Box::new(cleaner));
        }
        runs.push(DomainRun {
            label: design.label().to_string(),
            s,
            rec,
        });
    }
    driver.set_lookahead(lookahead.saturating_mul(4096));

    let threads = turbopool_bench::bench_threads();
    let timer = WallTimer::start();
    driver.run_until_parallel(total, threads);
    let wall = timer.secs();

    let mut rows = Vec::new();
    let mut rates = Vec::new();
    println!(
        "== brownout: {CLIENTS} clients/design, stalls {FACTOR}x for {}min every {}min over the middle third ==",
        STALL_LEN / MINUTE,
        STALL_PERIOD / MINUTE
    );
    for run in &runs {
        let warm = run.rec.rate_between(0, degrade_start, SECOND);
        let degraded = run.rec.rate_between(degrade_start, degrade_end, SECOND);
        let recovered = run.rec.rate_between(degrade_end, total, SECOND);
        println!(
            "{:<6} warm={warm:>8.2}/s degraded={degraded:>8.2}/s recovered={recovered:>8.2}/s",
            run.label
        );
        let mut fields = vec![
            ("design".to_string(), Json::Str(run.label.clone())),
            ("warm_per_sec".to_string(), Json::Num(warm)),
            ("degraded_per_sec".to_string(), Json::Num(degraded)),
            ("recovered_per_sec".to_string(), Json::Num(recovered)),
            ("total_commits".to_string(), Json::Int(run.rec.total())),
        ];
        fields.push((
            "pool_counters".to_string(),
            turbopool_bench::pool_stats_json(&run.s.db.pool_stats()),
        ));
        if let Some(m) = run.s.db.ssd_metrics() {
            let fs = run.s.db.io().ssd_failslow();
            // The full counter block (every SsdMetrics field), plus the
            // headline hedge/detector numbers at top level for dashboards.
            fields.push((
                "ssd_counters".to_string(),
                turbopool_bench::ssd_metrics_json(&m),
            ));
            fields.push(("hedged_reads".to_string(), Json::Int(m.hedged_reads)));
            fields.push((
                "hedged_admissions".to_string(),
                Json::Int(m.hedged_admissions),
            ));
            fields.push((
                "detector_transitions".to_string(),
                Json::Int(fs.transitions),
            ));
            let f = run.s.db.io().ssd_fault().expect("plan attached");
            fields.push((
                "fault_counters".to_string(),
                turbopool_bench::fault_stats_json(&f.stats()),
            ));
            fields.push((
                "brownout_slowdowns".to_string(),
                Json::Int(f.stats().brownout_slowdowns),
            ));
            println!(
                "       hedged_reads={} hedged_admissions={} detector_transitions={} slowdowns={}",
                m.hedged_reads,
                m.hedged_admissions,
                fs.transitions,
                f.stats().brownout_slowdowns
            );
        }
        if std::env::var_os("TURBO_SERIES").is_some() {
            println!("       series: {:?}", run.rec.series_per_minute());
        }
        rows.push(Json::Obj(fields));
        rates.push((run.label.clone(), degraded));
    }

    // Acceptance: the paper designs keep >= 2x noSSD throughput even
    // while their SSD is browned out (hedged reads carry the stalls).
    let no_ssd = rates
        .iter()
        .find(|(l, _)| l == "noSSD")
        .map(|(_, r)| *r)
        .expect("noSSD domain present");
    assert!(no_ssd > 0.0, "noSSD made no progress");
    for (label, degraded) in &rates {
        if matches!(label.as_str(), "CW" | "DW" | "LC") {
            assert!(
                *degraded >= 2.0 * no_ssd,
                "{label} degraded throughput {degraded:.1}/s is below 2x noSSD ({no_ssd:.1}/s)"
            );
        }
    }
    println!("all of CW/DW/LC held >= 2x noSSD through the brownout");

    let mut report = BenchReport::new("brownout");
    report
        .standard(wall, threads, total * designs.len() as u64, driver.steps())
        .int("degrade_start_ns", degrade_start)
        .int("degrade_end_ns", degrade_end)
        .int("stall_period_ns", STALL_PERIOD)
        .int("stall_len_ns", STALL_LEN)
        .int("stall_factor", FACTOR as u64)
        .set("designs", Json::Arr(rows));
    report.emit();
}
