//! Microbenchmarks for the SSD manager's data structures and the engine's
//! hot paths. Self-contained std-only harness (this environment has no
//! registry access, so no criterion): each benchmark runs a warmup batch,
//! then reports mean ns/iter over a fixed iteration budget.

use std::sync::Arc;

use turbopool_bufpool::{Lru2, PageIo};
use turbopool_core::heaps::{DualHeap, Side};
use turbopool_core::partition::Partition;
use turbopool_core::{SsdConfig, SsdDesign, SsdManager};
use turbopool_engine::{Database, DbConfig};
use turbopool_iosim::{Clk, DeviceSetup, IoManager, Locality, PageId};

/// Time `iters` calls of `f` after `iters / 10` warmup calls and print
/// mean ns/iter. Wall-clock by necessity: these measure real CPU cost of
/// the data structures, not simulated I/O time.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    // lint: allow(wallclock) — harness-side timing of real CPU work; the
    // virtual clock cannot observe host execution cost.
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t0.elapsed();
    println!(
        "{name:<34} {:>10.1} ns/iter ({iters} iters)",
        elapsed.as_nanos() as f64 / iters as f64
    );
}

fn bench_dual_heap() {
    bench("dual_heap_insert_pop_1k", 200, || {
        let mut h = DualHeap::new(1024);
        for i in 0..1024usize {
            let side = if i % 3 == 0 { Side::Dirty } else { Side::Clean };
            h.insert(side, ((i as u64 * 7919) % 4096, i as u64), i);
        }
        while h.pop_min(Side::Clean).is_some() {}
        while h.pop_min(Side::Dirty).is_some() {}
    });

    let mut h = DualHeap::new(1024);
    for i in 0..1024usize {
        h.insert(Side::Clean, (i as u64, 0), i);
    }
    let mut stamp = 10_000u64;
    bench("dual_heap_update_reposition", 1_000_000, || {
        stamp += 1;
        h.update((stamp % 1024) as usize, (stamp, stamp));
    });
}

fn bench_partition() {
    bench("partition_insert_lookup_remove", 200, || {
        let mut p = Partition::new(0, 4096);
        for i in 0..4096u64 {
            p.insert(PageId(i * 3), i % 2 == 0, i);
        }
        for i in 0..4096u64 {
            std::hint::black_box(p.lookup(PageId(i * 3)));
        }
        for i in 0..4096u64 {
            let idx = p.lookup(PageId(i * 3)).unwrap();
            p.remove(idx);
        }
    });
}

fn bench_lru2() {
    let mut l = Lru2::new(8192);
    let mut i = 0usize;
    bench("lru2_touch", 1_000_000, || {
        i = (i + 127) % 8192;
        std::hint::black_box(l.touch(i));
    });
}

fn bench_ssd_manager() {
    let io = Arc::new(IoManager::new(&DeviceSetup::paper(512, 1 << 20, 1 << 16)));
    let cfg = SsdConfig::new(SsdDesign::DualWrite, 1 << 16);
    let m = SsdManager::new(cfg, io);
    let data = vec![0u8; 512];
    let mut buf = vec![0u8; 512];
    let mut clk = Clk::new();
    let mut i = 0u64;
    bench("ssd_manager_evict_hit_cycle", 200_000, || {
        i += 1;
        let pid = PageId((i * 7919) % 1_000_000);
        m.evict_page(clk.now, pid, &data, false, Locality::Random);
        m.read_page(&mut clk, pid, Locality::Random, &mut buf);
    });
}

fn bench_engine() {
    {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 4096;
        cfg.mem_frames = 512;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 2048);
        let mut k = 0u64;
        // Bounded key domain: inserts become upserts once the domain is
        // covered, so the tree (and its extent) stays fixed-size no matter
        // how many iterations run.
        bench("btree_upsert_get_txn", 50_000, || {
            k += 1;
            let mut txn = db.begin(&mut clk);
            txn.index_insert(idx, (k * 2_654_435_761) % 5_000, k);
            txn.index_get(idx, (k * 48_271) % 5_000);
            txn.commit();
        });
    }

    {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 1 << 12;
        cfg.mem_frames = 512;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 64, 1 << 10);
        let rec = [7u8; 64];
        // Pre-populate a bounded row set, then benchmark updates.
        let mut txn = db.begin(&mut clk);
        for _ in 0..1_000 {
            txn.heap_insert(h, &rec).unwrap();
        }
        txn.commit();
        let mut k = 0u64;
        bench("heap_update_txn", 50_000, || {
            k += 1;
            let mut txn = db.begin(&mut clk);
            let mut r = rec;
            r[0] = k as u8;
            txn.heap_update(h, k % 1_000, &r);
            txn.commit();
        });
    }
}

fn main() {
    bench_dual_heap();
    bench_partition();
    bench_lru2();
    bench_ssd_manager();
    bench_engine();
}
