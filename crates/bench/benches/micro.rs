//! Microbenchmarks for the SSD manager's data structures and the engine's
//! hot paths. Self-contained std-only harness (this environment has no
//! registry access, so no criterion): each benchmark runs a warmup batch,
//! then reports mean ns/iter over a fixed iteration budget.

use std::sync::{Arc, Mutex};

use turbopool_bench::{BenchReport, Json, WallTimer};
use turbopool_bufpool::{Lru2, PageIo};
use turbopool_core::heaps::{DualHeap, Side};
use turbopool_core::partition::Partition;
use turbopool_core::{PageBufPool, SsdConfig, SsdDesign, SsdManager};
use turbopool_engine::{Database, DbConfig};
use turbopool_iosim::{Clk, DeviceSetup, IoManager, Locality, PageId};

/// `(name, ns_per_iter, iters)` rows collected for BENCH_micro.json.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// Time `iters` calls of `f` after `iters / 10` warmup calls and print
/// mean ns/iter. Wall-clock by necessity: these measure real CPU cost of
/// the data structures, not simulated I/O time.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters / 10 {
        f();
    }
    // lint: allow(wallclock) — harness-side timing of real CPU work; the
    // virtual clock cannot observe host execution cost.
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t0.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {ns:>10.1} ns/iter ({iters} iters)");
    if let Ok(mut r) = RESULTS.lock() {
        r.push((name.to_string(), ns, iters));
    }
    ns
}

fn bench_dual_heap() {
    bench("dual_heap_insert_pop_1k", 200, || {
        let mut h = DualHeap::new(1024);
        for i in 0..1024usize {
            let side = if i % 3 == 0 { Side::Dirty } else { Side::Clean };
            h.insert(side, ((i as u64 * 7919) % 4096, i as u64), i);
        }
        while h.pop_min(Side::Clean).is_some() {}
        while h.pop_min(Side::Dirty).is_some() {}
    });

    let mut h = DualHeap::new(1024);
    for i in 0..1024usize {
        h.insert(Side::Clean, (i as u64, 0), i);
    }
    let mut stamp = 10_000u64;
    bench("dual_heap_update_reposition", 1_000_000, || {
        stamp += 1;
        h.update((stamp % 1024) as usize, (stamp, stamp));
    });
}

fn bench_partition() {
    bench("partition_insert_lookup_remove", 200, || {
        let mut p = Partition::new(0, 4096);
        for i in 0..4096u64 {
            p.insert(PageId(i * 3), i % 2 == 0, i);
        }
        for i in 0..4096u64 {
            std::hint::black_box(p.lookup(PageId(i * 3)));
        }
        for i in 0..4096u64 {
            let idx = p.lookup(PageId(i * 3)).unwrap();
            p.remove(idx);
        }
    });
}

fn bench_lru2() {
    let mut l = Lru2::new(8192);
    let mut i = 0usize;
    bench("lru2_touch", 1_000_000, || {
        i = (i + 127) % 8192;
        std::hint::black_box(l.touch(i));
    });
}

/// The LRU-2 history-prune delta (PR 8 satellite): finding the median
/// `last` stamp used to fully sort the collected stamps (O(n log n));
/// the policy now uses `select_nth_unstable` (O(n)), which picks the
/// same element — the bit-identity regression gate proves behavior is
/// unchanged, this proves the victim-path cost actually dropped.
fn bench_history_prune() {
    const N: usize = 8192;
    let stamps: Vec<u64> = (0..N as u64)
        .map(|i| (i * 2_654_435_761) % 100_000)
        .collect();
    let mid = N / 2;
    let sort_ns = bench("hist_prune_median_sort", 2_000, || {
        let mut lasts = stamps.clone();
        lasts.sort_unstable();
        std::hint::black_box(lasts[mid]);
    });
    let nth_ns = bench("hist_prune_median_select_nth", 2_000, || {
        let mut lasts = stamps.clone();
        let (_, &mut median, _) = lasts.select_nth_unstable(mid);
        std::hint::black_box(median);
    });
    // Both must select the same median, and the O(n) path must win.
    let mut a = stamps.clone();
    a.sort_unstable();
    let mut b = stamps.clone();
    let (_, &mut m, _) = b.select_nth_unstable(mid);
    assert_eq!(a[mid], m, "select_nth picked a different median than sort");
    assert!(
        nth_ns < sort_ns,
        "select_nth prune ({nth_ns:.0} ns) not faster than sort prune ({sort_ns:.0} ns)"
    );
    println!(
        "hist_prune delta: select_nth is {:.1}x faster than sort",
        sort_ns / nth_ns.max(1e-9)
    );
}

fn bench_ssd_manager() {
    let io = Arc::new(IoManager::new(&DeviceSetup::paper(512, 1 << 20, 1 << 16)));
    let cfg = SsdConfig::new(SsdDesign::DualWrite, 1 << 16);
    let m = SsdManager::new(cfg, io);
    let data = vec![0u8; 512];
    let mut buf = vec![0u8; 512];
    let mut clk = Clk::new();
    let mut i = 0u64;
    bench("ssd_manager_evict_hit_cycle", 200_000, || {
        i += 1;
        let pid = PageId((i * 7919) % 1_000_000);
        m.evict_page(clk.now, pid, &data, false, Locality::Random);
        m.read_page(&mut clk, pid, Locality::Random, &mut buf);
    });
}

/// The clean-batch staging-buffer delta (ISSUE 4 satellite): gathering a
/// page used to allocate a fresh `Vec<u8>` per page; `PageBufPool`
/// recycles them. Both variants do the same page-sized fill the gather
/// path does, so the difference is purely the allocator round-trip.
fn bench_page_buf() {
    const PAGE: usize = 8192;
    let src = vec![0xA5u8; PAGE];
    bench("page_buf_alloc_fresh", 200_000, || {
        let mut buf = vec![0u8; PAGE];
        buf.copy_from_slice(&src);
        std::hint::black_box(&buf);
    });
    let pool = PageBufPool::new(PAGE, 64);
    bench("page_buf_pool_reuse", 200_000, || {
        let mut buf = pool.take();
        buf.copy_from_slice(&src);
        std::hint::black_box(&buf);
        pool.put(buf);
    });
}

fn bench_engine() {
    {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 4096;
        cfg.mem_frames = 512;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let idx = db.create_index(&mut clk, "i", 2048);
        let mut k = 0u64;
        // Bounded key domain: inserts become upserts once the domain is
        // covered, so the tree (and its extent) stays fixed-size no matter
        // how many iterations run.
        bench("btree_upsert_get_txn", 50_000, || {
            k += 1;
            let mut txn = db.begin(&mut clk);
            txn.index_insert(idx, (k * 2_654_435_761) % 5_000, k);
            txn.index_get(idx, (k * 48_271) % 5_000);
            txn.commit();
        });
    }

    {
        let mut cfg = DbConfig::small_for_tests();
        cfg.db_pages = 1 << 12;
        cfg.mem_frames = 512;
        let db = Database::open(cfg);
        let mut clk = Clk::new();
        let h = db.create_heap(&mut clk, "t", 64, 1 << 10);
        let rec = [7u8; 64];
        // Pre-populate a bounded row set, then benchmark updates.
        let mut txn = db.begin(&mut clk);
        for _ in 0..1_000 {
            txn.heap_insert(h, &rec).unwrap();
        }
        txn.commit();
        let mut k = 0u64;
        bench("heap_update_txn", 50_000, || {
            k += 1;
            let mut txn = db.begin(&mut clk);
            let mut r = rec;
            r[0] = k as u8;
            txn.heap_update(h, k % 1_000, &r);
            txn.commit();
        });
    }
}

fn main() {
    let timer = WallTimer::start();
    bench_dual_heap();
    bench_partition();
    bench_lru2();
    bench_history_prune();
    bench_ssd_manager();
    bench_page_buf();
    bench_engine();

    let rows = RESULTS.lock().map(|r| r.clone()).unwrap_or_default();
    let total_iters: u64 = rows.iter().map(|&(_, _, n)| n).sum();
    let results = rows
        .iter()
        .map(|(name, ns, iters)| {
            Json::Obj(vec![
                ("name".to_string(), Json::Str(name.clone())),
                ("ns_per_iter".to_string(), Json::Num(*ns)),
                ("iters".to_string(), Json::Int(*iters)),
            ])
        })
        .collect();
    let mut report = BenchReport::new("micro");
    // Microbenches have no virtual-time component; steps = iterations.
    report
        .standard(timer.secs(), 1, 0, total_iters)
        .set("results", Json::Arr(results));
    report.emit();
}
