//! Table 3 — TPC-H power and throughput test results.
//!
//! Paper values:
//!
//! ```text
//! 30 SF:            LC    DW   TAC  noSSD      100 SF:    LC    DW   TAC  noSSD
//! Power test      5978  5917  6386   2733              3836  3204  3705   1536
//! Throughput test 5601  6643  5639   1229              3228  3691  3235    953
//! QphH            5787  6269  6001   1832              3519  3439  3462   1210
//! ```
//!
//! The shape to reproduce: all three SSD designs land close together; the
//! *throughput* test (concurrent streams ⇒ more random I/O) gains more
//! from the SSD than the power test (paper: DW 2.2x power vs 5.4x
//! throughput at 30 SF).

use std::sync::Arc;

use turbopool_bench::{BenchReport, Table, WallTimer};
use turbopool_iosim::Clk;
use turbopool_workload::scenario::Design;
use turbopool_workload::tpch::{self, Tpch};

fn main() {
    let timer = WallTimer::start();
    println!("== Table 3: TPC-H power / throughput / QphH (scaled) ==\n");
    let paper: &[(u64, [[f64; 4]; 3])] = &[
        (
            30,
            [
                [5978.0, 5917.0, 6386.0, 2733.0],
                [5601.0, 6643.0, 5639.0, 1229.0],
                [5787.0, 6269.0, 6001.0, 1832.0],
            ],
        ),
        (
            100,
            [
                [3836.0, 3204.0, 3705.0, 1536.0],
                [3228.0, 3691.0, 3235.0, 953.0],
                [3519.0, 3439.0, 3462.0, 1210.0],
            ],
        ),
    ];
    let sfs: Vec<u64> = if turbopool_bench::quick() {
        vec![30]
    } else {
        vec![30, 100]
    };
    for &sf in &sfs {
        let streams = if sf >= 100 { 5 } else { 4 };
        let mut results: Vec<(Design, f64, f64, f64)> = Vec::new();
        for design in [Design::Lc, Design::Dw, Design::Tac, Design::NoSsd] {
            tpch::reset_finish_time();
            let t = Arc::new(Tpch::setup(design, sf, 0.01));
            let mut clk = Clk::new();
            let p = t.power_test(&mut clk);
            tpch::reset_finish_time();
            let tput = t.throughput_test(streams);
            results.push((design, p.power, tput, tpch::qphh(p.power, tput)));
        }
        let paper_rows = &paper.iter().find(|(s, _)| *s == sf).unwrap().1;
        println!("--- {sf} SF ({streams} throughput streams) ---\n");
        let mut table = Table::new(vec![
            "metric",
            "LC",
            "DW",
            "TAC",
            "noSSD",
            "LC/noSSD",
            "paper LC/noSSD",
        ]);
        for (mi, metric) in [
            "Power test",
            "Throughput test",
            format!("QphH@{sf}SF").as_str(),
        ]
        .iter()
        .enumerate()
        {
            let vals: Vec<f64> = results.iter().map(|&(_, p, t, q)| [p, t, q][mi]).collect();
            let ratio = vals[0] / vals[3].max(1e-9);
            let paper_ratio = paper_rows[mi][0] / paper_rows[mi][3];
            table.row(vec![
                metric.to_string(),
                format!("{:.0}", vals[0]),
                format!("{:.0}", vals[1]),
                format!("{:.0}", vals[2]),
                format!("{:.0}", vals[3]),
                format!("{ratio:.1}x"),
                format!("{paper_ratio:.1}x"),
            ]);
        }
        table.print();
        println!();
    }
    println!("(Scaled metrics; compare ratios. Expect throughput-test gains > power-test gains.)");
    BenchReport::new("table3")
        .standard(timer.secs(), 1, 0, 0)
        .emit();
}
