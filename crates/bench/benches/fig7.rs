//! Figure 7 — the effect of the LC dirty-fraction threshold λ.
//!
//! TPC-C 4K warehouses with λ ∈ {10%, 50%, 90%}. Paper findings:
//! higher λ ⇒ higher steady-state throughput (λ=90% ≈ 3.1X over λ=10%,
//! ≈ 1.6X over λ=50%), and the cleaner issues fewer disk IOPS
//! (521 / 769 / 950 at λ = 90/50/10%).

use turbopool_bench::{run_hours, run_oltp, BenchReport, OltpKind, RunOptions, Table, WallTimer};
use turbopool_iosim::SECOND;
use turbopool_workload::scenario::Design;

fn main() {
    let timer = WallTimer::start();
    let hours = run_hours();
    let warehouses = if turbopool_bench::quick() { 20 } else { 40 };
    println!(
        "== Figure 7: LC with λ = 10% / 50% / 90% (TPC-C {warehouses} scaled warehouses) ==\n"
    );

    let mut table = Table::new(vec![
        "lambda",
        "tpmC* (last h)",
        "vs 10%",
        "paper",
        "cleaned pages",
        "cleaner IOPS*",
    ]);
    let mut base = 0.0;
    let mut curves = Vec::new();
    for (lambda, paper_rel) in [(0.10, 1.0), (0.50, 3.1 / 1.6), (0.90, 3.1)] {
        let opts = RunOptions {
            lambda,
            ..RunOptions::tpcc(hours)
        };
        let run = run_oltp(OltpKind::TpcC { warehouses }, Design::Lc, &opts);
        if base == 0.0 {
            base = run.last_hour_per_min;
        }
        let cleaned = run.ssd.map(|m| m.cleaned_pages).unwrap_or(0);
        let cleaner_iops = cleaned as f64 / (run.duration as f64 / SECOND as f64);
        table.row(vec![
            format!("{:.0}%", lambda * 100.0),
            format!("{:.2}", run.last_hour_per_min),
            format!("{:.1}x", run.last_hour_per_min / base.max(1e-9)),
            format!("{paper_rel:.1}x"),
            format!("{cleaned}"),
            format!("{cleaner_iops:.3}"),
        ]);
        curves.push((lambda, run.series));
    }
    table.print();

    println!("\nThroughput curves (per-minute rates, six-minute buckets):");
    for (lambda, series) in curves {
        println!("\n--- λ = {:.0}% ---", lambda * 100.0);
        let peak = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        let step = (series.len() / 20).max(1);
        for chunk in series.chunks(step) {
            let h = chunk[0].0;
            let v = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
            let bar = if peak > 0.0 {
                (v / peak * 48.0).round() as usize
            } else {
                0
            };
            println!("{h:5.1}h {v:8.2} {}", "#".repeat(bar));
        }
    }
    println!("\n(paper cleaner IOPS at full scale: 950 / 769 / 521 for λ = 10/50/90%;");
    println!(" scaled values are 1000x smaller — compare the monotone decrease.)");
    BenchReport::new("fig7")
        .standard(timer.secs(), 1, hours.saturating_mul(3), 0)
        .emit();
}
