//! `pilot_e` — quick TPC-E size sweep across designs, for interactive
//! exploration (the full harness is `--bench fig5`).
//!
//! ```sh
//! cargo run --release -p turbopool-bench --bin pilot_e
//! ```
use turbopool_bench::{run_oltp, OltpKind, RunOptions};
use turbopool_iosim::HOUR;
use turbopool_workload::scenario::Design;

fn main() {
    for cust in [1000u64, 2000, 4000] {
        let opts = RunOptions::tpce(10 * HOUR);
        let mut base = 0.0;
        for design in [Design::NoSsd, Design::Dw, Design::Lc, Design::Tac] {
            let run = run_oltp(OltpKind::TpcE { customers: cust }, design, &opts);
            if base == 0.0 {
                base = run.last_hour_per_min;
            }
            println!(
                "{cust} {:6} {:7.3} {:5.1}x hit {:4.2} pool_hr {:5.3} misses {} txns {}",
                design.label(),
                run.last_hour_per_min,
                run.last_hour_per_min / base,
                run.ssd.map(|m| m.hit_rate()).unwrap_or(0.0),
                run.pool.hit_rate(),
                run.pool.misses,
                run.metric.total()
            );
        }
    }
}
