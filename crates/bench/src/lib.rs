//! Shared infrastructure for the benchmark harnesses.
//!
//! Every table and figure of the paper has a `harness = false` bench
//! target in `benches/` that prints the same rows/series the paper
//! reports, next to the paper's numbers. This library holds the pieces
//! they share: experiment runners (OLTP runs with checkpointer/cleaner
//! pseudo-clients attached) and plain-text table/series rendering.
//!
//! Environment knobs:
//!
//! * `TURBO_HOURS` — virtual hours per OLTP run (default 10, the paper's
//!   duration; smaller values finish faster with the same early shape).
//! * `TURBO_QUICK` — if set, shrinks runs for smoke testing.
//! * `TURBO_THREADS` — driver worker threads for multi-design runs
//!   (default: available parallelism).

pub mod counters;
pub mod json;
pub mod report;
pub mod runs;

pub use counters::{
    classifier_stats_json, fault_stats_json, policy_stats_json, pool_stats_json, ssd_metrics_json,
};
pub use json::{BenchReport, Json, WallTimer};
pub use report::{fmt_hours, Table};
pub use runs::{run_oltp, run_oltp_set, OltpKind, OltpRun, OltpSet, RunOptions};

use turbopool_iosim::{Time, HOUR};

/// Virtual duration of OLTP runs, honoring `TURBO_HOURS` / `TURBO_QUICK`.
pub fn run_hours() -> Time {
    if std::env::var_os("TURBO_QUICK").is_some() {
        return HOUR;
    }
    let hours: f64 = std::env::var("TURBO_HOURS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    (hours * HOUR as f64) as Time
}

/// True when running in smoke-test mode.
pub fn quick() -> bool {
    std::env::var_os("TURBO_QUICK").is_some()
}

/// Driver worker threads for multi-design runs: `TURBO_THREADS`, or the
/// machine's available parallelism. Thread count never changes results
/// (see `turbopool_workload::driver` parallel docs), only wall-clock.
pub fn bench_threads() -> usize {
    if let Ok(s) = std::env::var("TURBO_THREADS") {
        if let Ok(n) = s.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
