//! Field-complete counter → JSON emitters.
//!
//! Every counter struct the simulation exposes is mirrored here field by
//! field, so each counter is observable in at least one bench report —
//! the property the L11 `dead-metric` lint enforces. Each emitter
//! *exhaustively destructures* its struct: adding a counter without
//! extending the report is a compile error, not silent observability
//! rot.

use turbopool_bufpool::{ClassifierStats, PolicyStats, PoolStats};
use turbopool_core::metrics::SsdMetricsSnapshot;
use turbopool_iosim::FaultStats;

use crate::json::Json;

fn obj(fields: Vec<(&str, u64)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), Json::Int(v)))
            .collect(),
    )
}

/// Every SSD-manager counter as one JSON object.
pub fn ssd_metrics_json(s: &SsdMetricsSnapshot) -> Json {
    let SsdMetricsSnapshot {
        ssd_hits,
        ssd_misses,
        throttled_reads,
        throttled_admissions,
        admissions,
        fill_admissions,
        policy_rejections,
        admission_ghost_hits,
        replacements,
        invalidations,
        cleaned_pages,
        cleaner_writes,
        inline_cleans,
        checkpoint_cleaned,
        tac_cancelled_writes,
        dirty_hits,
        warm_imports,
        warm_rejected_stale,
        warm_rejected_checksum,
        audit_violations,
        ssd_io_errors,
        checksum_misses,
        disk_retries,
        ssd_quarantined,
        quarantined_reads,
        lost_frames,
        stranded_dirty,
        salvaged_pages,
        hedged_reads,
        hedged_admissions,
        ssd_retries,
        cleaner_backoffs,
        cleaner_boosts,
        shard_acquisitions,
        shard_contended,
    } = *s;
    obj(vec![
        ("ssd_hits", ssd_hits),
        ("ssd_misses", ssd_misses),
        ("throttled_reads", throttled_reads),
        ("throttled_admissions", throttled_admissions),
        ("admissions", admissions),
        ("fill_admissions", fill_admissions),
        ("policy_rejections", policy_rejections),
        ("admission_ghost_hits", admission_ghost_hits),
        ("replacements", replacements),
        ("invalidations", invalidations),
        ("cleaned_pages", cleaned_pages),
        ("cleaner_writes", cleaner_writes),
        ("inline_cleans", inline_cleans),
        ("checkpoint_cleaned", checkpoint_cleaned),
        ("tac_cancelled_writes", tac_cancelled_writes),
        ("dirty_hits", dirty_hits),
        ("warm_imports", warm_imports),
        ("warm_rejected_stale", warm_rejected_stale),
        ("warm_rejected_checksum", warm_rejected_checksum),
        ("audit_violations", audit_violations),
        ("ssd_io_errors", ssd_io_errors),
        ("checksum_misses", checksum_misses),
        ("disk_retries", disk_retries),
        ("ssd_quarantined", ssd_quarantined),
        ("quarantined_reads", quarantined_reads),
        ("lost_frames", lost_frames),
        ("stranded_dirty", stranded_dirty),
        ("salvaged_pages", salvaged_pages),
        ("hedged_reads", hedged_reads),
        ("hedged_admissions", hedged_admissions),
        ("ssd_retries", ssd_retries),
        ("cleaner_backoffs", cleaner_backoffs),
        ("cleaner_boosts", cleaner_boosts),
        ("shard_acquisitions", shard_acquisitions),
        ("shard_contended", shard_contended),
    ])
}

/// Every buffer-pool counter as one JSON object.
pub fn pool_stats_json(s: &PoolStats) -> Json {
    let PoolStats {
        hits,
        misses,
        evictions_clean,
        evictions_dirty,
        prefetched_pages,
        expanded_fill_pages,
        checkpoint_writes,
        shard_acquisitions,
        shard_contended,
    } = *s;
    obj(vec![
        ("hits", hits),
        ("misses", misses),
        ("evictions_clean", evictions_clean),
        ("evictions_dirty", evictions_dirty),
        ("prefetched_pages", prefetched_pages),
        ("expanded_fill_pages", expanded_fill_pages),
        ("checkpoint_writes", checkpoint_writes),
        ("shard_acquisitions", shard_acquisitions),
        ("shard_contended", shard_contended),
    ])
}

/// Every replacement-policy counter as one JSON object.
pub fn policy_stats_json(s: &PolicyStats) -> Json {
    let PolicyStats {
        ghost_hits,
        scan_steps,
        second_chances,
        probation_evictions,
        protected_evictions,
    } = *s;
    obj(vec![
        ("ghost_hits", ghost_hits),
        ("scan_steps", scan_steps),
        ("second_chances", second_chances),
        ("probation_evictions", probation_evictions),
        ("protected_evictions", protected_evictions),
    ])
}

/// Every fault-injection counter as one JSON object.
pub fn fault_stats_json(s: &FaultStats) -> Json {
    let FaultStats {
        read_errors,
        write_errors,
        latency_spikes,
        torn_writes,
        bitflips,
        dead_rejects,
        brownout_slowdowns,
    } = *s;
    obj(vec![
        ("read_errors", read_errors),
        ("write_errors", write_errors),
        ("latency_spikes", latency_spikes),
        ("torn_writes", torn_writes),
        ("bitflips", bitflips),
        ("dead_rejects", dead_rejects),
        ("brownout_slowdowns", brownout_slowdowns),
    ])
}

/// The classifier confusion matrix as one JSON object.
pub fn classifier_stats_json(s: &ClassifierStats) -> Json {
    let ClassifierStats {
        seq_as_seq,
        seq_as_rand,
        rand_as_seq,
        rand_as_rand,
    } = *s;
    obj(vec![
        ("seq_as_seq", seq_as_seq),
        ("seq_as_rand", seq_as_rand),
        ("rand_as_seq", rand_as_seq),
        ("rand_as_rand", rand_as_rand),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(j: &Json) -> Vec<String> {
        match j {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
            _ => panic!("emitter must produce an object"),
        }
    }

    #[test]
    fn ssd_metrics_emitter_is_field_complete() {
        let j = ssd_metrics_json(&SsdMetricsSnapshot::default());
        let ks = keys(&j);
        assert_eq!(ks.len(), 35, "one JSON key per SsdMetrics counter");
        for probe in [
            "throttled_reads",
            "ssd_retries",
            "cleaner_boosts",
            "warm_rejected_stale",
            "warm_rejected_checksum",
            "admission_ghost_hits",
            "shard_acquisitions",
            "shard_contended",
        ] {
            assert!(ks.iter().any(|k| k == probe), "missing {probe}");
        }
    }

    #[test]
    fn policy_stats_emitter_is_field_complete() {
        let p = keys(&policy_stats_json(&PolicyStats::default()));
        assert_eq!(p.len(), 5);
        for probe in ["ghost_hits", "scan_steps", "second_chances"] {
            assert!(p.iter().any(|k| k == probe), "missing {probe}");
        }
    }

    #[test]
    fn pool_and_fault_emitters_cover_every_field() {
        let p = keys(&pool_stats_json(&PoolStats::default()));
        assert_eq!(p.len(), 9);
        assert!(p.iter().any(|k| k == "checkpoint_writes"));
        assert!(p.iter().any(|k| k == "shard_acquisitions"));
        assert!(p.iter().any(|k| k == "shard_contended"));
        let f = keys(&fault_stats_json(&FaultStats::default()));
        assert_eq!(f.len(), 7);
        for probe in ["write_errors", "torn_writes", "bitflips"] {
            assert!(f.iter().any(|k| k == probe), "missing {probe}");
        }
        let c = keys(&classifier_stats_json(&ClassifierStats::default()));
        assert_eq!(c.len(), 4);
    }
}
