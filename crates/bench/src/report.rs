//! Plain-text rendering for the harness output.

/// A simple aligned text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format virtual nanoseconds as fractional hours.
pub fn fmt_hours(t: turbopool_iosim::Time) -> String {
    format!("{:.2}h", t as f64 / turbopool_iosim::HOUR as f64)
}

/// Render a sparkline-ish series of (hours, value) pairs, sampled down to
/// at most `max_points` lines of `hours value` text.
pub fn render_series(series: &[(f64, f64)], max_points: usize) -> String {
    if series.is_empty() {
        return String::from("(empty series)\n");
    }
    let step = series.len().div_ceil(max_points).max(1);
    let peak = series.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    let mut out = String::new();
    for chunk in series.chunks(step) {
        let h = chunk[0].0;
        let v = chunk.iter().map(|&(_, v)| v).sum::<f64>() / chunk.len() as f64;
        let bar_len = if peak > 0.0 {
            (v / peak * 50.0).round() as usize
        } else {
            0
        };
        out.push_str(&format!("{h:6.2}h {v:10.2} {}\n", "#".repeat(bar_len)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "2000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("100"));
        assert!(lines[0].ends_with("bb"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn series_rendering_samples() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 0.1, i as f64)).collect();
        let s = render_series(&series, 10);
        assert!(s.lines().count() <= 10);
        assert!(s.contains('#'));
    }
}
